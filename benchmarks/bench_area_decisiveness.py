"""AREA — Section VI-A ablation: sensing area decides, shape does not.

Paper shape: equal-area fleets with sector aspect ratios from pi/6 to
1.6*pi achieve statistically indistinguishable full-view rates.
"""

from __future__ import annotations

from conftest import run_and_export


def test_area_decisiveness(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("AREA", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
