"""Append benchmark observations to the repo-root ``BENCH_*.json`` ledgers.

Each ledger is a JSON list of rows ``{bench, value, unit, git_sha,
timestamp}`` — one row per observation, appended across runs so the
history of a benchmark on one machine is a single ``jq``-able file.
Writes go through :func:`repro.ioutil.write_json_atomic`, so a crash
mid-record can never corrupt the ledger (worst case: the newest row is
lost).  A corrupt or non-list ledger is silently restarted rather than
crashing the benchmark that tried to record into it.
"""

from __future__ import annotations

import json
import subprocess
from datetime import datetime, timezone
from pathlib import Path

from repro.ioutil import write_json_atomic

__all__ = ["BENCH_CORE", "BENCH_ENGINE", "BENCH_SERVICE", "record"]

#: Repo root: ``benchmarks/`` lives directly under it.
_ROOT = Path(__file__).resolve().parent.parent

#: Ledger for engine/runner dispatch and speedup numbers.
BENCH_ENGINE = "BENCH_engine.json"

#: Ledger for core-primitive throughput numbers.
BENCH_CORE = "BENCH_core.json"

#: Ledger for coverage-service latency/throughput numbers.
BENCH_SERVICE = "BENCH_service.json"


def _git_sha() -> str:
    """The current HEAD commit, or ``"unknown"`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def record(bench: str, value: float, unit: str, file: str = BENCH_ENGINE) -> Path:
    """Append one observation row to the ledger ``file`` at the repo root."""
    path = _ROOT / file
    rows = []
    if path.exists():
        try:
            rows = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            rows = []
        if not isinstance(rows, list):
            rows = []
    rows.append(
        {
            "bench": bench,
            "value": float(value),
            "unit": unit,
            "git_sha": _git_sha(),
            "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        }
    )
    write_json_atomic(path, rows)
    return path
