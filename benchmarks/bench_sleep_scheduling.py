"""SLEEP — extension: shift scheduling on the CSA frontier.

Splitting a fleet into k disjoint shifts multiplies lifetime by k;
per-shift coverage follows eq. (2) at n/k, so the admissible k is read
directly off the CSA — Section VII-B's sleep-probability framing as a
design tool.
"""

from __future__ import annotations

from conftest import run_and_export


def test_sleep_scheduling(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("SLEEP", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
