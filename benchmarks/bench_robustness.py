"""ROBUST — extension: random and adversarial sensor failures.

Random thinning matches survivor-count theory; adversarial breach cost
(minimum sensors to disable to break full-view coverage) grows with
provisioning.
"""

from __future__ import annotations

from conftest import run_and_export


def test_robustness(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("ROBUST", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
