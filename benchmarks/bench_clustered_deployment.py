"""CLUSTER — extension: Matern-clustered drops vs the uniform assumption.

Heavily clustered deployments collapse full-view coverage at equal
sensor count and sensing area; coverage recovers toward the Poisson
baseline as the number of independent drop passes grows.
"""

from __future__ import annotations

from conftest import run_and_export


def test_clustered_deployment(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("CLUSTER", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
