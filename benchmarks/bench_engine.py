"""Trial-execution engine: dispatch overhead and parallel speedup.

Two questions a user of ``--workers`` cares about, answered with the
grid-failure sweep (the heaviest estimator, one full deployment plus a
subsampled dense-grid scan per trial):

1. *What does the engine cost per trial?*  A sweep of cheap trials is
   timed through the raw ``for`` loop, the serial engine and the
   process-pool engine; the per-trial difference is the dispatch
   overhead, reported in ``extra_info`` (microseconds per trial).
2. *What does a pool buy?*  The same grid-failure sweep is timed
   serially and with four workers — once on the process backend, once
   on the thread backend (numpy kernels release the GIL, so threads
   overlap without any pickling or shared-memory traffic).  On a
   >= 4-core machine each speedup must reach 2x; on smaller machines
   the ratios are only reported (no backend can beat serial without
   cores to run on).

Every timing path asserts bit-identical tallies first — the engine's
defining property — so the numbers can never come from divergent work.
"""

from __future__ import annotations

import math
import os
import statistics
import time

import numpy as np
from _record import record

from repro.core.csa import csa_sufficient
from repro.obs.progress import ProgressTracker, progress_scope
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.engine import (
    MonteCarloConfig,
    ParallelExecutor,
    SerialExecutor,
    execute_trials,
)
from repro.simulation.faults import RetryPolicy
from repro.simulation.montecarlo import estimate_grid_failure_probability

THETA = math.pi / 3

CHEAP_TRIALS = 2000
CHEAP_CFG = MonteCarloConfig(trials=CHEAP_TRIALS, seed=17)

#: The 4-core acceptance sweep: n sensors, subsampled dense grid.  The
#: fleet is provisioned above the sufficient CSA so the exact test
#: scans (nearly) the whole grid instead of early-exiting on the first
#: uncovered point — per-trial work must dominate pool dispatch for
#: the speedup floor to be meaningful.
SWEEP_N = 400
SWEEP_TRIALS = 40
SWEEP_GRID_POINTS = 1000
SWEEP_WORKERS = 4
SWEEP_PROFILE = HeterogeneousProfile.homogeneous(
    CameraSpec(radius=0.16, angle_of_view=math.pi / 2)
).scaled_to_weighted_area(1.6 * csa_sufficient(SWEEP_N, THETA))


def cheap_trial(trial: int, rng: np.random.Generator) -> bool:
    """The smallest meaningful task: one draw, one comparison."""
    return bool(rng.random() < 0.5)


def _plain_loop() -> int:
    successes = 0
    for trial, rng in enumerate(CHEAP_CFG.rngs()):
        if cheap_trial(trial, rng):
            successes += 1
    return successes


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def _self_timing(fn, times):
    """Wrap ``fn`` so each call appends its own wall-clock to ``times``.

    ``benchmark.stats`` is unavailable under ``--benchmark-disable``,
    so overhead arithmetic uses these self-measured durations instead.
    """

    def wrapped():
        elapsed, value = _timed(fn)
        times.append(elapsed)
        return value

    return wrapped


def test_serial_dispatch_overhead(benchmark):
    """Per-trial cost of the engine over a raw loop (microseconds)."""
    loop_time, expected = _timed(_plain_loop)

    def through_engine() -> int:
        outcomes = execute_trials(
            cheap_trial, CHEAP_CFG, executor=SerialExecutor()
        )
        return sum(1 for o in outcomes if o.value)

    times = []
    successes = benchmark.pedantic(
        _self_timing(through_engine, times), rounds=3, iterations=1
    )
    assert successes == expected
    overhead_us = (min(times) - loop_time) / CHEAP_TRIALS * 1e6
    benchmark.extra_info["per_trial_overhead_us"] = overhead_us
    record("engine_serial_dispatch_overhead", overhead_us, "us/trial")


def test_parallel_dispatch_overhead(benchmark):
    """Per-trial cost of pool dispatch on tasks too cheap to parallelise."""
    loop_time, expected = _timed(_plain_loop)

    def through_pool() -> int:
        outcomes = execute_trials(
            cheap_trial, CHEAP_CFG, executor=ParallelExecutor(workers=2)
        )
        return sum(1 for o in outcomes if o.value)

    times = []
    successes = benchmark.pedantic(
        _self_timing(through_pool, times), rounds=3, iterations=1
    )
    assert successes == expected
    overhead_us = (min(times) - loop_time) / CHEAP_TRIALS * 1e6
    benchmark.extra_info["per_trial_overhead_us"] = overhead_us
    record("engine_parallel_dispatch_overhead", overhead_us, "us/trial")


#: Interleaved measurement rounds for the retry-overhead comparison.
#: Medians over this many rounds are stable enough that the reported
#: overhead no longer swings negative on scheduler noise alone.
RETRY_ROUNDS = 7


def test_retry_machinery_overhead(benchmark):
    """Fault-free cost of the retry ladder on the pool dispatch path.

    The hardened executor arms per-chunk deadlines, attempt accounting
    and backoff state even when no fault ever fires; this compares it
    against a retry-free policy on the same pool and asserts the
    machinery stays under the 5% acceptance ceiling.  Both sides are
    the *median* of ``RETRY_ROUNDS`` interleaved rounds — min-of-rounds
    let one lucky bare round report a negative overhead — and a
    measurement that still lands below zero is clamped to 0 with a
    widened-CI note instead of recording noise as a speedup.
    """
    bare = ParallelExecutor(
        workers=2,
        retry=RetryPolicy(max_retries=0, backoff_base=0.0, max_pool_respawns=0),
    )
    hardened = ParallelExecutor(
        workers=2,
        retry=RetryPolicy(max_retries=2, chunk_timeout=60.0),
    )

    def through(executor: ParallelExecutor) -> int:
        outcomes = execute_trials(cheap_trial, CHEAP_CFG, executor=executor)
        return sum(1 for o in outcomes if o.value)

    # First run populates the shared worker pool; startup is not part
    # of the steady-state comparison.
    expected = through(bare)
    # Interleave the rounds so clock drift hits both sides equally.
    bare_times, hardened_times = [], []
    for _ in range(RETRY_ROUNDS - 1):
        elapsed, successes = _timed(lambda: through(bare))
        assert successes == expected
        bare_times.append(elapsed)
        elapsed, successes = _timed(lambda: through(hardened))
        assert successes == expected
        hardened_times.append(elapsed)

    elapsed, successes = _timed(lambda: through(bare))
    assert successes == expected
    bare_times.append(elapsed)
    times = []
    successes = benchmark.pedantic(
        _self_timing(lambda: through(hardened), times), rounds=1, iterations=1
    )
    assert successes == expected
    hardened_times.append(times[0])

    raw_pct = (
        (statistics.median(hardened_times) - statistics.median(bare_times))
        / statistics.median(bare_times)
        * 100.0
    )
    overhead_pct = max(0.0, raw_pct)
    benchmark.extra_info["overhead_pct"] = overhead_pct
    benchmark.extra_info["raw_overhead_pct"] = raw_pct
    benchmark.extra_info["rounds"] = RETRY_ROUNDS
    if raw_pct < 0.0:
        benchmark.extra_info["note"] = (
            "median difference below the noise floor: confidence interval "
            "includes 0, reported as 0"
        )
    record("engine_retry_overhead_pct", overhead_pct, "%")
    assert overhead_pct < 5.0, (
        f"fault-free retry machinery costs {overhead_pct:.2f}% over a "
        "retry-free policy; the acceptance ceiling is 5%"
    )


def test_progress_overhead(benchmark, tmp_path):
    """Cost of live progress heartbeats on the serial dispatch path.

    The tracker charges integer bookkeeping per ``advance`` (clock,
    EWMA and status writes run on the throttled stride path only); a
    cheap serial sweep is the worst case because per-trial work hides
    nothing.  One tracker spans all rounds — totals accumulate across
    sweeps by design, and tracker construction plus the first status
    write are once-per-run costs, not steady state (same reasoning as
    pool warmup in the speedup benches).  Noise handling is stricter
    than the retry bench's median-vs-median: each tracked round is
    paired with the plain round timed immediately before it (the pair
    shares whatever load the machine had that instant) and the
    reported overhead is the median of the per-pair differences —
    negative noise clamped to 0 with a widened-CI note, and a 2%
    acceptance ceiling on the recorded value.
    """
    tracker = ProgressTracker(status_path=tmp_path / "status.json")

    def plain() -> int:
        outcomes = execute_trials(cheap_trial, CHEAP_CFG, executor=SerialExecutor())
        return sum(1 for o in outcomes if o.value)

    def tracked() -> int:
        with progress_scope(tracker):
            return plain()

    expected = plain()
    done_before = tracker.done
    tracked()  # warmup: first heartbeat writes the status file
    rounds = 2 * RETRY_ROUNDS + 1
    # Pair each tracked round with the plain round timed right before
    # it, so each difference cancels that instant's machine load.
    plain_times, diffs = [], []
    for _ in range(rounds - 1):
        plain_elapsed, successes = _timed(plain)
        assert successes == expected
        plain_times.append(plain_elapsed)
        tracked_elapsed, successes = _timed(tracked)
        assert successes == expected
        diffs.append(tracked_elapsed - plain_elapsed)

    plain_elapsed, successes = _timed(plain)
    assert successes == expected
    plain_times.append(plain_elapsed)
    times = []
    successes = benchmark.pedantic(
        _self_timing(tracked, times), rounds=1, iterations=1
    )
    assert successes == expected
    diffs.append(times[0] - plain_elapsed)
    assert tracker.done - done_before == (rounds + 1) * CHEAP_TRIALS

    raw_pct = statistics.median(diffs) / statistics.median(plain_times) * 100.0
    overhead_pct = max(0.0, raw_pct)
    benchmark.extra_info["overhead_pct"] = overhead_pct
    benchmark.extra_info["raw_overhead_pct"] = raw_pct
    benchmark.extra_info["rounds"] = rounds
    if raw_pct < 0.0:
        benchmark.extra_info["note"] = (
            "median difference below the noise floor: confidence interval "
            "includes 0, reported as 0"
        )
    record("engine_progress_overhead_pct", overhead_pct, "%")
    assert overhead_pct < 2.0, (
        f"live progress tracking costs {overhead_pct:.2f}% on a cheap serial "
        "sweep; the acceptance ceiling is 2%"
    )


def test_parallel_speedup_grid_failure(benchmark):
    """The acceptance sweep: 4-worker grid failure vs serial.

    Identity is asserted unconditionally; the 2x speedup floor only on
    machines with at least ``SWEEP_WORKERS`` cores.
    """

    def sweep(workers: int):
        return estimate_grid_failure_probability(
            SWEEP_PROFILE,
            SWEEP_N,
            THETA,
            "exact",
            MonteCarloConfig(trials=SWEEP_TRIALS, seed=5, workers=workers),
            max_grid_points=SWEEP_GRID_POINTS,
        )

    # Populate the shared worker pool before timing: pool startup is a
    # once-per-process cost, not part of the steady-state speedup.
    execute_trials(
        cheap_trial,
        MonteCarloConfig(trials=SWEEP_WORKERS, seed=0, workers=SWEEP_WORKERS),
    )
    serial_time, serial_estimate = _timed(lambda: sweep(1))
    times = []
    parallel_estimate = benchmark.pedantic(
        _self_timing(lambda: sweep(SWEEP_WORKERS), times), rounds=1, iterations=1
    )
    assert parallel_estimate == serial_estimate
    speedup = serial_time / min(times)
    benchmark.extra_info["serial_seconds"] = serial_time
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["cores"] = os.cpu_count()
    record("engine_parallel_speedup_4w", speedup, "x")
    if (os.cpu_count() or 1) >= SWEEP_WORKERS:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {SWEEP_WORKERS} workers on "
            f"{os.cpu_count()} cores, measured {speedup:.2f}x"
        )


def test_thread_speedup_grid_failure(benchmark):
    """The same acceptance sweep on the thread backend.

    The estimator's inner loops are numpy batch kernels that release
    the GIL, so worker threads overlap for real — with none of the
    process backend's pickling or shared-memory traffic.  Identity is
    asserted unconditionally; the speedup floor only with the cores to
    run on.
    """

    def sweep(kind: str, workers: int):
        return estimate_grid_failure_probability(
            SWEEP_PROFILE,
            SWEEP_N,
            THETA,
            "exact",
            MonteCarloConfig(
                trials=SWEEP_TRIALS, seed=5, workers=workers, executor=kind
            ),
            max_grid_points=SWEEP_GRID_POINTS,
        )

    serial_time, serial_estimate = _timed(lambda: sweep("serial", 1))
    times = []
    threaded_estimate = benchmark.pedantic(
        _self_timing(lambda: sweep("thread", SWEEP_WORKERS), times),
        rounds=1,
        iterations=1,
    )
    assert threaded_estimate == serial_estimate
    speedup = serial_time / min(times)
    benchmark.extra_info["serial_seconds"] = serial_time
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["cores"] = os.cpu_count()
    record("engine_thread_speedup_4w", speedup, "x")
    if (os.cpu_count() or 1) >= SWEEP_WORKERS:
        assert speedup >= 2.0, (
            f"expected >= 2x thread speedup with {SWEEP_WORKERS} workers on "
            f"{os.cpu_count()} cores, measured {speedup:.2f}x"
        )
