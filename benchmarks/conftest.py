"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one artifact from the paper's
evaluation (see DESIGN.md's experiment index).  Benchmarks execute the
experiment under ``pytest-benchmark`` timing, assert the experiment's
shape-level checks, and export every produced table to
``results/<experiment>.csv`` so the regenerated figures are inspectable
after the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

#: Where regenerated figure/table data lands.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def run_and_export(experiment_id: str, results_dir: Path, fast: bool = True, seed: int = 0):
    """Run a registered experiment, export tables, and return the result."""
    from repro.experiments import get_experiment

    result = get_experiment(experiment_id).run(fast=fast, seed=seed)
    for i, table in enumerate(result.tables):
        suffix = f"_{i}" if len(result.tables) > 1 else ""
        table.save_csv(results_dir / f"{experiment_id.lower()}{suffix}.csv")
    return result
