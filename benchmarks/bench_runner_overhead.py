"""Resilient-runner overhead versus the plain estimator loop.

The runner wraps every trial in fault isolation and (optionally) writes
periodic JSON checkpoints.  This bench times a sweep of cheap trials
through three paths — plain ``for rng in config.rngs()`` loop, bare
runner, runner with per-trial checkpointing — and asserts all three
tally identical successes, so the resilience layer is known not to
perturb results while its cost stays visible in the timing report.
No ratio is asserted: wall-clock ratios of microsecond loops are too
noisy for CI, the numbers are for humans reading the benchmark table.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from _record import record

from repro.simulation.montecarlo import MonteCarloConfig
from repro.simulation.runner import run_resilient_trials

TRIALS = 2000
CONFIG = MonteCarloConfig(trials=TRIALS, seed=17)


def _self_timing(fn, times):
    """Wrap ``fn`` so each call appends its own wall clock to ``times``.

    ``benchmark.stats`` is unavailable under ``--benchmark-disable``,
    so the per-trial numbers recorded into ``BENCH_engine.json`` come
    from these self-measured durations instead.
    """

    def wrapped(*args):
        start = time.perf_counter()
        value = fn(*args)
        times.append(time.perf_counter() - start)
        return value

    return wrapped


def cheap_trial(trial: int, rng: np.random.Generator) -> bool:
    return bool(rng.random() < 0.5)


def plain_loop() -> int:
    successes = 0
    for trial, rng in enumerate(CONFIG.rngs()):
        if cheap_trial(trial, rng):
            successes += 1
    return successes


@pytest.fixture(scope="module")
def expected_successes() -> int:
    return plain_loop()


def test_plain_loop(benchmark, expected_successes):
    times = []
    successes = benchmark.pedantic(
        _self_timing(plain_loop, times), rounds=3, iterations=1
    )
    assert successes == expected_successes
    record("runner_plain_loop", min(times) / TRIALS * 1e6, "us/trial")


def test_runner_no_checkpoint(benchmark, expected_successes):
    times = []
    result = benchmark.pedantic(
        _self_timing(run_resilient_trials, times),
        args=(cheap_trial, CONFIG),
        rounds=3,
        iterations=1,
    )
    assert result.completed == TRIALS
    assert result.successes == expected_successes
    record("runner_no_checkpoint", min(times) / TRIALS * 1e6, "us/trial")


def test_runner_with_checkpoints(benchmark, expected_successes, tmp_path):
    def checkpointed():
        return run_resilient_trials(
            cheap_trial, CONFIG, checkpoint_dir=tmp_path, checkpoint_every=100
        )

    times = []
    result = benchmark.pedantic(_self_timing(checkpointed, times), rounds=3, iterations=1)
    assert result.completed == TRIALS
    assert result.successes == expected_successes
    record("runner_with_checkpoints", min(times) / TRIALS * 1e6, "us/trial")
