"""THM3-MC — validate Theorem 3 by Monte Carlo (Poisson, necessary).

Also cross-checks the paper's series form against the closed form and
tabulates the uniform-vs-Poisson per-point gap.
"""

from __future__ import annotations

from conftest import run_and_export


def test_poisson_necessary_mc(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("THM3-MC", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
