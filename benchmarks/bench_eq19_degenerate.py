"""EQ19 — Section VII-A: theta = pi degeneration to the 1-coverage CSA.

Paper shape: an identity — s_N,c(n) at theta = pi equals
(log n + log log n)/n to machine precision, matching Wang et al.'s
critical effective sensing radius converted to an area.
"""

from __future__ import annotations

from conftest import run_and_export


def test_eq19_degenerate(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("EQ19", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
