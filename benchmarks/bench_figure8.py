"""FIG8 — regenerate Figure 8: CSA vs sensor count (theta = pi/4).

Paper shape: ~0.5-0.7 sufficient CSA at n = 100 ("not tolerable"),
monotone decline that flattens past n ~ 1000.
"""

from __future__ import annotations

from conftest import run_and_export


def test_figure8(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("FIG8", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
