"""Load generator for the coverage service: latency, throughput, coalescing.

A stdlib-only harness that drives N concurrent clients against a
running ``fullview serve`` instance (or a service it self-hosts on an
ephemeral port when ``--url`` is omitted) and records three numbers to
``BENCH_service.json``:

- ``service_p50_ms`` / ``service_p99_ms`` — per-request wall latency
  percentiles across every client;
- ``service_throughput_rps`` — completed requests per second over the
  whole run.

The workload mixes K distinct estimate bodies across N clients x M
requests, so the run exercises cold computes, warm cache hits and
coalesced concurrent duplicates — the service's three answer paths.

``--assert-coalesce N`` additionally fires N identical concurrent
requests at a fresh key (leader first, followers released only once
the leader's computation is observably in flight via ``/v1/stats``)
and fails the process unless the coalesce counter grew by exactly
``N - 1`` and the miss counter by exactly 1 — the CI proof that N
identical questions cost one engine run.

Usage::

    python benchmarks/bench_service.py                 # self-hosted
    python benchmarks/bench_service.py --url http://127.0.0.1:8471
    python benchmarks/bench_service.py --assert-coalesce 6 --no-record
"""

from __future__ import annotations

import argparse
import asyncio
import statistics
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

from _record import BENCH_SERVICE, record

from repro.service import CoverageService, ServiceClient


def _percentile(samples: List[float], q: float) -> float:
    """The q-quantile (0..1) of ``samples`` by nearest-rank on sorted data."""
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


class _SelfHosted:
    """A CoverageService on an ephemeral port in a background thread."""

    def __init__(self, queue_limit: int, service_workers: int) -> None:
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.service = CoverageService(
            queue_limit=queue_limit, service_workers=service_workers
        )
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            await self.service.start("127.0.0.1", 0)
            self._ready.set()
            serve = asyncio.ensure_future(self.service.serve_forever())
            await self._stop.wait()
            serve.cancel()
            await self.service.stop()

        asyncio.run(main())

    def start(self) -> Tuple[str, int]:
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("self-hosted service failed to start")
        assert self.service.host is not None and self.service.port is not None
        return self.service.host, self.service.port

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)


def _parse_url(url: str) -> Tuple[str, int]:
    """``http://host:port`` -> ``(host, port)``."""
    stripped = url.split("//", 1)[-1].rstrip("/")
    host, _, port = stripped.partition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected http://HOST:PORT, got {url!r}")
    return host, int(port)


def _body(seed: int, trials: int, n: int) -> Dict[str, object]:
    return {
        "kind": "point",
        "radius": 0.25,
        "angle_of_view": 1.2,
        "n": n,
        "theta": 1.0,
        "trials": trials,
        "seed": seed,
    }


def run_load(
    host: str,
    port: int,
    *,
    clients: int,
    requests: int,
    distinct: int,
    trials: int,
    n: int,
) -> Tuple[List[float], float]:
    """Drive the workload; returns (per-request latencies s, wall s)."""
    latencies: List[List[float]] = [[] for _ in range(clients)]
    errors: List[str] = []
    barrier = threading.Barrier(clients + 1)

    def worker(slot: int) -> None:
        with ServiceClient(host, port) as client:
            barrier.wait()
            for i in range(requests):
                seed = (slot * requests + i) % distinct
                begin = time.perf_counter()
                try:
                    client.estimate(**_body(seed, trials, n))
                except Exception as exc:  # noqa: BLE001 - report, don't die
                    errors.append(f"client {slot} request {i}: {exc}")
                    return
                latencies[slot].append(time.perf_counter() - begin)

    threads = [threading.Thread(target=worker, args=(s,)) for s in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise RuntimeError("; ".join(errors[:3]))
    flat = [sample for per_client in latencies for sample in per_client]
    return flat, wall


def assert_coalesce(host: str, port: int, fan_out: int, trials: int, n: int) -> None:
    """Prove N identical concurrent requests cost exactly one compute.

    The leader fires first at a never-before-seen seed; followers are
    held until ``/v1/stats`` shows the computation in flight, then all
    fire the identical body.  Afterwards the coalesce counter must have
    grown by exactly ``fan_out - 1`` and the miss counter by exactly 1.
    """
    probe = ServiceClient(host, port)
    before = probe.stats()["metrics"]["counters"]
    # A seed far outside the load-phase range => guaranteed cold key.
    body = _body(10_000_019, trials, n)
    release = threading.Event()
    failures: List[str] = []

    def fire(wait: bool) -> None:
        with ServiceClient(host, port) as client:
            if wait:
                release.wait(timeout=60)
            try:
                client.estimate(**body)
            except Exception as exc:  # noqa: BLE001
                failures.append(str(exc))

    leader = threading.Thread(target=fire, args=(False,))
    followers = [
        threading.Thread(target=fire, args=(True,)) for _ in range(fan_out - 1)
    ]
    for thread in followers:
        thread.start()
    leader.start()
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if probe.stats()["inflight_keys"] >= 1:
            break
        time.sleep(0.01)
    else:
        raise AssertionError("leader computation never became visible in stats")
    release.set()
    leader.join()
    for thread in followers:
        thread.join()
    if failures:
        raise AssertionError(f"coalesce requests failed: {failures[:3]}")
    after = probe.stats()["metrics"]["counters"]
    probe.close()
    coalesced = after.get("service_coalesced", 0) - before.get("service_coalesced", 0)
    misses = after.get("service_cache_misses", 0) - before.get(
        "service_cache_misses", 0
    )
    if coalesced != fan_out - 1 or misses != 1:
        raise AssertionError(
            f"expected {fan_out - 1} coalesced / 1 miss, got "
            f"{coalesced} coalesced / {misses} miss(es)"
        )
    print(
        f"coalesce check: {fan_out} identical concurrent requests -> "
        f"1 compute, {coalesced} coalesced"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--url", default=None,
        help="target service as http://HOST:PORT; omitted = self-host "
        "one on an ephemeral port",
    )
    parser.add_argument("--clients", type=int, default=8, metavar="N")
    parser.add_argument(
        "--requests", type=int, default=12, metavar="M",
        help="requests per client (default: 12)",
    )
    parser.add_argument(
        "--distinct", type=int, default=6, metavar="K",
        help="distinct request bodies in the mix (default: 6)",
    )
    parser.add_argument(
        "--trials", type=int, default=64, metavar="T",
        help="Monte-Carlo trials per estimate body (default: 64)",
    )
    parser.add_argument(
        "--sensors", type=int, default=40, metavar="S",
        help="cameras per deployment (default: 40)",
    )
    parser.add_argument(
        "--assert-coalesce", type=int, default=None, metavar="N",
        help="also fire N identical concurrent requests and fail unless "
        "they cost exactly one compute (coalesce counter == N-1)",
    )
    parser.add_argument(
        "--no-record", action="store_true",
        help="skip appending results to BENCH_service.json",
    )
    args = parser.parse_args(argv)

    hosted: Optional[_SelfHosted] = None
    if args.url:
        host, port = _parse_url(args.url)
    else:
        hosted = _SelfHosted(queue_limit=max(8, args.clients), service_workers=4)
        host, port = hosted.start()
        print(f"self-hosted coverage service on http://{host}:{port}")

    try:
        with ServiceClient(host, port) as probe:
            probe.healthz()
        latencies, wall = run_load(
            host,
            port,
            clients=args.clients,
            requests=args.requests,
            distinct=args.distinct,
            trials=args.trials,
            n=args.sensors,
        )
        completed = len(latencies)
        p50 = _percentile(latencies, 0.50) * 1e3
        p99 = _percentile(latencies, 0.99) * 1e3
        throughput = completed / wall if wall > 0 else 0.0
        mean_ms = statistics.fmean(latencies) * 1e3
        print(
            f"{completed} requests via {args.clients} clients in {wall:.2f}s: "
            f"p50 {p50:.1f} ms, p99 {p99:.1f} ms, mean {mean_ms:.1f} ms, "
            f"{throughput:.1f} req/s"
        )
        if args.assert_coalesce:
            assert_coalesce(
                host, port, args.assert_coalesce, args.trials * 8, args.sensors
            )
        if not args.no_record:
            record("service_p50_ms", p50, "ms", file=BENCH_SERVICE)
            record("service_p99_ms", p99, "ms", file=BENCH_SERVICE)
            record(
                "service_throughput_rps", throughput, "req/s", file=BENCH_SERVICE
            )
            print(f"recorded 3 rows to {BENCH_SERVICE}")
    finally:
        if hosted is not None:
            hosted.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
