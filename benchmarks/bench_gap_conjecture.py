"""GAP — Section VI-C / Fig. 9: coverage is a random event in the band.

Paper shape: near-sure failure below the necessary CSA, reliable
success above the sufficient CSA, and a genuinely random outcome in the
band between them.
"""

from __future__ import annotations

from conftest import run_and_export


def test_gap_conjecture(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("GAP", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
