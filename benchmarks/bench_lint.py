"""fvlint wall-time over the full source tree.

The linter runs in CI on every push and is meant to be cheap enough to
run locally before each commit, so its full-tree wall time is part of
the developer contract: parse each file once, share the AST across all
five rules.  This bench times ``lint_paths`` over ``src/`` and asserts
the whole pass stays under two seconds — generous on CI hardware, tight
enough to catch an accidentally quadratic rule.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src"

#: Full-tree lint must stay under this many seconds.
BUDGET_SECONDS = 2.0


@pytest.fixture(scope="module")
def lint_result():
    from repro.lint import lint_paths

    return lint_paths([SRC])


def test_source_tree_is_clean(lint_result):
    assert lint_result.ok, "\n".join(f.render() for f in lint_result.findings)
    assert lint_result.files_checked > 60


def test_full_tree_lint_under_budget(benchmark):
    from repro.lint import lint_paths

    result = benchmark(lint_paths, [SRC])
    assert result.ok
    assert benchmark.stats["mean"] < BUDGET_SECONDS


def test_single_pass_wall_clock():
    """A plain (non-pytest-benchmark) timing, for environments without it."""
    from repro.lint import lint_paths

    start = time.perf_counter()
    result = lint_paths([SRC])
    elapsed = time.perf_counter() - start
    assert result.ok
    assert elapsed < BUDGET_SECONDS, f"full-tree lint took {elapsed:.2f}s"
