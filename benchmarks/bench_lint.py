"""fvlint wall-time over the full source tree.

The linter runs in CI on every push and is meant to be cheap enough to
run locally before each commit, so its full-tree wall time is part of
the developer contract: parse each file once, share the AST across all
rules.  This bench times ``lint_paths`` over ``src/`` and asserts the
whole per-file pass stays under two seconds, and the whole-program pass
(project model build: import graph, symbol tables, worker-seam call
graph, plus FV006–FV010) under five — generous on CI hardware, tight
enough to catch an accidentally quadratic rule or an exploding
class-hierarchy fallback.  Whole-program timings are appended to the
``BENCH_core.json`` ledger so regressions show up as history, not
folklore.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from _record import BENCH_CORE, record

SRC = Path(__file__).resolve().parent.parent / "src"

#: Full-tree per-file lint must stay under this many seconds.
BUDGET_SECONDS = 2.0

#: Full-tree whole-program analysis (FV006-FV010) budget.
PROJECT_BUDGET_SECONDS = 5.0

#: The whole-program rule set, i.e. everything needing the project model.
PROJECT_RULES = ["FV006", "FV007", "FV008", "FV009", "FV010"]


@pytest.fixture(scope="module")
def lint_result():
    from repro.lint import lint_paths

    return lint_paths([SRC])


def test_source_tree_is_clean(lint_result):
    assert lint_result.ok, "\n".join(f.render() for f in lint_result.findings)
    assert lint_result.files_checked > 60


def test_full_tree_lint_under_budget(benchmark):
    from repro.lint import lint_paths

    result = benchmark(lint_paths, [SRC])
    assert result.ok
    # ``benchmark.stats`` is unavailable under ``--benchmark-disable``;
    # the wall-clock budget is still enforced by test_single_pass_wall_clock.
    if benchmark.stats is not None:
        assert benchmark.stats["mean"] < BUDGET_SECONDS


def test_single_pass_wall_clock():
    """A plain (non-pytest-benchmark) timing, for environments without it."""
    from repro.lint import lint_paths

    start = time.perf_counter()
    result = lint_paths([SRC])
    elapsed = time.perf_counter() - start
    assert result.ok
    assert elapsed < BUDGET_SECONDS, f"full-tree lint took {elapsed:.2f}s"


def test_whole_program_pass_under_budget():
    """Full-tree FV006-FV010 wall time, recorded to the core ledger."""
    from repro.lint import lint_paths

    start = time.perf_counter()
    result = lint_paths([SRC], select=PROJECT_RULES)
    elapsed = time.perf_counter() - start
    assert result.ok, "\n".join(f.render() for f in result.findings)
    record("lint_whole_program_src_s", elapsed, "s", file=BENCH_CORE)
    assert elapsed < PROJECT_BUDGET_SECONDS, (
        f"whole-program lint took {elapsed:.2f}s "
        f"(budget {PROJECT_BUDGET_SECONDS:.0f}s)"
    )


def test_project_model_build_under_budget():
    """The model build alone — the fixed cost every --changed run pays."""
    import ast

    from repro.lint import build_project, iter_python_files
    from repro.lint.model import ModuleContext

    contexts = []
    for path in iter_python_files([SRC]):
        source = path.read_text()
        contexts.append(
            ModuleContext(path=str(path), source=source, tree=ast.parse(source))
        )
    start = time.perf_counter()
    project = build_project(contexts)
    reachable = project.seam_reachable()
    cycles = project.import_cycles()
    elapsed = time.perf_counter() - start
    assert reachable, "worker seams must be discoverable in src/"
    assert cycles == []
    record("lint_project_model_build_s", elapsed, "s", file=BENCH_CORE)
    assert elapsed < PROJECT_BUDGET_SECONDS
