"""PROB — extension: probabilistic sensing via rho-scaled areas.

Validates that a distance-decaying detection model behaves like a
binary fleet whose sensing areas are scaled by the model's expected
in-sector detection probability — the natural route to the paper's
"probabilistic sensing models" future work.
"""

from __future__ import annotations

from conftest import run_and_export


def test_probabilistic_sensing(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("PROB", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
