"""FIG7 — regenerate Figure 7: CSA vs effective angle (n = 1000).

Paper shape: both CSAs decay ~1/theta over [0.1*pi, 0.5*pi]; the
sufficient curve sits ~2x above the necessary one.
"""

from __future__ import annotations

from conftest import run_and_export


def test_figure7(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("FIG7", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
