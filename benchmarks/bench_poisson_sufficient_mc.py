"""THM4-MC — validate Theorem 4 by Monte Carlo (Poisson, sufficient)."""

from __future__ import annotations

from conftest import run_and_export


def test_poisson_sufficient_mc(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("THM4-MC", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
