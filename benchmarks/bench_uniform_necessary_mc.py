"""EQ2-MC — validate eq. (2) by Monte Carlo (uniform, necessary).

Heterogeneous fleets are deployed uniformly at random; the frequency of
a fixed point meeting the necessary condition is compared against the
paper's closed form, plus the inclusion-exclusion ablation of the
independence approximation.
"""

from __future__ import annotations

from conftest import run_and_export


def test_uniform_necessary_mc(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("EQ2-MC", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
