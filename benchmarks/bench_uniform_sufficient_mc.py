"""EQ13-MC — validate eq. (13) by Monte Carlo (uniform, sufficient)."""

from __future__ import annotations

from conftest import run_and_export


def test_uniform_sufficient_mc(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("EQ13-MC", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
