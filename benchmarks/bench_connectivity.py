"""CONN — extension: connectivity of coverage-grade fleets.

Critical communication radius follows the sqrt(log n/(pi n)) law, and
fleets provisioned at the sufficient CSA are connected at twice their
sensing radius — coverage-grade networks get connectivity for free.
"""

from __future__ import annotations

from conftest import run_and_export


def test_connectivity(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("CONN", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
