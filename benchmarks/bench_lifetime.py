"""LIFETIME — extension: network lifetime under progressive failures.

Provisioning (deploying q times the sufficient CSA) buys epochs of
guaranteed full-view operation; under-provisioned fleets die early and
the mean coverage curve degrades monotonically.
"""

from __future__ import annotations

from conftest import run_and_export


def test_lifetime(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("LIFETIME", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
