"""BARRIER — extension: barrier full-view coverage emergence.

Regenerates the barrier-vs-area transition study (Section VIII's
future-work topic): weak/strong full-view barriers appear at a small
fraction of the sensing area that full area coverage needs.
"""

from __future__ import annotations

from conftest import run_and_export


def test_barrier_emergence(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("BARRIER", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
