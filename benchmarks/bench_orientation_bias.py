"""ORIENT — extension: orientation-bias ablation.

Von-Mises-concentrated camera orientations collapse full-view coverage
while leaving plain detection intact — quantifying how load-bearing the
model's uniform-orientation assumption is.
"""

from __future__ import annotations

from conftest import run_and_export


def test_orientation_bias(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("ORIENT", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
