"""CRIT — extension: empirical coverage transition inside the CSA band.

Bisects for the weighted sensing area with 50% grid-coverage
probability, anchoring the paper's open problem (Section VI-C) with a
measured transition point between the two CSAs.
"""

from __future__ import annotations

from conftest import run_and_export


def test_critical_search(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("CRIT", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
