"""PHASE — the Definition 2 phase transition at s_c = q * CSA.

Paper shape: grid failure probability stays high for q < 1 and
collapses for q > 1 (Propositions 1-4).
"""

from __future__ import annotations

from conftest import run_and_export


def test_phase_transition(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("PHASE", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
