"""OCCL — extension: terrain occlusion vs the stadium-model prediction.

Opaque disks thin camera sight lines; coverage degrades with obstacle
density and tracks a Boolean-model visibility prediction, whose
documented optimism (angularly correlated blocking) is also reported.
"""

from __future__ import annotations

from conftest import run_and_export


def test_occlusion(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("OCCL", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
