"""PLAN — extension: optimised aiming vs random orientations.

At identical positions and hardware, coordinate-ascent aiming covers a
multiple of the targets that the model's uniform-random orientations
cover — the constructive value the random-deployment setting forfeits.
"""

from __future__ import annotations

from conftest import run_and_export


def test_planning_gain(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("PLAN", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
