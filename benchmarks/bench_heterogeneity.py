"""HET — ablation: heterogeneity enters only through weighted s_c.

Paper shape: profiles with identical weighted sensing area but
different group structures are treated identically by the CSA
criterion, analytically and in simulation.
"""

from __future__ import annotations

from conftest import run_and_export


def test_heterogeneity(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("HET", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
