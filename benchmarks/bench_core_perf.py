"""PERF — throughput of the core primitives (engineering benchmark).

Not a paper artifact: tracks the speed of the hot paths so performance
regressions in the geometry/fleet layers are visible.  These run with
real repetition (pytest-benchmark defaults) unlike the single-shot
experiment benches.
"""

from __future__ import annotations

import math
import time

import numpy as np
import pytest
from _record import BENCH_CORE, record

from repro.core.conditions import necessary_condition_holds, sufficient_condition_holds
from repro.core.csa import csa_necessary, csa_sufficient
from repro.core.full_view import is_full_view_covered
from repro.core.uniform_theory import necessary_failure_probability
from repro.deployment.uniform import UniformDeployment
from repro.geometry.intervals import AngularIntervalSet, max_circular_gap
from repro.sensors.model import CameraSpec, HeterogeneousProfile

THETA = math.pi / 3


def _record_mean(bench: str, fn, *args, reps: int = 50, **kwargs) -> float:
    """Ledger a self-timed mean for ``fn`` into ``BENCH_core.json``.

    ``benchmark.stats`` is unavailable under ``--benchmark-disable``,
    so the recorded number comes from a short timed loop of its own.
    Returns the mean in microseconds so callers can compare paths.
    """
    start = time.perf_counter()
    for _ in range(reps):
        fn(*args, **kwargs)
    mean_us = (time.perf_counter() - start) / reps * 1e6
    record(bench, mean_us, "us/call", BENCH_CORE)
    return mean_us


@pytest.fixture(scope="module")
def fleet():
    profile = HeterogeneousProfile.homogeneous(
        CameraSpec(radius=0.1, angle_of_view=math.pi / 2)
    )
    fleet = UniformDeployment().deploy(profile, 2000, np.random.default_rng(0))
    fleet.build_index()
    return fleet


@pytest.fixture(scope="module")
def directions():
    return np.random.default_rng(1).uniform(0, 2 * math.pi, size=64)


def test_perf_covering_query(benchmark, fleet):
    """Spatial-indexed covering query on a 2000-sensor fleet."""
    result = benchmark(fleet.covering, (0.5, 0.5))
    assert result is not None
    _record_mean("core_covering_query_indexed", fleet.covering, (0.5, 0.5))


def test_perf_covering_query_no_index(benchmark, fleet):
    """Unindexed (vectorised brute force) covering query."""
    result = benchmark(fleet.covering, (0.5, 0.5), False)
    assert result is not None


def test_perf_covering_directions(benchmark, fleet):
    benchmark(fleet.covering_directions, (0.5, 0.5))


def test_perf_exact_full_view(benchmark, directions):
    benchmark(is_full_view_covered, directions, THETA)
    _record_mean("core_exact_full_view", is_full_view_covered, directions, THETA)


def test_perf_max_circular_gap(benchmark, directions):
    benchmark(max_circular_gap, directions)


def test_perf_interval_set_union(benchmark, directions):
    benchmark(AngularIntervalSet.from_directions, directions, THETA)


def test_perf_necessary_condition(benchmark, directions):
    benchmark(necessary_condition_holds, directions, THETA)


def test_perf_sufficient_condition(benchmark, directions):
    benchmark(sufficient_condition_holds, directions, THETA)


def test_perf_csa_formulas(benchmark):
    def both():
        csa_necessary(1000, THETA)
        csa_sufficient(1000, THETA)

    benchmark(both)


def test_perf_failure_probability(benchmark):
    profile = HeterogeneousProfile.homogeneous(
        CameraSpec(radius=0.1, angle_of_view=math.pi / 2)
    )
    benchmark(necessary_failure_probability, profile, 1000, THETA)


def test_perf_full_view_mask_batch(benchmark, fleet):
    """Vectorised batch checker over 256 points x 2000 sensors."""
    from repro.core.batch import full_view_mask

    points = np.random.default_rng(2).uniform(size=(256, 2))
    result = benchmark(full_view_mask, fleet, points, THETA)
    assert result.shape == (256,)
    _record_mean("core_full_view_mask_256", full_view_mask, fleet, points, THETA, reps=10)


@pytest.fixture(scope="module")
def paper_fleet():
    """The acceptance regime: n = 2000 sensors at r = sqrt(log n / n)."""
    n = 2000
    radius = math.sqrt(math.log(n) / n)
    profile = HeterogeneousProfile.homogeneous(
        CameraSpec(radius=radius, angle_of_view=math.pi / 2)
    )
    fleet = UniformDeployment().deploy(profile, n, np.random.default_rng(0))
    fleet.build_index()
    return fleet


def test_perf_full_view_mask_sparse(benchmark, paper_fleet):
    """Sparse candidate-pruned checker vs dense, same fleet and points.

    The sparse path must be at least 4x faster than the dense path in
    the paper's regime (r ~ sqrt(log n / n), so each point sees only
    O(log n) candidate sensors out of 2000).
    """
    from repro.core.batch import full_view_mask

    points = np.random.default_rng(2).uniform(size=(256, 2))
    result = benchmark(full_view_mask, paper_fleet, points, THETA, kernel="sparse")
    assert result.shape == (256,)
    sparse_us = _record_mean(
        "core_full_view_mask_sparse_256",
        full_view_mask, paper_fleet, points, THETA, reps=10, kernel="sparse",
    )
    dense_us = _record_mean(
        "core_full_view_mask_dense_256",
        full_view_mask, paper_fleet, points, THETA, reps=10, kernel="dense",
    )
    record("core_sparse_speedup_256", dense_us / sparse_us, "x", BENCH_CORE)
    assert dense_us / sparse_us >= 4.0


def test_perf_sparse_candidate_density_sweep(paper_fleet):
    """How sparse throughput scales with candidate density.

    Sweeps the sensing radius from the paper regime up towards
    region-scale disks, recording pairs-per-point and us/call per
    density so the dispatch cutoff stays grounded in measurements.
    """
    from repro.core.batch import full_view_mask, sparse_covering_pairs

    n = 2000
    points = np.random.default_rng(2).uniform(size=(256, 2))
    for radius in (math.sqrt(math.log(n) / n), 0.1, 0.2, 0.4):
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=radius, angle_of_view=math.pi / 2)
        )
        fleet = UniformDeployment().deploy(profile, n, np.random.default_rng(0))
        fleet.build_index()
        sp = sparse_covering_pairs(fleet, points)
        pairs_per_point = sp.sensors.shape[0] / points.shape[0]
        tag = f"r{radius:.3f}".replace(".", "p")
        record(f"core_sparse_pairs_per_point_{tag}", pairs_per_point, "pairs", BENCH_CORE)
        _record_mean(
            f"core_full_view_mask_sparse_256_{tag}",
            full_view_mask, fleet, points, THETA, reps=5, kernel="sparse",
        )


def test_perf_breach_cost(benchmark, directions):
    from repro.core.redundancy import breach_cost

    benchmark(breach_cost, directions, THETA)


def test_perf_minimum_guard_set(benchmark, directions):
    from repro.core.redundancy import minimum_guard_set

    benchmark(minimum_guard_set, directions, THETA)


def test_perf_deployment(benchmark):
    profile = HeterogeneousProfile.homogeneous(
        CameraSpec(radius=0.1, angle_of_view=math.pi / 2)
    )

    def deploy():
        return UniformDeployment().deploy(profile, 1000, np.random.default_rng(0))

    fleet = benchmark(deploy)
    assert len(fleet) == 1000
