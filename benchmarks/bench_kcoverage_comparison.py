"""KCOV — Section VII-B: full view demands more than k-coverage.

Paper shape: s_N,c(n) >= Kumar's s_K(n) at k = ceil(pi/theta), and on
simulated deployments full-view coverage implies k-coverage while the
converse fails on a positive fraction of deployments.
"""

from __future__ import annotations

from conftest import run_and_export


def test_kcoverage_comparison(benchmark, results_dir):
    result = benchmark.pedantic(
        run_and_export, args=("KCOV", results_dir), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, result.failed_checks()
