#!/usr/bin/env python3
"""Validate observability artifacts without importing the repo.

Stdlib-only on purpose: CI runs this against the files a traced
``fullview run`` just produced, so a packaging or import regression in
``repro`` cannot mask a malformed artifact.  Checks:

- ``--trace FILE``   — fullview-trace-v1 JSONL: first line is a manifest
  with the right format tag, every line kind is known, event ``seq``
  starts at 0 and increments by 1, event ``t_ns`` is non-decreasing,
  trial/chunk/span_summary lines carry their required numeric fields.
- ``--metrics FILE`` — fullview-metrics-v1 JSON: counters are
  non-negative ints, histograms have ``len(bounds) + 1`` bucket counts
  and consistent totals.
- ``--bench FILE``   — a BENCH_*.json ledger: a list of rows each
  holding bench/value/unit/git_sha/timestamp of the right types.
- ``--status FILE``  — fullview-status-v1 live status snapshot:
  counts are non-negative ints with ``done <= total``, rates and ETA
  are finite, ``state`` is running or finished.
- ``--ledger FILE``  — fullview-ledger-v1 JSONL run ledger: every row
  carries the documented fields with sane types and values.

RunProgress events inside a trace additionally get sequence checks:
``done`` must never decrease, never exceed ``total``, and the reported
throughput/ETA must be finite (ETA may be null before a rate exists).

Exits 0 when every named artifact validates, 1 otherwise (with one
line per problem on stderr).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Any, List

TRACE_FORMAT = "fullview-trace-v1"
METRICS_FORMAT = "fullview-metrics-v1"
STATUS_FORMAT = "fullview-status-v1"
LEDGER_FORMAT = "fullview-ledger-v1"
TRACE_KINDS = {"manifest", "event", "span_summary", "trial", "chunk", "metrics"}


def _fail(problems: List[str], message: str) -> None:
    problems.append(message)


def _is_count(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def _is_finite_number(value: Any) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def check_run_progress(
    prefix: str, row: dict, last_done: int, problems: List[str]
) -> int:
    """Validate one RunProgress event; returns the new ``done`` watermark."""
    done = row.get("done")
    total = row.get("total")
    for key in ("done", "total", "failed", "retries", "respawns", "quarantined",
                "fallbacks", "epochs"):
        if not _is_count(row.get(key)):
            _fail(problems, f"{prefix}: RunProgress {key!r} must be a non-negative int")
    if _is_count(done):
        if done < last_done:
            _fail(
                problems,
                f"{prefix}: RunProgress done went backwards ({done} < {last_done})",
            )
        else:
            last_done = done
        if _is_count(total) and done > total:
            _fail(problems, f"{prefix}: RunProgress done {done} > total {total}")
    rate = row.get("trials_per_sec")
    if not _is_finite_number(rate) or rate < 0:
        _fail(problems, f"{prefix}: RunProgress trials_per_sec must be finite >= 0")
    eta = row.get("eta_seconds")
    if eta is not None and (not _is_finite_number(eta) or eta < 0):
        _fail(problems, f"{prefix}: RunProgress eta_seconds must be null or finite >= 0")
    return last_done


def check_trace(path: Path, problems: List[str]) -> None:
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        _fail(problems, f"{path}: unreadable: {exc}")
        return
    rows = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except ValueError as exc:
            _fail(problems, f"{path}:{number}: invalid JSON: {exc}")
            return
        if not isinstance(row, dict) or row.get("kind") not in TRACE_KINDS:
            _fail(problems, f"{path}:{number}: unknown line kind")
            return
        rows.append((number, row))
    if not rows:
        _fail(problems, f"{path}: empty trace")
        return
    first_number, first = rows[0]
    if first.get("kind") != "manifest" or first.get("format") != TRACE_FORMAT:
        _fail(
            problems,
            f"{path}:{first_number}: first line must be a {TRACE_FORMAT} manifest",
        )
    expected_seq = 0
    last_t_ns = None
    last_done = 0
    for number, row in rows:
        kind = row["kind"]
        if kind == "event":
            if row.get("seq") != expected_seq:
                _fail(
                    problems,
                    f"{path}:{number}: event seq {row.get('seq')} != {expected_seq}",
                )
            expected_seq = int(row.get("seq", expected_seq)) + 1
            t_ns = row.get("t_ns")
            if not isinstance(t_ns, int):
                _fail(problems, f"{path}:{number}: event missing integer t_ns")
            elif last_t_ns is not None and t_ns < last_t_ns:
                _fail(problems, f"{path}:{number}: event t_ns went backwards")
            else:
                last_t_ns = t_ns
            if not isinstance(row.get("event"), str):
                _fail(problems, f"{path}:{number}: event missing type name")
            elif row["event"] == "RunProgress":
                last_done = check_run_progress(
                    f"{path}:{number}", row, last_done, problems
                )
        elif kind == "trial":
            if not isinstance(row.get("trial"), int) or not isinstance(
                row.get("dur_ns"), int
            ):
                _fail(problems, f"{path}:{number}: trial line needs trial+dur_ns ints")
        elif kind == "chunk":
            for key in ("first_trial", "trials", "wall_ns"):
                if not isinstance(row.get(key), int):
                    _fail(problems, f"{path}:{number}: chunk line needs integer {key!r}")
        elif kind == "span_summary":
            for key in ("name", "count", "total_ns", "min_ns", "max_ns"):
                if key not in row:
                    _fail(problems, f"{path}:{number}: span_summary missing {key!r}")


def check_metrics(path: Path, problems: List[str]) -> None:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        _fail(problems, f"{path}: unreadable or invalid JSON: {exc}")
        return
    if not isinstance(payload, dict) or payload.get("format") != METRICS_FORMAT:
        _fail(problems, f"{path}: not a {METRICS_FORMAT} snapshot")
        return
    counters = payload.get("counters", {})
    if not isinstance(counters, dict):
        _fail(problems, f"{path}: counters must be an object")
    else:
        for name, value in counters.items():
            if not isinstance(value, int) or value < 0:
                _fail(problems, f"{path}: counter {name!r} must be a non-negative int")
    if not isinstance(payload.get("gauges", {}), dict):
        _fail(problems, f"{path}: gauges must be an object")
    histograms = payload.get("histograms", {})
    if not isinstance(histograms, dict):
        _fail(problems, f"{path}: histograms must be an object")
        return
    for name, hist in histograms.items():
        bounds = hist.get("buckets", [])
        counts = hist.get("counts", [])
        if len(counts) != len(bounds) + 1:
            _fail(
                problems,
                f"{path}: histogram {name!r} needs len(buckets)+1 counts "
                f"(got {len(counts)} for {len(bounds)} bucket bounds)",
            )
        if sum(counts) != hist.get("count"):
            _fail(problems, f"{path}: histogram {name!r} counts sum != count")


def check_bench(path: Path, problems: List[str]) -> None:
    try:
        rows = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        _fail(problems, f"{path}: unreadable or invalid JSON: {exc}")
        return
    if not isinstance(rows, list) or not rows:
        _fail(problems, f"{path}: must be a non-empty JSON list")
        return
    expected: dict[str, type[Any]] = {
        "bench": str,
        "value": (int, float),  # type: ignore[dict-item]
        "unit": str,
        "git_sha": str,
        "timestamp": str,
    }
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            _fail(problems, f"{path}[{i}]: row must be an object")
            continue
        for key, kind in expected.items():
            if not isinstance(row.get(key), kind):
                _fail(problems, f"{path}[{i}]: field {key!r} missing or wrong type")


def check_status(path: Path, problems: List[str]) -> None:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        _fail(problems, f"{path}: unreadable or invalid JSON: {exc}")
        return
    if not isinstance(payload, dict) or payload.get("format") != STATUS_FORMAT:
        _fail(problems, f"{path}: not a {STATUS_FORMAT} snapshot")
        return
    if payload.get("state") not in ("running", "finished"):
        _fail(problems, f"{path}: state must be 'running' or 'finished'")
    if not isinstance(payload.get("run_id"), str) or not payload.get("run_id"):
        _fail(problems, f"{path}: run_id must be a non-empty string")
    for key in ("done", "total", "failed", "retries", "respawns", "quarantined",
                "fallbacks", "epochs"):
        if not _is_count(payload.get(key)):
            _fail(problems, f"{path}: {key!r} must be a non-negative int")
    done, total = payload.get("done"), payload.get("total")
    if _is_count(done) and _is_count(total) and done > total:
        _fail(problems, f"{path}: done {done} > total {total}")
    heartbeats = payload.get("heartbeats")
    if not _is_count(heartbeats) or heartbeats < 1:
        _fail(problems, f"{path}: heartbeats must be an int >= 1")
    rate = payload.get("trials_per_sec")
    if not _is_finite_number(rate) or rate < 0:
        _fail(problems, f"{path}: trials_per_sec must be finite >= 0")
    eta = payload.get("eta_seconds")
    if eta is not None and (not _is_finite_number(eta) or eta < 0):
        _fail(problems, f"{path}: eta_seconds must be null or finite >= 0")
    elapsed = payload.get("elapsed_seconds")
    if not _is_finite_number(elapsed) or elapsed < 0:
        _fail(problems, f"{path}: elapsed_seconds must be finite >= 0")
    if not _is_finite_number(payload.get("updated_unix")):
        _fail(problems, f"{path}: updated_unix must be a finite number")


# Mirrors repro.obs.ledger._ROW_FIELDS without importing the package:
# name -> (allowed types, nullable).
LEDGER_FIELDS = {
    "format": (str, False),
    "run_id": (str, False),
    "experiment": (str, False),
    "config_digest": (str, True),
    "git_sha": (str, True),
    "trace_path": (str, True),
    "metrics_path": (str, True),
    "seed": (int, True),
    "executor": (str, False),
    "workers": (int, False),
    "wall_seconds": ((int, float), False),
    "trials_per_sec": ((int, float), False),
    "started_unix": ((int, float), False),
    "trials_completed": (int, False),
    "trials_failed": (int, False),
    "retries": (int, False),
    "respawns": (int, False),
    "quarantined": (int, False),
    "checkpoints_recovered": (int, False),
    "outcome": (str, False),
}


def check_ledger(path: Path, problems: List[str]) -> None:
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        _fail(problems, f"{path}: unreadable: {exc}")
        return
    rows = 0
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except ValueError as exc:
            _fail(problems, f"{path}:{number}: invalid JSON: {exc}")
            continue
        if not isinstance(row, dict):
            _fail(problems, f"{path}:{number}: row must be an object")
            continue
        rows += 1
        if row.get("format") != LEDGER_FORMAT:
            _fail(problems, f"{path}:{number}: not a {LEDGER_FORMAT} row")
            continue
        for key, (types, nullable) in LEDGER_FIELDS.items():
            value = row.get(key)
            if value is None:
                if not nullable:
                    _fail(problems, f"{path}:{number}: {key!r} must not be null")
                continue
            if isinstance(value, bool) or not isinstance(value, types):
                _fail(problems, f"{path}:{number}: {key!r} has the wrong type")
                continue
            if isinstance(value, (int, float)) and not math.isfinite(value):
                _fail(problems, f"{path}:{number}: {key!r} must be finite")
        for key in ("trials_completed", "trials_failed", "retries", "respawns",
                    "quarantined", "checkpoints_recovered"):
            value = row.get(key)
            if isinstance(value, int) and not isinstance(value, bool) and value < 0:
                _fail(problems, f"{path}:{number}: {key!r} must be >= 0")
        workers = row.get("workers")
        if isinstance(workers, int) and not isinstance(workers, bool) and workers < 1:
            _fail(problems, f"{path}:{number}: workers must be >= 1")
        if row.get("outcome") not in ("ok", "error", "cached"):
            _fail(
                problems,
                f"{path}:{number}: outcome must be 'ok', 'error' or 'cached'",
            )
    if not rows:
        _fail(problems, f"{path}: empty ledger")


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", action="append", default=[], metavar="FILE")
    parser.add_argument("--metrics", action="append", default=[], metavar="FILE")
    parser.add_argument("--bench", action="append", default=[], metavar="FILE")
    parser.add_argument("--status", action="append", default=[], metavar="FILE")
    parser.add_argument("--ledger", action="append", default=[], metavar="FILE")
    args = parser.parse_args(argv)
    if not (args.trace or args.metrics or args.bench or args.status or args.ledger):
        parser.error(
            "nothing to check: pass --trace/--metrics/--bench/--status/--ledger"
        )
    problems: List[str] = []
    for name in args.trace:
        check_trace(Path(name), problems)
    for name in args.metrics:
        check_metrics(Path(name), problems)
    for name in args.bench:
        check_bench(Path(name), problems)
    for name in args.status:
        check_status(Path(name), problems)
    for name in args.ledger:
        check_ledger(Path(name), problems)
    for problem in problems:
        print(problem, file=sys.stderr)
    checked = (
        len(args.trace)
        + len(args.metrics)
        + len(args.bench)
        + len(args.status)
        + len(args.ledger)
    )
    if not problems:
        print(f"ok: {checked} artifact(s) validated")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
