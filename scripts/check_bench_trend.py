#!/usr/bin/env python3
"""Soft trend guard over the BENCH_*.json ledgers.

Stdlib-only, like ``check_obs_schema.py``: CI runs this right after the
benchmarks append their rows, so it must not depend on importing
``repro``.  For each watched benchmark it compares the latest recorded
value against the previous one and emits a GitHub ``::warning::``
annotation when the drop exceeds the threshold (20% by default).
``--watch`` rows are larger-is-better (speedups); ``--watch-overhead``
rows are smaller-is-better (overhead percentages), warned on *upward*
drift past the same threshold.

The guard is deliberately *soft* — it always exits 0 on a regression.
Speedup numbers depend on the cores and load of the runner that
happened to execute the job, so a hard gate would fail PRs on
infrastructure noise; the annotation surfaces the trend for a human to
judge instead.  Only unreadable/malformed invocations exit non-zero
(exit 2), so a broken ledger cannot silently disable the guard.

Usage::

    python scripts/check_bench_trend.py BENCH_engine.json \
        --watch engine_parallel_speedup_4w --watch engine_thread_speedup_4w
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

#: Benchmarks where *larger is better* and a sudden drop merits a look.
DEFAULT_WATCHED = ("engine_parallel_speedup_4w",)

#: Benchmarks where *smaller is better* and a sudden rise merits a look.
DEFAULT_WATCHED_OVERHEAD = (
    "engine_retry_overhead_pct",
    "engine_progress_overhead_pct",
)

#: Relative drop (vs the previous observation) that triggers a warning.
DEFAULT_THRESHOLD = 0.20


def load_rows(path: Path) -> Optional[List[dict]]:
    """The ledger's rows, or ``None`` (with a stderr line) if unusable."""
    try:
        rows = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        print(f"{path}: unreadable: {exc}", file=sys.stderr)
        return None
    except ValueError as exc:
        print(f"{path}: not valid JSON: {exc}", file=sys.stderr)
        return None
    if not isinstance(rows, list):
        print(f"{path}: ledger is not a JSON list", file=sys.stderr)
        return None
    return [row for row in rows if isinstance(row, dict)]


def check_bench(bench: str, rows: List[dict], threshold: float) -> Optional[str]:
    """A warning line if ``bench``'s latest value dropped too far, else None."""
    history = [
        row for row in rows
        if row.get("bench") == bench and isinstance(row.get("value"), (int, float))
    ]
    if len(history) < 2:
        return None
    previous, latest = history[-2], history[-1]
    prev_value, last_value = float(previous["value"]), float(latest["value"])
    if prev_value <= 0.0:
        return None
    drop = (prev_value - last_value) / prev_value
    if drop <= threshold:
        return None
    unit = latest.get("unit", "")
    return (
        f"{bench} dropped {drop * 100.0:.1f}% below the previous "
        f"observation: {prev_value:.3f} -> {last_value:.3f} {unit} "
        f"(threshold {threshold * 100.0:.0f}%; previous sha "
        f"{previous.get('git_sha', 'unknown')[:12]})"
    )


def check_bench_overhead(
    bench: str, rows: List[dict], threshold: float
) -> Optional[str]:
    """A warning line if ``bench``'s latest value *rose* too far, else None."""
    history = [
        row for row in rows
        if row.get("bench") == bench and isinstance(row.get("value"), (int, float))
    ]
    if len(history) < 2:
        return None
    previous, latest = history[-2], history[-1]
    prev_value, last_value = float(previous["value"]), float(latest["value"])
    if prev_value <= 0.0:
        # A clamped-to-zero baseline gives no meaningful relative drift.
        return None
    rise = (last_value - prev_value) / prev_value
    if rise <= threshold:
        return None
    unit = latest.get("unit", "")
    return (
        f"{bench} rose {rise * 100.0:.1f}% above the previous "
        f"observation: {prev_value:.3f} -> {last_value:.3f} {unit} "
        f"(threshold {threshold * 100.0:.0f}%; previous sha "
        f"{previous.get('git_sha', 'unknown')[:12]})"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("ledger", type=Path, help="BENCH_*.json ledger to scan")
    parser.add_argument(
        "--watch",
        action="append",
        default=None,
        metavar="BENCH",
        help="benchmark name to watch (repeatable; larger-is-better)",
    )
    parser.add_argument(
        "--watch-overhead",
        action="append",
        default=None,
        metavar="BENCH",
        help="overhead benchmark to watch (repeatable; smaller-is-better, "
        "warned on upward drift)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative drop that triggers a warning (default 0.20)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.threshold < 1.0:
        print(f"threshold must be in (0, 1), got {args.threshold}", file=sys.stderr)
        return 2
    rows = load_rows(args.ledger)
    if rows is None:
        return 2
    watched = args.watch if args.watch else list(DEFAULT_WATCHED)
    watched_overhead = (
        args.watch_overhead if args.watch_overhead else list(DEFAULT_WATCHED_OVERHEAD)
    )
    regressions = 0
    checks = [(bench, check_bench) for bench in watched]
    checks += [(bench, check_bench_overhead) for bench in watched_overhead]
    for bench, check in checks:
        message = check(bench, rows, args.threshold)
        if message is None:
            print(f"{bench}: ok")
        else:
            regressions += 1
            # GitHub Actions renders this as an inline warning annotation;
            # plain terminals just show the line.
            print(f"::warning title=bench trend::{message}")
    if regressions:
        print(
            f"{regressions} watched benchmark(s) regressed past the "
            "threshold; soft guard — not failing the job"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
