"""Fault tolerance: how many camera failures can the network absorb?

Full-view coverage can be brittle: the paper's Fig. 9 shows that one
badly-placed gap breaks it.  This example audits a deployed network
with the redundancy toolkit:

1. deploy a provisioned estate-surveillance fleet,
2. for a grid of audit points, compute the *breach cost* — the minimum
   number of cameras an adversary must disable to open an unsafe facing
   direction — and locate the weakest point,
3. compute a *minimum guard set* at the centre: the fewest cameras that
   alone keep it full-view covered (everything else is redundancy), and
4. verify the random-failure prediction: knocking out sensors at the
   weakest point's breach cost actually breaks it.

Run:  python examples/fault_tolerance.py
"""

import math

import numpy as np

from repro.core.full_view import is_full_view_covered, minimum_sensors_for_full_view
from repro.core.redundancy import breach_cost, minimum_guard_set, redundant_sensors
from repro.simulation.results import ResultTable
from repro.simulation.workloads import estate_surveillance


def main() -> None:
    workload = estate_surveillance().provisioned(q=1.5)
    theta = workload.theta
    fleet = workload.scheme.deploy(
        workload.profile, workload.n, np.random.default_rng(21)
    )
    fleet.build_index()
    print(f"{workload.description}: n = {workload.n}, theta = "
          f"{theta / math.pi:.2f}*pi, provisioned at 1.5x sufficient CSA\n")

    # 2. Audit grid: breach cost per point.
    audit = [(x, y) for x in np.linspace(0.1, 0.9, 5) for y in np.linspace(0.1, 0.9, 5)]
    costs = []
    for point in audit:
        dirs = fleet.covering_directions(point)
        costs.append((breach_cost(dirs, theta), point, dirs.size))
    costs.sort()
    weakest_cost, weakest_point, weakest_k = costs[0]
    strongest_cost, strongest_point, _ = costs[-1]
    table = ResultTable(
        title="Audit summary (25 points)",
        columns=["statistic", "breach_cost", "location"],
    )
    table.add_row("weakest point", weakest_cost, f"({weakest_point[0]:.2f}, {weakest_point[1]:.2f})")
    table.add_row("median point", costs[len(costs) // 2][0], "-")
    table.add_row("strongest point", strongest_cost, f"({strongest_point[0]:.2f}, {strongest_point[1]:.2f})")
    print(table.pretty())
    print(
        f"\nweakest point tolerates {weakest_cost - 1} arbitrary camera "
        f"losses (it is watched by {weakest_k} cameras, but only "
        f"{weakest_cost} of them guard its most fragile facing direction)."
    )

    # 3. Minimum guard set at the centre.
    centre = (0.5, 0.5)
    dirs = fleet.covering_directions(centre)
    guard = minimum_guard_set(dirs, theta)
    redundant = redundant_sensors(dirs, theta)
    lower_bound = minimum_sensors_for_full_view(theta)
    print(
        f"\ncentre point: {dirs.size} covering cameras, minimum guard set "
        f"= {len(guard)} (theoretical minimum ceil(pi/theta) = {lower_bound}); "
        f"{len(redundant)} cameras are individually redundant."
    )

    # 4. Adversarial verification at the weakest point.
    dirs = fleet.covering_directions(weakest_point)
    cost = breach_cost(dirs, theta)
    # Find the fragile facing direction: the 2*theta window with the
    # fewest viewed directions, then remove exactly those sensors.
    best_window = None
    for d in np.linspace(0, 2 * math.pi, 720, endpoint=False):
        offsets = np.abs(np.mod(dirs - d + math.pi, 2 * math.pi) - math.pi)
        inside = offsets <= theta
        if int(inside.sum()) == cost:
            best_window = inside
            break
    assert best_window is not None
    survivors = dirs[~best_window]
    print(
        f"\nadversarial check at the weakest point: disabling the "
        f"{cost} cameras guarding its fragile direction leaves coverage "
        f"= {is_full_view_covered(survivors, theta)} (expected False)."
    )


if __name__ == "__main__":
    main()
