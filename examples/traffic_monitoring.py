"""Traffic monitoring: how good must the cameras be?

Licence plates are legible only near the frontal viewpoint, so traffic
networks need a strict effective angle (theta = pi/6 here).  Given a
fixed number of mounting points, the design question is equipment
quality: what sensing radius must each camera class have?

This example inverts the CSA formulas (``required_radius_homogeneous``)
across candidate fleet sizes and angles of view, reproducing in design
terms the 1/theta and 1/n trends of Figures 7 and 8, and then verifies
one design point end-to-end.

Run:  python examples/traffic_monitoring.py
"""

import math

from repro.api import deploy, evaluate_grid
from repro.core.csa import csa_sufficient, required_radius_homogeneous
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.results import ResultTable


def main() -> None:
    theta = math.pi / 6  # strict: plates need near-frontal capture

    # Design table: required radius per (n, angle-of-view) at the
    # sufficient CSA (guaranteed asymptotic coverage).
    table = ResultTable(
        title="Required sensing radius for plate-grade full-view coverage "
        "(theta = pi/6, q = 1)",
        columns=["n", "phi_deg", "required_radius", "sensing_area"],
    )
    for n in (400, 800, 1600):
        for phi_deg in (30, 60, 110):
            phi = math.radians(phi_deg)
            r = required_radius_homogeneous(n, theta, phi, q=1.0)
            table.add_row(n, phi_deg, r, 0.5 * phi * r * r)
    print(table.pretty())
    print(
        "\nNote the Section VI-A effect: at fixed n the required sensing "
        "AREA is identical across angles of view — only r adjusts to "
        "compensate phi."
    )

    # Strictness costs: theta sweep at n = 800 (the Figure 7 trend).
    strict = ResultTable(
        title="Quality requirement vs strictness (n = 800, phi = 60 deg)",
        columns=["theta_over_pi", "required_radius", "sufficient_csa"],
    )
    for frac in (1 / 12, 1 / 8, 1 / 6, 1 / 4, 1 / 2):
        th = frac * math.pi
        strict.add_row(
            frac,
            required_radius_homogeneous(800, th, math.radians(60), q=1.0),
            csa_sufficient(800, th),
        )
    print()
    print(strict.pretty())

    # Verify one design point end-to-end.
    n, phi = 800, math.radians(60)
    r = required_radius_homogeneous(n, theta, phi, q=1.2)
    profile = HeterogeneousProfile.homogeneous(CameraSpec(radius=r, angle_of_view=phi))
    fleet = deploy(profile=profile, n=n, seed=3)
    frac = evaluate_grid(fleet=fleet, theta=theta, resolution=10).fraction
    print(
        f"\nend-to-end check: n = {n}, phi = 60 deg, r = {r:.3f} "
        f"(1.2x sufficient CSA) full-view covers {frac:.1%} of a 10x10 "
        "verification grid."
    )


if __name__ == "__main__":
    main()
