"""Border barrier: full-view barriers are much cheaper than area coverage.

An intruder crossing a border region must be captured near-frontally at
least once — that is *barrier* full-view coverage, the topic the paper
names as future work (Section VIII).  This example

1. deploys the built-in ``border_barrier`` workload (artillery-scattered
   sensors over a hostile strip, Poisson process),
2. checks, at increasing provisioning levels, whether a weak full-view
   barrier exists (percolation test: no uncovered path crosses the
   region) and whether a strong barrier (fully covered strip) exists,
3. renders the coverage grid and a breach path when the barrier fails.

The headline: barriers appear at a small fraction of the sensing area
that full area coverage demands.

Run:  python examples/border_barrier.py
"""

import math

import numpy as np

from repro.barrier.grid_barrier import barrier_exists, compute_coverage_grid
from repro.barrier.strip import find_widest_covered_strip
from repro.simulation.results import ResultTable
from repro.simulation.workloads import border_barrier
from repro.viz.ascii_plot import ascii_coverage_map


def main() -> None:
    base = border_barrier()
    theta = base.theta
    resolution = 20
    print(f"workload: {base.description}")
    print(f"n = {base.n} (Poisson mean), theta = {theta / math.pi:.3f}*pi\n")

    table = ResultTable(
        title="Barrier vs area coverage across provisioning levels",
        columns=[
            "q_of_sufficient_csa",
            "covered_fraction",
            "weak_barrier",
            "strong_barrier_height",
        ],
    )
    rendered_breach = False
    for q in (0.05, 0.15, 0.4, 1.0):
        workload = base.provisioned(q=q)
        fleet = workload.scheme.deploy(
            workload.profile, workload.n, np.random.default_rng(11)
        )
        fleet.build_index()
        analysis = barrier_exists(fleet, theta, resolution)
        strip = find_widest_covered_strip(fleet, theta, resolution)
        table.add_row(
            q,
            analysis.covered_fraction,
            analysis.has_barrier,
            (strip[1] - strip[0]) if strip else 0.0,
        )
        if not analysis.has_barrier and not rendered_breach:
            rendered_breach = True
            grid = compute_coverage_grid(fleet, theta, resolution)
            print(
                ascii_coverage_map(
                    grid.covered,
                    title=f"q = {q}: breach possible — covered cells "
                    f"({analysis.covered_fraction:.0%}) do not block crossings",
                )
            )
            entry = grid.cell_center(analysis.breach[0])
            print(f"example intrusion entry point: x = {entry[0]:.2f}\n")

    print(table.pretty())
    print(
        "\nReading: the weak barrier flips on while most of the region is "
        "still uncovered, and long before a fully covered strip (strong "
        "barrier) exists — barrier full-view coverage is the budget "
        "option the paper's future-work section anticipates."
    )


if __name__ == "__main__":
    main()
