"""Estate surveillance: provisioning a budget-constrained camera mix.

The paper's motivating scenario: a residential estate mixes high-end
and low-end cameras to balance quality and funds.  This example

1. starts from the built-in ``estate_surveillance`` workload (30%
   telephoto, 70% wide-angle),
2. shows the fleet is far below the CSA (full-view coverage is a "high
   quality, high expense service"),
3. rescales the cameras to 1.3x the sufficient CSA, and
4. verifies by simulation that the provisioned fleet actually covers
   (exact full-view test on random probe points).

Run:  python examples/estate_surveillance.py
"""

import math

from repro.api import estimate
from repro.core.csa import csa_necessary, csa_sufficient
from repro.simulation.results import ResultTable
from repro.simulation.workloads import estate_surveillance


def assess(workload, trials: int = 40) -> dict:
    """CSA verdict plus a simulated full-view area fraction."""
    s_c = workload.profile.weighted_sensing_area
    nec = csa_necessary(workload.n, workload.theta)
    suf = csa_sufficient(workload.n, workload.theta)
    mean, half = estimate(
        kind="area_fraction",
        profile=workload.profile,
        n=workload.n,
        theta=workload.theta,
        condition="exact",
        trials=trials,
        seed=0,
        scheme=workload.scheme,
        sample_points=128,
    )
    return {
        "s_c": s_c,
        "csa_necessary": nec,
        "csa_sufficient": suf,
        "margin": s_c / suf,
        "covered_fraction": mean,
        "ci_half_width": half,
    }


def main() -> None:
    base = estate_surveillance()
    print(f"workload: {base.name} — {base.description}")
    print(f"n = {base.n}, theta = {base.theta / math.pi:.3f}*pi")
    for group in base.profile:
        print(
            f"  {group.name}: {group.fraction:.0%} of fleet, "
            f"r = {group.radius:.3f}, phi = {math.degrees(group.angle_of_view):.0f} deg"
        )

    table = ResultTable(
        title="Estate surveillance: stock cameras vs provisioned cameras",
        columns=[
            "fleet",
            "s_c",
            "csa_sufficient",
            "margin",
            "covered_fraction",
            "ci_half_width",
        ],
    )

    stock = assess(base)
    table.add_row(
        "stock", stock["s_c"], stock["csa_sufficient"], stock["margin"],
        stock["covered_fraction"], stock["ci_half_width"],
    )
    print(
        f"\nstock fleet: s_c = {stock['s_c']:.4f} is only "
        f"{stock['margin']:.1%} of the sufficient CSA — the paper's point "
        "that full-view coverage is an expensive service."
    )

    provisioned = base.provisioned(q=1.3)
    upgraded = assess(provisioned)
    table.add_row(
        "provisioned(1.3x)", upgraded["s_c"], upgraded["csa_sufficient"],
        upgraded["margin"], upgraded["covered_fraction"], upgraded["ci_half_width"],
    )
    scale = provisioned.profile.groups[0].radius / base.profile.groups[0].radius
    print(
        f"provisioned fleet: radii scaled by {scale:.1f}x to reach "
        f"1.3x the sufficient CSA."
    )

    print()
    print(table.pretty())
    print(
        f"\nThe provisioned fleet full-view covers "
        f"{upgraded['covered_fraction']:.1%} of the estate "
        f"(+/- {upgraded['ci_half_width']:.1%}), up from "
        f"{stock['covered_fraction']:.1%}."
    )


if __name__ == "__main__":
    main()
