"""Quickstart: deploy a camera network and check full-view coverage.

Walks the core loop of the library in ~40 lines:

1. describe the cameras (binary sector model),
2. deploy them uniformly at random on the unit torus,
3. test whether a point is full-view covered and diagnose why,
4. compare the fleet against the paper's critical sensing area.

Run:  python examples/quickstart.py
"""

import math

from repro import (
    CameraSpec,
    HeterogeneousProfile,
    csa_necessary,
    csa_sufficient,
    diagnose_point,
    point_is_full_view_covered,
)
from repro.api import deploy


def main() -> None:
    # Effective angle theta: a facing direction is "safe" if some camera
    # views it within theta.  pi/3 is a moderate recognition requirement.
    theta = math.pi / 3
    n = 500

    # 1. A homogeneous fleet: radius 0.2, 60-degree angle of view.
    profile = HeterogeneousProfile.homogeneous(
        CameraSpec(radius=0.2, angle_of_view=math.pi / 3)
    )
    print(f"fleet profile: {profile}")
    print(f"per-sensor sensing area s = {profile.weighted_sensing_area:.4f}")

    # 2. Deploy n sensors uniformly at random (fixed seed = reproducible).
    fleet = deploy(profile=profile, n=n, seed=7)
    print(f"deployed: {fleet}")

    # 3. Check the centre point and explain the verdict.
    point = (0.5, 0.5)
    covered = point_is_full_view_covered(fleet, point, theta)
    diag = diagnose_point(fleet, point, theta)
    print(f"\npoint {point} full-view covered: {covered}")
    print(f"  covering sensors: {diag.num_covering_sensors}")
    print(f"  widest angular gap between viewed directions: {diag.max_gap:.3f} rad")
    print(f"  allowed gap (2*theta):                        {2 * theta:.3f} rad")
    if not covered and diag.worst_direction is not None:
        print(f"  an unsafe facing direction: {diag.worst_direction:.3f} rad")

    # 4. Compare against the critical sensing area (Theorems 1-2).
    s_c = profile.weighted_sensing_area
    nec, suf = csa_necessary(n, theta), csa_sufficient(n, theta)
    print(f"\nweighted sensing area s_c = {s_c:.4f}")
    print(f"necessary CSA  s_N,c({n}) = {nec:.4f}")
    print(f"sufficient CSA s_S,c({n}) = {suf:.4f}")
    if s_c < nec:
        print("verdict: below the necessary CSA -> full-view coverage of the "
              "whole region is asymptotically impossible")
    elif s_c > suf:
        print("verdict: above the sufficient CSA -> full-view coverage is "
              "asymptotically guaranteed")
    else:
        print("verdict: inside the CSA band -> coverage depends on the "
              "actual deployment (Section VI-C)")


if __name__ == "__main__":
    main()
