"""Pole-network aiming: what informed installation buys over randomness.

A city already owns a grid of camera poles (fixed positions); the only
freedom is where each camera points.  The paper's random-deployment
model assumes uniform random orientations — right for air drops, but an
installer can do better.  This example

1. scatters protection targets (entrances, crossings) over the region,
2. measures full-view coverage of the targets under random aiming,
3. runs the coordinate-ascent orientation optimiser
   (``repro.planning``) on the very same hardware,
4. shows the minimum-ring construction for a single high-value target
   — the provable ``ceil(pi/theta)`` floor, attained.

Run:  python examples/pole_network_aiming.py
"""

import math

import numpy as np

from repro.core.full_view import minimum_sensors_for_full_view, point_is_full_view_covered
from repro.planning import (
    covered_target_count,
    full_view_ring,
    optimize_orientations,
)
from repro.sensors.fleet import SensorFleet


def main() -> None:
    theta = math.pi / 3
    rng = np.random.default_rng(42)

    # 1. The pole grid and the targets.
    n, m = 72, 16
    positions = rng.uniform(size=(n, 2))
    targets = rng.uniform(size=(m, 2))
    radii = np.full(n, 0.3)
    angles = np.full(n, math.pi / 2)
    print(f"{n} pole cameras (r=0.3, 90-degree FoV), {m} targets, "
          f"theta = {theta / math.pi:.2f}*pi\n")

    # 2. Random aiming, averaged over installation draws.
    random_scores = []
    for seed in range(50):
        orientations = np.random.default_rng(seed).uniform(0, 2 * math.pi, size=n)
        fleet = SensorFleet(
            positions=positions, orientations=orientations, radii=radii, angles=angles
        )
        random_scores.append(covered_target_count(fleet, targets, theta))
    print(
        f"random aiming: {np.mean(random_scores):.1f} / {m} targets full-view "
        f"covered on average (best draw: {max(random_scores)})"
    )

    # 3. Optimised aiming on identical hardware.
    result = optimize_orientations(
        positions, radii, angles, targets, theta,
        initial_orientations=np.random.default_rng(0).uniform(0, 2 * math.pi, size=n),
    )
    print(
        f"optimised aiming: {result.covered_after} / {m} targets "
        f"({result.passes} ascent passes; started at {result.covered_before})"
    )
    gain = result.covered_after / max(np.mean(random_scores), 1e-9)
    print(f"gain over the random-orientation model: {gain:.1f}x\n")

    # 4. Minimum ring for one high-value target.
    vip = (0.5, 0.5)
    k = minimum_sensors_for_full_view(theta)
    ring = full_view_ring(vip, theta, standoff=0.2, reach=0.3)
    assert point_is_full_view_covered(ring, vip, theta)
    print(
        f"single high-value target: a ring of exactly {k} cameras "
        f"(the ceil(pi/theta) lower bound) full-view covers it — "
        "the paper's per-point minimum, attained constructively."
    )


if __name__ == "__main__":
    main()
