"""Wildlife monitoring: air-dropped sensors as a Poisson process.

Sensors dropped by plane over an inaccessible reserve land as a 2-D
Poisson point process (Section V of the paper); the realised sensor
count varies between drops.  This example

1. uses the built-in ``wildlife_protection`` workload (70% healthy
   cameras, 30% field-degraded),
2. evaluates Theorems 3 and 4 — the analytic probability that a point
   meets the necessary/sufficient full-view conditions under Poisson
   deployment — across candidate drop densities,
3. validates one density by simulation, and
4. quantifies what field degradation costs: the same fleet with all
   cameras healthy.

Run:  python examples/wildlife_monitoring.py
"""

import math

import numpy as np

from repro import (
    MonteCarloConfig,
    PoissonDeployment,
    estimate_point_probability,
    poisson_necessary_probability,
    poisson_sufficient_probability,
)
from repro.sensors.catalog import mixed_profile
from repro.simulation.results import ResultTable
from repro.simulation.workloads import wildlife_protection


def main() -> None:
    workload = wildlife_protection()
    # Field cameras are too small for full-view coverage at reserve
    # scale; provision them to a budget of 20% of the sufficient CSA
    # (full provisioning saturates every probability at 1 — density is
    # then irrelevant; at 20% the drop density genuinely matters).
    workload = workload.provisioned(q=0.2)
    profile = workload.profile
    theta = workload.theta
    print(f"workload: {workload.description}")
    print(f"theta = {theta / math.pi:.2f}*pi, camera mix: "
          + ", ".join(f"{g.name} {g.fraction:.0%}" for g in profile))

    # 2. Theorems 3 & 4 across drop densities.
    table = ResultTable(
        title="Poisson drop density vs full-view condition probabilities",
        columns=["density_n", "P_necessary (Thm 3)", "P_sufficient (Thm 4)"],
    )
    for n in (150, 300, 600, 1200, 2400):
        table.add_row(
            n,
            poisson_necessary_probability(profile, n, theta),
            poisson_sufficient_probability(profile, n, theta),
        )
    print()
    print(table.pretty())

    # 3. Validate the workload's own density by simulation.
    n = workload.n
    cfg = MonteCarloConfig(trials=300, seed=1)
    sim = estimate_point_probability(
        profile, n, theta, "necessary", cfg, scheme=PoissonDeployment()
    )
    theory = poisson_necessary_probability(profile, n, theta)
    print(f"\nvalidation at n = {n}: Theorem 3 predicts {theory:.3f}, "
          f"simulation measured {sim}")

    # 4. The cost of degradation: replace the degraded 30% with healthy
    #    cameras of the same provisioning budget split.
    healthy = mixed_profile([("standard", 0.999), ("degraded", 0.001)])
    healthy = healthy.scaled_to_weighted_area(profile.weighted_sensing_area)
    p_mixed = poisson_necessary_probability(profile, n, theta)
    p_healthy = poisson_necessary_probability(healthy, n, theta)
    print(
        f"\ndegradation ablation at equal weighted sensing area: "
        f"mixed fleet P_N = {p_mixed:.4f}, all-healthy P_N = {p_healthy:.4f} "
        "(nearly identical — under random deployment only the weighted "
        "sensing area matters, Section VI-A)"
    )


if __name__ == "__main__":
    main()
