"""Network design: finding the cheapest fleet that full-view covers.

A procurement study on top of the CSA theory.  Camera cost is modelled
as proportional to sensing area (bigger optics, longer reach), so the
fleet cost is ``n * s`` with ``s`` the per-camera sensing area.  Since
coverage requires ``s >= q * s_S,c(n)`` and ``s_S,c(n)`` is roughly
``(2 pi / (theta n)) * log(K n log n)``, total cost
``n * s_S,c(n) ~ (2 pi/theta) log(K n log n)`` *grows* slowly with n —
so fewer, better cameras are cheaper in pure sensing-area terms, but
real deployments also price per-unit installation.  The study sweeps n
under a two-part cost model and verifies the chosen design by
simulation.

Run:  python examples/network_design.py
"""

import math

from repro.api import estimate
from repro.core.csa import csa_sufficient
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.results import ResultTable

#: Cost model: dollars per unit sensing area, and per installed unit.
AREA_COST = 10_000.0
UNIT_COST = 40.0


def fleet_cost(n: int, sensing_area: float) -> float:
    return n * (AREA_COST * sensing_area + UNIT_COST)


def main() -> None:
    theta = math.pi / 4
    q = 1.2  # provisioning margin above the sufficient CSA
    phi = math.radians(70)

    # A camera whose reach spans the whole region is not buildable;
    # designs needing r beyond this are rejected as infeasible.
    max_radius = 0.35

    table = ResultTable(
        title=f"Design sweep: cheapest fleet meeting q={q} x sufficient CSA "
        "(theta = pi/4)",
        columns=[
            "n",
            "per_camera_area",
            "per_camera_radius",
            "feasible",
            "area_cost",
            "unit_cost",
            "total_cost",
        ],
    )
    candidates = []
    for n in (100, 200, 400, 800, 1600, 3200):
        s = q * csa_sufficient(n, theta)
        r = math.sqrt(2 * s / phi)
        feasible = r <= max_radius
        cost = fleet_cost(n, s)
        table.add_row(n, s, r, feasible, n * AREA_COST * s, n * UNIT_COST, cost)
        if feasible:
            candidates.append((cost, n, s))
    print(table.pretty())

    best_cost, best_n, best_s = min(candidates)
    print(
        f"\ncheapest FEASIBLE design: n = {best_n} cameras of sensing area "
        f"{best_s:.4f} (total ${best_cost:,.0f})"
    )

    # Verify the winning design by simulation.
    profile = HeterogeneousProfile.homogeneous(CameraSpec.from_area(best_s, phi))
    trials = 30
    mean, half = estimate(
        kind="area_fraction", profile=profile, n=best_n, theta=theta,
        condition="exact", trials=trials, seed=0, sample_points=128,
    )
    print(
        f"simulated full-view covered area fraction: {mean:.1%} "
        f"(+/- {half:.1%}) over {trials} random deployments"
    )
    print(
        "\nTrend to note: the area term n * s_S,c(n) grows only "
        "logarithmically with n, so unit cost dominates at large n and "
        "the optimum sits at moderate fleet sizes — the quantitative "
        "version of Figure 8's 'more cameras stop helping' remark."
    )


if __name__ == "__main__":
    main()
