"""Corpus: FV005 negatives — honest surface."""

__all__ = ["documented"]

_CACHE: dict = {}


def documented() -> int:
    """A documented, exported public function."""
    return len(_CACHE)


def _private_helper() -> int:
    return 0
