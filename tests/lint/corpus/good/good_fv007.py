"""Corpus: FV007 negatives — explicit state, workers stay stateless."""

from dataclasses import dataclass
from typing import Mapping, Tuple

__all__ = ["StatelessTask", "registry_names"]

#: Mutable registry is fine: nothing worker-reachable touches it.
_REGISTRY: dict = {"uniform": 0}

#: Immutable module state is always safe to read from a worker.
_LEVELS: Tuple[str, ...] = ("necessary", "sufficient")


def registry_names() -> Tuple[str, ...]:
    """Import-time helper; not reachable from any worker seam."""
    return tuple(sorted(_REGISTRY))


@dataclass(frozen=True)
class StatelessTask:
    """All state rides on the (frozen, pickled) task itself."""

    table: Mapping[str, float]

    def __call__(self, rng) -> float:
        total = 0.0
        for level in _LEVELS:
            total += self.table.get(level, 0.0)
        return total
