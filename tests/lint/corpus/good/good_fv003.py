"""Corpus: FV003 negatives — canonical angle helpers."""

import math

from repro.geometry.angles import TWO_PI, normalize_angle

__all__ = ["wrap"]


def wrap(angle: float) -> float:
    """The canonical constant and wrapper; half-circle math is fine."""
    half = math.pi / 2.0
    return normalize_angle(angle + half) + TWO_PI
