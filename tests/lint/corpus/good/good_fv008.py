"""Corpus: FV008 negatives — results are pure functions of the seed."""

from dataclasses import dataclass

import numpy as np

__all__ = ["DeterministicTask"]


@dataclass(frozen=True)
class DeterministicTask:
    """Every source of variation flows from the seeded generator."""

    labels: tuple

    def __call__(self, rng: np.random.Generator) -> dict:
        seen = 0
        for label in sorted({"exact", "necessary", "sufficient"}):
            if label in self.labels:
                seen += 1
        draw = float(rng.uniform(0.0, 1.0))
        return {"seen": seen, "draw": draw}
