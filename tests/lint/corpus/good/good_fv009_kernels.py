"""Corpus: FV009 negatives — a kernel the backend swap can cover."""

import numpy as np

__all__ = ["gap_widths"]


def gap_widths(directions):
    """Standard and renamed array-API calls only."""
    flat = np.concatenate([directions, directions[:1]])
    order = np.argsort(flat)
    widths = np.diff(flat[order])
    norm = np.linalg.norm(widths)
    return np.where(widths > 0, widths, 0.0), norm
