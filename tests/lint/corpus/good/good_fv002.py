"""Corpus: FV002 negatives — contract-abiding raises."""

from repro.errors import InvalidParameterError

__all__ = ["reject"]


def reject(value) -> float:
    """Family raises, assertions, re-raises and bound names never flag."""
    if value is None:
        err = InvalidParameterError("value is required")
        raise err
    if value < 0:
        raise InvalidParameterError(f"negative: {value}")
    if value != value:
        raise AssertionError("NaN should have been rejected upstream")
    try:
        return float(value)
    except TypeError:
        raise
