"""Corpus: FV001 negatives — disciplined randomness."""

import numpy as np

__all__ = ["independent_streams"]


def independent_streams(seed: int, i: int):
    """Seeded construction and spawn-key addressing never flag."""
    root = np.random.default_rng(seed)
    sequence = np.random.SeedSequence(seed, spawn_key=(i,))
    child = np.random.Generator(np.random.PCG64(sequence))
    return root, child
