"""Corpus: FV006 negatives — a picklable frozen worker task."""

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["CleanEstimatorTask", "default_weights"]


def default_weights() -> Tuple[float, ...]:
    """Module-level factory: picklable by reference, unlike a lambda."""
    return (1.0, 1.0)


@dataclass(frozen=True)
class CleanEstimatorTask:
    """Frozen, module-level, and every field statically picklable."""

    trials: int
    theta: float
    weights: Tuple[float, ...] = (1.0, 1.0)

    def __call__(self, rng: np.random.Generator) -> float:
        """One trial estimate from the provided seeded generator."""
        draw = float(rng.uniform(0.0, self.theta))
        return draw * self.weights[0] / max(self.trials, 1)
