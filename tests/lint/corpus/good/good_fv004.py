"""Corpus: FV004 negatives — tolerant and integer comparisons."""

import math

__all__ = ["classify"]


def classify(x: float, k: int) -> str:
    """isclose, integer equality, and a justified pragma never flag."""
    if math.isclose(x, 0.5):
        return "half"
    if k == 3:
        return "three"
    if x == 0.0:  # fvlint: disable=FV004 (exact sentinel pinned by caller)
        return "sentinel"
    return "other"
