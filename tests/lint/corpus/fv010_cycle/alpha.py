"""Corpus: half of a load-time cycle — imports beta at module level."""

from fv010_cycle import beta

__all__ = ["alpha_value"]


def alpha_value() -> int:
    """Depends on beta at load time."""
    return beta.beta_value() + 1
