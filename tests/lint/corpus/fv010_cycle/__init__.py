"""Corpus: a package with a genuine load-time import cycle."""
