"""Corpus: other half of the cycle — imports alpha back at module level."""

from fv010_cycle import alpha

__all__ = ["beta_value"]


def beta_value() -> int:
    """Depends on alpha at load time: the cycle FV010 must flag."""
    return 0 if alpha is None else 0
