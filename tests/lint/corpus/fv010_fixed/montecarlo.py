"""Corpus: imports batch at load time (one direction is fine)."""

from fv010_fixed import batch

__all__ = ["estimate"]


def estimate(n: int) -> float:
    """Top-level dependency on the batch kernels."""
    return batch.kernel(n)
