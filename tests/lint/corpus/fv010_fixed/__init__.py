"""Corpus: the old ``montecarlo -> batch`` cycle, correctly broken.

Regression fixture for the PR3 fix: ``batch`` needs a symbol from
``montecarlo`` but imports it inside the function body, so there is no
*load-time* cycle and FV010 must stay quiet.
"""
