"""Corpus: needs montecarlo back, but only via a function-level import.

The sanctioned cycle-breaking idiom: the reverse edge exists in the
*all-imports* graph (so ``--changed`` still re-checks dependents) but
not in the load-time graph FV010 analyses.
"""

__all__ = ["kernel"]


def kernel(n: int) -> float:
    """Late-binds the estimator to avoid a load-time cycle."""
    from fv010_fixed import montecarlo  # local import breaks the cycle

    return float(n) if montecarlo is not None else 0.0
