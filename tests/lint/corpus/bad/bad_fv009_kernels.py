"""Corpus: FV009 true positives — numpy-only calls in a hot kernel."""

import numpy as np

__all__ = ["gap_histogram"]


def gap_histogram(rows, weights):
    """Three calls below have no array-API-standard equivalent."""
    counts = np.bincount(rows, weights=weights)
    total = np.add.reduce(counts)
    grid = np.ix_(rows, rows)
    return counts, total, grid
