"""Corpus: FV007 true positives — worker-reachable mutable globals."""

from dataclasses import dataclass

__all__ = ["CachingTask", "remember"]

_RESULTS: dict = {}


def remember(key: str, value: float) -> float:
    """Writes a module-level cache; reached from the task below."""
    _RESULTS[key] = value
    return value


@dataclass(frozen=True)
class CachingTask:
    """A worker task whose call path touches module-level state."""

    name: str

    def __call__(self, rng) -> float:
        if self.name in _RESULTS:
            return _RESULTS[self.name]
        return remember(self.name, 1.0)
