"""Corpus: FV002 true positives — raises outside the error family."""

__all__ = ["reject"]


def reject(value: float) -> float:
    """Raises stdlib exceptions directly — each one a violation."""
    if value < 0:
        raise ValueError(f"negative: {value}")
    if value > 1:
        raise RuntimeError("out of range")
    raise KeyError
