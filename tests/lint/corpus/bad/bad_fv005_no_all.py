"""Corpus: FV005 — public module missing __all__ entirely."""


def helper():
    """Documented but unexported."""
    return 2
