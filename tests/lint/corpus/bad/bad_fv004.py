"""Corpus: FV004 true positives — exact float comparisons."""

__all__ = ["classify"]


def classify(x: float) -> str:
    """Both comparisons bit-compare a computed float against a literal."""
    if x == 0.5:
        return "half"
    if x != 1e-3:
        return "other"
    return "millith"
