"""Corpus: FV005 true positives — dishonest API surface."""

__all__ = ["missing_name"]


def undocumented():
    return 1
