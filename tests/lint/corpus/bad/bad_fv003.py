"""Corpus: FV003 true positives — raw full-circle arithmetic."""

import math

import numpy as np

__all__ = ["wrap"]


def wrap(angle: float, bearings: np.ndarray):
    """Each statement reimplements geometry/angles.py by hand."""
    circle = 2 * math.pi
    wrapped = angle % (2.0 * math.pi)
    array_wrapped = np.mod(bearings, 2 * np.pi)
    tau_circle = math.tau
    return circle, wrapped, array_wrapped, tau_circle
