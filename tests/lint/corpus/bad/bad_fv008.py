"""Corpus: FV008 true positives — nondeterminism leaking into results."""

import time
from dataclasses import dataclass

import numpy as np

__all__ = ["TimingTask", "legacy_draw"]


def legacy_draw() -> float:
    """Flags: a legacy global-state draw, anywhere in the tree."""
    return float(np.random.uniform())


@dataclass(frozen=True)
class TimingTask:
    """A worker task whose result depends on the wall clock."""

    labels: tuple

    def __call__(self, rng) -> dict:
        started = time.perf_counter()
        seen = 0
        for label in {"exact", "necessary", "sufficient"}:
            if label in self.labels:
                seen += 1
        elapsed = time.perf_counter() - started
        return {"seen": seen, "elapsed": elapsed}
