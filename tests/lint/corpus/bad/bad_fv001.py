"""Corpus: FV001 true positives — undisciplined randomness."""

import random

import numpy as np

__all__ = ["correlated_streams"]


def correlated_streams(seed: int, i: int):
    """Every statement below is a separate FV001 violation."""
    unseeded = np.random.default_rng()
    shifted = np.random.default_rng(seed + 1000 * i)
    sequence = np.random.SeedSequence(seed * 2)
    legacy = np.random.RandomState(seed)
    return random.random(), unseeded, shifted, sequence, legacy
