"""Corpus: FV006 true positives — unpicklable worker tasks."""

import threading
from dataclasses import dataclass

__all__ = ["BrokenTask", "LeakyTask", "UnfrozenTask", "make_task"]


class BrokenTask:
    """Flags: a task that is not a dataclass at all."""

    def __call__(self, rng):
        return 0.0


@dataclass
class UnfrozenTask:
    """Flags: a task dataclass without ``frozen=True``."""

    n: int = 0

    def __call__(self, rng):
        return float(self.n)


@dataclass(frozen=True)
class LeakyTask:
    """Flags twice: a lock-typed field and a lambda default."""

    lock: threading.Lock
    scale: object = lambda x: x

    def __call__(self, rng):
        return 0.0


def make_task():
    """Flags: a task class defined inside a function cannot pickle."""

    class InnerTask:
        def __call__(self, rng):
            return 0.0

    return InnerTask()
