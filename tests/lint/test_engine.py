"""Engine mechanics: pragmas, skip-file, baselines, parse failures, reporters."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import FullViewError, LintError
from repro.lint import (
    all_rules,
    apply_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    render_json,
    render_text,
    resolve_rules,
    write_baseline,
)

CORPUS_BAD = Path(__file__).resolve().parent / "corpus" / "bad"

BAD_COMPARISON = "ok = x == 0.5\n"


class TestRuleRegistry:
    def test_all_ten_rules_registered(self):
        registry = all_rules()
        assert list(registry) == [
            "FV001", "FV002", "FV003", "FV004", "FV005",
            "FV006", "FV007", "FV008", "FV009", "FV010",
        ]
        assert all(cls.code == code for code, cls in registry.items())

    def test_select_narrows(self):
        rules = resolve_rules(["FV004"])
        assert [rule.code for rule in rules] == ["FV004"]

    def test_unknown_code_is_lint_error(self):
        with pytest.raises(LintError):
            resolve_rules(["FV999"])

    def test_lint_error_is_family_member(self):
        assert issubclass(LintError, FullViewError)


class TestPragmas:
    def test_specific_code_suppresses(self):
        src = "ok = x == 0.5  # fvlint: disable=FV004 (sentinel)\n"
        assert lint_source(src, select=["FV004"]) == []

    def test_disable_all_suppresses(self):
        src = "ok = x == 0.5  # fvlint: disable=all\n"
        assert lint_source(src, select=["FV004"]) == []

    def test_other_code_does_not_suppress(self):
        src = "ok = x == 0.5  # fvlint: disable=FV001\n"
        assert len(lint_source(src, select=["FV004"])) == 1

    def test_pragma_on_other_line_does_not_suppress(self):
        src = "# fvlint: disable=FV004\nok = x == 0.5\n"
        assert len(lint_source(src, select=["FV004"])) == 1

    def test_pragma_on_continuation_line_suppresses(self):
        # The finding anchors on line 1 (the comparison), the pragma
        # sits on a continuation line of the same statement.
        src = (
            "ok = (x == 0.5\n"
            "      and y)  # fvlint: disable=FV004 (statement extent)\n"
        )
        assert lint_source(src, select=["FV004"]) == []

    def test_pragma_on_first_line_covers_continuations(self):
        src = (
            "ok = (True  # fvlint: disable=FV004 (statement extent)\n"
            "      and x == 0.5)\n"
        )
        assert lint_source(src, select=["FV004"]) == []

    def test_pragma_on_decorator_line_covers_def_header(self):
        src = (
            "@decorated  # fvlint: disable=FV004\n"
            "def f(x=(0.5 == y)):\n"
            "    return x\n"
        )
        assert lint_source(src, select=["FV004"]) == []

    def test_def_header_pragma_does_not_cover_body(self):
        # A compound statement's extent is its *header* only: a pragma
        # on the def line must not silence findings inside the body.
        src = (
            "def f(x):  # fvlint: disable=FV004\n"
            "    return x == 0.5\n"
        )
        assert len(lint_source(src, select=["FV004"])) == 1

    def test_suppressions_are_counted(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            '"""Doc."""\n\n__all__ = []\n\n'
            "ok = x == 0.5  # fvlint: disable=FV004 (sentinel)\n"
        )
        result = lint_paths([target])
        assert result.ok
        assert result.suppressed == 1


class TestSkipFile:
    def test_skip_file_pragma_skips(self, tmp_path):
        target = tmp_path / "generated.py"
        target.write_text("# fvlint: skip-file (generated)\n" + BAD_COMPARISON)
        result = lint_paths([target])
        assert result.ok
        assert result.files_checked == 0

    def test_skip_file_only_in_head(self, tmp_path):
        target = tmp_path / "late.py"
        lines = ['"""Doc."""\n', "\n", "__all__ = []\n"] + ["\n"] * 5
        lines += ["# fvlint: skip-file\n", BAD_COMPARISON]
        target.write_text("".join(lines))
        result = lint_paths([target])
        assert not result.ok


class TestParseFailures:
    def test_lint_source_raises(self):
        with pytest.raises(LintError):
            lint_source("def broken(:\n")

    def test_lint_paths_reports_fv000(self, tmp_path):
        good = tmp_path / "a_good.py"
        good.write_text('"""Doc."""\n\n__all__ = []\n')
        broken = tmp_path / "b_broken.py"
        broken.write_text("def broken(:\n")
        result = lint_paths([tmp_path])
        assert result.parse_failures == 1
        assert [f.code for f in result.findings] == ["FV000"]
        # The good file was still checked despite the broken sibling.
        assert result.files_checked == 2

    def test_missing_target_is_lint_error(self, tmp_path):
        with pytest.raises(LintError):
            lint_paths([tmp_path / "nope"])


class TestBaseline:
    def test_round_trip_suppresses_recorded_findings(self, tmp_path):
        result = lint_paths([CORPUS_BAD])
        assert not result.ok
        baseline_path = tmp_path / "baseline.json"
        entries = write_baseline(baseline_path, result.findings)
        assert entries > 0
        rerun = lint_paths([CORPUS_BAD], baseline_path=baseline_path)
        assert rerun.ok
        assert rerun.baselined == len(result.findings)

    def test_new_finding_still_fails(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text('"""Doc."""\n\n__all__ = []\n\n' + BAD_COMPARISON)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, lint_paths([target]).findings)
        # A *copy* of the baselined violation is a new finding.
        target.write_text(
            '"""Doc."""\n\n__all__ = []\n\n' + BAD_COMPARISON + BAD_COMPARISON
        )
        rerun = lint_paths([target], baseline_path=baseline_path)
        assert len(rerun.findings) == 1
        assert rerun.baselined == 1

    def test_fingerprint_survives_line_moves(self, tmp_path):
        prefix = '"""Doc."""\n\n__all__ = []\n\n'
        target = tmp_path / "mod.py"
        target.write_text(prefix + BAD_COMPARISON)
        before = lint_paths([target]).findings
        target.write_text(prefix + "\n\n\n" + BAD_COMPARISON)
        after = lint_paths([target]).findings
        assert before[0].line != after[0].line
        assert before[0].fingerprint == after[0].fingerprint

    def test_apply_baseline_caps_at_count(self):
        result = lint_paths([CORPUS_BAD / "bad_fv004.py"], select=["FV004"])
        findings = result.findings
        baseline = {findings[0].fingerprint: 1}
        fresh, matched = apply_baseline(findings, baseline)
        assert matched == 1
        assert len(fresh) == len(findings) - 1

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(LintError):
            load_baseline(path)

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"format": "something-else", "entries": {}}))
        with pytest.raises(LintError):
            load_baseline(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(LintError):
            load_baseline(tmp_path / "absent.json")


class TestReporters:
    def test_text_report_shape(self):
        result = lint_paths([CORPUS_BAD / "bad_fv004.py"], select=["FV004"])
        text = render_text(result)
        assert "bad_fv004.py:8:8: FV004 [warning]" in text
        assert "2 finding(s) (FV004: 2) in 1 file(s)" in text

    def test_text_report_clean(self):
        result = lint_paths([CORPUS_BAD / "bad_fv004.py"], select=["FV001"])
        assert render_text(result).startswith("0 finding(s)")

    def test_json_report_schema(self):
        result = lint_paths([CORPUS_BAD / "bad_fv004.py"], select=["FV004"])
        payload = json.loads(render_json(result))
        assert payload["format"] == "fvlint-report-v1"
        assert payload["summary"]["findings"] == 2
        assert payload["summary"]["ok"] is False
        assert payload["summary"]["by_code"] == {"FV004": 2}
        first = payload["findings"][0]
        assert first["code"] == "FV004"
        assert first["fingerprint"].startswith("FV004::")
