"""Per-rule behaviour of fvlint, pinned against the snippet corpus.

Every rule FV001–FV009 gets at least one true-positive corpus test (the
``bad/`` file flags) and one negative corpus test (the ``good/`` file is
clean), plus inline ``lint_source`` cases for the edge behaviour the
corpus files cannot express naturally.  FV010 needs package-shaped
fixtures (a real import cycle cannot live in one file), so it is pinned
against the ``fv010_cycle``/``fv010_fixed`` corpus packages instead.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import lint_paths, lint_source

CORPUS = Path(__file__).resolve().parent / "corpus"
BAD = CORPUS / "bad"
GOOD = CORPUS / "good"

#: (rule code, bad corpus file, expected bad findings, good corpus file)
RULE_CASES = [
    ("FV001", "bad_fv001.py", 5, "good_fv001.py"),
    ("FV002", "bad_fv002.py", 3, "good_fv002.py"),
    ("FV003", "bad_fv003.py", 4, "good_fv003.py"),
    ("FV004", "bad_fv004.py", 2, "good_fv004.py"),
    ("FV005", "bad_fv005.py", 3, "good_fv005.py"),
    ("FV006", "bad_fv006.py", 5, "good_fv006.py"),
    ("FV007", "bad_fv007.py", 3, "good_fv007.py"),
    ("FV008", "bad_fv008.py", 3, "good_fv008.py"),
    ("FV009", "bad_fv009_kernels.py", 3, "good_fv009_kernels.py"),
]


@pytest.mark.parametrize("code,bad_file,expected,good_file", RULE_CASES)
class TestCorpusPerRule:
    def test_bad_snippet_flags(self, code, bad_file, expected, good_file):
        result = lint_paths([BAD / bad_file], select=[code])
        assert len(result.findings) == expected
        assert all(f.code == code for f in result.findings)

    def test_good_snippet_clean(self, code, bad_file, expected, good_file):
        result = lint_paths([GOOD / good_file], select=[code])
        assert result.ok, "\n".join(f.render() for f in result.findings)


class TestCorpusWhole:
    def test_good_directory_clean_under_all_rules(self):
        result = lint_paths([GOOD])
        assert result.ok, "\n".join(f.render() for f in result.findings)
        assert result.files_checked == len(list(GOOD.glob("*.py")))

    def test_bad_directory_flags_every_rule(self):
        result = lint_paths([BAD])
        assert not result.ok
        codes = set(result.counts_by_code())
        assert {
            "FV001", "FV002", "FV003", "FV004", "FV005",
            "FV006", "FV007", "FV008", "FV009",
        } <= codes

    def test_missing_dunder_all_variant(self):
        result = lint_paths([BAD / "bad_fv005_no_all.py"], select=["FV005"])
        assert len(result.findings) == 1
        assert "no __all__" in result.findings[0].message


class TestRngEdges:
    def test_monte_carlo_config_seed_arithmetic_flags(self):
        findings = lint_source(
            "config = MonteCarloConfig(trials=10, seed=seed + 7)\n",
            select=["FV001"],
        )
        assert len(findings) == 1
        assert "derive_seed" in findings[0].message

    def test_monte_carlo_config_derived_seed_clean(self):
        findings = lint_source(
            "config = MonteCarloConfig(trials=10, seed=derive_seed(seed, 7))\n",
            select=["FV001"],
        )
        assert findings == []

    def test_from_random_import_flags(self):
        findings = lint_source("from random import choice\n", select=["FV001"])
        assert len(findings) == 1

    def test_seeded_default_rng_clean(self):
        findings = lint_source(
            "rng = np.random.default_rng(seed)\n", select=["FV001"]
        )
        assert findings == []


class TestErrorContractEdges:
    def test_dynamic_constructor_name_flags(self):
        findings = lint_source("raise make_error()\n", select=["FV002"])
        assert len(findings) == 1

    def test_bare_name_builtin_still_flags(self):
        # `raise ValueError` without parens still instantiates.
        findings = lint_source("raise ValueError\n", select=["FV002"])
        assert len(findings) == 1

    def test_attribute_family_raise_clean(self):
        findings = lint_source(
            "raise errors.InvalidParameterError('bad')\n", select=["FV002"]
        )
        assert findings == []

    def test_raise_from_preserves_verdict(self):
        src = (
            "try:\n"
            "    pass\n"
            "except ValueError as exc:\n"
            "    raise InvalidParameterError('bad') from exc\n"
        )
        assert lint_source(src, select=["FV002"]) == []


class TestAngleEdges:
    def test_angles_module_itself_exempt(self):
        findings = lint_source(
            "TWO_PI = 2.0 * math.pi\n",
            path="src/repro/geometry/angles.py",
            select=["FV003"],
        )
        assert findings == []

    def test_reversed_product_flags(self):
        findings = lint_source("circle = math.pi * 2\n", select=["FV003"])
        assert len(findings) == 1

    def test_half_circle_clean(self):
        assert lint_source("half = math.pi / 2\n", select=["FV003"]) == []


class TestFloatEqualityEdges:
    def test_literal_on_left_flags(self):
        findings = lint_source("ok = 0.5 == x\n", select=["FV004"])
        assert len(findings) == 1

    def test_negative_literal_flags(self):
        findings = lint_source("ok = x == -1.5\n", select=["FV004"])
        assert len(findings) == 1

    def test_integer_literal_clean(self):
        assert lint_source("ok = x == 3\n", select=["FV004"]) == []

    def test_ordering_comparison_clean(self):
        assert lint_source("ok = x < 0.5\n", select=["FV004"]) == []


class TestApiSurfaceEdges:
    def test_private_module_exempt(self):
        findings = lint_source(
            "def undocumented():\n    return 1\n",
            path="src/repro/_internal.py",
            select=["FV005"],
        )
        assert findings == []

    def test_non_literal_dunder_all_flags(self):
        src = '"""Doc."""\n\n__all__ = sorted(["a"])\n'
        findings = lint_source(src, path="mod.py", select=["FV005"])
        assert len(findings) == 1
        assert "literal" in findings[0].message

    def test_conditional_import_counts_as_bound(self):
        src = (
            '"""Doc."""\n\n'
            "__all__ = ['helper']\n\n"
            "try:\n"
            "    from other import helper\n"
            "except ImportError:\n"
            "    helper = None\n"
        )
        assert lint_source(src, path="mod.py", select=["FV005"]) == []


class TestPickleSafetyEdges:
    def test_non_task_class_exempt(self):
        src = (
            "class Helper:\n"
            "    lock: object\n"
        )
        assert lint_source(src, select=["FV006"]) == []

    def test_numpy_generator_field_allowed(self):
        src = (
            "from dataclasses import dataclass\n"
            "import numpy as np\n"
            "@dataclass(frozen=True)\n"
            "class SeededTask:\n"
            "    rng: np.random.Generator\n"
            "    def __call__(self, rng):\n"
            "        return 0.0\n"
        )
        assert lint_source(src, select=["FV006"]) == []

    def test_task_subclass_inherits_taskness(self):
        # Name does not end in Task, but the base does — still checked.
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class EstimatorTask:\n"
            "    n: int\n"
            "@dataclass\n"
            "class PointEstimator(EstimatorTask):\n"
            "    m: int\n"
        )
        findings = lint_source(src, select=["FV006"])
        assert len(findings) == 1
        assert "PointEstimator" in findings[0].message

    def test_default_factory_lambda_flags(self):
        src = (
            "from dataclasses import dataclass, field\n"
            "@dataclass(frozen=True)\n"
            "class FactoryTask:\n"
            "    items: tuple = field(default_factory=lambda: ())\n"
        )
        findings = lint_source(src, select=["FV006"])
        assert len(findings) == 1
        assert "lambda" in findings[0].message


class TestWorkerStateEdges:
    def test_local_shadow_is_not_a_global_touch(self):
        src = (
            "_CACHE: dict = {}\n"
            "class ShadowTask:\n"
            "    def __call__(self, rng):\n"
            "        _CACHE = {}\n"
            "        _CACHE['k'] = 1\n"
            "        return 0.0\n"
        )
        assert lint_source(src, select=["FV007"]) == []

    def test_unreachable_function_exempt(self):
        src = (
            "_CACHE: dict = {}\n"
            "def import_time_helper():\n"
            "    _CACHE['k'] = 1\n"
        )
        assert lint_source(src, select=["FV007"]) == []

    def test_immutable_global_exempt(self):
        src = (
            "_LEVELS = ('a', 'b')\n"
            "class ReadTask:\n"
            "    def __call__(self, rng):\n"
            "        return len(_LEVELS)\n"
        )
        assert lint_source(src, select=["FV007"]) == []


class TestAuditedWorkerGlobals:
    """The explicit FV007 allowlist for audited worker-side caches."""

    SRC = Path(__file__).resolve().parents[2] / "src"

    def test_payload_module_caches_are_allowlisted(self):
        # The payload plane's worker-side caches are seam-reachable via
        # resolve_task, but covered by the explicit allowlist entry.
        result = lint_paths(
            [self.SRC / "repro" / "simulation"], select=["FV007"]
        )
        assert result.ok, "\n".join(f.render() for f in result.findings)

    def test_allowlist_names_match_real_globals(self):
        # Guard against drift: every allowlisted name must still exist
        # as a module-level global of the module it is declared for.
        import importlib

        from repro.lint.rules.parallel import AUDITED_WORKER_GLOBALS

        assert AUDITED_WORKER_GLOBALS, "allowlist unexpectedly empty"
        for module_name, names in AUDITED_WORKER_GLOBALS.items():
            mod = importlib.import_module(module_name)
            for name in sorted(names):
                assert hasattr(mod, name), f"{module_name}.{name} vanished"

    def test_allowlist_is_module_scoped_not_name_based(self):
        # The same global names in a *different* module still flag:
        # the allowlist keys on (module, name), never the name alone.
        src = (
            "_TASK_CACHE: dict = {}\n"
            "class CachingTask:\n"
            "    def __call__(self, rng):\n"
            "        _TASK_CACHE['k'] = 1\n"
            "        return 0.0\n"
        )
        findings = lint_source(src, select=["FV007"])
        assert len(findings) == 1
        assert "_TASK_CACHE" in findings[0].message


class TestNondeterminismEdges:
    def test_fv001_legacy_set_not_double_flagged(self):
        # np.random.randint is FV001's jurisdiction, not FV008's.
        src = "x = np.random.randint(10)\n"
        assert lint_source(src, select=["FV008"]) == []
        assert len(lint_source(src, select=["FV001"])) == 1

    def test_clock_not_in_return_is_allowed(self):
        src = (
            "import time\n"
            "class LoggingTask:\n"
            "    def __call__(self, rng):\n"
            "        t0 = time.perf_counter()\n"
            "        print(time.perf_counter() - t0)\n"
            "        return 1.0\n"
        )
        assert lint_source(src, select=["FV008"]) == []

    def test_from_import_clock_resolves(self):
        src = (
            "from time import perf_counter\n"
            "class AliasedTask:\n"
            "    def __call__(self, rng):\n"
            "        return perf_counter()\n"
        )
        findings = lint_source(src, select=["FV008"])
        assert len(findings) == 1

    def test_sorted_set_iteration_clean(self):
        src = (
            "class SortedTask:\n"
            "    def __call__(self, rng):\n"
            "        return [x for x in sorted({'b', 'a'})]\n"
        )
        assert lint_source(src, select=["FV008"]) == []


class TestArrayApiEdges:
    def test_cold_module_exempt(self):
        findings = lint_source(
            "counts = np.bincount(rows)\n",
            path="src/repro/analysis/tables.py",
            select=["FV009"],
        )
        assert findings == []

    def test_rename_is_allowed(self):
        findings = lint_source(
            "joined = np.concatenate([a, b])\n",
            path="src/repro/core/kernels.py",
            select=["FV009"],
        )
        assert findings == []

    def test_random_namespace_not_double_flagged(self):
        findings = lint_source(
            "rng = np.random.default_rng(seed)\n",
            path="src/repro/core/kernels.py",
            select=["FV009"],
        )
        assert findings == []


class TestLayeringCorpus:
    def test_cycle_package_flags_once_in_first_member(self):
        result = lint_paths([CORPUS / "fv010_cycle"], select=["FV010"])
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.path.endswith("alpha.py")
        assert "import cycle" in finding.message
        assert "fv010_cycle.beta" in finding.message

    def test_function_level_import_breaks_cycle(self):
        # Regression fixture for the old montecarlo -> batch cycle: the
        # reverse edge moved into a function body, so FV010 stays quiet.
        result = lint_paths([CORPUS / "fv010_fixed"], select=["FV010"])
        assert result.ok, "\n".join(f.render() for f in result.findings)

    def test_core_importing_simulation_is_a_layer_violation(self, tmp_path):
        root = tmp_path / "src" / "repro"
        (root / "core").mkdir(parents=True)
        (root / "simulation").mkdir()
        for pkg in (root, root / "core", root / "simulation"):
            (pkg / "__init__.py").write_text('"""Pkg."""\n')
        (root / "simulation" / "engine.py").write_text('"""Doc."""\n\n__all__ = []\n')
        (root / "core" / "batch.py").write_text(
            '"""Doc."""\n\n'
            "from repro.simulation import engine\n\n"
            "__all__ = []\n"
        )
        result = lint_paths([tmp_path / "src"], select=["FV010"])
        assert len(result.findings) == 1
        assert "layer violation" in result.findings[0].message
        assert result.findings[0].path.endswith("batch.py")
