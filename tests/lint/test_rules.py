"""Per-rule behaviour of fvlint, pinned against the snippet corpus.

Every rule FV001–FV005 gets at least one true-positive corpus test (the
``bad/`` file flags) and one negative corpus test (the ``good/`` file is
clean), plus inline ``lint_source`` cases for the edge behaviour the
corpus files cannot express naturally.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import lint_paths, lint_source

CORPUS = Path(__file__).resolve().parent / "corpus"
BAD = CORPUS / "bad"
GOOD = CORPUS / "good"

#: (rule code, bad corpus file, expected bad findings, good corpus file)
RULE_CASES = [
    ("FV001", "bad_fv001.py", 5, "good_fv001.py"),
    ("FV002", "bad_fv002.py", 3, "good_fv002.py"),
    ("FV003", "bad_fv003.py", 4, "good_fv003.py"),
    ("FV004", "bad_fv004.py", 2, "good_fv004.py"),
    ("FV005", "bad_fv005.py", 3, "good_fv005.py"),
]


@pytest.mark.parametrize("code,bad_file,expected,good_file", RULE_CASES)
class TestCorpusPerRule:
    def test_bad_snippet_flags(self, code, bad_file, expected, good_file):
        result = lint_paths([BAD / bad_file], select=[code])
        assert len(result.findings) == expected
        assert all(f.code == code for f in result.findings)

    def test_good_snippet_clean(self, code, bad_file, expected, good_file):
        result = lint_paths([GOOD / good_file], select=[code])
        assert result.ok, "\n".join(f.render() for f in result.findings)


class TestCorpusWhole:
    def test_good_directory_clean_under_all_rules(self):
        result = lint_paths([GOOD])
        assert result.ok, "\n".join(f.render() for f in result.findings)
        assert result.files_checked == len(list(GOOD.glob("*.py")))

    def test_bad_directory_flags_every_rule(self):
        result = lint_paths([BAD])
        assert not result.ok
        codes = set(result.counts_by_code())
        assert {"FV001", "FV002", "FV003", "FV004", "FV005"} <= codes

    def test_missing_dunder_all_variant(self):
        result = lint_paths([BAD / "bad_fv005_no_all.py"], select=["FV005"])
        assert len(result.findings) == 1
        assert "no __all__" in result.findings[0].message


class TestRngEdges:
    def test_monte_carlo_config_seed_arithmetic_flags(self):
        findings = lint_source(
            "config = MonteCarloConfig(trials=10, seed=seed + 7)\n",
            select=["FV001"],
        )
        assert len(findings) == 1
        assert "derive_seed" in findings[0].message

    def test_monte_carlo_config_derived_seed_clean(self):
        findings = lint_source(
            "config = MonteCarloConfig(trials=10, seed=derive_seed(seed, 7))\n",
            select=["FV001"],
        )
        assert findings == []

    def test_from_random_import_flags(self):
        findings = lint_source("from random import choice\n", select=["FV001"])
        assert len(findings) == 1

    def test_seeded_default_rng_clean(self):
        findings = lint_source(
            "rng = np.random.default_rng(seed)\n", select=["FV001"]
        )
        assert findings == []


class TestErrorContractEdges:
    def test_dynamic_constructor_name_flags(self):
        findings = lint_source("raise make_error()\n", select=["FV002"])
        assert len(findings) == 1

    def test_bare_name_builtin_still_flags(self):
        # `raise ValueError` without parens still instantiates.
        findings = lint_source("raise ValueError\n", select=["FV002"])
        assert len(findings) == 1

    def test_attribute_family_raise_clean(self):
        findings = lint_source(
            "raise errors.InvalidParameterError('bad')\n", select=["FV002"]
        )
        assert findings == []

    def test_raise_from_preserves_verdict(self):
        src = (
            "try:\n"
            "    pass\n"
            "except ValueError as exc:\n"
            "    raise InvalidParameterError('bad') from exc\n"
        )
        assert lint_source(src, select=["FV002"]) == []


class TestAngleEdges:
    def test_angles_module_itself_exempt(self):
        findings = lint_source(
            "TWO_PI = 2.0 * math.pi\n",
            path="src/repro/geometry/angles.py",
            select=["FV003"],
        )
        assert findings == []

    def test_reversed_product_flags(self):
        findings = lint_source("circle = math.pi * 2\n", select=["FV003"])
        assert len(findings) == 1

    def test_half_circle_clean(self):
        assert lint_source("half = math.pi / 2\n", select=["FV003"]) == []


class TestFloatEqualityEdges:
    def test_literal_on_left_flags(self):
        findings = lint_source("ok = 0.5 == x\n", select=["FV004"])
        assert len(findings) == 1

    def test_negative_literal_flags(self):
        findings = lint_source("ok = x == -1.5\n", select=["FV004"])
        assert len(findings) == 1

    def test_integer_literal_clean(self):
        assert lint_source("ok = x == 3\n", select=["FV004"]) == []

    def test_ordering_comparison_clean(self):
        assert lint_source("ok = x < 0.5\n", select=["FV004"]) == []


class TestApiSurfaceEdges:
    def test_private_module_exempt(self):
        findings = lint_source(
            "def undocumented():\n    return 1\n",
            path="src/repro/_internal.py",
            select=["FV005"],
        )
        assert findings == []

    def test_non_literal_dunder_all_flags(self):
        src = '"""Doc."""\n\n__all__ = sorted(["a"])\n'
        findings = lint_source(src, path="mod.py", select=["FV005"])
        assert len(findings) == 1
        assert "literal" in findings[0].message

    def test_conditional_import_counts_as_bound(self):
        src = (
            '"""Doc."""\n\n'
            "__all__ = ['helper']\n\n"
            "try:\n"
            "    from other import helper\n"
            "except ImportError:\n"
            "    helper = None\n"
        )
        assert lint_source(src, path="mod.py", select=["FV005"]) == []
