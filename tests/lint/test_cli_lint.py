"""The ``fullview lint`` subcommand: exit codes, formats, baseline flow.

Exit-code contract: 0 = clean, 1 = findings remain, 2 = usage error
(bad target, bad rule code, missing baseline).
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

from repro.cli import main

CORPUS = Path(__file__).resolve().parent / "corpus"
BAD = CORPUS / "bad"
GOOD = CORPUS / "good"

BAD_MODULE = '"""Doc."""\n\n__all__ = []\n\nok = x == 0.5\n'


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", str(GOOD)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_bad_corpus_exits_one(self, capsys):
        assert main(["lint", str(BAD)]) == 1
        out = capsys.readouterr().out
        for code in ("FV001", "FV002", "FV003", "FV004", "FV005"):
            assert code in out

    def test_missing_target_exits_two(self, capsys):
        assert main(["lint", str(CORPUS / "absent")]) == 2
        assert "fvlint:" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", "--select", "FV999", str(GOOD)]) == 2
        assert "FV999" in capsys.readouterr().err

    def test_missing_baseline_exits_two(self, capsys):
        code = main(["lint", "--baseline", str(CORPUS / "absent.json"), str(GOOD)])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err


class TestSelect:
    def test_select_narrows_run(self, capsys):
        assert main(["lint", "--select", "FV003", str(BAD / "bad_fv004.py")]) == 0
        assert main(["lint", "--select", "FV004", str(BAD / "bad_fv004.py")]) == 1
        capsys.readouterr()


class TestJsonFormat:
    def test_json_document(self, capsys):
        assert main(["lint", "--format", "json", str(BAD / "bad_fv002.py")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "fvlint-report-v1"
        assert payload["summary"]["by_code"] == {"FV002": 3}

    def test_json_clean(self, capsys):
        assert main(["lint", "--format", "json", str(GOOD)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["ok"] is True
        assert payload["findings"] == []


class TestBaselineFlow:
    def test_write_then_pass_then_regress(self, tmp_path, capsys):
        target = tmp_path / "legacy.py"
        target.write_text(BAD_MODULE)
        baseline = tmp_path / "baseline.json"
        # Without a baseline the legacy file fails.
        assert main(["lint", str(target)]) == 1
        # Recording the baseline grandfathers it...
        code = main(["lint", "--baseline", str(baseline), "--write-baseline", str(target)])
        assert code == 0
        assert baseline.exists()
        assert main(["lint", "--baseline", str(baseline), str(target)]) == 0
        # ...but a new violation still fails the run.
        target.write_text(BAD_MODULE + "ok2 = y == 0.25\n")
        assert main(["lint", "--baseline", str(baseline), str(target)]) == 1
        capsys.readouterr()

    def test_write_baseline_default_path(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "legacy.py"
        target.write_text(BAD_MODULE)
        assert main(["lint", "--write-baseline", str(target)]) == 0
        assert (tmp_path / "fvlint-baseline.json").exists()
        capsys.readouterr()


def _git(repo: Path, *args: str) -> None:
    subprocess.run(
        ["git", "-c", "user.name=t", "-c", "user.email=t@t", *args],
        cwd=repo,
        check=True,
        capture_output=True,
    )


class TestChangedMode:
    CLEAN = '"""Doc."""\n\n__all__ = []\n'

    def _repo(self, tmp_path, files):
        for rel, source in files.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source)
        _git(tmp_path, "init", "-q")
        _git(tmp_path, "add", "-A")
        _git(tmp_path, "commit", "-qm", "seed")

    def test_no_changes_is_a_clean_noop(self, tmp_path, capsys, monkeypatch):
        self._repo(tmp_path, {"src/mod.py": self.CLEAN})
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--changed", "src"]) == 0
        assert "no changed python files" in capsys.readouterr().out

    def test_changed_file_is_checked(self, tmp_path, capsys, monkeypatch):
        self._repo(tmp_path, {"src/mod.py": self.CLEAN})
        (tmp_path / "src" / "mod.py").write_text(self.CLEAN + "ok = x == 0.5\n")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--changed", "src"]) == 1
        assert "FV004" in capsys.readouterr().out

    def test_unchanged_unrelated_file_is_skipped(self, tmp_path, capsys, monkeypatch):
        # The violation lives in an untouched, unrelated module: a
        # --changed run must not flag it.
        self._repo(
            tmp_path,
            {
                "src/pkg/__init__.py": self.CLEAN,
                "src/pkg/touched.py": self.CLEAN,
                "src/pkg/legacy.py": self.CLEAN + "ok = x == 0.5\n",
            },
        )
        (tmp_path / "src" / "pkg" / "touched.py").write_text(self.CLEAN + "\n")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--changed", "src"]) == 0
        capsys.readouterr()

    def test_reverse_dependents_are_rechecked(self, tmp_path, capsys, monkeypatch):
        # base.py changes; dep.py imports it and carries the finding —
        # the import-graph expansion must pull dep.py into the run.
        self._repo(
            tmp_path,
            {
                "src/pkg/__init__.py": self.CLEAN,
                "src/pkg/base.py": self.CLEAN,
                "src/pkg/dep.py": (
                    '"""Doc."""\n\n'
                    "from pkg import base\n\n"
                    "__all__ = []\n\n"
                    "ok = x == 0.5\n"
                ),
            },
        )
        (tmp_path / "src" / "pkg" / "base.py").write_text(self.CLEAN + "\n")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--changed", "src"]) == 1
        assert "dep.py" in capsys.readouterr().out


class TestSourceTree:
    def test_repo_src_lints_clean(self, capsys):
        src = Path(__file__).resolve().parents[2] / "src"
        assert main(["lint", str(src)]) == 0
        capsys.readouterr()

    def test_repo_src_clean_under_whole_program_rules(self, capsys):
        # The ISSUE 7 acceptance gate, kept green forever.
        src = Path(__file__).resolve().parents[2] / "src"
        code = main(["lint", "--select", "FV006,FV007,FV008,FV009,FV010", str(src)])
        assert code == 0
        capsys.readouterr()
