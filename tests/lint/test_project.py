"""The whole-program project model: naming, imports, seams, cycles.

Exercised on synthetic package trees written to ``tmp_path`` so the
on-disk ``__init__.py`` walk, absolute/relative import resolution and
call-graph construction are all tested the way the engine uses them —
from parsed files, never by importing the analysed code.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint import build_project, module_name_for_path
from repro.lint.model import ModuleContext
from repro.lint.project import attr_chain


def _contexts_from_tree(root: Path):
    """Parse every python file under ``root`` into ModuleContexts."""
    contexts = []
    for path in sorted(root.rglob("*.py")):
        source = path.read_text()
        contexts.append(
            ModuleContext(path=str(path), source=source, tree=ast.parse(source))
        )
    return contexts


def _write_tree(root: Path, files):
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)


class TestAttrChain:
    def test_dotted_chain(self):
        node = ast.parse("np.random.default_rng").body[0].value
        assert attr_chain(node) == "np.random.default_rng"

    def test_non_chain_is_empty(self):
        node = ast.parse("f().attr").body[0].value
        assert attr_chain(node) == ""


class TestModuleNaming:
    def test_package_walk(self, tmp_path):
        _write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/sub/__init__.py": "",
                "pkg/sub/mod.py": "",
            },
        )
        assert module_name_for_path(tmp_path / "pkg" / "sub" / "mod.py") == "pkg.sub.mod"
        assert module_name_for_path(tmp_path / "pkg" / "sub" / "__init__.py") == "pkg.sub"

    def test_free_standing_file_is_its_stem(self, tmp_path):
        target = tmp_path / "snippet.py"
        target.write_text("")
        assert module_name_for_path(target) == "snippet"


class TestImportGraph:
    def test_toplevel_vs_function_level_edges(self, tmp_path):
        _write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": "from pkg import b\n",
                "pkg/b.py": "def late():\n    from pkg import a\n    return a\n",
            },
        )
        project = build_project(_contexts_from_tree(tmp_path))
        a = project.modules["pkg.a"]
        b = project.modules["pkg.b"]
        assert "pkg.b" in a.toplevel_imports
        assert "pkg.a" in b.all_imports
        assert "pkg.a" not in b.toplevel_imports

    def test_relative_import_resolves(self, tmp_path):
        _write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": "from . import b\n",
                "pkg/b.py": "",
            },
        )
        project = build_project(_contexts_from_tree(tmp_path))
        assert "pkg.b" in project.modules["pkg.a"].toplevel_imports

    def test_reverse_dependents_transitive(self, tmp_path):
        _write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/base.py": "",
                "pkg/mid.py": "from pkg import base\n",
                "pkg/top.py": "from pkg import mid\n",
                "pkg/other.py": "",
            },
        )
        project = build_project(_contexts_from_tree(tmp_path))
        dependents = project.reverse_dependents(["pkg.base"])
        assert dependents == {"pkg.base", "pkg.mid", "pkg.top"}

    def test_cycle_detection_finds_scc(self, tmp_path):
        _write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": "from pkg import b\n",
                "pkg/b.py": "from pkg import a\n",
                "pkg/c.py": "from pkg import a\n",
            },
        )
        project = build_project(_contexts_from_tree(tmp_path))
        assert project.import_cycles() == [["pkg.a", "pkg.b"]]

    def test_function_level_import_is_not_a_cycle(self, tmp_path):
        # The shape of the old montecarlo -> batch fix.
        _write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/montecarlo.py": "from pkg import batch\n",
                "pkg/batch.py": (
                    "def kernel():\n"
                    "    from pkg import montecarlo\n"
                    "    return montecarlo\n"
                ),
            },
        )
        project = build_project(_contexts_from_tree(tmp_path))
        assert project.import_cycles() == []


class TestCallGraph:
    def test_seam_reachability_through_helpers(self, tmp_path):
        _write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/helpers.py": (
                    "def inner():\n    return 1\n\n"
                    "def outer():\n    return inner()\n\n"
                    "def unrelated():\n    return 2\n"
                ),
                "pkg/tasks.py": (
                    "from pkg.helpers import outer\n\n"
                    "class SweepTask:\n"
                    "    def __call__(self, rng):\n"
                    "        return outer()\n"
                ),
            },
        )
        project = build_project(_contexts_from_tree(tmp_path))
        reachable = project.seam_reachable()
        assert "pkg.tasks::SweepTask.__call__" in reachable
        assert "pkg.helpers::outer" in reachable
        assert "pkg.helpers::inner" in reachable
        assert "pkg.helpers::unrelated" not in reachable

    def test_run_chunk_is_a_root(self, tmp_path):
        _write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/engine.py": (
                    "def _helper():\n    return 0\n\n"
                    "def _run_chunk(trials):\n    return _helper()\n"
                ),
            },
        )
        project = build_project(_contexts_from_tree(tmp_path))
        reachable = project.seam_reachable()
        assert "pkg.engine::_run_chunk" in reachable
        assert "pkg.engine::_helper" in reachable

    def test_self_method_resolves_through_base_class(self, tmp_path):
        _write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/tasks.py": (
                    "class BaseTask:\n"
                    "    def shared(self):\n"
                    "        return 1\n\n"
                    "class ChildTask(BaseTask):\n"
                    "    def __call__(self, rng):\n"
                    "        return self.shared()\n"
                ),
            },
        )
        project = build_project(_contexts_from_tree(tmp_path))
        assert "pkg.tasks::BaseTask.shared" in project.seam_reachable()

    def test_task_classes_include_inheritors(self, tmp_path):
        _write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": "class EstimatorTask:\n    pass\n",
                "pkg/b.py": (
                    "from pkg.a import EstimatorTask\n\n"
                    "class GridEstimator(EstimatorTask):\n    pass\n"
                ),
            },
        )
        project = build_project(_contexts_from_tree(tmp_path))
        names = {cls.name for cls in project.task_classes()}
        assert names == {"EstimatorTask", "GridEstimator"}


class TestRealTree:
    SRC = Path(__file__).resolve().parents[2] / "src"

    def test_src_has_no_loadtime_cycles(self):
        project = build_project(_contexts_from_tree(self.SRC))
        assert project.import_cycles() == []

    def test_engine_chunk_loop_is_worker_reachable(self):
        project = build_project(_contexts_from_tree(self.SRC))
        reachable = project.seam_reachable()
        assert "repro.simulation.engine::_run_chunk" in reachable
        assert "repro.simulation.engine::_chunk_loop" in reachable

    def test_estimator_tasks_are_discovered(self):
        project = build_project(_contexts_from_tree(self.SRC))
        names = {cls.name for cls in project.task_classes()}
        assert "EstimatorTask" in names
        assert "LifetimeTask" in names
