"""Tests for the uniform-deployment probability formulas."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.uniform_theory import (
    coverage_probability_single_point,
    expected_covering_sensors,
    grid_failure_bounds,
    necessary_failure_probability,
    necessary_failure_probability_exact,
    per_sensor_sector_probability,
    point_failure_probability,
    sufficient_failure_probability,
)
from repro.errors import InvalidParameterError
from repro.sensors.model import CameraSpec, HeterogeneousProfile

thetas = st.floats(min_value=0.05, max_value=math.pi, allow_nan=False)
small_areas = st.floats(min_value=1e-6, max_value=0.05, allow_nan=False)
ns = st.integers(min_value=1, max_value=10_000)


def homogeneous(s, phi=math.pi / 2):
    return HeterogeneousProfile.homogeneous(CameraSpec.from_area(s, phi))


class TestPerSensorSectorProbability:
    def test_necessary_formula(self):
        """Section III-A: (2theta/2pi) * pi r^2 * (phi/2pi) = theta*s/pi."""
        theta, r, phi = math.pi / 3, 0.2, math.pi / 2
        s = 0.5 * phi * r * r
        expected = (2 * theta / (2 * math.pi)) * math.pi * r * r * (phi / (2 * math.pi))
        assert per_sensor_sector_probability(s, theta, "necessary") == pytest.approx(
            expected
        )
        assert expected == pytest.approx(theta * s / math.pi)

    def test_sufficient_is_half(self):
        s, theta = 0.01, 1.0
        assert per_sensor_sector_probability(
            s, theta, "sufficient"
        ) == pytest.approx(0.5 * per_sensor_sector_probability(s, theta, "necessary"))

    def test_caps_at_one(self):
        assert per_sensor_sector_probability(10.0, math.pi, "necessary") == 1.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            per_sensor_sector_probability(0.0, 1.0, "necessary")
        with pytest.raises(InvalidParameterError):
            per_sensor_sector_probability(0.1, 1.0, "bogus")


class TestFailureProbabilities:
    def test_in_unit_interval(self, two_group_profile):
        for n in (10, 100, 1000):
            for theta in (0.5, 1.0, math.pi):
                p = necessary_failure_probability(two_group_profile, n, theta)
                q = sufficient_failure_probability(two_group_profile, n, theta)
                assert 0.0 <= p <= 1.0
                assert 0.0 <= q <= 1.0

    def test_sufficient_harder_than_necessary(self, two_group_profile):
        """Failing the sufficient condition is more likely."""
        for n in (50, 200, 800):
            p_n = necessary_failure_probability(two_group_profile, n, math.pi / 3)
            p_s = sufficient_failure_probability(two_group_profile, n, math.pi / 3)
            assert p_s >= p_n

    def test_decreasing_in_n(self, two_group_profile):
        values = [
            necessary_failure_probability(two_group_profile, n, math.pi / 3)
            for n in (10, 100, 1000, 5000)
        ]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_decreasing_in_area(self):
        theta, n = math.pi / 3, 300
        values = [
            necessary_failure_probability(homogeneous(s), n, theta)
            for s in (0.001, 0.01, 0.05)
        ]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_theta_pi_reduces_to_miss_probability(self):
        """At theta = pi there is one sector: failure = no sensor covers P.

        P(miss) = (1 - s/2)^n since the sector prob is pi*s/pi... i.e.
        theta*s/pi = s at theta = pi... wait: theta*s/pi = s.  Then
        P(F) = 1 - [1 - (1-s)^n]^1 = (1-s)^n."""
        s, n = 0.01, 200
        p = necessary_failure_probability(homogeneous(s), n, math.pi)
        assert p == pytest.approx((1 - s) ** n, rel=1e-9)

    def test_dispatch(self, two_group_profile):
        assert point_failure_probability(
            two_group_profile, 100, 1.0, "necessary"
        ) == necessary_failure_probability(two_group_profile, 100, 1.0)
        with pytest.raises(InvalidParameterError):
            point_failure_probability(two_group_profile, 100, 1.0, "bogus")

    @given(small_areas, ns, thetas)
    @settings(max_examples=200)
    def test_bounds_property(self, s, n, theta):
        p = necessary_failure_probability(homogeneous(s), n, theta)
        assert 0.0 <= p <= 1.0

    def test_heterogeneous_matches_manual(self, two_group_profile):
        """Replicate eq. (2) by hand for the two-group profile."""
        n, theta = 500, math.pi / 4
        counts = two_group_profile.group_counts(n)
        vacancy = 1.0
        for g, n_y in zip(two_group_profile.groups, counts):
            vacancy *= (1 - theta * g.sensing_area / math.pi) ** n_y
        k = math.ceil(math.pi / theta)
        expected = 1 - (1 - vacancy) ** k
        assert necessary_failure_probability(
            two_group_profile, n, theta
        ) == pytest.approx(expected, rel=1e-9)


class TestInclusionExclusion:
    def test_close_to_independent_version(self):
        """The paper's independence step is a good approximation."""
        profile = homogeneous(0.01)
        for theta in (math.pi / 2, math.pi / 4):  # divide 2*pi: exact IE
            approx = necessary_failure_probability(profile, 400, theta)
            exact = necessary_failure_probability_exact(profile, 400, theta)
            assert approx == pytest.approx(exact, abs=5e-3)

    def test_exact_at_single_sector(self):
        """theta = pi has one sector: both formulas are identical."""
        profile = homogeneous(0.02)
        assert necessary_failure_probability_exact(
            profile, 300, math.pi
        ) == pytest.approx(necessary_failure_probability(profile, 300, math.pi), rel=1e-9)

    def test_exact_is_larger(self):
        """Negative correlation between sector occupancies means the
        independent approximation slightly *underestimates* failure."""
        profile = homogeneous(0.02)
        theta = math.pi / 2
        exact = necessary_failure_probability_exact(profile, 100, theta)
        approx = necessary_failure_probability(profile, 100, theta)
        assert exact >= approx - 1e-12


class TestGridBounds:
    def test_upper_at_least_lower(self, two_group_profile):
        bounds = grid_failure_bounds(two_group_profile, 300, math.pi / 3)
        assert 0.0 <= bounds.lower <= bounds.upper <= 1.0

    def test_default_grid_size(self, two_group_profile):
        bounds = grid_failure_bounds(two_group_profile, 300, math.pi / 3)
        assert bounds.grid_points == math.ceil(300 * math.log(300))

    def test_custom_grid(self, two_group_profile):
        bounds = grid_failure_bounds(
            two_group_profile, 300, math.pi / 3, grid_points=100
        )
        assert bounds.grid_points == 100
        assert bounds.upper == pytest.approx(min(1.0, 100 * bounds.point_failure))

    def test_validation(self, two_group_profile):
        with pytest.raises(InvalidParameterError):
            grid_failure_bounds(two_group_profile, 300, 1.0, grid_points=0)


class TestAuxiliaries:
    def test_expected_covering_sensors(self):
        profile = homogeneous(0.01)
        assert expected_covering_sensors(profile, 500) == pytest.approx(5.0)

    def test_expected_covering_heterogeneous(self, two_group_profile):
        n = 1000
        counts = two_group_profile.group_counts(n)
        expected = sum(
            c * g.sensing_area for g, c in zip(two_group_profile.groups, counts)
        )
        assert expected_covering_sensors(two_group_profile, n) == pytest.approx(expected)

    def test_coverage_probability(self):
        profile = homogeneous(0.01)
        assert coverage_probability_single_point(profile, 300) == pytest.approx(
            1 - (1 - 0.01) ** 300, rel=1e-9
        )

    def test_coverage_probability_saturates(self):
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=0.9, angle_of_view=2 * math.pi)
        )
        assert coverage_probability_single_point(profile, 10) == 1.0
