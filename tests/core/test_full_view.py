"""Tests for the exact full-view coverage criterion."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.full_view import (
    FullViewDiagnostics,
    diagnose_point,
    full_view_coverage_fraction,
    is_full_view_covered,
    minimum_sensors_for_full_view,
    point_is_full_view_covered,
    safe_direction_set,
    validate_effective_angle,
)
from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI
from repro.sensors.fleet import SensorFleet

angles = st.floats(min_value=0.0, max_value=TWO_PI, allow_nan=False)
thetas = st.floats(min_value=0.05, max_value=math.pi, allow_nan=False)


class TestValidateEffectiveAngle:
    def test_valid(self):
        assert validate_effective_angle(math.pi / 4) == math.pi / 4

    def test_pi_allowed(self):
        assert validate_effective_angle(math.pi) == math.pi

    def test_invalid(self):
        for bad in (0.0, -1.0, math.pi + 0.1):
            with pytest.raises(InvalidParameterError):
                validate_effective_angle(bad)


class TestIsFullViewCovered:
    def test_no_sensors(self):
        assert not is_full_view_covered([], math.pi / 2)

    def test_single_sensor_needs_theta_pi(self):
        assert is_full_view_covered([1.0], math.pi)
        assert not is_full_view_covered([1.0], math.pi - 0.01)

    def test_evenly_spaced_minimum(self):
        """ceil(pi/theta) evenly spaced directions exactly suffice."""
        theta = math.pi / 3
        k = 3  # ceil(pi / (pi/3))
        dirs = np.arange(k) * (TWO_PI / k)  # gaps of 2*pi/3 = 2*theta
        assert is_full_view_covered(dirs, theta)

    def test_one_fewer_fails(self):
        theta = math.pi / 3
        dirs = np.arange(2) * (TWO_PI / 2)  # gaps of pi > 2*theta
        assert not is_full_view_covered(dirs, theta)

    def test_clustered_directions_fail(self):
        theta = math.pi / 4
        dirs = [0.0, 0.05, 0.1, 0.15]  # huge gap opposite the cluster
        assert not is_full_view_covered(dirs, theta)

    def test_gap_exactly_two_theta(self):
        theta = 0.5
        dirs = np.arange(0, TWO_PI - 1e-9, 2 * theta)
        # Max gap is at most 2*theta by construction.
        assert is_full_view_covered(dirs, theta)

    @given(st.lists(angles, min_size=1, max_size=20), thetas)
    @settings(max_examples=300)
    def test_matches_interval_cover(self, dirs, theta):
        """Gap criterion == safe-direction arcs covering the circle."""
        from repro.geometry.intervals import max_circular_gap

        gap = max_circular_gap(dirs)
        covered = safe_direction_set(dirs, theta).covers_circle()
        if gap < 2 * theta - 1e-9:
            assert is_full_view_covered(dirs, theta)
            assert covered
        elif gap > 2 * theta + 1e-9:
            assert not is_full_view_covered(dirs, theta)
            assert not covered

    @given(st.lists(angles, min_size=1, max_size=20), thetas, angles)
    @settings(max_examples=200)
    def test_rotation_invariant(self, dirs, theta, offset):
        rotated = [(d + offset) % TWO_PI for d in dirs]
        assert is_full_view_covered(dirs, theta) == is_full_view_covered(rotated, theta)

    @given(st.lists(angles, min_size=1, max_size=20), thetas, angles)
    @settings(max_examples=200)
    def test_monotone_in_sensors(self, dirs, theta, extra):
        """Adding a sensor can never break full-view coverage."""
        if is_full_view_covered(dirs, theta):
            assert is_full_view_covered(dirs + [extra], theta)

    @given(st.lists(angles, min_size=1, max_size=20), thetas)
    @settings(max_examples=200)
    def test_monotone_in_theta(self, dirs, theta):
        """A looser effective angle can never break coverage."""
        if is_full_view_covered(dirs, theta) and theta < math.pi - 0.01:
            assert is_full_view_covered(dirs, min(math.pi, theta + 0.01))


class TestSafeDirectionSet:
    def test_empty(self):
        assert safe_direction_set([], 1.0).is_empty

    def test_single_direction_measure(self):
        s = safe_direction_set([0.0], 0.5)
        assert s.measure() == pytest.approx(1.0)

    def test_antipodal_cover(self):
        s = safe_direction_set([0.0, math.pi], math.pi / 2)
        assert s.is_full_circle


class TestPointIsFullViewCovered:
    def test_against_fleet(self):
        # Three sensors around the centre, all looking inward.
        k = 3
        theta = math.pi / 3
        ring = np.arange(k) * (TWO_PI / k)
        positions = np.stack([0.5 + 0.2 * np.cos(ring), 0.5 + 0.2 * np.sin(ring)], axis=1)
        fleet = SensorFleet(
            positions=positions,
            orientations=(ring + math.pi) % TWO_PI,
            radii=np.full(k, 0.3),
            angles=np.full(k, math.pi / 2),
        )
        assert point_is_full_view_covered(fleet, (0.5, 0.5), theta)
        # Stricter theta fails with only 3 sensors at 2pi/3 gaps.
        assert not point_is_full_view_covered(fleet, (0.5, 0.5), math.pi / 4)


class TestDiagnostics:
    def test_uncovered_point(self):
        fleet = SensorFleet(
            positions=np.empty((0, 2)),
            orientations=np.empty(0),
            radii=np.empty(0),
            angles=np.empty(0),
        )
        diag = diagnose_point(fleet, (0.5, 0.5), math.pi / 2)
        assert not diag.covered
        assert diag.num_covering_sensors == 0
        assert diag.max_gap == pytest.approx(TWO_PI)
        assert diag.worst_direction is None
        assert diag.safe_measure == 0.0

    def test_single_sensor(self):
        fleet = SensorFleet(
            positions=np.array([[0.7, 0.5]]),
            orientations=np.array([math.pi]),
            radii=np.array([0.3]),
            angles=np.array([math.pi]),
        )
        diag = diagnose_point(fleet, (0.5, 0.5), math.pi / 2)
        assert diag.num_covering_sensors == 1
        # Worst direction is directly away from the sensor (west).
        assert diag.worst_direction == pytest.approx(math.pi)
        assert not diag.covered
        assert diag.slack < 0

    def test_worst_direction_is_unsafe_witness(self):
        """When not covered, the worst direction must be > theta from
        every viewed direction."""
        from repro.geometry.angles import angular_distance

        theta = math.pi / 4
        positions = np.array([[0.6, 0.5], [0.5, 0.65], [0.42, 0.5]])
        fleet = SensorFleet(
            positions=positions,
            orientations=np.array([math.pi, -math.pi / 2, 0.0]),
            radii=np.full(3, 0.3),
            angles=np.full(3, math.pi),
        )
        diag = diagnose_point(fleet, (0.5, 0.5), theta)
        if not diag.covered:
            dirs = fleet.covering_directions((0.5, 0.5))
            assert all(angular_distance(diag.worst_direction, d) > theta for d in dirs)

    def test_covered_has_positive_slack(self):
        k = 8
        ring = np.arange(k) * (TWO_PI / k)
        positions = np.stack([0.5 + 0.2 * np.cos(ring), 0.5 + 0.2 * np.sin(ring)], axis=1)
        fleet = SensorFleet(
            positions=positions,
            orientations=(ring + math.pi) % TWO_PI,
            radii=np.full(k, 0.3),
            angles=np.full(k, math.pi),
        )
        diag = diagnose_point(fleet, (0.5, 0.5), math.pi / 2)
        assert diag.covered
        assert diag.slack > 0
        assert diag.max_gap == pytest.approx(TWO_PI / 8)
        assert diag.safe_measure == pytest.approx(TWO_PI)


class TestCoverageFraction:
    def test_dense_inward_ring_covers_centre_region(self):
        k = 24
        ring = np.arange(k) * (TWO_PI / k)
        positions = np.stack([0.5 + 0.3 * np.cos(ring), 0.5 + 0.3 * np.sin(ring)], axis=1)
        fleet = SensorFleet(
            positions=positions,
            orientations=(ring + math.pi) % TWO_PI,
            radii=np.full(k, 0.45),
            angles=np.full(k, math.pi),
        )
        probes = np.array([[0.5, 0.5], [0.52, 0.48], [0.45, 0.55]])
        frac = full_view_coverage_fraction(fleet, probes, math.pi / 3)
        assert frac == 1.0

    def test_empty_fleet_zero(self):
        fleet = SensorFleet(
            positions=np.empty((0, 2)),
            orientations=np.empty(0),
            radii=np.empty(0),
            angles=np.empty(0),
        )
        frac = full_view_coverage_fraction(fleet, np.array([[0.5, 0.5]]), 1.0)
        assert frac == 0.0

    def test_needs_points(self, small_fleet):
        with pytest.raises(InvalidParameterError):
            full_view_coverage_fraction(small_fleet, np.empty((0, 2)), 1.0)


class TestMinimumSensors:
    def test_values(self):
        assert minimum_sensors_for_full_view(math.pi) == 1
        assert minimum_sensors_for_full_view(math.pi / 2) == 2
        assert minimum_sensors_for_full_view(math.pi / 3) == 3
        assert minimum_sensors_for_full_view(math.pi / 4 + 0.001) == 4

    @given(thetas)
    def test_achievable(self, theta):
        """The minimum is achievable by evenly spaced directions."""
        k = minimum_sensors_for_full_view(theta)
        dirs = np.arange(k) * (TWO_PI / k)
        assert is_full_view_covered(dirs, theta)

    @given(thetas)
    def test_tight(self, theta):
        """One fewer (evenly spaced) direction fails for theta < pi."""
        k = minimum_sensors_for_full_view(theta)
        if k >= 2:
            dirs = np.arange(k - 1) * (TWO_PI / (k - 1))
            # Gap is 2*pi/(k-1) > 2*theta by minimality unless boundary.
            if TWO_PI / (k - 1) > 2 * theta + 1e-9:
                assert not is_full_view_covered(dirs, theta)
