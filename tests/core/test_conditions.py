"""Tests for the paper's necessary and sufficient sector conditions."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.conditions import (
    condition_fraction,
    necessary_condition_holds,
    necessary_partition,
    point_meets_necessary_condition,
    point_meets_sufficient_condition,
    sector_count_necessary,
    sector_count_sufficient,
    sufficient_condition_holds,
    sufficient_partition,
)
from repro.core.full_view import is_full_view_covered
from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI

angles = st.floats(min_value=0.0, max_value=TWO_PI, allow_nan=False)
thetas = st.floats(min_value=0.05, max_value=math.pi, allow_nan=False)


class TestSectorCounts:
    def test_necessary_counts(self):
        assert sector_count_necessary(math.pi) == 1
        assert sector_count_necessary(math.pi / 2) == 2
        assert sector_count_necessary(math.pi / 3) == 3
        assert sector_count_necessary(0.9 * math.pi) == 2  # pi/theta ~ 1.11

    def test_sufficient_counts(self):
        assert sector_count_sufficient(math.pi) == 2
        assert sector_count_sufficient(math.pi / 2) == 4
        assert sector_count_sufficient(math.pi / 3) == 6

    @given(thetas)
    def test_sufficient_roughly_double(self, theta):
        kn = sector_count_necessary(theta)
        ks = sector_count_sufficient(theta)
        assert 2 * kn - 1 <= ks <= 2 * kn

    @given(thetas)
    def test_counts_match_partitions(self, theta):
        assert len(necessary_partition(theta).sectors) == sector_count_necessary(theta)
        assert len(sufficient_partition(theta).sectors) == sector_count_sufficient(theta)


class TestPartitionStructure:
    def test_no_patch_when_divides(self):
        p = necessary_partition(math.pi / 2)  # sector angle pi, divides 2*pi
        assert p.alpha == 0.0
        assert len(p.sectors) == 2

    def test_patch_present_otherwise(self):
        theta = 0.4 * math.pi  # sector angle 0.8*pi; 2*pi/0.8pi = 2.5
        p = necessary_partition(theta)
        assert p.alpha > 0
        assert len(p.sectors) == 3
        # Patch has the full sector angle and shares T_alpha's bisector.
        patch = p.sectors[-1]
        assert patch.extent == pytest.approx(2 * theta)
        alpha_bisector = p.num_full_sectors * 2 * theta + p.alpha / 2
        assert patch.midpoint == pytest.approx(alpha_bisector % TWO_PI)

    def test_full_sectors_tile(self):
        theta = math.pi / 3
        p = necessary_partition(theta, start=0.5)
        for j, sector in enumerate(p.sectors[: p.num_full_sectors]):
            assert sector.start == pytest.approx((0.5 + j * 2 * theta) % TWO_PI)
            assert sector.extent == pytest.approx(2 * theta)

    @given(thetas, angles)
    @settings(max_examples=200)
    def test_sectors_cover_circle(self, theta, probe):
        """Every direction lies in at least one sector of each partition."""
        for partition in (necessary_partition(theta), sufficient_partition(theta)):
            assert any(s.contains(probe, tol=1e-9) for s in partition.sectors)


class TestOccupancy:
    def test_all_occupied_simple(self):
        theta = math.pi / 2  # two sectors: [0, pi], [pi, 2pi]
        assert necessary_condition_holds([0.5, 4.0], theta)
        assert not necessary_condition_holds([0.5, 1.0], theta)

    def test_empty_directions(self):
        assert not necessary_condition_holds([], math.pi / 2)
        assert not sufficient_condition_holds([], math.pi / 2)

    def test_empty_sector_bisectors(self):
        theta = math.pi / 2
        p = necessary_partition(theta)
        witnesses = p.empty_sector_bisectors([0.5])  # only first sector occupied
        assert witnesses.shape == (1,)
        assert witnesses[0] == pytest.approx(3 * math.pi / 2)

    def test_occupancy_vector(self):
        theta = math.pi / 2
        p = necessary_partition(theta)
        occ = p.occupancy([0.5, 1.0])
        assert occ.tolist() == [True, False]


class TestSandwich:
    """The core correctness property: sufficient => exact => necessary."""

    @given(st.lists(angles, min_size=0, max_size=24), thetas)
    @settings(max_examples=500)
    def test_sufficient_implies_exact(self, dirs, theta):
        if sufficient_condition_holds(dirs, theta):
            assert is_full_view_covered(dirs, theta)

    @given(st.lists(angles, min_size=0, max_size=24), thetas)
    @settings(max_examples=500)
    def test_exact_implies_necessary(self, dirs, theta):
        if dirs and is_full_view_covered(dirs, theta):
            assert necessary_condition_holds(dirs, theta)

    @given(st.lists(angles, min_size=0, max_size=24), thetas, angles)
    @settings(max_examples=300)
    def test_exact_implies_necessary_any_anchor(self, dirs, theta, start):
        """Full-view coverage implies the necessary condition for EVERY
        choice of start line, not just the default."""
        if dirs and is_full_view_covered(dirs, theta):
            assert necessary_condition_holds(dirs, theta, start=start)

    def test_necessary_not_sufficient_witness(self):
        """The paper's Fig. 9 (left): sectors occupied but a hole remains."""
        theta = math.pi / 3  # sectors of 2*pi/3; 3 sectors
        # One direction just inside the start of each sector: gaps of
        # 2*pi/3 - eps... choose directions at sector *starts*: 0,
        # 2pi/3, 4pi/3 -> gaps exactly 2theta -> covered. Instead put
        # two at far ends to open a gap: 0.01, and near end of sector 1.
        dirs = [2 * theta - 0.01, 2 * theta + 0.01, 2 * TWO_PI / 3 + 1.0]
        # All three sectors occupied?
        if necessary_condition_holds(dirs, theta):
            assert not is_full_view_covered(dirs, theta)

    def test_sufficient_not_necessary_witness(self):
        """The paper's Fig. 9 (right): coverage without the sufficient
        partition being fully occupied."""
        theta = math.pi / 2
        # Two antipodal sensors cover at theta = pi/2 (gaps = pi = 2theta)
        dirs = [0.5, 0.5 + math.pi]
        assert is_full_view_covered(dirs, theta)
        # But the sufficient partition has 4 sectors and only 2 can be hit.
        assert not sufficient_condition_holds(dirs, theta)


class TestFleetWrappers:
    def test_point_wrappers_agree_with_direction_tests(self, small_fleet):
        theta = math.pi / 3
        point = (0.5, 0.5)
        dirs = small_fleet.covering_directions(point)
        assert point_meets_necessary_condition(
            small_fleet, point, theta
        ) == necessary_condition_holds(dirs, theta)
        assert point_meets_sufficient_condition(
            small_fleet, point, theta
        ) == sufficient_condition_holds(dirs, theta)


class TestConditionFraction:
    def test_ordering_over_grid(self, small_fleet, rng):
        theta = math.pi / 3
        points = rng.uniform(size=(64, 2))
        f_nec = condition_fraction(small_fleet, points, theta, "necessary")
        f_exact = condition_fraction(small_fleet, points, theta, "exact")
        f_suf = condition_fraction(small_fleet, points, theta, "sufficient")
        assert f_suf <= f_exact <= f_nec

    def test_unknown_condition(self, small_fleet):
        with pytest.raises(InvalidParameterError):
            condition_fraction(small_fleet, np.array([[0.5, 0.5]]), 1.0, "bogus")

    def test_empty_points(self, small_fleet):
        with pytest.raises(InvalidParameterError):
            condition_fraction(small_fleet, np.empty((0, 2)), 1.0, "exact")
