"""Tests for redundancy/robustness analysis, including brute-force
cross-checks of the exact algorithms."""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.full_view import is_full_view_covered, minimum_sensors_for_full_view
from repro.core.redundancy import (
    breach_cost,
    minimum_guard_set,
    redundant_sensors,
    robustness_margin,
)
from repro.geometry.angles import TWO_PI

angles = st.floats(min_value=0.0, max_value=TWO_PI, allow_nan=False)
thetas = st.floats(min_value=0.15, max_value=math.pi, allow_nan=False)


def brute_force_min_guard(dirs, theta):
    """Smallest covering subset by exhaustive search (small k only)."""
    k = len(dirs)
    for size in range(1, k + 1):
        for subset in itertools.combinations(range(k), size):
            if is_full_view_covered([dirs[i] for i in subset], theta):
                return size
    return None


def brute_force_breach(dirs, theta):
    """Smallest removal set that breaks coverage, by exhaustive search."""
    k = len(dirs)
    if not is_full_view_covered(dirs, theta):
        return 0
    for size in range(1, k + 1):
        for removal in itertools.combinations(range(k), size):
            rest = [d for i, d in enumerate(dirs) if i not in removal]
            if not is_full_view_covered(rest, theta):
                return size
    return k


class TestBreachCost:
    def test_uncovered_is_zero(self):
        assert breach_cost([0.0, 0.1], math.pi / 4) == 0
        assert breach_cost([], math.pi / 4) == 0

    def test_minimal_cover_costs_one(self):
        """Evenly spaced minimum configuration: removing any one sensor
        opens a gap."""
        theta = math.pi / 3
        dirs = np.arange(3) * (TWO_PI / 3)
        assert breach_cost(dirs, theta) == 1

    def test_doubled_cover_costs_two(self):
        theta = math.pi / 3
        base = np.arange(3) * (TWO_PI / 3)
        doubled = np.concatenate([base, base + 1e-4])
        assert breach_cost(doubled, theta) == 2

    def test_theta_pi_single_sensor(self):
        # One sensor covers at theta = pi; removing it breaks coverage.
        assert breach_cost([1.0], math.pi) == 1

    @given(st.lists(angles, min_size=1, max_size=7), thetas)
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, dirs, theta):
        assert breach_cost(dirs, theta) == brute_force_breach(dirs, theta)

    @given(st.lists(angles, min_size=1, max_size=10), thetas)
    @settings(max_examples=150, deadline=None)
    def test_positive_iff_covered(self, dirs, theta):
        cost = breach_cost(dirs, theta)
        if is_full_view_covered(dirs, theta):
            assert cost >= 1
        else:
            assert cost == 0


class TestMinimumGuardSet:
    def test_none_when_uncovered(self):
        assert minimum_guard_set([0.0, 0.2], math.pi / 4) is None

    def test_single_at_theta_pi(self):
        guard = minimum_guard_set([1.0, 2.0, 3.0], math.pi)
        assert guard is not None
        assert len(guard) == 1

    def test_already_minimal(self):
        theta = math.pi / 3
        dirs = (np.arange(3) * (TWO_PI / 3)).tolist()
        guard = minimum_guard_set(dirs, theta)
        assert guard is not None and len(guard) == 3

    def test_prunes_redundancy(self):
        theta = math.pi / 2
        # Two antipodal sensors suffice; extras are pruned.
        dirs = [0.0, math.pi, 0.3, 2.0, 4.0]
        guard = minimum_guard_set(dirs, theta)
        assert guard is not None and len(guard) == 2

    def test_guard_set_actually_covers(self):
        theta = math.pi / 4
        rng = np.random.default_rng(0)
        for _ in range(50):
            dirs = rng.uniform(0, TWO_PI, size=12)
            guard = minimum_guard_set(dirs, theta)
            if guard is not None:
                assert is_full_view_covered(dirs[guard], theta)

    @given(st.lists(angles, min_size=1, max_size=7), thetas)
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force_size(self, dirs, theta):
        guard = minimum_guard_set(dirs, theta)
        expected = brute_force_min_guard(dirs, theta)
        if expected is None:
            assert guard is None
        else:
            assert guard is not None
            assert len(guard) == expected

    @given(st.lists(angles, min_size=1, max_size=12), thetas)
    @settings(max_examples=150, deadline=None)
    def test_lower_bound(self, dirs, theta):
        """Guard sets respect the paper's ceil(pi/theta) minimum."""
        guard = minimum_guard_set(dirs, theta)
        if guard is not None:
            assert len(guard) >= minimum_sensors_for_full_view(theta)

    @given(st.lists(angles, min_size=1, max_size=12), thetas)
    @settings(max_examples=100, deadline=None)
    def test_indices_valid_and_unique(self, dirs, theta):
        guard = minimum_guard_set(dirs, theta)
        if guard is not None:
            assert len(set(guard)) == len(guard)
            assert all(0 <= i < len(dirs) for i in guard)


class TestRedundantSensors:
    def test_empty_when_uncovered(self):
        assert redundant_sensors([0.0], math.pi / 4) == []

    def test_none_redundant_in_minimal_cover(self):
        theta = math.pi / 3
        dirs = (np.arange(3) * (TWO_PI / 3)).tolist()
        assert redundant_sensors(dirs, theta) == []

    def test_close_pair_redundant(self):
        """The paper's Fig. 9 (right): one of two close sensors is
        removable."""
        theta = math.pi / 3
        dirs = [0.0, 0.05, TWO_PI / 3, 2 * TWO_PI / 3]
        redundant = redundant_sensors(dirs, theta)
        assert 0 in redundant or 1 in redundant

    @given(st.lists(angles, min_size=1, max_size=10), thetas)
    @settings(max_examples=150, deadline=None)
    def test_each_reported_sensor_is_removable(self, dirs, theta):
        for i in redundant_sensors(dirs, theta):
            rest = [d for j, d in enumerate(dirs) if j != i]
            assert is_full_view_covered(rest, theta)


class TestRobustnessMargin:
    def test_range(self):
        theta = math.pi / 3
        dirs = np.arange(6) * (TWO_PI / 6)
        margin = robustness_margin(dirs, theta)
        assert 0.0 < margin <= 1.0

    def test_zero_when_uncovered(self):
        assert robustness_margin([0.0], math.pi / 4) == 0.0
        assert robustness_margin([], math.pi / 4) == 0.0

    def test_denser_ring_is_more_robust(self):
        theta = math.pi / 3
        sparse = np.arange(3) * (TWO_PI / 3)
        dense = np.arange(12) * (TWO_PI / 12)
        assert breach_cost(dense, theta) > breach_cost(sparse, theta)
