"""Tests for the k-coverage comparison machinery (Section VII)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.csa import csa_necessary
from repro.core.full_view import is_full_view_covered
from repro.core.kcoverage import (
    critical_esr,
    full_view_vs_k_coverage_margin,
    implied_k,
    is_k_covered,
    k_coverage_fraction,
    kumar_sufficient_area,
    one_coverage_csa,
    wang_cao_lattice_edge,
)
from repro.errors import InvalidParameterError

thetas = st.floats(min_value=0.05, max_value=math.pi, allow_nan=False)
ns = st.integers(min_value=3, max_value=1_000_000)


class TestOneCoverageCsa:
    def test_formula(self):
        n = 1000
        assert one_coverage_csa(n) == pytest.approx(
            (math.log(n) + math.log(math.log(n))) / n
        )

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            one_coverage_csa(2)

    def test_esr_conversion(self):
        """pi * R*(n)^2 == the 1-coverage CSA (Section VII-A)."""
        for n in (10, 100, 10_000):
            assert math.pi * critical_esr(n) ** 2 == pytest.approx(one_coverage_csa(n))


class TestImpliedK:
    def test_values(self):
        assert implied_k(math.pi) == 1
        assert implied_k(math.pi / 2) == 2
        assert implied_k(math.pi / 5) == 5
        assert implied_k(0.9 * math.pi) == 2

    @given(thetas)
    def test_matches_minimum_sensors(self, theta):
        from repro.core.full_view import minimum_sensors_for_full_view

        assert implied_k(theta) == minimum_sensors_for_full_view(theta)


class TestKumarArea:
    def test_formula(self):
        n, k = 1000, 3
        assert kumar_sufficient_area(n, k) == pytest.approx(
            (math.log(n) + 3 * math.log(math.log(n))) / n
        )

    def test_k1_equals_one_coverage(self):
        for n in (10, 1000):
            assert kumar_sufficient_area(n, 1) == pytest.approx(one_coverage_csa(n))

    def test_increasing_in_k(self):
        areas = [kumar_sufficient_area(1000, k) for k in (1, 2, 5, 10)]
        assert all(a < b for a, b in zip(areas, areas[1:]))

    def test_slack_term(self):
        assert kumar_sufficient_area(1000, 2, u_n=0.5) > kumar_sufficient_area(1000, 2)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            kumar_sufficient_area(2, 1)
        with pytest.raises(InvalidParameterError):
            kumar_sufficient_area(100, 0)


class TestDominance:
    """Section VII-B: s_N,c(n) >= s_K(n) at k = ceil(pi/theta).

    The claim is exact when pi/theta is an integer (the form the paper
    actually derives, replacing pi/theta by its ceiling); for
    non-integer ratios the exact-coefficient margin can be marginally
    negative.  Both behaviours are pinned here.
    """

    @given(ns, st.integers(min_value=1, max_value=64))
    @settings(max_examples=300)
    def test_margin_nonnegative_at_integer_ratios(self, n, k):
        theta = math.pi / k
        assert full_view_vs_k_coverage_margin(n, theta) >= -1e-12

    def test_margin_explicit_grid(self):
        for n in (10, 100, 1000, 100_000):
            for theta in (0.1 * math.pi, 0.25 * math.pi, 0.5 * math.pi, math.pi):
                assert csa_necessary(n, theta) >= kumar_sufficient_area(
                    n, implied_k(theta)
                ) - 1e-12

    def test_noninteger_ratio_margin_small(self):
        """Just below an integer ratio the exact margin may dip slightly
        negative — documented reproduction caveat (see kcoverage.py)."""
        margin = full_view_vs_k_coverage_margin(11, 3.0)  # pi/theta ~ 1.047
        assert abs(margin) < 0.01


class TestSimulationChecks:
    def test_is_k_covered(self, small_fleet):
        point = (0.5, 0.5)
        count = small_fleet.coverage_count(point)
        if count >= 1:
            assert is_k_covered(small_fleet, point, count)
            assert not is_k_covered(small_fleet, point, count + 1)

    def test_is_k_covered_validation(self, small_fleet):
        with pytest.raises(InvalidParameterError):
            is_k_covered(small_fleet, (0.5, 0.5), 0)

    def test_fraction_monotone_in_k(self, small_fleet, rng):
        points = rng.uniform(size=(50, 2))
        fractions = [k_coverage_fraction(small_fleet, points, k) for k in (1, 2, 4, 8)]
        assert all(a >= b for a, b in zip(fractions, fractions[1:]))

    def test_fraction_validation(self, small_fleet):
        with pytest.raises(InvalidParameterError):
            k_coverage_fraction(small_fleet, np.array([[0.5, 0.5]]), 0)
        with pytest.raises(InvalidParameterError):
            k_coverage_fraction(small_fleet, np.empty((0, 2)), 1)

    def test_full_view_implies_k_coverage(self, small_fleet, rng):
        """Definition-level implication, checked on a real fleet."""
        theta = math.pi / 3
        k = implied_k(theta)
        for probe in rng.uniform(size=(40, 2)):
            point = (float(probe[0]), float(probe[1]))
            dirs = small_fleet.covering_directions(point)
            if is_full_view_covered(dirs, theta):
                assert dirs.size >= k


class TestWangCaoEdge:
    def test_positive(self):
        assert wang_cao_lattice_edge(0.01, 0.05, 0.1) > 0

    def test_monotone_in_delta_theta(self):
        """A looser delta_theta (larger) allows a coarser lattice."""
        a = wang_cao_lattice_edge(0.01, 0.05, 0.05)
        b = wang_cao_lattice_edge(0.01, 0.05, 0.2)
        assert b > a

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            wang_cao_lattice_edge(0.0, 0.05, 0.1)
        with pytest.raises(InvalidParameterError):
            wang_cao_lattice_edge(0.01, 0.05, 2.0)
