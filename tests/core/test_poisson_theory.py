"""Tests for Theorems 3 and 4 (Poisson deployment)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.poisson_theory import (
    group_sector_success,
    poisson_necessary_probability,
    poisson_sufficient_probability,
    uniform_poisson_gap,
)
from repro.errors import InvalidParameterError
from repro.sensors.model import CameraSpec, HeterogeneousProfile

thetas = st.floats(min_value=0.05, max_value=math.pi, allow_nan=False)
radii = st.floats(min_value=0.01, max_value=0.4, allow_nan=False)
view_angles = st.floats(min_value=0.1, max_value=2 * math.pi, allow_nan=False)
intensities = st.floats(min_value=0.0, max_value=5000.0, allow_nan=False)


def homogeneous(s, phi=math.pi / 2):
    return HeterogeneousProfile.homogeneous(CameraSpec.from_area(s, phi))


class TestGroupSectorSuccess:
    def test_zero_intensity(self):
        assert group_sector_success(0.0, 0.2, 1.0, 1.0, "necessary") == 0.0

    def test_closed_form_value(self):
        """Q = 1 - exp(-theta * n_y * s_y / pi) for the necessary sector."""
        n_y, r, phi, theta = 300.0, 0.2, math.pi / 2, math.pi / 3
        s = 0.5 * phi * r * r
        expected = 1.0 - math.exp(-theta * n_y * s / math.pi)
        assert group_sector_success(n_y, r, phi, theta, "necessary") == pytest.approx(
            expected
        )

    def test_sufficient_rate_is_half(self):
        n_y, r, phi, theta = 300.0, 0.2, math.pi / 2, math.pi / 3
        q_n = group_sector_success(n_y, r, phi, theta, "necessary")
        q_s = group_sector_success(n_y, r, phi, theta, "sufficient")
        # -log(1-Q) is the exponent rate; sufficient is half the necessary.
        assert -math.log1p(-q_s) == pytest.approx(-0.5 * math.log1p(-q_n), rel=1e-9)

    @given(intensities, radii, view_angles, thetas)
    @settings(max_examples=150, deadline=None)  # the series sums ~1000s of terms
    def test_series_matches_closed_form(self, n_y, r, phi, theta):
        closed = group_sector_success(n_y, r, phi, theta, "necessary", "closed_form")
        series = group_sector_success(n_y, r, phi, theta, "necessary", "series")
        assert series == pytest.approx(closed, abs=1e-9)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            group_sector_success(-1.0, 0.2, 1.0, 1.0, "necessary")
        with pytest.raises(InvalidParameterError):
            group_sector_success(1.0, 0.2, 1.0, 1.0, "bogus")
        with pytest.raises(InvalidParameterError):
            group_sector_success(1.0, 0.2, 1.0, 1.0, "necessary", "bogus")

    @given(radii, view_angles, thetas)
    @settings(max_examples=100)
    def test_monotone_in_intensity(self, r, phi, theta):
        values = [
            group_sector_success(n_y, r, phi, theta, "necessary")
            for n_y in (10.0, 100.0, 1000.0)
        ]
        assert values[0] <= values[1] <= values[2]


class TestTheorems:
    def test_in_unit_interval(self, two_group_profile):
        for n in (50, 500, 5000):
            for theta in (0.5, math.pi / 3, math.pi):
                p_n = poisson_necessary_probability(two_group_profile, n, theta)
                p_s = poisson_sufficient_probability(two_group_profile, n, theta)
                assert 0.0 <= p_n <= 1.0
                assert 0.0 <= p_s <= 1.0

    def test_necessary_easier_than_sufficient(self, two_group_profile):
        for n in (50, 500):
            theta = math.pi / 3
            assert poisson_necessary_probability(
                two_group_profile, n, theta
            ) >= poisson_sufficient_probability(two_group_profile, n, theta)

    def test_increasing_in_n(self, two_group_profile):
        theta = math.pi / 3
        values = [
            poisson_necessary_probability(two_group_profile, n, theta)
            for n in (10, 100, 1000)
        ]
        assert values[0] <= values[1] <= values[2]

    def test_series_method_agrees(self, two_group_profile):
        for condition_fn in (
            poisson_necessary_probability,
            poisson_sufficient_probability,
        ):
            closed = condition_fn(two_group_profile, 400, math.pi / 4, "closed_form")
            series = condition_fn(two_group_profile, 400, math.pi / 4, "series")
            assert closed == pytest.approx(series, abs=1e-9)

    def test_theorem3_manual_homogeneous(self):
        """Replicate Theorem 3 by hand for a homogeneous fleet."""
        r, phi, theta, n = 0.15, math.pi / 2, math.pi / 3, 400
        profile = HeterogeneousProfile.homogeneous(CameraSpec(r, phi))
        mean = theta * n * r * r  # sector area (angle 2theta) x intensity
        q = 1.0 - math.exp(-mean * phi / (2 * math.pi))
        k = math.ceil(math.pi / theta)
        expected = q**k
        assert poisson_necessary_probability(profile, n, theta) == pytest.approx(
            expected, rel=1e-9
        )

    def test_validation(self, two_group_profile):
        with pytest.raises(InvalidParameterError):
            poisson_necessary_probability(two_group_profile, 0, 1.0)


class TestUniformPoissonGap:
    def test_small_and_shrinking(self, two_group_profile):
        gaps = [
            uniform_poisson_gap(two_group_profile, n, math.pi / 3) for n in (50, 200, 800)
        ]
        assert all(g < 0.1 for g in gaps)
        assert gaps[-1] < gaps[0] + 1e-9

    def test_both_conditions(self, two_group_profile):
        for condition in ("necessary", "sufficient"):
            assert uniform_poisson_gap(two_group_profile, 200, 1.0, condition) >= 0.0
