"""Property tests: the sparse candidate-pruned kernels are bit-identical
to the dense kernels, for every public kernel and every edge case the
dispatch policy can route through them."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batch import (
    SparseCovering,
    condition_mask,
    coverage_counts,
    coverage_fraction_fast,
    covering_and_directions,
    full_view_mask,
    max_gaps,
    sparse_covering_pairs,
)
from repro.core.kernels import (
    KERNEL_CHOICES,
    KERNEL_ENV_VAR,
    KernelPolicy,
    resolve_kernel,
)
from repro.deployment.uniform import UniformDeployment
from repro.errors import InvalidParameterError
from repro.obs.metrics import MetricsRegistry, metrics_scope
from repro.sensors.fleet import SensorFleet
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.engine import MonteCarloConfig
from repro.simulation.montecarlo import estimate_area_fraction

THETA = math.pi / 3

#: Wrap-seam probes: points hugging the torus seam in every corner, where
#: candidate cells wrap and dense/sparse disagreement would first show.
SEAM_POINTS = np.array(
    [[0.0, 0.0], [0.999, 0.001], [0.001, 0.999], [0.999, 0.999], [0.5, 0.0]]
)


def make_fleet(n: int, seed: int, radius: float = 0.2, mix: bool = True) -> SensorFleet:
    if n == 0:
        return SensorFleet(
            positions=np.empty((0, 2)),
            orientations=np.empty(0),
            radii=np.empty(0),
            angles=np.empty(0),
        )
    if mix and n > 1:
        profile = HeterogeneousProfile.from_pairs(
            [
                (CameraSpec(radius=radius, angle_of_view=math.pi / 2), 0.4),
                (CameraSpec(radius=0.6 * radius, angle_of_view=2.0), 0.6),
            ]
        )
    else:
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=radius, angle_of_view=math.pi / 2)
        )
    return UniformDeployment().deploy(profile, n, np.random.default_rng(seed))


def grid_points(side: int = 9) -> np.ndarray:
    centres = (np.arange(side) + 0.5) / side
    xs, ys = np.meshgrid(centres, centres)
    return np.column_stack([xs.ravel(), ys.ravel()])


def assert_kernels_identical(fleet: SensorFleet, points: np.ndarray, theta: float):
    """Every public kernel must agree bit-for-bit between paths."""
    assert np.array_equal(
        coverage_counts(fleet, points, kernel="dense"),
        coverage_counts(fleet, points, kernel="sparse"),
    )
    assert np.array_equal(
        max_gaps(fleet, points, kernel="dense"),
        max_gaps(fleet, points, kernel="sparse"),
    )
    assert np.array_equal(
        full_view_mask(fleet, points, theta, kernel="dense"),
        full_view_mask(fleet, points, theta, kernel="sparse"),
    )
    for condition in ("exact", "necessary", "sufficient"):
        assert np.array_equal(
            condition_mask(fleet, points, theta, condition, kernel="dense"),
            condition_mask(fleet, points, theta, condition, kernel="sparse"),
        ), condition
    for k in (1, 2, 5):
        assert np.array_equal(
            condition_mask(fleet, points, theta, "k_coverage", k=k, kernel="dense"),
            condition_mask(fleet, points, theta, "k_coverage", k=k, kernel="sparse"),
        ), k


class TestSparseCoveringPairs:
    def test_pairs_match_dense_matrices(self):
        fleet = make_fleet(120, seed=0)
        points = grid_points(8)
        sp = sparse_covering_pairs(fleet, points)
        dense_covers, dense_dirs = covering_and_directions(fleet, points)
        sp_covers, sp_dirs = sp.to_dense(len(fleet))
        assert np.array_equal(sp_covers, dense_covers)
        # Directions only comparable where the pair covers (non-candidate
        # pairs are nan in the sparse scatter).
        cov = dense_covers
        assert np.array_equal(
            np.nan_to_num(sp_dirs[cov], nan=-1.0),
            np.nan_to_num(dense_dirs[cov], nan=-1.0),
        )

    def test_rows_sorted_within_point(self):
        fleet = make_fleet(80, seed=1)
        sp = sparse_covering_pairs(fleet, grid_points(6))
        for i in range(sp.num_points):
            row = sp.sensors[sp.indptr[i] : sp.indptr[i + 1]]
            assert np.all(np.diff(row) > 0)

    def test_empty_fleet(self):
        fleet = make_fleet(0, seed=0)
        sp = sparse_covering_pairs(fleet, SEAM_POINTS)
        assert sp.num_points == len(SEAM_POINTS)
        assert sp.sensors.size == 0

    def test_no_points(self):
        fleet = make_fleet(10, seed=0)
        sp = sparse_covering_pairs(fleet, np.empty((0, 2)))
        assert sp.num_points == 0


class TestBitIdentity:
    @pytest.mark.parametrize("n,seed,radius", [
        (1, 0, 0.2),          # single sensor
        (25, 1, 0.05),        # tiny radius, mostly-empty candidate rows
        (150, 2, 0.2),        # moderate mixed fleet
        (400, 3, 0.08),       # paper regime: r ~ sqrt(log n / n)
        (60, 4, 0.9),         # radius spanning the whole torus
    ])
    def test_grid_sweep(self, n, seed, radius):
        fleet = make_fleet(n, seed=seed, radius=radius)
        assert_kernels_identical(fleet, grid_points(9), THETA)

    def test_wrap_seam_points(self):
        fleet = make_fleet(200, seed=5)
        assert_kernels_identical(fleet, SEAM_POINTS, THETA)

    def test_empty_fleet(self):
        fleet = make_fleet(0, seed=0)
        assert_kernels_identical(fleet, SEAM_POINTS, THETA)

    def test_no_points(self):
        fleet = make_fleet(30, seed=6)
        points = np.empty((0, 2))
        assert_kernels_identical(fleet, points, THETA)

    @pytest.mark.parametrize("theta", [0.05, math.pi / 6, math.pi / 2])
    def test_theta_sweep(self, theta):
        fleet = make_fleet(150, seed=7)
        assert_kernels_identical(fleet, grid_points(7), theta)

    def test_whole_torus_radius_candidates_are_all_sensors(self):
        # When a sensing disk spans the region the candidate superset
        # must degrade gracefully to the full sensor list.
        fleet = make_fleet(20, seed=8, radius=0.9, mix=False)
        sp = sparse_covering_pairs(fleet, SEAM_POINTS)
        assert np.all(np.diff(sp.indptr) == len(fleet))

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=60),
        seed=st.integers(min_value=0, max_value=1000),
        radius=st.floats(min_value=0.01, max_value=0.95),
        theta_frac=st.floats(min_value=0.02, max_value=0.5),
    )
    def test_property_sweep(self, n, seed, radius, theta_frac):
        fleet = make_fleet(n, seed=seed, radius=radius)
        points = np.vstack(
            [SEAM_POINTS, np.random.default_rng(seed + 1).uniform(size=(12, 2))]
        )
        assert_kernels_identical(fleet, points, theta_frac * math.pi)

    def test_coverage_fraction_fast_agrees(self):
        fleet = make_fleet(120, seed=9)
        points = grid_points(8)
        assert coverage_fraction_fast(
            fleet, points, THETA, kernel="dense"
        ) == coverage_fraction_fast(fleet, points, THETA, kernel="sparse")


class TestEstimatorLevelIdentity:
    """kernel="sparse" flows through tasks, serial and parallel alike."""

    PROFILE = HeterogeneousProfile.homogeneous(
        CameraSpec(radius=0.25, angle_of_view=math.pi / 2)
    )

    def test_area_fraction_serial_dense_vs_sparse(self):
        serial = MonteCarloConfig(trials=6, seed=0)
        dense = estimate_area_fraction(
            self.PROFILE, 60, THETA, "exact", serial, sample_points=64,
            kernel="dense",
        )
        sparse = estimate_area_fraction(
            self.PROFILE, 60, THETA, "exact", serial, sample_points=64,
            kernel="sparse",
        )
        assert dense == sparse

    def test_area_fraction_sparse_serial_vs_workers(self):
        serial = MonteCarloConfig(trials=6, seed=0)
        parallel = MonteCarloConfig(trials=6, seed=0, workers=2)
        a = estimate_area_fraction(
            self.PROFILE, 60, THETA, "exact", serial, sample_points=64,
            kernel="sparse",
        )
        b = estimate_area_fraction(
            self.PROFILE, 60, THETA, "exact", parallel, sample_points=64,
            kernel="sparse",
        )
        assert a == b


class TestResolveKernel:
    @pytest.fixture(autouse=True)
    def _clear_kernel_env(self, monkeypatch):
        # The heuristic assertions must hold whatever the ambient
        # environment (CI runs this suite under FULLVIEW_KERNEL=sparse).
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)

    def test_explicit_choice_wins(self):
        fleet = make_fleet(10, seed=0)
        assert resolve_kernel(fleet, 5, "dense") == "dense"
        assert resolve_kernel(fleet, 5, "sparse") == "sparse"

    def test_invalid_kernel_rejected(self):
        fleet = make_fleet(5, seed=0)
        with pytest.raises(InvalidParameterError, match="kernel"):
            resolve_kernel(fleet, 5, "fast")

    def test_small_workloads_stay_dense(self):
        fleet = make_fleet(10, seed=0)
        assert resolve_kernel(fleet, 10, "auto") == "dense"

    def test_empty_fleet_stays_dense(self):
        fleet = make_fleet(0, seed=0)
        assert resolve_kernel(fleet, 10_000, "auto") == "dense"

    def test_large_low_density_goes_sparse(self):
        fleet = make_fleet(500, seed=0, radius=0.05)
        assert resolve_kernel(fleet, 500, "auto") == "sparse"

    def test_high_density_stays_dense(self):
        fleet = make_fleet(500, seed=0, radius=0.9, mix=False)
        assert resolve_kernel(fleet, 500, "auto") == "dense"

    def test_env_override(self, monkeypatch):
        fleet = make_fleet(10, seed=0)  # auto would say dense
        monkeypatch.setenv(KERNEL_ENV_VAR, "sparse")
        assert resolve_kernel(fleet, 10, "auto") == "sparse"
        # An explicit argument still beats the environment.
        assert resolve_kernel(fleet, 10, "dense") == "dense"

    def test_env_auto_falls_through(self, monkeypatch):
        fleet = make_fleet(10, seed=0)
        monkeypatch.setenv(KERNEL_ENV_VAR, "auto")
        assert resolve_kernel(fleet, 10, "auto") == "dense"

    def test_env_invalid_rejected(self, monkeypatch):
        fleet = make_fleet(10, seed=0)
        monkeypatch.setenv(KERNEL_ENV_VAR, "turbo")
        with pytest.raises(InvalidParameterError):
            resolve_kernel(fleet, 10, "auto")

    def test_env_override_changes_results_path_not_results(self, monkeypatch):
        fleet = make_fleet(200, seed=5)
        points = grid_points(7)
        baseline = full_view_mask(fleet, points, THETA, kernel="dense")
        monkeypatch.setenv(KERNEL_ENV_VAR, "sparse")
        assert np.array_equal(full_view_mask(fleet, points, THETA), baseline)


class TestKernelPolicy:
    def test_defaults_to_auto(self):
        assert KernelPolicy().kernel == "auto"

    @pytest.mark.parametrize("choice", KERNEL_CHOICES)
    def test_accepts_all_choices(self, choice):
        assert KernelPolicy(kernel=choice).kernel == choice

    def test_rejects_unknown(self):
        with pytest.raises(InvalidParameterError):
            KernelPolicy(kernel="gpu")

    def test_is_picklable(self):
        import pickle

        policy = KernelPolicy(kernel="sparse")
        assert pickle.loads(pickle.dumps(policy)) == policy


class TestObservability:
    def test_kernel_choice_counted(self):
        fleet = make_fleet(50, seed=0)
        points = grid_points(5)
        registry = MetricsRegistry()
        with metrics_scope(registry):
            full_view_mask(fleet, points, THETA, kernel="sparse")
            full_view_mask(fleet, points, THETA, kernel="dense")
            full_view_mask(fleet, points, THETA, kernel="dense")
        assert registry.counter("kernel_sparse") == 1
        assert registry.counter("kernel_dense") == 2

    def test_condition_mask_counts_once(self):
        # "exact" delegates internally; the choice must be counted once.
        fleet = make_fleet(50, seed=0)
        registry = MetricsRegistry()
        with metrics_scope(registry):
            condition_mask(fleet, grid_points(5), THETA, "exact", kernel="sparse")
        assert registry.counter("kernel_sparse") == 1
