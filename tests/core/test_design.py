"""Tests for the design solvers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.design import (
    DesignReport,
    design_report,
    point_success_probability,
    solve_area_for_point_probability,
    solve_n_for_point_probability,
)
from repro.core.uniform_theory import necessary_failure_probability
from repro.errors import ConvergenceError, InvalidParameterError
from repro.sensors.model import CameraSpec, HeterogeneousProfile

THETA = math.pi / 3


@pytest.fixture
def profile():
    return HeterogeneousProfile.homogeneous(
        CameraSpec(radius=0.2, angle_of_view=math.pi / 2)
    )


class TestPointSuccessProbability:
    def test_uniform_matches_formula(self, profile):
        expected = 1.0 - necessary_failure_probability(profile, 300, THETA)
        assert point_success_probability(profile, 300, THETA) == pytest.approx(expected)

    def test_poisson_scheme(self, profile):
        p = point_success_probability(profile, 300, THETA, scheme="poisson")
        assert 0.0 <= p <= 1.0

    def test_unknown_scheme(self, profile):
        with pytest.raises(InvalidParameterError):
            point_success_probability(profile, 300, THETA, scheme="bogus")

    def test_monotone_in_n(self, profile):
        values = [
            point_success_probability(profile, n, THETA) for n in (10, 100, 1000)
        ]
        assert values[0] <= values[1] <= values[2]


class TestSolveN:
    def test_solution_meets_target(self, profile):
        n = solve_n_for_point_probability(profile, THETA, 0.95)
        assert point_success_probability(profile, n, THETA) >= 0.95

    def test_solution_is_minimal(self, profile):
        n = solve_n_for_point_probability(profile, THETA, 0.95)
        if n > 1:
            assert point_success_probability(profile, n - 1, THETA) < 0.95

    def test_target_validation(self, profile):
        for bad in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(InvalidParameterError):
                solve_n_for_point_probability(profile, THETA, bad)

    def test_impossible_target_raises(self):
        hopeless = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=1e-8, angle_of_view=0.1)
        )
        with pytest.raises(ConvergenceError):
            solve_n_for_point_probability(hopeless, THETA, 0.999)

    def test_poisson_variant(self, profile):
        n = solve_n_for_point_probability(profile, THETA, 0.9, scheme="poisson")
        assert point_success_probability(profile, n, THETA, scheme="poisson") >= 0.9

    @given(st.floats(min_value=0.2, max_value=0.99))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_target(self, target):
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=0.2, angle_of_view=math.pi / 2)
        )
        easy = solve_n_for_point_probability(profile, THETA, target * 0.5)
        hard = solve_n_for_point_probability(profile, THETA, target)
        assert easy <= hard


class TestSolveArea:
    def test_solution_meets_target(self, profile):
        area = solve_area_for_point_probability(profile, 300, THETA, 0.95)
        scaled = profile.scaled_to_weighted_area(area)
        assert point_success_probability(scaled, 300, THETA) >= 0.95 - 1e-9

    def test_solution_is_tight(self, profile):
        area = solve_area_for_point_probability(profile, 300, THETA, 0.95)
        shrunk = profile.scaled_to_weighted_area(area * 0.97)
        assert point_success_probability(shrunk, 300, THETA) < 0.95

    def test_preserves_structure(self, two_group_profile):
        area = solve_area_for_point_probability(two_group_profile, 300, THETA, 0.9)
        scaled = two_group_profile.scaled_to_weighted_area(area)
        assert scaled.num_groups == two_group_profile.num_groups

    def test_validation(self, profile):
        with pytest.raises(InvalidParameterError):
            solve_area_for_point_probability(profile, 300, THETA, 1.5)
        with pytest.raises(InvalidParameterError):
            solve_area_for_point_probability(profile, 300, THETA, 0.9, tolerance=0.0)

    def test_more_sensors_need_less_area(self, profile):
        small = solve_area_for_point_probability(profile, 200, THETA, 0.95)
        large = solve_area_for_point_probability(profile, 2000, THETA, 0.95)
        assert large < small


class TestDesignReport:
    def test_fields_consistent(self, two_group_profile):
        report = design_report(two_group_profile, 400, THETA, target=0.95)
        assert isinstance(report, DesignReport)
        assert report.csa_sufficient > report.csa_necessary
        assert report.csa_margin == pytest.approx(
            report.current_weighted_area / report.csa_sufficient
        )
        assert report.required_scale == pytest.approx(
            math.sqrt(report.required_area / report.current_weighted_area)
        )
        assert report.minimum_n_with_current_cameras > 0

    def test_scaled_profile_achieves_target(self, two_group_profile):
        report = design_report(two_group_profile, 400, THETA, target=0.95)
        upgraded = two_group_profile.scaled_to_weighted_area(report.required_area)
        assert point_success_probability(upgraded, 400, THETA) >= 0.95 - 1e-9

    def test_minimum_n_achieves_target(self, two_group_profile):
        report = design_report(two_group_profile, 400, THETA, target=0.95)
        assert (
            point_success_probability(
                two_group_profile, report.minimum_n_with_current_cameras, THETA
            )
            >= 0.95
        )
