"""Tests for critical sensing area formulas (Theorems 1 and 2)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.csa import (
    csa_curve_over_n,
    csa_curve_over_theta,
    csa_leading_order,
    csa_necessary,
    csa_necessary_xi,
    csa_ratio,
    csa_sufficient,
    csa_sufficient_xi,
    required_radius_homogeneous,
)
from repro.core.kcoverage import one_coverage_csa
from repro.errors import InvalidParameterError

ns = st.integers(min_value=3, max_value=1_000_000)
thetas = st.floats(min_value=0.05, max_value=math.pi, allow_nan=False)


class TestValidation:
    def test_small_n_rejected(self):
        with pytest.raises(InvalidParameterError):
            csa_necessary(1, math.pi / 4)

    def test_bad_theta(self):
        with pytest.raises(InvalidParameterError):
            csa_necessary(100, 0.0)
        with pytest.raises(InvalidParameterError):
            csa_necessary(100, math.pi + 0.1)

    def test_negative_xi(self):
        with pytest.raises(InvalidParameterError):
            csa_necessary_xi(100, 1.0, -0.5)


class TestDegeneration:
    """Section VII-A, eq. (19): the paper's own consistency anchor."""

    @pytest.mark.parametrize("n", [3, 10, 100, 1000, 10_000, 1_000_000])
    def test_theta_pi_equals_one_coverage(self, n):
        assert csa_necessary(n, math.pi) == pytest.approx(
            one_coverage_csa(n), rel=1e-12
        )

    def test_closed_form(self):
        n = 1000
        assert csa_necessary(n, math.pi) == pytest.approx(
            (math.log(n) + math.log(math.log(n))) / n
        )


class TestShape:
    @given(ns, thetas)
    def test_positive(self, n, theta):
        assert csa_necessary(n, theta) > 0
        assert csa_sufficient(n, theta) > 0

    @given(ns, thetas)
    def test_sufficient_exceeds_necessary(self, n, theta):
        assert csa_sufficient(n, theta) > csa_necessary(n, theta)

    @given(thetas)
    def test_decreasing_in_n(self, theta):
        values = [csa_necessary(n, theta) for n in (10, 100, 1000, 10_000)]
        assert all(a > b for a, b in zip(values, values[1:]))

    @given(ns)
    def test_decreasing_in_theta(self, n):
        thetas_grid = np.linspace(0.1 * math.pi, math.pi, 8)
        values = [csa_necessary(n, float(t)) for t in thetas_grid]
        assert all(a >= b - 1e-15 for a, b in zip(values, values[1:]))

    def test_factor_two_gap(self):
        """Section VI-C: s_S,c ~ 2 * s_N,c."""
        for theta in (0.1 * math.pi, 0.25 * math.pi, 0.5 * math.pi):
            for n in (100, 1000, 10_000):
                assert 1.8 < csa_ratio(n, theta) < 2.6

    @given(ns, thetas)
    def test_vanishes(self, n, theta):
        """Lemma 3: the CSA is O(log n / n) -> bounded by a multiple."""
        bound = 20.0 * math.pi / theta * (math.log(n) + 1) / n
        assert csa_necessary(n, theta) < bound


class TestXiParametrisation:
    def test_xi_zero_matches_base(self):
        assert csa_necessary_xi(500, 1.0, 0.0) == csa_necessary(500, 1.0)
        assert csa_sufficient_xi(500, 1.0, 0.0) == csa_sufficient(500, 1.0)

    @given(ns, thetas, st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=100)
    def test_increasing_in_xi(self, n, theta, xi):
        """Larger xi shrinks the allowed failure mass, raising the CSA."""
        assert csa_necessary_xi(n, theta, xi) >= csa_necessary_xi(n, theta, 0.0) - 1e-15


class TestLeadingOrder:
    def test_converges(self):
        """Leading order approximation converges (ratio -> 1) as n grows."""
        theta = math.pi / 4
        ratios = [
            csa_necessary(n, theta) / csa_leading_order(n, theta, "necessary")
            for n in (100, 10_000, 1_000_000)
        ]
        assert abs(ratios[-1] - 1.0) < abs(ratios[0] - 1.0)
        assert abs(ratios[-1] - 1.0) < 0.05

    def test_sufficient_variant(self):
        assert csa_leading_order(1000, 1.0, "sufficient") > csa_leading_order(
            1000, 1.0, "necessary"
        )

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            csa_leading_order(1000, 1.0, "bogus")


class TestCurves:
    def test_over_theta(self):
        out = csa_curve_over_theta(1000, [0.5, 1.0, 1.5], "necessary")
        assert out.shape == (3,)
        assert (np.diff(out) < 0).all()

    def test_over_n(self):
        out = csa_curve_over_n([100, 1000], math.pi / 4, "sufficient")
        assert out[0] > out[1]

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            csa_curve_over_theta(1000, [1.0], "bogus")
        with pytest.raises(InvalidParameterError):
            csa_curve_over_n([100], 1.0, "bogus")


class TestRequiredRadius:
    def test_round_trip(self):
        n, theta, phi = 500, math.pi / 4, math.pi / 2
        r = required_radius_homogeneous(n, theta, phi, q=1.0, condition="sufficient")
        assert 0.5 * phi * r * r == pytest.approx(csa_sufficient(n, theta))

    def test_q_scales(self):
        n, theta, phi = 500, math.pi / 4, math.pi / 2
        r1 = required_radius_homogeneous(n, theta, phi, q=1.0)
        r2 = required_radius_homogeneous(n, theta, phi, q=4.0)
        assert r2 == pytest.approx(2.0 * r1)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            required_radius_homogeneous(500, 1.0, 0.0)
        with pytest.raises(InvalidParameterError):
            required_radius_homogeneous(500, 1.0, 1.0, q=0.0)
        with pytest.raises(InvalidParameterError):
            required_radius_homogeneous(500, 1.0, 1.0, condition="bogus")


class TestNumericalStability:
    def test_huge_n(self):
        """No overflow/underflow at very large n."""
        value = csa_necessary(10**9, math.pi / 4)
        assert 0 < value < 1e-6

    def test_matches_naive_formula_moderate_n(self):
        """log1p/expm1 path equals the textbook expression."""
        from repro.core.conditions import sector_count_necessary

        n, theta = 1000, math.pi / 4
        k = sector_count_necessary(theta)
        m = n * math.log(n)
        naive = -(math.pi / (theta * n)) * math.log(1 - (1 - 1 / m) ** (1 / k))
        assert csa_necessary(n, theta) == pytest.approx(naive, rel=1e-9)
