"""Tests for Lemmas 1-3 as numerical tools."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.asymptotics import (
    exp_approximation_error,
    lemma3_orders,
    log1m_bounds,
    optimal_xi,
    pow_one_minus_bounds,
    proposition1_floor,
)
from repro.errors import InvalidParameterError

xs = st.floats(min_value=1e-9, max_value=0.499999, allow_nan=False)
ys = st.floats(min_value=1e-6, max_value=1e6, allow_nan=False)


class TestLemma1:
    @given(xs)
    @settings(max_examples=300)
    def test_sandwich(self, x):
        lower, upper = log1m_bounds(x)
        actual = math.log1p(-x)
        # Strict analytically; allow float rounding at tiny x where the
        # three quantities agree to machine precision.
        tol = 1e-15 * abs(actual)
        assert lower - tol <= actual <= upper + tol

    def test_domain(self):
        for bad in (0.0, 0.5, -0.1, 0.9):
            with pytest.raises(InvalidParameterError):
                log1m_bounds(bad)

    def test_tightens_near_zero(self):
        widths = [log1m_bounds(x)[1] - log1m_bounds(x)[0] for x in (0.4, 0.1, 0.01)]
        assert widths[0] > widths[1] > widths[2]


class TestLemma2:
    @given(xs, ys)
    @settings(max_examples=300)
    def test_sandwich(self, x, y):
        lower, upper = pow_one_minus_bounds(x, y)
        actual = math.exp(y * math.log1p(-x))
        assert lower <= actual * (1 + 1e-12) and actual <= upper * (1 + 1e-12)

    def test_collapses_when_x2y_small(self):
        """(1-x)^y ~ e^{-xy} when x^2 y -> 0."""
        for n in (100, 10_000, 1_000_000):
            x = 1.0 / n
            y = float(n) * 0.9  # x^2 y = 0.9/n -> 0
            assert exp_approximation_error(x, y) < 1.0 / n

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            pow_one_minus_bounds(0.1, 0.0)
        with pytest.raises(InvalidParameterError):
            exp_approximation_error(0.6, 1.0)


class TestLemma3:
    def test_quantities_vanish(self):
        theta = math.pi / 4
        orders = [lemma3_orders(n, theta) for n in (100, 10_000, 1_000_000)]
        s_cs = [o.s_c for o in orders]
        ns2 = [o.n_s_c_squared for o in orders]
        assert s_cs[0] > s_cs[1] > s_cs[2]
        assert ns2[0] > ns2[1] > ns2[2]
        assert s_cs[-1] < 1e-4
        assert ns2[-1] < 0.01

    def test_order_constant_stabilises(self):
        """s_c / ((log n + log log n)/n) approaches a constant."""
        theta = math.pi / 4
        ratios = [
            lemma3_orders(n, theta).s_c_over_order for n in (10_000, 100_000, 1_000_000)
        ]
        assert abs(ratios[2] - ratios[1]) < abs(ratios[1] - ratios[0]) + 1e-9
        assert ratios[-1] > 0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            lemma3_orders(2, 1.0)


class TestProposition1Floor:
    def test_values(self):
        assert proposition1_floor(0.0) == 0.0
        assert proposition1_floor(math.log(2.0)) == pytest.approx(0.25)

    def test_optimal_xi(self):
        xi_star = optimal_xi()
        assert xi_star == pytest.approx(math.log(2.0))
        eps = 1e-4
        assert proposition1_floor(xi_star) >= proposition1_floor(xi_star - eps)
        assert proposition1_floor(xi_star) >= proposition1_floor(xi_star + eps)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            proposition1_floor(-1.0)

    @given(st.floats(min_value=0.0, max_value=20.0))
    def test_bounded_by_quarter(self, xi):
        assert 0.0 <= proposition1_floor(xi) <= 0.25 + 1e-12
