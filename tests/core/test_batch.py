"""Tests: the vectorised batch path is bit-identical to the scalar path."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batch import (
    condition_mask,
    coverage_counts,
    coverage_fraction_fast,
    covering_and_directions,
    full_view_mask,
    max_gaps,
)
from repro.core.conditions import (
    condition_fraction,
    necessary_condition_holds,
    sufficient_condition_holds,
)
from repro.core.full_view import is_full_view_covered
from repro.deployment.uniform import UniformDeployment
from repro.errors import InvalidParameterError
from repro.geometry.intervals import max_circular_gap
from repro.sensors.fleet import SensorFleet
from repro.sensors.model import CameraSpec, HeterogeneousProfile

coords = st.floats(min_value=0.0, max_value=0.999999, allow_nan=False)


@pytest.fixture(scope="module")
def fleet():
    profile = HeterogeneousProfile.from_pairs(
        [
            (CameraSpec(radius=0.25, angle_of_view=math.pi / 2), 0.5),
            (CameraSpec(radius=0.15, angle_of_view=2.0), 0.5),
        ]
    )
    return UniformDeployment().deploy(profile, 150, np.random.default_rng(3))


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(4).uniform(size=(60, 2))


class TestCoveringMatrix:
    def test_matches_scalar_covering(self, fleet, points):
        covers, _ = covering_and_directions(fleet, points)
        for i, (x, y) in enumerate(points):
            expected = set(fleet.covering((float(x), float(y)), use_index=False).tolist())
            actual = set(np.flatnonzero(covers[i]).tolist())
            assert actual == expected

    def test_directions_match_scalar(self, fleet, points):
        covers, directions = covering_and_directions(fleet, points)
        for i, (x, y) in enumerate(points):
            expected = np.sort(
                fleet.covering_directions((float(x), float(y)), use_index=False)
            )
            mask = covers[i] & ~np.isnan(directions[i])
            actual = np.sort(directions[i][mask])
            assert np.allclose(actual, expected, atol=1e-12)

    def test_empty_fleet(self, points):
        empty = SensorFleet(
            positions=np.empty((0, 2)),
            orientations=np.empty(0),
            radii=np.empty(0),
            angles=np.empty(0),
        )
        covers, directions = covering_and_directions(empty, points)
        assert covers.shape == (60, 0)

    def test_coincident_pair_covers_but_nan_direction(self):
        fleet = SensorFleet(
            positions=np.array([[0.5, 0.5]]),
            orientations=np.array([0.0]),
            radii=np.array([0.2]),
            angles=np.array([1.0]),
        )
        covers, directions = covering_and_directions(fleet, np.array([[0.5, 0.5]]))
        assert covers[0, 0]
        assert math.isnan(directions[0, 0])


class TestCoverageCounts:
    def test_matches_scalar(self, fleet, points):
        batch = coverage_counts(fleet, points)
        scalar = fleet.coverage_counts(points, use_index=False)
        assert (batch == scalar).all()


class TestMaxGaps:
    def test_matches_scalar(self, fleet, points):
        gaps = max_gaps(fleet, points)
        for i, (x, y) in enumerate(points):
            dirs = fleet.covering_directions((float(x), float(y)), use_index=False)
            expected = max_circular_gap(dirs)
            assert gaps[i] == pytest.approx(expected, abs=1e-12)


class TestFullViewMask:
    @pytest.mark.parametrize("theta", [math.pi / 6, math.pi / 3, math.pi / 2, math.pi])
    def test_matches_scalar(self, fleet, points, theta):
        mask = full_view_mask(fleet, points, theta)
        for i, (x, y) in enumerate(points):
            dirs = fleet.covering_directions((float(x), float(y)), use_index=False)
            assert mask[i] == is_full_view_covered(dirs, theta)

    @given(st.tuples(coords, coords), st.floats(min_value=0.1, max_value=math.pi))
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_property(self, probe, theta):
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=0.3, angle_of_view=2.0)
        )
        fleet = UniformDeployment().deploy(profile, 60, np.random.default_rng(11))
        mask = full_view_mask(fleet, np.array([probe]), theta)
        dirs = fleet.covering_directions(probe, use_index=False)
        assert bool(mask[0]) == is_full_view_covered(dirs, theta)


class TestConditionMask:
    @pytest.mark.parametrize("condition", ["necessary", "sufficient"])
    @pytest.mark.parametrize("theta", [math.pi / 4, math.pi / 3, 0.4 * math.pi])
    def test_matches_scalar(self, fleet, points, condition, theta):
        mask = condition_mask(fleet, points, theta, condition)
        check = (
            necessary_condition_holds
            if condition == "necessary"
            else sufficient_condition_holds
        )
        for i, (x, y) in enumerate(points):
            dirs = fleet.covering_directions((float(x), float(y)), use_index=False)
            assert mask[i] == check(dirs, theta)

    def test_unknown_condition(self, fleet, points):
        with pytest.raises(InvalidParameterError):
            condition_mask(fleet, points, 1.0, "bogus")

    def test_sandwich_vectorised(self, fleet, points):
        theta = math.pi / 3
        suf = condition_mask(fleet, points, theta, "sufficient")
        exact = condition_mask(fleet, points, theta, "exact")
        nec = condition_mask(fleet, points, theta, "necessary")
        assert (suf <= exact).all()
        assert (exact <= nec).all()


class TestFraction:
    def test_matches_scalar_fraction(self, fleet, points):
        theta = math.pi / 3
        for condition in ("exact", "necessary", "sufficient"):
            fast = coverage_fraction_fast(fleet, points, theta, condition)
            slow = condition_fraction(fleet, points, theta, condition, use_index=False)
            assert fast == pytest.approx(slow)

    def test_empty_points(self, fleet):
        with pytest.raises(InvalidParameterError):
            coverage_fraction_fast(fleet, np.empty((0, 2)), 1.0)


class TestChunking:
    def test_results_stable_across_chunk_sizes(self, fleet, monkeypatch):
        import repro.core.batch as batch_module

        points = np.random.default_rng(5).uniform(size=(30, 2))
        full = full_view_mask(fleet, points, math.pi / 3)
        monkeypatch.setattr(batch_module, "_MAX_PAIRS_PER_CHUNK", 500)
        chunked = full_view_mask(fleet, points, math.pi / 3)
        assert (full == chunked).all()


class TestKCoverage:
    """The issue's property: k_coverage mask == (coverage_counts >= k)."""

    @given(k=st.integers(min_value=1, max_value=8))
    @settings(max_examples=16, deadline=None)
    def test_mask_equals_count_threshold(self, fleet, points, k):
        mask = condition_mask(fleet, points, math.pi / 3, "k_coverage", k=k)
        assert (mask == (coverage_counts(fleet, points) >= k)).all()

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        k=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=10, deadline=None)
    def test_property_on_random_points(self, fleet, seed, k):
        pts = np.random.default_rng(seed).uniform(size=(25, 2))
        mask = condition_mask(fleet, pts, 1.0, "k_coverage", k=k)
        assert (mask == (coverage_counts(fleet, pts) >= k)).all()

    def test_k1_is_plain_coverage(self, fleet, points):
        mask = condition_mask(fleet, points, 1.0, "k_coverage")
        assert (mask == (coverage_counts(fleet, points) >= 1)).all()

    def test_invalid_k(self, fleet, points):
        with pytest.raises(InvalidParameterError):
            condition_mask(fleet, points, 1.0, "k_coverage", k=0)

    def test_fraction_forwards_k(self, fleet, points):
        fraction = coverage_fraction_fast(fleet, points, 1.0, "k_coverage", k=3)
        expected = float((coverage_counts(fleet, points) >= 3).mean())
        assert fraction == expected


class TestMaxGapsVectorised:
    """The vectorised gap rows agree with the scalar circular-gap helper."""

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_matches_scalar_gap(self, fleet, seed):
        pts = np.random.default_rng(seed).uniform(size=(20, 2))
        gaps = max_gaps(fleet, pts)
        for i, (x, y) in enumerate(pts):
            dirs = fleet.covering_directions((float(x), float(y)), use_index=False)
            assert gaps[i] == pytest.approx(max_circular_gap(dirs), abs=1e-12)
