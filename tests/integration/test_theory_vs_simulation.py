"""Integration: every analytic formula agrees with simulation.

These tests deploy real fleets and compare measured frequencies against
the paper's formulas — the heart of the reproduction.  Budgets are kept
small enough for CI; the benchmarks run the same comparisons at
publication quality.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.poisson_theory import (
    poisson_necessary_probability,
    poisson_sufficient_probability,
)
from repro.core.uniform_theory import (
    coverage_probability_single_point,
    expected_covering_sensors,
    necessary_failure_probability,
    sufficient_failure_probability,
)
from repro.deployment.poisson import PoissonDeployment
from repro.deployment.uniform import UniformDeployment
from repro.sensors.model import CameraSpec, GroupSpec, HeterogeneousProfile
from repro.simulation.montecarlo import MonteCarloConfig, estimate_point_probability

THETA = math.pi / 3
N = 300
TRIALS = 500


@pytest.fixture(scope="module")
def profile():
    return HeterogeneousProfile(
        [
            GroupSpec(CameraSpec(radius=0.2, angle_of_view=math.pi / 2), 0.5, "a"),
            GroupSpec(CameraSpec(radius=0.12, angle_of_view=2.2), 0.5, "b"),
        ]
    )


class TestUniformTheory:
    def test_necessary_condition_probability(self, profile):
        cfg = MonteCarloConfig(trials=TRIALS, seed=21)
        est = estimate_point_probability(profile, N, THETA, "necessary", cfg)
        theory = 1.0 - necessary_failure_probability(profile, N, THETA)
        assert est.contains(theory, slack=0.03), f"{est} vs {theory}"

    def test_sufficient_condition_probability(self, profile):
        cfg = MonteCarloConfig(trials=TRIALS, seed=22)
        est = estimate_point_probability(profile, N, THETA, "sufficient", cfg)
        theory = 1.0 - sufficient_failure_probability(profile, N, THETA)
        assert est.contains(theory, slack=0.03), f"{est} vs {theory}"

    def test_one_coverage_probability(self, profile):
        cfg = MonteCarloConfig(trials=TRIALS, seed=23)
        est = estimate_point_probability(profile, N, math.pi, "k_coverage", cfg, k=1)
        theory = coverage_probability_single_point(profile, N)
        assert est.contains(theory, slack=0.02), f"{est} vs {theory}"

    def test_expected_covering_sensor_count(self, profile):
        """Mean size of the covering set matches sum(n_y * s_y)."""
        scheme = UniformDeployment()
        counts = []
        for seed in range(200):
            fleet = scheme.deploy(profile, N, np.random.default_rng(seed))
            fleet.build_index()
            counts.append(fleet.coverage_count((0.5, 0.5)))
        expected = expected_covering_sensors(profile, N)
        sem = np.std(counts, ddof=1) / math.sqrt(len(counts))
        assert np.mean(counts) == pytest.approx(expected, abs=4 * sem + 0.05)


class TestPoissonTheory:
    def test_theorem3(self, profile):
        cfg = MonteCarloConfig(trials=TRIALS, seed=31)
        est = estimate_point_probability(
            profile, N, THETA, "necessary", cfg, scheme=PoissonDeployment()
        )
        theory = poisson_necessary_probability(profile, N, THETA)
        assert est.contains(theory, slack=0.03), f"{est} vs {theory}"

    def test_theorem4(self, profile):
        cfg = MonteCarloConfig(trials=TRIALS, seed=32)
        est = estimate_point_probability(
            profile, N, THETA, "sufficient", cfg, scheme=PoissonDeployment()
        )
        theory = poisson_sufficient_probability(profile, N, THETA)
        assert est.contains(theory, slack=0.03), f"{est} vs {theory}"


class TestExactCoverageBracketing:
    def test_exact_probability_between_conditions(self, profile):
        """P(sufficient) <= P(exact full view) <= P(necessary) in simulation."""
        cfg = MonteCarloConfig(trials=TRIALS, seed=41)
        nec = estimate_point_probability(profile, N, THETA, "necessary", cfg)
        exact = estimate_point_probability(profile, N, THETA, "exact", cfg)
        suf = estimate_point_probability(profile, N, THETA, "sufficient", cfg)
        # Same seeds => same deployments => pointwise sandwich => counts ordered.
        assert suf.successes <= exact.successes <= nec.successes

    def test_analytic_bracketing_of_exact(self, profile):
        """The exact coverage probability lies between the two analytic
        condition probabilities."""
        cfg = MonteCarloConfig(trials=TRIALS, seed=42)
        exact = estimate_point_probability(profile, N, THETA, "exact", cfg)
        p_nec = 1.0 - necessary_failure_probability(profile, N, THETA)
        p_suf = 1.0 - sufficient_failure_probability(profile, N, THETA)
        lo, hi = exact.wilson()
        assert lo <= p_nec + 0.03
        assert hi >= p_suf - 0.03
