"""End-to-end integration across the whole stack."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.conditions import condition_fraction
from repro.core.csa import csa_sufficient, required_radius_homogeneous
from repro.core.full_view import (
    diagnose_point,
    full_view_coverage_fraction,
    point_is_full_view_covered,
)
from repro.deployment.lattice import TriangularLatticeDeployment
from repro.deployment.uniform import UniformDeployment
from repro.geometry.grid import DenseGrid
from repro.geometry.torus import Region
from repro.sensors.catalog import mixed_profile
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.sensors.probabilistic import (
    ExponentialDecayModel,
    probabilistic_covering_directions,
)


class TestDesignWorkflow:
    """The workflow a network designer would actually follow."""

    def test_provision_deploy_verify(self):
        n, theta, phi = 400, math.pi / 3, math.pi / 2
        # 1. Ask theory for the required radius at 1.3x the sufficient CSA.
        radius = required_radius_homogeneous(n, theta, phi, q=1.3)
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=radius, angle_of_view=phi)
        )
        # 2. Deploy and 3. verify on a grid sample.
        fleet = UniformDeployment().deploy(profile, n, np.random.default_rng(0))
        fleet.build_index()
        grid = DenseGrid(side=8)
        frac = full_view_coverage_fraction(fleet, grid.points, theta)
        assert frac > 0.95

    def test_underprovisioned_fleet_fails(self):
        n, theta, phi = 400, math.pi / 3, math.pi / 2
        radius = required_radius_homogeneous(n, theta, phi, q=0.05, condition="necessary")
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=radius, angle_of_view=phi)
        )
        fleet = UniformDeployment().deploy(profile, n, np.random.default_rng(0))
        fleet.build_index()
        grid = DenseGrid(side=8)
        frac = full_view_coverage_fraction(fleet, grid.points, theta)
        assert frac < 0.5


class TestHeterogeneousEndToEnd:
    def test_catalog_profile_full_pipeline(self):
        profile = mixed_profile([("standard", 0.5), ("telephoto", 0.5)])
        scaled = profile.scaled_to_weighted_area(csa_sufficient(300, math.pi / 3) * 1.5)
        fleet = UniformDeployment().deploy(scaled, 300, np.random.default_rng(1))
        fleet.build_index()
        diag = diagnose_point(fleet, (0.5, 0.5), math.pi / 3)
        assert diag.num_covering_sensors > 0
        # Condition fractions ordered on a shared point set.
        points = np.random.default_rng(2).uniform(size=(40, 2))
        f_suf = condition_fraction(fleet, points, math.pi / 3, "sufficient")
        f_exact = condition_fraction(fleet, points, math.pi / 3, "exact")
        f_nec = condition_fraction(fleet, points, math.pi / 3, "necessary")
        assert f_suf <= f_exact <= f_nec


class TestLatticeVsRandom:
    def test_lattice_needs_less_area_for_same_coverage(self):
        """Wang & Cao's premise: deterministic lattices beat random
        placement — at equal sensing area the lattice covers more."""
        theta = math.pi / 3
        n = 300
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec.from_area(0.6 * csa_sufficient(n, theta), math.pi)
        )
        probes = np.random.default_rng(3).uniform(size=(60, 2))
        lattice_fracs = []
        random_fracs = []
        for seed in range(10):
            rng_a = np.random.default_rng(seed)
            rng_b = np.random.default_rng(seed)
            lattice = TriangularLatticeDeployment().deploy(profile, n, rng_a)
            lattice.build_index()
            random_fleet = UniformDeployment().deploy(profile, n, rng_b)
            random_fleet.build_index()
            lattice_fracs.append(
                full_view_coverage_fraction(lattice, probes, theta)
            )
            random_fracs.append(
                full_view_coverage_fraction(random_fleet, probes, theta)
            )
        assert np.mean(lattice_fracs) >= np.mean(random_fracs)


class TestProbabilisticExtension:
    def test_decay_model_reduces_coverage(self):
        theta = math.pi / 3
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=0.25, angle_of_view=math.pi / 2)
        )
        fleet = UniformDeployment().deploy(profile, 300, np.random.default_rng(4))
        fleet.build_index()
        model = ExponentialDecayModel(beta=4.0)
        binary_hits = prob_hits = 0
        for seed in range(100):
            rng = np.random.default_rng(seed)
            dirs_binary = fleet.covering_directions((0.5, 0.5))
            dirs_prob = probabilistic_covering_directions(fleet, (0.5, 0.5), model, rng)
            from repro.core.full_view import is_full_view_covered

            binary_hits += is_full_view_covered(dirs_binary, theta)
            prob_hits += is_full_view_covered(dirs_prob, theta)
        assert prob_hits <= binary_hits


class TestBoundaryEffectAblation:
    def test_square_covers_less_than_torus_at_edges(self):
        """Disabling wrap-around hurts edge coverage — the reason the
        paper assumes a torus."""
        theta = math.pi / 2
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=0.2, angle_of_view=math.pi)
        )
        edge_probes = np.array([[0.02, y] for y in np.linspace(0.05, 0.95, 10)])
        torus_frac = []
        square_frac = []
        for seed in range(15):
            torus_fleet = UniformDeployment(Region(torus=True)).deploy(
                profile, 200, np.random.default_rng(seed)
            )
            square_fleet = UniformDeployment(Region(torus=False)).deploy(
                profile, 200, np.random.default_rng(seed)
            )
            torus_fleet.build_index()
            square_fleet.build_index()
            torus_frac.append(
                full_view_coverage_fraction(torus_fleet, edge_probes, theta)
            )
            square_frac.append(
                full_view_coverage_fraction(square_fleet, edge_probes, theta)
            )
        assert np.mean(torus_frac) > np.mean(square_frac)
