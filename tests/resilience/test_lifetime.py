"""Lifetime simulation: trace semantics, distributions, determinism."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.resilience.failures import (
    BernoulliFailure,
    FailureSchedule,
    RadiusDegradation,
)
from repro.resilience.lifetime import (
    LifetimeDistribution,
    LifetimeTrace,
    lifetime_distribution,
    make_lifetime_trial,
    simulate_lifetime,
)
from repro.simulation.montecarlo import MonteCarloConfig

THETA = math.pi / 3.0


class TestLifetimeTrace:
    def test_survived_trace_lifetime_is_horizon(self):
        trace = LifetimeTrace(
            break_epoch=None, epochs=5, coverage_fractions=(1.0,) * 6, alive_counts=(9,) * 6
        )
        assert trace.survived
        assert trace.lifetime == 5

    def test_break_at_deployment_is_lifetime_zero(self):
        trace = LifetimeTrace(
            break_epoch=0, epochs=5, coverage_fractions=(0.8,), alive_counts=(9,)
        )
        assert not trace.survived
        assert trace.lifetime == 0

    def test_break_mid_horizon(self):
        trace = LifetimeTrace(
            break_epoch=3,
            epochs=5,
            coverage_fractions=(1.0, 1.0, 1.0, 0.9),
            alive_counts=(9, 8, 7, 5),
        )
        assert trace.lifetime == 3


class TestSimulateLifetime:
    def test_rejects_bad_epochs(self, small_fleet, rng):
        with pytest.raises(InvalidParameterError):
            simulate_lifetime(
                small_fleet, FailureSchedule(), THETA, epochs=0, rng=rng
            )

    def test_rejects_bad_condition(self, small_fleet, rng):
        with pytest.raises(InvalidParameterError):
            simulate_lifetime(
                small_fleet,
                FailureSchedule(),
                THETA,
                epochs=2,
                rng=rng,
                condition="bogus",
            )

    def test_rejects_non_model_schedule(self, small_fleet, rng):
        with pytest.raises(InvalidParameterError):
            simulate_lifetime(
                small_fleet, lambda f, r: f, THETA, epochs=2, rng=rng
            )

    def test_rejects_empty_points(self, small_fleet, rng):
        with pytest.raises(InvalidParameterError):
            simulate_lifetime(
                small_fleet,
                FailureSchedule(),
                THETA,
                epochs=2,
                rng=rng,
                points=np.empty((0, 2)),
            )

    def test_identity_schedule_never_degrades(self, small_fleet, rng):
        points = np.array([[0.5, 0.5], [0.25, 0.75]])
        trace = simulate_lifetime(
            small_fleet, FailureSchedule(), THETA, epochs=3, rng=rng, points=points
        )
        assert len(trace.coverage_fractions) == 4
        assert len(set(trace.coverage_fractions)) == 1
        assert trace.alive_counts == (200,) * 4

    def test_total_kill_breaks_at_epoch_one(self, small_fleet, rng):
        points = np.array([[0.5, 0.5]])
        # Guarantee the point is covered as deployed by checking first.
        base = simulate_lifetime(
            small_fleet, FailureSchedule(), THETA, epochs=1, rng=rng, points=points
        )
        trace = simulate_lifetime(
            small_fleet,
            BernoulliFailure(1.0),
            THETA,
            epochs=4,
            rng=np.random.default_rng(0),
            points=points,
        )
        if base.coverage_fractions[0] >= 1.0:
            assert trace.break_epoch == 1
            assert trace.lifetime == 1
        else:
            assert trace.break_epoch == 0
        assert trace.alive_counts[-1] == 0
        assert trace.coverage_fractions[-1] == 0.0

    def test_stop_at_break_truncates_trace(self, small_fleet):
        points = np.array([[0.5, 0.5]])
        trace = simulate_lifetime(
            small_fleet,
            BernoulliFailure(1.0),
            THETA,
            epochs=6,
            rng=np.random.default_rng(0),
            points=points,
            stop_at_break=True,
        )
        assert len(trace.coverage_fractions) <= 2
        assert trace.epochs == 6

    def test_input_fleet_not_mutated(self, small_fleet):
        before = len(small_fleet)
        simulate_lifetime(
            small_fleet,
            BernoulliFailure(0.5),
            THETA,
            epochs=2,
            rng=np.random.default_rng(0),
            points=np.array([[0.5, 0.5]]),
        )
        assert len(small_fleet) == before


class TestLifetimeDistribution:
    def test_summary_statistics(self):
        dist = LifetimeDistribution(
            lifetimes=(0, 2, 4, 4), censored=(False, False, True, True), epochs=4
        )
        assert dist.trials == 4
        assert dist.mean_lifetime == pytest.approx(2.5)
        assert dist.median_lifetime == pytest.approx(3.0)
        assert dist.censored_fraction == pytest.approx(0.5)

    def test_survival_curve_monotone_and_anchored(self):
        dist = LifetimeDistribution(
            lifetimes=(0, 2, 4, 4), censored=(False, False, True, True), epochs=4
        )
        curve = dist.survival_curve()
        assert len(curve) == 5
        # Trial broken at deployment is dead from t=0.
        assert curve[0] == pytest.approx(0.75)
        # Censored trials count as intact through the horizon.
        assert curve[4] == pytest.approx(0.5)
        assert all(a >= b for a, b in zip(curve, curve[1:]))


class TestLifetimeDistributionSweep:
    def test_deterministic_given_seed(self, homogeneous_profile):
        schedule = FailureSchedule(
            [BernoulliFailure(0.15), RadiusDegradation(0.95)]
        )
        kwargs = dict(epochs=4, condition="necessary", max_grid_points=16)
        cfg = MonteCarloConfig(trials=5, seed=42)
        a = lifetime_distribution(
            homogeneous_profile, 60, THETA, schedule, cfg, **kwargs
        )
        b = lifetime_distribution(
            homogeneous_profile, 60, THETA, schedule, cfg, **kwargs
        )
        assert a.lifetimes == b.lifetimes
        assert a.censored == b.censored

    def test_track_curves_covers_horizon(self, homogeneous_profile):
        dist = lifetime_distribution(
            homogeneous_profile,
            60,
            THETA,
            BernoulliFailure(0.3),
            MonteCarloConfig(trials=3, seed=1),
            epochs=3,
            max_grid_points=16,
            track_curves=True,
        )
        assert len(dist.mean_coverage_by_epoch) == 4
        assert all(isinstance(x, float) for x in dist.mean_coverage_by_epoch)

    def test_trial_fn_matches_distribution(self, homogeneous_profile):
        schedule = BernoulliFailure(0.2)
        cfg = MonteCarloConfig(trials=4, seed=7)
        dist = lifetime_distribution(
            homogeneous_profile,
            60,
            THETA,
            schedule,
            cfg,
            epochs=3,
            max_grid_points=16,
        )
        trial_fn = make_lifetime_trial(
            homogeneous_profile,
            60,
            THETA,
            schedule,
            epochs=3,
            max_grid_points=16,
        )
        via_trials = [
            trial_fn(i, cfg.rng_for_trial(i)) for i in range(cfg.trials)
        ]
        assert tuple(int(v) for v in via_trials) == dist.lifetimes
