"""Failure models: determinism, statistics, validation, composition."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.resilience.failures import (
    BernoulliFailure,
    DiskBlackout,
    FailureModel,
    FailureSchedule,
    OrientationDrift,
    RadiusDegradation,
)


def _fleets_equal(a, b) -> bool:
    return (
        len(a) == len(b)
        and np.array_equal(a.positions, b.positions)
        and np.array_equal(a.orientations, b.orientations)
        and np.array_equal(a.radii, b.radii)
        and np.array_equal(a.angles, b.angles)
        and np.array_equal(a.group_ids, b.group_ids)
    )


class TestValidation:
    @pytest.mark.parametrize("p", [-0.1, 1.1, float("nan"), float("inf")])
    def test_bernoulli_rejects_bad_p(self, p):
        with pytest.raises(InvalidParameterError):
            BernoulliFailure(p)

    @pytest.mark.parametrize("radius", [0.0, -1.0, float("nan"), float("inf")])
    def test_blackout_rejects_bad_radius(self, radius):
        with pytest.raises(InvalidParameterError):
            DiskBlackout(radius)

    @pytest.mark.parametrize("count", [0, -1, 1.5])
    def test_blackout_rejects_bad_count(self, count):
        with pytest.raises(InvalidParameterError):
            DiskBlackout(0.1, count=count)

    @pytest.mark.parametrize("sigma", [-0.1, float("nan"), float("inf")])
    def test_drift_rejects_bad_sigma(self, sigma):
        with pytest.raises(InvalidParameterError):
            OrientationDrift(sigma)

    @pytest.mark.parametrize("factor", [0.0, -0.5, 1.5, float("nan")])
    def test_degradation_rejects_bad_factor(self, factor):
        with pytest.raises(InvalidParameterError):
            RadiusDegradation(factor)

    def test_degradation_rejects_bad_floor(self):
        with pytest.raises(InvalidParameterError):
            RadiusDegradation(0.9, floor=-0.1)

    def test_schedule_rejects_non_models(self):
        with pytest.raises(InvalidParameterError):
            FailureSchedule([BernoulliFailure(0.1), "not a model"])


class TestDeterminism:
    @pytest.mark.parametrize(
        "model",
        [
            BernoulliFailure(0.3),
            DiskBlackout(0.2, count=2),
            OrientationDrift(0.5),
            RadiusDegradation(0.8, floor=0.1),
            FailureSchedule(
                [BernoulliFailure(0.2), DiskBlackout(0.15), OrientationDrift(0.1)]
            ),
        ],
    )
    def test_same_seed_same_fleet(self, model, small_fleet):
        a = model.apply(small_fleet, np.random.default_rng(7))
        b = model.apply(small_fleet, np.random.default_rng(7))
        assert _fleets_equal(a, b)

    def test_input_fleet_untouched(self, small_fleet):
        before = small_fleet.radii.copy()
        RadiusDegradation(0.5).apply(small_fleet, np.random.default_rng(0))
        assert np.array_equal(small_fleet.radii, before)


class TestBernoulliFailure:
    def test_p_zero_keeps_everyone(self, small_fleet):
        out = BernoulliFailure(0.0).apply(small_fleet, np.random.default_rng(0))
        assert len(out) == len(small_fleet)

    def test_p_one_kills_everyone(self, small_fleet):
        out = BernoulliFailure(1.0).apply(small_fleet, np.random.default_rng(0))
        assert len(out) == 0

    def test_thinning_rate_statistical(self, small_fleet):
        survivors = [
            len(BernoulliFailure(0.4).apply(small_fleet, np.random.default_rng(s)))
            for s in range(30)
        ]
        mean = np.mean(survivors) / len(small_fleet)
        assert 0.5 < mean < 0.7  # ~0.6 expected


class TestDiskBlackout:
    def test_whole_region_blackout_kills_everyone(self, small_fleet):
        # On the unit torus no point is farther than sqrt(2)/2 from any
        # center, so radius 0.75 wipes the fleet wherever the disk lands.
        out = DiskBlackout(0.75).apply(small_fleet, np.random.default_rng(3))
        assert len(out) == 0

    def test_survivors_outside_disk(self, small_fleet):
        rng = np.random.default_rng(5)
        blackout = DiskBlackout(0.2)
        out = blackout.apply(small_fleet, rng)
        assert 0 < len(out) < len(small_fleet)
        # No survivor may sit inside any possible blackout disk of the
        # draw; reproduce the center with the same stream.
        center = np.random.default_rng(5).uniform(0.0, 1.0, size=(1, 2))[0]
        delta = small_fleet.region.displacements(
            (float(center[0]), float(center[1])), out.positions
        )
        assert (delta[:, 0] ** 2 + delta[:, 1] ** 2 > 0.2**2).all()

    def test_empty_fleet_passthrough(self, small_fleet):
        empty = small_fleet.subset([])
        out = DiskBlackout(0.2).apply(empty, np.random.default_rng(0))
        assert len(out) == 0


class TestOrientationDrift:
    def test_zero_sigma_is_identity_on_headings(self, small_fleet):
        out = OrientationDrift(0.0).apply(small_fleet, np.random.default_rng(0))
        assert np.allclose(out.orientations, small_fleet.orientations)
        assert np.array_equal(out.positions, small_fleet.positions)

    def test_drift_preserves_everything_but_headings(self, small_fleet):
        out = OrientationDrift(0.4).apply(small_fleet, np.random.default_rng(1))
        assert len(out) == len(small_fleet)
        assert np.array_equal(out.positions, small_fleet.positions)
        assert np.array_equal(out.radii, small_fleet.radii)
        assert not np.allclose(out.orientations, small_fleet.orientations)
        assert (out.orientations >= 0).all() and (
            out.orientations < 2 * math.pi
        ).all()


class TestRadiusDegradation:
    def test_radii_shrink_by_factor(self, small_fleet):
        out = RadiusDegradation(0.5).apply(small_fleet, np.random.default_rng(0))
        assert np.allclose(out.radii, 0.5 * small_fleet.radii)

    def test_floor_kills_exhausted_sensors(self, small_fleet):
        # All radii are 0.25; one degradation to 0.125 under a 0.2 floor
        # kills the whole fleet.
        out = RadiusDegradation(0.5, floor=0.2).apply(
            small_fleet, np.random.default_rng(0)
        )
        assert len(out) == 0

    def test_repeated_application_compounds(self, small_fleet):
        rng = np.random.default_rng(0)
        fleet = small_fleet
        for _ in range(3):
            fleet = RadiusDegradation(0.9).apply(fleet, rng)
        assert np.allclose(fleet.radii, 0.9**3 * small_fleet.radii)


class TestFailureSchedule:
    def test_empty_schedule_is_identity(self, small_fleet):
        out = FailureSchedule().apply(small_fleet, np.random.default_rng(0))
        assert _fleets_equal(out, small_fleet)

    def test_applies_in_order(self, small_fleet):
        # Degradation then floor-kill differs from floor-kill then
        # degradation; order must be respected.
        sched = FailureSchedule(
            [RadiusDegradation(0.5), RadiusDegradation(1.0, floor=0.2)]
        )
        out = sched.apply(small_fleet, np.random.default_rng(0))
        assert len(out) == 0  # 0.25 -> 0.125, below the 0.2 floor

    def test_then_composes_and_flattens(self, small_fleet):
        a = BernoulliFailure(0.1)
        b = OrientationDrift(0.1)
        c = RadiusDegradation(0.9)
        sched = a.then(b).then(c)
        assert isinstance(sched, FailureSchedule)
        assert len(sched) == 3
        assert isinstance(sched, FailureModel)

    def test_matches_manual_composition(self, small_fleet):
        sched = FailureSchedule([BernoulliFailure(0.2), RadiusDegradation(0.8)])
        via_schedule = sched.apply(small_fleet, np.random.default_rng(9))
        rng = np.random.default_rng(9)
        manual = RadiusDegradation(0.8).apply(
            BernoulliFailure(0.2).apply(small_fleet, rng), rng
        )
        assert _fleets_equal(via_schedule, manual)
