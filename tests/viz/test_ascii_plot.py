"""Tests for ASCII rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.viz.ascii_plot import (
    ascii_coverage_map,
    ascii_line_plot,
    ascii_scatter_map,
)


class TestLinePlot:
    def test_renders_all_series(self):
        text = ascii_line_plot(
            {
                "alpha": ([0, 1, 2], [0, 1, 4]),
                "beta": ([0, 1, 2], [4, 1, 0]),
            },
            title="demo",
        )
        assert "demo" in text
        assert "* alpha" in text
        assert "o beta" in text
        assert "*" in text and "o" in text

    def test_dimension_validation(self):
        with pytest.raises(InvalidParameterError):
            ascii_line_plot({"a": ([0], [0])}, width=4)
        with pytest.raises(InvalidParameterError):
            ascii_line_plot({})

    def test_flat_series_does_not_crash(self):
        text = ascii_line_plot({"flat": ([0, 1], [1.0, 1.0])})
        assert "flat" in text

    def test_ranges_in_labels(self):
        text = ascii_line_plot(
            {"s": ([0, 10], [0, 5])}, x_label="xx", y_label="yy"
        )
        assert "xx" in text and "yy" in text
        assert "10" in text

    def test_line_count(self):
        text = ascii_line_plot({"s": ([0, 1], [0, 1])}, height=10, title="t")
        # title + y label + 10 rows + axis + x label + legend
        assert len(text.split("\n")) == 15


class TestCoverageMap:
    def test_glyph_counts(self):
        mask = np.zeros((3, 3), dtype=bool)
        mask[1, 1] = True
        text = ascii_coverage_map(mask)
        assert text.count("#") == 1
        assert text.count(".") == 8

    def test_row_zero_at_bottom(self):
        mask = np.zeros((2, 2), dtype=bool)
        mask[0, 0] = True  # column 0, bottom row
        lines = ascii_coverage_map(mask).split("\n")
        # lines: border, top row, bottom row, border
        assert lines[2] == "|#.|"
        assert lines[1] == "|..|"

    def test_title(self):
        text = ascii_coverage_map(np.ones((2, 2), dtype=bool), title="cov")
        assert text.startswith("cov")

    def test_dimension_validation(self):
        with pytest.raises(InvalidParameterError):
            ascii_coverage_map(np.ones(4, dtype=bool))


class TestScatterMap:
    def test_renders_points(self):
        pts = np.array([[0.5, 0.5], [0.1, 0.9]])
        text = ascii_scatter_map(pts, title="map")
        assert "map" in text
        assert text.count(".") == 2

    def test_marks_highlighted(self):
        pts = np.array([[0.5, 0.5], [0.1, 0.9]])
        text = ascii_scatter_map(pts, marks=np.array([True, False]))
        assert text.count("#") == 1
        assert text.count(".") == 1

    def test_marks_length_validation(self):
        with pytest.raises(InvalidParameterError):
            ascii_scatter_map(np.zeros((2, 2)), marks=np.array([True]))

    def test_size_validation(self):
        with pytest.raises(InvalidParameterError):
            ascii_scatter_map(np.zeros((1, 2)), width=2)
        with pytest.raises(InvalidParameterError):
            ascii_scatter_map(np.zeros((1, 2)), side=0.0)

    def test_empty_is_fine(self):
        text = ascii_scatter_map(np.empty((0, 2)))
        assert "+" in text
