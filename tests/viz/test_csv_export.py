"""Tests for CSV export helpers."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.simulation.results import ResultTable
from repro.viz.csv_export import export_series, export_table


class TestExportSeries:
    def test_writes_columns(self, tmp_path):
        path = export_series(
            tmp_path / "out.csv",
            "x",
            [1.0, 2.0],
            {"a": [10.0, 20.0], "b": [0.1, 0.2]},
        )
        lines = path.read_text().strip().split("\n")
        assert lines[0] == "x,a,b"
        assert lines[1] == "1.0,10.0,0.1"
        assert lines[2] == "2.0,20.0,0.2"

    def test_length_mismatch(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            export_series(tmp_path / "out.csv", "x", [1.0], {"a": [1.0, 2.0]})

    def test_creates_directories(self, tmp_path):
        path = export_series(tmp_path / "a" / "b" / "out.csv", "x", [1.0], {"y": [2.0]})
        assert path.exists()


class TestExportTable:
    def test_round_trip(self, tmp_path):
        table = ResultTable(title="t", columns=["a"])
        table.add_row(1)
        path = export_table(tmp_path / "t.csv", table)
        assert path.read_text() == "a\n1\n"
