"""Every registered experiment must pass its own checks in fast mode.

These are the reproduction's acceptance tests: each experiment encodes
the paper's shape-level claims as named checks; a regression anywhere in
the stack (geometry, sensing, deployment, theory, simulation) surfaces
here as a failed check.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import all_experiments, get_experiment

ANALYTIC = ["FIG7", "FIG8", "EQ19", "KCOV"]
MONTE_CARLO = ["EQ2-MC", "EQ13-MC", "THM3-MC", "THM4-MC", "AREA", "HET", "GAP", "PHASE"]
EXTENSIONS = [
    "BARRIER",
    "CLUSTER",
    "CONN",
    "CRIT",
    "LIFETIME",
    "OCCL",
    "ORIENT",
    "PLAN",
    "PROB",
    "ROBUST",
    "SLEEP",
]


@pytest.mark.parametrize("experiment_id", ANALYTIC)
def test_analytic_experiment_passes(experiment_id):
    result = get_experiment(experiment_id).run(fast=True, seed=0)
    assert result.passed, f"{experiment_id} failed: {result.failed_checks()}"
    assert result.tables, "every experiment must produce at least one table"
    assert all(len(t) > 0 for t in result.tables)


@pytest.mark.parametrize("experiment_id", MONTE_CARLO)
def test_monte_carlo_experiment_passes(experiment_id):
    result = get_experiment(experiment_id).run(fast=True, seed=0)
    assert result.passed, f"{experiment_id} failed: {result.failed_checks()}"
    assert result.tables


@pytest.mark.parametrize("experiment_id", EXTENSIONS)
def test_extension_experiment_passes(experiment_id):
    result = get_experiment(experiment_id).run(fast=True, seed=0)
    assert result.passed, f"{experiment_id} failed: {result.failed_checks()}"
    assert result.tables


def test_seed_changes_monte_carlo_but_not_verdict():
    """A different seed shifts numbers but not the qualitative checks."""
    a = get_experiment("EQ2-MC").run(fast=True, seed=0)
    b = get_experiment("EQ2-MC").run(fast=True, seed=123)
    assert a.passed and b.passed
    sim_a = a.tables[0].column("simulated_success")
    sim_b = b.tables[0].column("simulated_success")
    assert sim_a != sim_b


def test_figure7_inverse_proportionality_numbers():
    """theta * CSA is nearly constant across the Figure 7 sweep."""
    result = get_experiment("FIG7").run(fast=True, seed=0)
    products = result.tables[0].column("theta_times_csa_nec")
    spread = (max(products) - min(products)) / (sum(products) / len(products))
    assert spread < 0.5


def test_figure8_paper_anchor():
    """n=100, theta=pi/4: sufficient CSA is ~0.66 (paper eyeballs ~0.5)."""
    result = get_experiment("FIG8").run(fast=True, seed=0)
    table = result.tables[0]
    first = table.to_records()[0]
    assert first["n"] == 100
    assert 0.4 < first["csa_sufficient"] < 0.8


def test_eq19_identity_is_tight():
    result = get_experiment("EQ19").run(fast=True, seed=0)
    errors = result.tables[0].column("relative_error")
    assert max(errors) < 1e-9
