"""Unit tests for experiment-module helper functions.

The pass/fail acceptance tests treat experiments as black boxes; these
tests pin the internals — table builders, scenario lists, analytic
helpers — so a regression is localised rather than just 'FIG7 failed'.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments.critical_search import (
    bisect_transition,
    grid_coverage_probability,
)
from repro.experiments.figure7 import build_table as fig7_table
from repro.experiments.figure8 import build_table as fig8_table
from repro.experiments.heterogeneity import profiles_with_equal_weighted_area
from repro.experiments.occlusion import visibility_ratio
from repro.experiments.uniform_validation import scenarios, validation_profile
from repro.core.csa import csa_necessary, csa_sufficient


class TestFigureTables:
    def test_fig7_columns_and_rows(self):
        table = fig7_table(points=5)
        assert len(table) == 5
        assert table.column("theta_over_pi")[0] == pytest.approx(0.1)
        assert table.column("theta_over_pi")[-1] == pytest.approx(0.5)

    def test_fig7_values_match_formulas(self):
        table = fig7_table(n=1000, points=3)
        for record in table.to_records():
            theta = record["theta"]
            assert record["csa_necessary"] == pytest.approx(csa_necessary(1000, theta))
            assert record["csa_sufficient"] == pytest.approx(
                csa_sufficient(1000, theta)
            )

    def test_fig8_axis_endpoints(self):
        table = fig8_table(count=7)
        ns = table.column("n")
        assert ns[0] == 100 and ns[-1] == 10_000

    def test_fig8_values_match_formulas(self):
        table = fig8_table(count=5)
        for record in table.to_records():
            assert record["csa_necessary"] == pytest.approx(
                csa_necessary(record["n"], math.pi / 4)
            )


class TestValidationScenarios:
    def test_profile_is_two_groups(self):
        assert validation_profile().num_groups == 2

    def test_fast_scenarios_subset_of_full(self):
        fast = set(scenarios(True))
        full = set(scenarios(False))
        assert fast <= full


class TestHeterogeneityProfiles:
    def test_all_profiles_hit_target(self):
        for label, profile in profiles_with_equal_weighted_area(0.02):
            assert profile.weighted_sensing_area == pytest.approx(0.02, abs=1e-12), label

    def test_structures_differ(self):
        structures = [p.num_groups for _, p in profiles_with_equal_weighted_area(0.02)]
        assert sorted(structures) == [1, 2, 4]


class TestVisibilityRatio:
    def test_no_obstacles_is_one(self):
        assert visibility_ratio(0.0, 0.02, 0.3) == pytest.approx(1.0)

    def test_decreasing_in_intensity(self):
        values = [visibility_ratio(lam, 0.02, 0.3) for lam in (0, 10, 50, 200)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_decreasing_in_radius(self):
        assert visibility_ratio(30, 0.05, 0.3) < visibility_ratio(30, 0.01, 0.3)

    def test_matches_closed_form(self):
        """For the stadium model the integral has a closed form:
        with a = lam*2*R*reach and c = exp(-lam*pi*R^2):
        integral 2 t e^{-a t} dt = 2 (1 - (1+a) e^{-a}) / a^2."""
        lam, R, reach = 40.0, 0.03, 0.25
        a = lam * 2 * R * reach
        c = math.exp(-lam * math.pi * R * R)
        closed = c * 2.0 * (1.0 - (1.0 + a) * math.exp(-a)) / (a * a)
        assert visibility_ratio(lam, R, reach) == pytest.approx(closed, rel=1e-3)


class TestCriticalSearchHelpers:
    def test_grid_coverage_probability_extremes(self):
        theta = math.pi / 2
        tiny = grid_coverage_probability(1e-4, 100, theta, trials=10, seed=0, max_points=50)
        huge = grid_coverage_probability(0.8, 100, theta, trials=10, seed=0, max_points=50)
        assert tiny == 0.0
        assert huge == 1.0

    def test_bisection_result_in_bracket(self):
        theta = math.pi / 2
        n = 120
        s_star, p_lo, p_hi = bisect_transition(
            n, theta, trials=15, seed=3, max_points=80, iterations=4
        )
        assert 0.25 * csa_necessary(n, theta) <= s_star <= 2.0 * csa_sufficient(n, theta)
        assert p_lo < 0.5 <= p_hi
