"""Tests for the experiment registry plumbing."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import all_experiments, get_experiment
from repro.experiments.registry import Experiment, ExperimentResult, register
from repro.simulation.results import ResultTable

EXPECTED_IDS = {
    # Paper artifacts (DESIGN.md experiment index).
    "FIG7",
    "FIG8",
    "EQ2-MC",
    "EQ13-MC",
    "THM3-MC",
    "THM4-MC",
    "PHASE",
    "GAP",
    "EQ19",
    "KCOV",
    "AREA",
    "HET",
    # Extensions (Section VIII future work + model ablations).
    "BARRIER",
    "CLUSTER",
    "CONN",
    "CRIT",
    "LIFETIME",
    "OCCL",
    "ORIENT",
    "PLAN",
    "PROB",
    "ROBUST",
    "SLEEP",
}


class TestRegistry:
    def test_all_design_md_experiments_registered(self):
        assert set(all_experiments()) == EXPECTED_IDS

    def test_lookup_case_insensitive(self):
        assert get_experiment("fig7").experiment_id == "FIG7"

    def test_unknown_raises(self):
        with pytest.raises(ExperimentError):
            get_experiment("NOPE")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ExperimentError):
            register("FIG7", "dup", "dup")(lambda fast, seed: None)

    def test_every_experiment_has_paper_artifact(self):
        for exp in all_experiments().values():
            assert exp.paper_artifact
            assert exp.title


class TestExperimentResult:
    def test_passed_logic(self):
        result = ExperimentResult(
            experiment_id="X", title="t", checks={"a": True, "b": False}
        )
        assert not result.passed
        assert result.failed_checks() == ["b"]

    def test_passed_empty_checks(self):
        assert ExperimentResult(experiment_id="X", title="t").passed

    def test_render(self):
        table = ResultTable(title="tbl", columns=["a"])
        table.add_row(1)
        result = ExperimentResult(
            experiment_id="X",
            title="demo",
            tables=[table],
            checks={"ok": True},
            notes=["a note"],
        )
        text = result.render()
        assert "X: demo" in text
        assert "a note" in text
        assert "check ok: PASS" in text
        assert "overall: PASS" in text

    def test_runner_id_mismatch_detected(self):
        exp = Experiment(
            experiment_id="A",
            title="t",
            paper_artifact="p",
            runner=lambda fast, seed: ExperimentResult(experiment_id="B", title="t"),
        )
        with pytest.raises(ExperimentError):
            exp.run()
