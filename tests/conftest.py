"""Shared fixtures for the test suite."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.deployment.uniform import UniformDeployment
from repro.geometry.torus import Region
from repro.sensors.model import CameraSpec, GroupSpec, HeterogeneousProfile


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for the test."""
    return np.random.default_rng(1234)


@pytest.fixture
def unit_torus() -> Region:
    return Region(side=1.0, torus=True)


@pytest.fixture
def unit_square() -> Region:
    return Region(side=1.0, torus=False)


@pytest.fixture
def homogeneous_profile() -> HeterogeneousProfile:
    """A single-group profile with a generous sector."""
    return HeterogeneousProfile.homogeneous(
        CameraSpec(radius=0.25, angle_of_view=math.pi / 2.0)
    )


@pytest.fixture
def two_group_profile() -> HeterogeneousProfile:
    """The validation mix used across theory/simulation comparisons."""
    return HeterogeneousProfile(
        [
            GroupSpec(CameraSpec(radius=0.22, angle_of_view=math.pi / 2.0), 0.6, "big"),
            GroupSpec(CameraSpec(radius=0.14, angle_of_view=1.8), 0.4, "small"),
        ]
    )


@pytest.fixture
def small_fleet(homogeneous_profile, rng):
    """A deployed fleet of 200 sensors on the unit torus."""
    fleet = UniformDeployment().deploy(homogeneous_profile, 200, rng)
    fleet.build_index()
    return fleet
