"""Tests for minimum-ring constructions."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.full_view import (
    minimum_sensors_for_full_view,
    point_is_full_view_covered,
)
from repro.errors import InvalidParameterError
from repro.planning.ring import full_view_ring, ring_radius_bounds

thetas = st.floats(min_value=0.15, max_value=math.pi, allow_nan=False)


class TestRingRadiusBounds:
    def test_bounds(self):
        lo, hi = ring_radius_bounds(0.3)
        assert lo == 0.0 and hi == 0.3

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ring_radius_bounds(0.0)


class TestFullViewRing:
    def test_minimum_count(self):
        theta = math.pi / 3
        ring = full_view_ring((0.5, 0.5), theta, standoff=0.2, reach=0.3)
        assert len(ring) == minimum_sensors_for_full_view(theta)

    def test_covers_target(self):
        theta = math.pi / 3
        ring = full_view_ring((0.5, 0.5), theta, standoff=0.2, reach=0.3)
        assert point_is_full_view_covered(ring, (0.5, 0.5), theta)

    def test_achieves_lower_bound_exactly(self):
        """Removing any sensor from the minimum ring breaks coverage
        (for theta with pi/theta not integer-degenerate)."""
        theta = 0.9  # pi/0.9 ~ 3.49 -> k = 4 with slack... use strict check
        ring = full_view_ring((0.5, 0.5), theta, standoff=0.2, reach=0.3)
        k = len(ring)
        if 2 * math.pi / (k - 1) > 2 * theta + 1e-9:
            for drop in range(k):
                keep = [i for i in range(k) if i != drop]
                assert not point_is_full_view_covered(
                    ring.subset(keep), (0.5, 0.5), theta
                )

    def test_explicit_count(self):
        ring = full_view_ring((0.5, 0.5), math.pi / 2, 0.2, 0.3, count=8)
        assert len(ring) == 8

    def test_count_below_minimum_rejected(self):
        with pytest.raises(InvalidParameterError):
            full_view_ring((0.5, 0.5), math.pi / 3, 0.2, 0.3, count=2)

    def test_standoff_validation(self):
        with pytest.raises(InvalidParameterError):
            full_view_ring((0.5, 0.5), math.pi / 3, standoff=0.4, reach=0.3)
        with pytest.raises(InvalidParameterError):
            full_view_ring((0.5, 0.5), math.pi / 3, standoff=0.0, reach=0.3)
        with pytest.raises(InvalidParameterError):
            full_view_ring((0.5, 0.5), math.pi / 3, standoff=0.6, reach=0.7)

    def test_phase_rotates_positions(self):
        a = full_view_ring((0.5, 0.5), math.pi / 2, 0.2, 0.3, phase=0.0)
        b = full_view_ring((0.5, 0.5), math.pi / 2, 0.2, 0.3, phase=0.5)
        assert not np.allclose(a.positions, b.positions)
        assert point_is_full_view_covered(b, (0.5, 0.5), math.pi / 2)

    def test_near_seam_target(self):
        """Rings wrap correctly around the torus seam."""
        theta = math.pi / 2
        ring = full_view_ring((0.02, 0.98), theta, standoff=0.2, reach=0.3)
        assert point_is_full_view_covered(ring, (0.02, 0.98), theta)

    @given(thetas, st.floats(min_value=0.05, max_value=0.45))
    @settings(max_examples=150, deadline=None)
    def test_always_covers(self, theta, standoff):
        ring = full_view_ring(
            (0.5, 0.5), theta, standoff=standoff, reach=standoff + 0.01
        )
        assert point_is_full_view_covered(ring, (0.5, 0.5), theta)
