"""Tests for coordinate-ascent orientation optimisation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.batch import full_view_mask
from repro.errors import InvalidParameterError
from repro.planning.orientation_opt import (
    covered_target_count,
    optimize_orientations,
)

THETA = math.pi / 3


def ring_positions(center, standoff, k):
    bearings = np.arange(k) * (2 * math.pi / k)
    return np.stack(
        [center[0] + standoff * np.cos(bearings), center[1] + standoff * np.sin(bearings)],
        axis=1,
    )


class TestValidation:
    def test_empty_inputs(self):
        with pytest.raises(InvalidParameterError):
            optimize_orientations(
                np.empty((0, 2)), np.empty(0), np.empty(0), np.array([[0.5, 0.5]]), THETA
            )
        with pytest.raises(InvalidParameterError):
            optimize_orientations(
                np.array([[0.5, 0.5]]), np.array([0.2]), np.array([1.0]),
                np.empty((0, 2)), THETA,
            )

    def test_bad_initial_length(self):
        with pytest.raises(InvalidParameterError):
            optimize_orientations(
                np.array([[0.5, 0.5]]),
                np.array([0.2]),
                np.array([1.0]),
                np.array([[0.4, 0.5]]),
                THETA,
                initial_orientations=np.array([0.0, 1.0]),
            )

    def test_bad_passes(self):
        with pytest.raises(InvalidParameterError):
            optimize_orientations(
                np.array([[0.5, 0.5]]), np.array([0.2]), np.array([1.0]),
                np.array([[0.4, 0.5]]), THETA, max_passes=0,
            )


class TestSingleTarget:
    def test_recovers_ring_solution(self):
        """Cameras on a ring, aimed badly, learn to aim at the target."""
        target = np.array([[0.5, 0.5]])
        k = 3
        positions = ring_positions((0.5, 0.5), 0.2, k)
        result = optimize_orientations(
            positions,
            np.full(k, 0.3),
            np.full(k, math.pi / 2),
            target,
            THETA,
            initial_orientations=np.zeros(k),  # all facing east: bad
        )
        assert result.covered_after == 1
        assert full_view_mask(result.fleet, target, THETA)[0]

    def test_never_decreases_objective(self):
        rng = np.random.default_rng(5)
        positions = rng.uniform(size=(15, 2))
        targets = rng.uniform(size=(6, 2))
        initial = rng.uniform(0, 2 * math.pi, size=15)
        result = optimize_orientations(
            positions,
            np.full(15, 0.35),
            np.full(15, math.pi / 2),
            targets,
            THETA,
            initial_orientations=initial,
        )
        assert result.covered_after >= result.covered_before

    def test_out_of_range_sensor_untouched(self):
        positions = np.array([[0.5, 0.5]])
        targets = np.array([[0.1, 0.1]])  # beyond radius on the torus? 0.566 -> wraps to ~0.566; keep small radius
        result = optimize_orientations(
            positions, np.array([0.05]), np.array([1.0]), targets, THETA,
            initial_orientations=np.array([1.23]),
        )
        assert result.fleet.orientations[0] == pytest.approx(1.23)
        assert result.covered_after == 0


class TestImprovement:
    def test_beats_random_aiming(self):
        """Optimised aiming covers several times more targets than the
        random aiming the paper's model assumes."""
        rng = np.random.default_rng(7)
        n, m = 60, 12
        positions = rng.uniform(size=(n, 2))
        targets = rng.uniform(size=(m, 2))
        radii = np.full(n, 0.3)
        angles = np.full(n, math.pi / 2)
        random_orient = rng.uniform(0, 2 * math.pi, size=n)
        result = optimize_orientations(
            positions, radii, angles, targets, THETA,
            initial_orientations=random_orient,
        )
        assert result.covered_after > result.covered_before
        assert result.covered_after == covered_target_count(
            result.fleet, targets, THETA
        )

    def test_covered_count_helper(self, small_fleet, rng):
        targets = rng.uniform(size=(20, 2))
        count = covered_target_count(small_fleet, targets, THETA)
        expected = int(full_view_mask(small_fleet, targets, THETA).sum())
        assert count == expected

    def test_terminates_within_max_passes(self):
        rng = np.random.default_rng(3)
        positions = rng.uniform(size=(20, 2))
        targets = rng.uniform(size=(5, 2))
        result = optimize_orientations(
            positions, np.full(20, 0.3), np.full(20, 1.2), targets, THETA,
            max_passes=2,
        )
        assert result.passes <= 2
