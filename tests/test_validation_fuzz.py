"""Failure injection: adversarial inputs must raise library errors.

Every public constructor/entry point is fuzzed with malformed values
(NaN, infinities, wrong signs, out-of-domain angles, shape mismatches).
The contract: either a valid result or a :class:`FullViewError`
subclass — never a silent wrong answer, never an unrelated traceback
like ``ZeroDivisionError`` leaking from internals.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    CameraSpec,
    FullViewError,
    HeterogeneousProfile,
    MonteCarloConfig,
    Region,
    SensorFleet,
)
from repro.core.csa import csa_necessary, csa_sufficient
from repro.core.full_view import is_full_view_covered
from repro.core.poisson_theory import poisson_necessary_probability
from repro.core.uniform_theory import necessary_failure_probability
from repro.geometry.intervals import AngularInterval
from repro.sensors.model import GroupSpec

# Values mixing valid and hostile floats.
hostile_floats = st.one_of(
    st.floats(allow_nan=True, allow_infinity=True, width=64),
    st.sampled_from([0.0, -0.0, 1e-300, 1e300, -1.0, 2 * math.pi, math.pi]),
)


class TestCameraSpecFuzz:
    @given(hostile_floats, hostile_floats)
    @settings(max_examples=300)
    def test_construct(self, radius, angle):
        try:
            spec = CameraSpec(radius=radius, angle_of_view=angle)
        except FullViewError:
            return
        # If accepted, the invariants must hold.
        assert spec.radius > 0
        assert 0 < spec.angle_of_view <= 2 * math.pi + 1e-9
        assert spec.sensing_area > 0

    @given(hostile_floats, hostile_floats)
    @settings(max_examples=200)
    def test_from_area(self, area, angle):
        try:
            spec = CameraSpec.from_area(area, angle)
        except FullViewError:
            return
        assert math.isfinite(spec.radius)
        assert spec.sensing_area == pytest.approx(area, rel=1e-6)


class TestProfileFuzz:
    @given(st.lists(st.floats(min_value=-1.0, max_value=2.0), min_size=1, max_size=5))
    @settings(max_examples=200)
    def test_fractions(self, fractions):
        specs = [
            CameraSpec(radius=0.1 + 0.01 * i, angle_of_view=1.0)
            for i in range(len(fractions))
        ]
        try:
            profile = HeterogeneousProfile(
                GroupSpec(spec, frac) for spec, frac in zip(specs, fractions)
            )
        except FullViewError:
            return
        assert sum(profile.fractions()) == pytest.approx(1.0)


class TestRegionFuzz:
    @given(hostile_floats)
    @settings(max_examples=200)
    def test_side(self, side):
        try:
            region = Region(side=side)
        except FullViewError:
            return
        assert region.side > 0 and math.isfinite(region.side)


class TestIntervalFuzz:
    @given(hostile_floats, hostile_floats)
    @settings(max_examples=300)
    def test_construct(self, start, extent):
        try:
            arc = AngularInterval(start, extent)
        except (FullViewError, ValueError):
            return
        assert 0 <= arc.start < 2 * math.pi
        assert 0 <= arc.extent <= 2 * math.pi


class TestTheoryFuzz:
    @given(
        st.integers(min_value=-5, max_value=10_000),
        hostile_floats,
    )
    @settings(max_examples=300)
    def test_csa(self, n, theta):
        try:
            value = csa_necessary(n, theta)
            value_s = csa_sufficient(n, theta)
        except FullViewError:
            return
        assert value > 0 and math.isfinite(value)
        assert value_s > value

    @given(st.integers(min_value=-5, max_value=5000), hostile_floats)
    @settings(max_examples=200)
    def test_failure_probabilities(self, n, theta):
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=0.1, angle_of_view=1.0)
        )
        try:
            p = necessary_failure_probability(profile, n, theta)
            q = poisson_necessary_probability(profile, max(n, 1), theta)
        except FullViewError:
            return
        assert 0.0 <= p <= 1.0
        assert 0.0 <= q <= 1.0


class TestFullViewFuzz:
    @given(
        st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), max_size=16),
        hostile_floats,
    )
    @settings(max_examples=300)
    def test_is_full_view_covered(self, dirs, theta):
        try:
            result = is_full_view_covered(dirs, theta)
        except FullViewError:
            return
        assert isinstance(result, (bool, np.bool_))


class TestFleetFuzz:
    def test_nan_position_rejected_or_harmless(self):
        """A NaN position must not silently corrupt coverage queries."""
        fleet = SensorFleet(
            positions=np.array([[np.nan, 0.5], [0.5, 0.5]]),
            orientations=np.array([0.0, math.pi]),
            radii=np.array([0.2, 0.2]),
            angles=np.array([1.0, 1.0]),
        )
        covering = fleet.covering((0.5, 0.5), use_index=False)
        # The NaN sensor can never cover anything; the valid one obeys
        # plain geometry.
        assert 0 not in covering.tolist()

    @given(st.integers(min_value=-3, max_value=3))
    def test_config_trials(self, trials):
        try:
            cfg = MonteCarloConfig(trials=trials)
        except FullViewError:
            return
        assert cfg.trials >= 1
