"""The payload plane: shared segments live exactly as long as a run.

Two contracts are pinned here.  First, the mechanics: registering a
task externalises its large arrays into content-addressed shared-memory
segments, resolving the handle rebuilds an equal task around zero-copy
read-only views, and corrupt bytes are refused by digest check.
Second — the part that must survive every failure mode — lifecycle:
``/dev/shm`` holds no ``fvp*`` segment after a normal run, after a
worker crash, after pool respawns, after chaos profiles, or after a
process that abandoned its store without closing it.  An autouse
fixture scans for orphaned segment names in teardown, so *every* test
in this module doubles as a leak test.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from dataclasses import dataclass
from multiprocessing import parent_process
from pathlib import Path

import numpy as np
import pytest

from repro.errors import PayloadError
from repro.simulation import payload as payload_module
from repro.simulation.engine import (
    MonteCarloConfig,
    ParallelExecutor,
    SerialExecutor,
    execute_trials,
)
from repro.simulation.faults import ChaosPolicy, RetryPolicy
from repro.simulation.payload import (
    MIN_SHARED_BYTES,
    SEGMENT_PREFIX,
    ArrayRef,
    PayloadStore,
    TaskRef,
    prime_worker,
    resolve_task,
)

SHM_DIR = Path("/dev/shm")

#: Fast retries for tests: no backoff sleeps, bounded attempts.
FAST_RETRY = RetryPolicy(max_retries=2, backoff_base=0.0, max_pool_respawns=2)


def live_segments() -> set:
    """Names of this module's shared segments currently on /dev/shm."""
    if not SHM_DIR.is_dir():  # non-Linux: leak scans become vacuous
        return set()
    return {p.name for p in SHM_DIR.glob(f"{SEGMENT_PREFIX}*")}


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test in this module must leave /dev/shm as it found it."""
    before = live_segments()
    yield
    leaked = live_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


@dataclass(frozen=True, eq=False)
class ArrayMeanTask:
    """A trial task carrying a payload array big enough to externalise."""

    weights: np.ndarray

    def __call__(self, trial: int, rng: np.random.Generator) -> float:
        return float(rng.random() * self.weights[trial % self.weights.size])


def crash_in_worker_trial(trial: int, rng: np.random.Generator) -> float:
    """Hard-kills the hosting *worker* on trial 3; safe in the parent.

    ``os._exit`` models a segfault-style death (no cleanup handlers run,
    the pool sees ``BrokenProcessPool``); guarding on ``parent_process``
    keeps the in-process degradation rung — and pytest itself — alive.
    """
    if trial == 3 and parent_process() is not None:
        os._exit(1)
    return float(rng.random())


def _weights(n: int, scale: float = 1.0) -> np.ndarray:
    # Distinct scales give distinct content digests, so tests cannot
    # alias each other through the worker-side cache.
    return np.linspace(0.1, scale, n)


class TestPayloadStore:
    def test_register_resolve_roundtrip(self):
        task = ArrayMeanTask(weights=_weights(1024, 2.0))
        with PayloadStore() as store:
            ref = store.register_task(task)
            assert isinstance(ref, TaskRef)
            rebuilt = resolve_task(ref)
            assert isinstance(rebuilt, ArrayMeanTask)
            assert np.array_equal(rebuilt.weights, task.weights)
            rng = np.random.default_rng(3)
            assert rebuilt(5, rng) == task(5, np.random.default_rng(3))

    def test_resolved_arrays_are_read_only_views(self):
        task = ArrayMeanTask(weights=_weights(1024, 3.0))
        with PayloadStore() as store:
            rebuilt = resolve_task(store.register_task(task))
            assert not rebuilt.weights.flags.writeable
            with pytest.raises(ValueError):
                rebuilt.weights[0] = 99.0

    def test_large_arrays_externalise_small_stay_inline(self):
        small = ArrayMeanTask(weights=np.arange(8, dtype=np.float64))
        big = ArrayMeanTask(weights=_weights(4096, 4.0))
        assert small.weights.nbytes < MIN_SHARED_BYTES <= big.weights.nbytes
        with PayloadStore() as store:
            store.register_task(small)
            assert len(store.segment_names()) == 1  # body only
        with PayloadStore() as store:
            store.register_task(big)
            assert len(store.segment_names()) == 2  # body + array

    def test_identical_content_is_deduplicated(self):
        weights = _weights(1024, 5.0)
        with PayloadStore() as store:
            ref_a = store.share_array(weights)
            ref_b = store.share_array(weights.copy())  # same bytes, new object
            assert ref_a == ref_b
            task_ref = store.register_task(ArrayMeanTask(weights=weights))
            again = store.register_task(ArrayMeanTask(weights=weights))
            assert task_ref == again
            # One array segment + one body segment, despite four calls.
            assert len(store.segment_names()) == 2

    def test_payload_bytes_accounts_all_segments(self):
        weights = _weights(1024, 6.0)
        with PayloadStore() as store:
            store.register_task(ArrayMeanTask(weights=weights))
            assert store.payload_bytes >= weights.nbytes

    def test_close_unlinks_and_is_idempotent(self):
        store = PayloadStore()
        store.register_task(ArrayMeanTask(weights=_weights(1024, 7.0)))
        names = set(store.segment_names())
        assert names <= live_segments() or not SHM_DIR.is_dir()
        store.close()
        assert store.closed
        assert not (names & live_segments())
        store.close()  # idempotent
        with pytest.raises(PayloadError):
            store.share_array(_weights(1024, 7.5))

    def test_object_dtype_refused(self):
        with PayloadStore() as store:
            with pytest.raises(PayloadError):
                store.share_array(np.array([object()] * 600))

    def test_unpicklable_task_fails_registration_cleanly(self):
        captured = _weights(1024, 8.0)
        store = PayloadStore()
        with pytest.raises(Exception):
            store.register_task(lambda trial, rng: float(captured[trial]))
        store.close()  # any partial segments are reclaimed


class TestResolveTask:
    def test_repeat_resolution_hits_cache(self):
        with PayloadStore() as store:
            ref = store.register_task(ArrayMeanTask(weights=_weights(1024, 9.0)))
            first = resolve_task(ref)
            assert resolve_task(ref) is first

    def test_corrupt_segment_refused_by_digest(self):
        with PayloadStore() as store:
            ref = store.register_task(ArrayMeanTask(weights=_weights(1024, 10.0)))
            shm = store._segments[ref.segment]
            shm.buf[0] = shm.buf[0] ^ 0xFF
            with pytest.raises(PayloadError):
                resolve_task(ref)

    def test_worker_cache_is_bounded(self):
        limit = payload_module._TASK_CACHE_LIMIT
        with PayloadStore() as store:
            refs = [
                store.register_task(ArrayMeanTask(weights=_weights(512, 11.0 + i)))
                for i in range(limit + 2)
            ]
            for ref in refs:
                resolve_task(ref)
            assert len(payload_module._TASK_CACHE) <= limit

    def test_close_evicts_cached_resolutions(self):
        with PayloadStore() as store:
            ref = store.register_task(ArrayMeanTask(weights=_weights(1024, 17.0)))
            resolve_task(ref)
            assert ref.digest in payload_module._TASK_CACHE
        assert ref.digest not in payload_module._TASK_CACHE

    def test_missing_segment_raises(self):
        ref = TaskRef(segment=f"{SEGMENT_PREFIX}dead-0-tfeedface", nbytes=4, digest="feedface")
        with pytest.raises(FileNotFoundError):
            resolve_task(ref)

    def test_prime_worker_swallows_stale_refs(self):
        # A worker spawned after its run ended must not break the pool.
        stale = TaskRef(segment=f"{SEGMENT_PREFIX}dead-0-tdeadbeef", nbytes=4, digest="deadbeef")
        prime_worker((stale,))  # must not raise

    def test_array_ref_resolves_against_owner_mapping(self):
        weights = _weights(1024, 18.0)
        with PayloadStore() as store:
            ref = store.share_array(weights)
            assert isinstance(ref, ArrayRef)
            view = ref.resolve()
            assert np.array_equal(view, weights)
            assert not view.flags.writeable
            del view


class TestRunLifecycle:
    """Engine runs across every failure mode leave /dev/shm clean."""

    CFG = MonteCarloConfig(trials=12, seed=21)

    def _serial(self, task, cfg=None):
        return execute_trials(task, cfg or self.CFG, executor=SerialExecutor())

    def test_normal_parallel_run_no_leaks(self):
        task = ArrayMeanTask(weights=_weights(4096, 12.0))
        parallel = execute_trials(
            task, self.CFG, executor=ParallelExecutor(workers=2, chunk_size=4)
        )
        assert parallel == self._serial(task)
        assert not live_segments()

    def test_registration_events_and_metrics(self):
        import io
        import json

        from repro.obs.events import EventLog, event_scope
        from repro.obs.metrics import MetricsRegistry, metrics_scope

        task = ArrayMeanTask(weights=_weights(4096, 13.0))
        sink = io.StringIO()
        registry = MetricsRegistry()
        with event_scope(EventLog(sink)), metrics_scope(registry):
            execute_trials(
                task, self.CFG, executor=ParallelExecutor(workers=2, chunk_size=4)
            )
        events = {
            json.loads(line)["event"]: json.loads(line)
            for line in sink.getvalue().splitlines()
        }
        assert events["TaskRegistered"]["payload_bytes"] >= task.weights.nbytes
        assert events["TaskRegistered"]["segments"] == 2
        assert events["SegmentsReleased"]["segments"] == 2
        snapshot = registry.snapshot()
        assert snapshot["counters"]["payload_tasks_registered"] == 1
        assert snapshot["gauges"]["payload_segments_active"] == 0.0

    def test_worker_crash_respawn_no_leaks(self):
        # Trial 3 hard-kills every worker that tries it; the ladder
        # respawns the pool (named segments must survive the respawn)
        # and finally completes the chunk in-process.
        cfg = MonteCarloConfig(trials=8, seed=5)
        executor = ParallelExecutor(workers=2, chunk_size=4, retry=FAST_RETRY)
        outcomes = execute_trials(crash_in_worker_trial, cfg, executor=executor)
        assert outcomes == self._serial(crash_in_worker_trial, cfg)
        assert not live_segments()

    def test_chaos_crash_profile_no_leaks(self):
        task = ArrayMeanTask(weights=_weights(4096, 14.0))
        executor = ParallelExecutor(
            2, chunk_size=4, retry=FAST_RETRY, chaos=ChaosPolicy(seed=5, crash=0.6)
        )
        outcomes = execute_trials(task, self.CFG, executor=executor)
        assert outcomes == self._serial(task)
        assert not live_segments()

    def test_chaos_hang_respawn_no_leaks(self):
        # First attempts hang past the deadline: the executor times
        # them out and respawns the pool mid-run.  Freshly spawned
        # workers re-attach the same named segments, and the close path
        # still unlinks everything afterwards.
        task = ArrayMeanTask(weights=_weights(4096, 15.0))
        cfg = MonteCarloConfig(trials=6, seed=123)
        executor = ParallelExecutor(
            2,
            chunk_size=6,
            retry=RetryPolicy(
                max_retries=2, chunk_timeout=2.0,
                backoff_base=0.0, max_pool_respawns=2,
            ),
            chaos=ChaosPolicy(seed=3, hang=1.0, hang_seconds=8.0),
        )
        outcomes = execute_trials(task, cfg, executor=executor)
        assert outcomes == self._serial(task, cfg)
        assert not live_segments()

    def test_closure_fallback_run_no_leaks(self):
        # Registration fails for closures; the run ships the task
        # inline exactly as before the payload plane existed.
        offset = 1.0
        outcomes = execute_trials(
            lambda trial, rng: float(rng.random()) + offset,
            self.CFG,
            executor=ParallelExecutor(workers=2, chunk_size=4),
        )
        assert len(outcomes) == self.CFG.trials
        assert not live_segments()


@pytest.mark.skipif(not SHM_DIR.is_dir(), reason="needs /dev/shm to observe segments")
class TestCrashNet:
    def test_atexit_unlinks_abandoned_store(self, tmp_path):
        # A process that registers a payload and exits without closing
        # the store must still unlink its segments (the atexit net).
        script = textwrap.dedent(
            """
            import numpy as np
            from repro.simulation.payload import PayloadStore

            store = PayloadStore()
            store.register_task({"weights": np.linspace(0.0, 1.0, 4096)})
            for name in store.segment_names():
                print(name)
            """
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        names = set(proc.stdout.split())
        assert names, "subprocess registered no segments"
        assert not (names & live_segments())
