"""Tests for parameter sweep helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.simulation.sweeps import n_axis_log, q_axis, sweep, theta_axis


class TestSweep:
    def test_collects_rows(self):
        table = sweep(
            "squares",
            "x",
            [1.0, 2.0, 3.0],
            lambda x: {"square": x * x},
        )
        assert table.columns == ["x", "square"]
        assert table.column("square") == [1.0, 4.0, 9.0]

    def test_explicit_columns(self):
        table = sweep(
            "demo",
            "x",
            [1.0],
            lambda x: {"a": 1, "b": 2},
            columns=["b"],
        )
        assert table.columns == ["x", "b"]
        assert table.rows[0] == [1.0, 2]

    def test_empty_axis(self):
        with pytest.raises(InvalidParameterError):
            sweep("x", "x", [], lambda x: {})


class TestAxes:
    def test_theta_axis_range(self):
        axis = theta_axis(0.1, 0.5, 9)
        assert axis[0] == pytest.approx(0.1 * math.pi)
        assert axis[-1] == pytest.approx(0.5 * math.pi)
        assert len(axis) == 9

    def test_theta_axis_validation(self):
        with pytest.raises(InvalidParameterError):
            theta_axis(0.5, 0.1)
        with pytest.raises(InvalidParameterError):
            theta_axis(0.1, 0.5, 0)

    def test_n_axis_log_spacing(self):
        axis = n_axis_log(100, 10_000, 13)
        assert axis[0] == 100
        assert axis[-1] == 10_000
        assert all(a < b for a, b in zip(axis, axis[1:]))
        # Log spacing: consecutive ratios roughly constant.
        ratios = [b / a for a, b in zip(axis, axis[1:])]
        assert max(ratios) / min(ratios) < 1.5

    def test_n_axis_validation(self):
        with pytest.raises(InvalidParameterError):
            n_axis_log(1, 100)
        with pytest.raises(InvalidParameterError):
            n_axis_log(100, 50)

    def test_q_axis(self):
        axis = q_axis()
        assert 1.0 in axis
        assert axis == sorted(axis)
        assert all(q > 0 for q in axis)

    def test_q_axis_no_unit(self):
        assert 1.0 not in q_axis(include_unit=False)

    def test_q_axis_validation(self):
        with pytest.raises(InvalidParameterError):
            q_axis(below=(-0.5,))
