"""Fault injection and the hardened execution path.

The contract under test: every injected fault — worker crash, hang,
slow chunk, pickle failure, corrupt checkpoint, poison trial — is (a)
reproducible from the chaos seed and (b) *invisible in the results*.
Trial generators are O(1)-addressable, chaos fires only at the worker
boundary, and the retry/respawn/degrade ladder re-runs work instead of
losing it, so a chaos run must tally bit-identical outcomes to a
fault-free run (minus explicitly quarantined poison trials).
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.errors import ChaosError, InvalidParameterError
from repro.obs.events import EventLog, event_scope
from repro.obs.metrics import MetricsRegistry, metrics_scope
from repro.simulation.engine import (
    MonteCarloConfig,
    ParallelExecutor,
    _pool_for,
    execute_trials,
)
from repro.simulation.faults import (
    CHAOS_ENV_VAR,
    CHUNK_TIMEOUT_ENV_VAR,
    MAX_RETRIES_ENV_VAR,
    ChaosPolicy,
    RetryPolicy,
    active_chaos_policy,
    active_retry_policy,
    fault_scope,
    resolve_chaos_policy,
    resolve_retry_policy,
)


def draw_trial(trial: int, rng: np.random.Generator) -> float:
    """A cheap picklable task whose value fingerprints the rng stream."""
    return float(rng.random())


#: Fast retries for tests: no backoff sleeps, bounded attempts.
FAST_RETRY = RetryPolicy(max_retries=2, backoff_base=0.0, max_pool_respawns=2)


def _values(outcomes):
    return [outcome.value for outcome in outcomes]


def _run_with_obs(executor, config, isolate=False):
    """Run a sweep capturing (outcomes, event names, metrics)."""
    sink = io.StringIO()
    metrics = MetricsRegistry()
    with event_scope(EventLog(sink)), metrics_scope(metrics):
        outcomes = execute_trials(
            draw_trial, config, executor=executor, isolate=isolate
        )
    events = [
        json.loads(line)["event"] for line in sink.getvalue().splitlines() if line
    ]
    return outcomes, events, metrics


class TestChaosPolicySpec:
    def test_parse_roundtrip(self):
        policy = ChaosPolicy(
            seed=7, crash=0.2, hang=0.1, slow=0.05, pickle_error=0.3,
            corrupt=0.15, poison_trial=9, attempts=2,
        )
        assert ChaosPolicy.parse(policy.render_spec()) == policy

    def test_parse_defaults_render(self):
        assert ChaosPolicy.parse("seed=0") == ChaosPolicy()
        assert ChaosPolicy().render_spec() == "seed=0"

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(InvalidParameterError):
            ChaosPolicy.parse("seed=1,explode=0.5")

    def test_parse_rejects_malformed_value(self):
        with pytest.raises(InvalidParameterError):
            ChaosPolicy.parse("crash=lots")

    def test_rates_validated(self):
        with pytest.raises(InvalidParameterError):
            ChaosPolicy(crash=1.5)
        with pytest.raises(InvalidParameterError):
            ChaosPolicy(hang_seconds=-1.0)
        with pytest.raises(InvalidParameterError):
            ChaosPolicy(attempts=0)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV_VAR, "seed=4,crash=0.25,poison=7")
        policy = ChaosPolicy.from_env()
        assert policy == ChaosPolicy(seed=4, crash=0.25, poison_trial=7)
        monkeypatch.setenv(CHAOS_ENV_VAR, "")
        assert ChaosPolicy.from_env() is None


class TestChaosPolicyDecisions:
    def test_decisions_are_deterministic(self):
        a = ChaosPolicy(seed=11, crash=0.5)
        b = ChaosPolicy(seed=11, crash=0.5)
        for first in range(32):
            assert a._fires(a.crash, 1, first, 0) == b._fires(b.crash, 1, first, 0)

    def test_crash_raises_then_clears(self):
        policy = ChaosPolicy(seed=0, crash=1.0)
        with pytest.raises(ChaosError):
            policy.perturb_chunk((0, 1, 2), attempt=0)
        # attempts=1 (default): the fault clears on the first retry.
        policy.perturb_chunk((0, 1, 2), attempt=1)

    def test_poison_fires_on_every_attempt(self):
        policy = ChaosPolicy(seed=0, poison_trial=5)
        for attempt in range(4):
            with pytest.raises(ChaosError):
                policy.perturb_chunk((4, 5, 6), attempt=attempt)
        # Chunks without the poison trial are untouched.
        policy.perturb_chunk((0, 1, 2), attempt=0)

    def test_corrupts_checkpoint_deterministic(self):
        policy = ChaosPolicy(seed=9, corrupt=0.5)
        draws = [policy.corrupts_checkpoint(i) for i in range(64)]
        assert draws == [policy.corrupts_checkpoint(i) for i in range(64)]
        assert any(draws) and not all(draws)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(chunk_timeout=0.0)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(max_pool_respawns=-1)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(MAX_RETRIES_ENV_VAR, "5")
        monkeypatch.setenv(CHUNK_TIMEOUT_ENV_VAR, "2.5")
        policy = RetryPolicy.from_env()
        assert policy.max_retries == 5
        assert policy.chunk_timeout == 2.5

    def test_from_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(MAX_RETRIES_ENV_VAR, "many")
        with pytest.raises(InvalidParameterError):
            RetryPolicy.from_env()

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_max=0.4)
        for attempt in (1, 2, 3, 4):
            delay = policy.backoff_seconds(17, 8, attempt)
            assert delay == policy.backoff_seconds(17, 8, attempt)
            cap = min(0.4, 0.1 * 2 ** (attempt - 1))
            assert 0.5 * cap <= delay < cap

    def test_zero_base_means_no_sleep(self):
        assert RetryPolicy(backoff_base=0.0).backoff_seconds(0, 0, 1) == 0.0


class TestFaultScope:
    def test_scope_installs_and_restores(self):
        retry = RetryPolicy(max_retries=7)
        chaos = ChaosPolicy(seed=3, crash=0.1)
        assert active_retry_policy() is None
        with fault_scope(retry=retry, chaos=chaos):
            assert active_retry_policy() is retry
            assert active_chaos_policy() is chaos
            assert resolve_retry_policy(None) is retry
            assert resolve_chaos_policy(None) is chaos
        assert active_retry_policy() is None
        assert active_chaos_policy() is None

    def test_explicit_beats_scope(self):
        scoped = RetryPolicy(max_retries=7)
        explicit = RetryPolicy(max_retries=1)
        with fault_scope(retry=scoped):
            assert resolve_retry_policy(explicit) is explicit

    def test_scope_beats_environment(self, monkeypatch):
        monkeypatch.setenv(MAX_RETRIES_ENV_VAR, "9")
        with fault_scope(retry=RetryPolicy(max_retries=2)):
            assert resolve_retry_policy(None).max_retries == 2
        assert resolve_retry_policy(None).max_retries == 9


class TestChaosBitIdentity:
    """Seeded chaos profiles complete and tally fault-free results."""

    CONFIG = MonteCarloConfig(trials=24, seed=123)

    @pytest.fixture(scope="class")
    def baseline(self):
        return _values(execute_trials(draw_trial, self.CONFIG))

    def test_crash_profile(self, baseline):
        executor = ParallelExecutor(
            2, chunk_size=4, retry=FAST_RETRY,
            chaos=ChaosPolicy(seed=5, crash=0.6),
        )
        outcomes, events, metrics = _run_with_obs(executor, self.CONFIG)
        assert _values(outcomes) == baseline
        assert "ChunkRetried" in events
        assert metrics.counter("chunk_retries") > 0

    def test_pickle_profile(self, baseline):
        executor = ParallelExecutor(
            2, chunk_size=4, retry=FAST_RETRY,
            chaos=ChaosPolicy(seed=2, pickle_error=0.7),
        )
        outcomes = execute_trials(draw_trial, self.CONFIG, executor=executor)
        assert _values(outcomes) == baseline

    def test_slow_profile(self, baseline):
        executor = ParallelExecutor(
            2, chunk_size=6, retry=FAST_RETRY,
            chaos=ChaosPolicy(seed=1, slow=1.0, slow_seconds=0.002),
        )
        outcomes = execute_trials(draw_trial, self.CONFIG, executor=executor)
        assert _values(outcomes) == baseline

    def test_hang_profile_with_deadline(self, baseline):
        # Every chunk's first attempt hangs well past the deadline; the
        # executor must time it out, respawn the pool and retry (the
        # hang clears on attempt 1).  Cold worker start can eat further
        # deadlines, so only completion + identity + the first retry
        # are asserted — whatever rung the ladder ends on.
        config = MonteCarloConfig(trials=6, seed=123)
        serial = _values(execute_trials(draw_trial, config))
        executor = ParallelExecutor(
            2,
            chunk_size=6,
            retry=RetryPolicy(
                max_retries=2, chunk_timeout=2.0,
                backoff_base=0.0, max_pool_respawns=2,
            ),
            chaos=ChaosPolicy(seed=3, hang=1.0, hang_seconds=8.0),
        )
        outcomes, events, metrics = _run_with_obs(executor, config)
        assert _values(outcomes) == serial
        assert "ChunkRetried" in events
        assert "PoolRespawned" in events or "ChunkFellBack" in events

    def test_env_activated_chaos(self, baseline, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV_VAR, "seed=6,crash=1.0")
        executor = ParallelExecutor(2, chunk_size=4, retry=FAST_RETRY)
        assert executor.chaos == ChaosPolicy(seed=6, crash=1.0)
        outcomes = execute_trials(draw_trial, self.CONFIG, executor=executor)
        assert _values(outcomes) == baseline


class TestQuarantine:
    def test_poison_trial_is_quarantined(self):
        config = MonteCarloConfig(trials=12, seed=9)
        serial = execute_trials(draw_trial, config)
        executor = ParallelExecutor(
            2,
            chunk_size=4,
            retry=RetryPolicy(max_retries=1, backoff_base=0.0),
            chaos=ChaosPolicy(seed=0, poison_trial=6),
        )
        sink = io.StringIO()
        metrics = MetricsRegistry()
        with event_scope(EventLog(sink)), metrics_scope(metrics):
            outcomes = execute_trials(
                draw_trial, config, executor=executor, isolate=True
            )
        assert len(outcomes) == config.trials
        by_trial = {outcome.trial: outcome for outcome in outcomes}
        assert not by_trial[6].ok
        assert "poison" in by_trial[6].error
        for trial, outcome in by_trial.items():
            if trial == 6:
                continue
            assert outcome.ok
            assert outcome.value == serial[trial].value
        events = [
            json.loads(line) for line in sink.getvalue().splitlines() if line
        ]
        quarantined = [e for e in events if e["event"] == "TrialQuarantined"]
        assert [e["trial"] for e in quarantined] == [6]
        assert metrics.counter("trials_quarantined") == 1

    def test_unisolated_poison_falls_back_and_completes(self):
        # Without isolation there is no quarantine: the in-process
        # fallback re-runs the chunk chaos-free and the sweep completes
        # bit-identically (the "fault" was injected, not the task's).
        config = MonteCarloConfig(trials=8, seed=4)
        serial = _values(execute_trials(draw_trial, config))
        executor = ParallelExecutor(
            2,
            chunk_size=4,
            retry=RetryPolicy(max_retries=1, backoff_base=0.0),
            chaos=ChaosPolicy(seed=0, poison_trial=2),
        )
        outcomes = execute_trials(draw_trial, config, executor=executor)
        assert _values(outcomes) == serial


class TestPoolCacheRegression:
    def test_broken_pool_is_not_reused(self):
        pool = _pool_for(2)
        # Simulate mid-sweep breakage the way the stdlib records it.
        pool._broken = "simulated BrokenProcessPool"
        fresh = _pool_for(2)
        assert fresh is not pool
        assert not getattr(fresh, "_broken", False)
        # The replacement is cached and stays cached while healthy.
        assert _pool_for(2) is fresh


class TestDegradationLadder:
    def test_exhausted_respawn_budget_degrades_to_serial(self):
        # Hangs fire on every attempt and the respawn budget is zero:
        # the first deadline miss must push the sweep down to the
        # in-process rung, which completes bit-identically.
        config = MonteCarloConfig(trials=4, seed=77)
        serial = _values(execute_trials(draw_trial, config))
        executor = ParallelExecutor(
            2,
            chunk_size=4,
            retry=RetryPolicy(
                max_retries=3, chunk_timeout=0.2,
                backoff_base=0.0, max_pool_respawns=0,
            ),
            chaos=ChaosPolicy(seed=1, hang=1.0, hang_seconds=5.0, attempts=99),
        )
        outcomes, events, metrics = _run_with_obs(executor, config)
        assert _values(outcomes) == serial
        assert "ChunkFellBack" in events
        assert metrics.counter("chunk_fallbacks") > 0
