"""Tests for Bernoulli estimates and confidence intervals."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidParameterError
from repro.simulation.statistics import (
    BernoulliEstimate,
    clopper_pearson_interval,
    mean_and_half_width,
    wilson_interval,
)


class TestWilsonInterval:
    def test_contains_proportion(self):
        lo, hi = wilson_interval(30, 100)
        assert lo < 0.3 < hi

    def test_extremes_stay_in_unit_interval(self):
        lo, hi = wilson_interval(0, 50)
        assert lo == 0.0 and hi < 0.2
        lo, hi = wilson_interval(50, 50)
        assert lo > 0.8 and hi == 1.0

    def test_narrows_with_trials(self):
        w1 = np.diff(wilson_interval(10, 20))[0]
        w2 = np.diff(wilson_interval(100, 200))[0]
        assert w2 < w1

    def test_confidence_widens(self):
        w95 = np.diff(wilson_interval(30, 100, 0.95))[0]
        w99 = np.diff(wilson_interval(30, 100, 0.99))[0]
        assert w99 > w95

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            wilson_interval(1, 0)
        with pytest.raises(InvalidParameterError):
            wilson_interval(5, 3)
        with pytest.raises(InvalidParameterError):
            wilson_interval(1, 10, confidence=1.5)

    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=1, max_value=500))
    @settings(max_examples=200)
    def test_properties(self, successes, trials):
        if successes > trials:
            successes = trials
        lo, hi = wilson_interval(successes, trials)
        assert 0.0 <= lo <= hi <= 1.0
        assert lo <= successes / trials <= hi


class TestWilsonDegenerateEndpoints:
    """The pinned endpoints at 0/n and n/n successes, including n = 1."""

    @pytest.mark.parametrize("trials", [1, 2, 10, 1000])
    def test_zero_successes_pins_lower_exactly(self, trials):
        lo, hi = wilson_interval(0, trials)
        assert lo == 0.0
        assert 0.0 < hi < 1.0

    @pytest.mark.parametrize("trials", [1, 2, 10, 1000])
    def test_all_successes_pins_upper_exactly(self, trials):
        lo, hi = wilson_interval(trials, trials)
        assert hi == 1.0
        assert 0.0 < lo < 1.0

    def test_single_trial_intervals_are_sane(self):
        lo0, hi0 = wilson_interval(0, 1)
        lo1, hi1 = wilson_interval(1, 1)
        assert (lo0, hi1) == (0.0, 1.0)
        # One observation says almost nothing: both intervals are wide...
        assert hi0 - lo0 > 0.5 and hi1 - lo1 > 0.5
        # ...and mirror each other around 1/2.
        assert lo1 == pytest.approx(1.0 - hi0)
        assert hi1 == pytest.approx(1.0 - lo0)

    @pytest.mark.parametrize("trials", [1, 5, 50])
    def test_degenerate_interval_shrinks_with_trials(self, trials):
        _, hi_small = wilson_interval(0, trials)
        _, hi_large = wilson_interval(0, trials * 10)
        assert hi_large < hi_small

    def test_widened_interval_contains_wilson(self):
        """``contains`` with slack accepts everything the raw interval does."""
        est = BernoulliEstimate(successes=7, trials=40)
        lo, hi = est.wilson()
        for theory in (lo, hi, (lo + hi) / 2):
            assert est.contains(theory)
            assert est.contains(theory, slack=0.05)
        # Slack widens monotonically: the widened interval also accepts
        # values just outside the raw one, but not far outside.
        assert est.contains(hi + 0.04, slack=0.05)
        assert not est.contains(hi + 0.2, slack=0.05)


class TestClopperPearson:
    def test_wider_than_wilson_typically(self):
        w = np.diff(wilson_interval(5, 20))[0]
        c = np.diff(clopper_pearson_interval(5, 20))[0]
        assert c >= w * 0.9  # CP is conservative

    def test_boundaries(self):
        lo, hi = clopper_pearson_interval(0, 10)
        assert lo == 0.0
        lo, hi = clopper_pearson_interval(10, 10)
        assert hi == 1.0

    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=200))
    @settings(max_examples=150)
    def test_contains_mle(self, successes, trials):
        if successes > trials:
            successes = trials
        lo, hi = clopper_pearson_interval(successes, trials)
        assert lo - 1e-9 <= successes / trials <= hi + 1e-9


class TestBernoulliEstimate:
    def test_proportion(self):
        est = BernoulliEstimate(successes=30, trials=100)
        assert est.proportion == 0.3

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            BernoulliEstimate(successes=5, trials=0)
        with pytest.raises(InvalidParameterError):
            BernoulliEstimate(successes=5, trials=3)

    def test_std_error(self):
        est = BernoulliEstimate(successes=50, trials=100)
        assert est.std_error() == pytest.approx(0.05)

    def test_contains_theory(self):
        est = BernoulliEstimate(successes=50, trials=100)
        assert est.contains(0.5)
        assert not est.contains(0.9)
        assert est.contains(0.62, slack=0.05)

    def test_merged(self):
        a = BernoulliEstimate(successes=10, trials=50)
        b = BernoulliEstimate(successes=20, trials=50)
        merged = a.merged(b)
        assert merged.successes == 30 and merged.trials == 100

    def test_str(self):
        text = str(BernoulliEstimate(successes=3, trials=10))
        assert "3/10" in text

    def test_coverage_calibration(self):
        """Wilson 95% intervals cover the true p about 95% of the time."""
        rng = np.random.default_rng(0)
        p_true = 0.3
        covered = 0
        runs = 400
        for _ in range(runs):
            successes = int(rng.binomial(100, p_true))
            est = BernoulliEstimate(successes=successes, trials=100)
            covered += est.contains(p_true)
        assert covered / runs > 0.9


class TestMeanAndHalfWidth:
    def test_mean(self):
        mean, half = mean_and_half_width([0.1, 0.2, 0.3])
        assert mean == pytest.approx(0.2)
        assert half > 0

    def test_single_value(self):
        mean, half = mean_and_half_width([0.5])
        assert mean == 0.5
        assert half == float("inf")

    def test_empty_raises(self):
        with pytest.raises(InvalidParameterError):
            mean_and_half_width([])

    def test_narrows_with_samples(self):
        rng = np.random.default_rng(1)
        small = rng.normal(size=20)
        large = rng.normal(size=2000)
        assert mean_and_half_width(large)[1] < mean_and_half_width(small)[1]
