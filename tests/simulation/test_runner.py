"""Resilient runner: fault isolation, checkpoint/resume determinism, budgets.

These tests implement the issue's acceptance criterion with a cheap
trial function, so the whole module runs in well under a second: a
sweep interrupted at *any* trial index and resumed from its checkpoint
must produce bit-identical outcomes to an uninterrupted run, and an
injected per-trial exception must be recorded rather than propagated.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import CheckpointError, InvalidParameterError
from repro.ioutil import verify_checksum
from repro.simulation.faults import ChaosPolicy, fault_scope
from repro.simulation.montecarlo import MonteCarloConfig
from repro.simulation.runner import (
    CHECKPOINT_BACKUP_FILENAME,
    CHECKPOINT_FILENAME,
    ResilientResult,
    TrialFailure,
    run_resilient_trials,
)


def coin_trial(trial: int, rng: np.random.Generator) -> bool:
    """A cheap seeded Bernoulli trial."""
    return bool(rng.random() < 0.5)


def crash_at(bad_trial: int, exc: BaseException):
    """A coin trial that raises ``exc`` when it reaches ``bad_trial``."""

    def trial(index: int, rng: np.random.Generator) -> bool:
        if index == bad_trial:
            raise exc
        return coin_trial(index, rng)

    return trial


CONFIG = MonteCarloConfig(trials=20, seed=99)


@pytest.fixture
def baseline():
    """The uninterrupted reference sweep every variant must reproduce."""
    return run_resilient_trials(coin_trial, CONFIG)


class TestPlainSweep:
    def test_runs_every_trial(self, baseline):
        assert baseline.requested == 20
        assert baseline.completed == 20
        assert baseline.attempted == 20
        assert not baseline.truncated
        assert baseline.failures == ()
        assert [t for t, _ in baseline.outcomes] == list(range(20))

    def test_deterministic(self, baseline):
        again = run_resilient_trials(coin_trial, CONFIG)
        assert again.outcomes == baseline.outcomes

    def test_estimate_over_completed_trials(self, baseline):
        est = baseline.estimate
        assert est is not None
        assert est.trials == 20
        assert est.successes == baseline.successes

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            run_resilient_trials(coin_trial, CONFIG, checkpoint_every=0)
        with pytest.raises(InvalidParameterError):
            run_resilient_trials(coin_trial, CONFIG, time_budget=0.0)
        with pytest.raises(InvalidParameterError):
            run_resilient_trials(coin_trial, CONFIG, resume=True)


class TestFaultIsolation:
    def test_exception_recorded_not_propagated(self, baseline):
        result = run_resilient_trials(crash_at(3, ValueError("boom")), CONFIG)
        assert result.attempted == 20
        assert result.completed == 19
        assert result.failures == (
            TrialFailure(trial=3, error="ValueError: boom"),
        )
        # Every other trial's value is bit-identical to the clean sweep.
        expected = [(t, v) for t, v in baseline.outcomes if t != 3]
        assert list(result.outcomes) == expected

    def test_widened_interval_bounds_lost_trials(self, baseline):
        result = run_resilient_trials(crash_at(3, ValueError("boom")), CONFIG)
        lo, hi = result.widened_interval()
        clean_lo, clean_hi = baseline.estimate.wilson()
        assert lo <= clean_lo or lo == pytest.approx(clean_lo, abs=0.05)
        assert 0.0 <= lo < hi <= 1.0

    def test_widened_interval_without_failures_is_wilson(self, baseline):
        assert baseline.widened_interval() == pytest.approx(
            baseline.estimate.wilson()
        )

    def test_widened_interval_needs_attempts(self):
        empty = ResilientResult(
            requested=5, outcomes=(), failures=(), truncated=True
        )
        with pytest.raises(InvalidParameterError):
            empty.widened_interval()

    def test_keyboard_interrupt_propagates(self, tmp_path):
        with pytest.raises(KeyboardInterrupt):
            run_resilient_trials(
                crash_at(5, KeyboardInterrupt()), CONFIG, checkpoint_dir=tmp_path
            )
        # ... but not before writing a checkpoint with the completed work.
        # Serial checkpoints record every finished trial; parallel ones
        # stop at the last complete chunk boundary before the crash.
        payload = json.loads((tmp_path / CHECKPOINT_FILENAME).read_text())
        if CONFIG.resolved_workers() == 1:
            assert payload["next_trial"] == 5
        else:
            assert payload["next_trial"] <= 5
        assert len(payload["outcomes"]) == payload["next_trial"]


class TestCheckpointResume:
    @pytest.mark.parametrize("interrupt_at", [0, 1, 7, 19])
    def test_interrupt_anywhere_resume_bit_identical(
        self, tmp_path, baseline, interrupt_at
    ):
        """The acceptance criterion: crash at any index, resume, equal result."""
        with pytest.raises(KeyboardInterrupt):
            run_resilient_trials(
                crash_at(interrupt_at, KeyboardInterrupt()),
                CONFIG,
                checkpoint_dir=tmp_path,
                checkpoint_every=4,
            )
        resumed = run_resilient_trials(
            coin_trial, CONFIG, checkpoint_dir=tmp_path, resume=True
        )
        assert resumed.outcomes == baseline.outcomes
        assert resumed.successes == baseline.successes
        # Serial execution checkpoints every trial; a parallel executor
        # checkpoints per chunk, so the resume point is the last complete
        # chunk boundary at or before the crash.  Outcome equality above
        # is the exact bit-identity criterion either way.
        if CONFIG.resolved_workers() == 1:
            assert resumed.resumed_trials == interrupt_at
        else:
            assert resumed.resumed_trials <= interrupt_at
        assert resumed.estimate.wilson() == baseline.estimate.wilson()

    def test_resume_after_completion_is_noop(self, tmp_path, baseline):
        run_resilient_trials(coin_trial, CONFIG, checkpoint_dir=tmp_path)
        calls = []

        def counting(trial, rng):
            calls.append(trial)
            return coin_trial(trial, rng)

        resumed = run_resilient_trials(
            counting, CONFIG, checkpoint_dir=tmp_path, resume=True
        )
        assert calls == []
        assert resumed.outcomes == baseline.outcomes
        assert resumed.resumed_trials == 20

    def test_resume_missing_checkpoint_starts_fresh(self, tmp_path, baseline):
        result = run_resilient_trials(
            coin_trial, CONFIG, checkpoint_dir=tmp_path, resume=True
        )
        assert result.outcomes == baseline.outcomes
        assert result.resumed_trials == 0

    def test_resume_preserves_recorded_failures(self, tmp_path):
        def flaky_then_crashing(t, rng):
            if t == 2:
                raise ValueError("x")
            if t == 6:
                raise KeyboardInterrupt()
            return coin_trial(t, rng)

        with pytest.raises(KeyboardInterrupt):
            run_resilient_trials(
                flaky_then_crashing, CONFIG, checkpoint_dir=tmp_path
            )
        resumed = run_resilient_trials(
            coin_trial, CONFIG, checkpoint_dir=tmp_path, resume=True
        )
        assert resumed.failures == (
            TrialFailure(trial=2, error="ValueError: x"),
        )
        assert resumed.attempted == 20

    def test_mismatched_seed_raises(self, tmp_path):
        run_resilient_trials(coin_trial, CONFIG, checkpoint_dir=tmp_path)
        other = MonteCarloConfig(trials=20, seed=100)
        with pytest.raises(CheckpointError):
            run_resilient_trials(
                coin_trial, other, checkpoint_dir=tmp_path, resume=True
            )

    def test_mismatched_trials_raises(self, tmp_path):
        run_resilient_trials(coin_trial, CONFIG, checkpoint_dir=tmp_path)
        other = MonteCarloConfig(trials=21, seed=99)
        with pytest.raises(CheckpointError):
            run_resilient_trials(
                coin_trial, other, checkpoint_dir=tmp_path, resume=True
            )

    def test_corrupt_checkpoint_raises(self, tmp_path):
        (tmp_path / CHECKPOINT_FILENAME).write_text("{not json")
        with pytest.raises(CheckpointError):
            run_resilient_trials(
                coin_trial, CONFIG, checkpoint_dir=tmp_path, resume=True
            )

    def test_wrong_format_tag_raises(self, tmp_path):
        (tmp_path / CHECKPOINT_FILENAME).write_text(
            json.dumps({"format": "something-else"})
        )
        with pytest.raises(CheckpointError):
            run_resilient_trials(
                coin_trial, CONFIG, checkpoint_dir=tmp_path, resume=True
            )

    def test_no_stray_tmp_files(self, tmp_path):
        run_resilient_trials(
            coin_trial, CONFIG, checkpoint_dir=tmp_path, checkpoint_every=1
        )
        # Only the checkpoint and its rotated backup may remain — no
        # .tmp droppings from the atomic-write dance.
        leftovers = sorted(p.name for p in tmp_path.iterdir())
        assert leftovers == [CHECKPOINT_FILENAME, CHECKPOINT_BACKUP_FILENAME]


class TestCheckpointSelfHealing:
    """Corrupt checkpoints heal from the rotated backup, bit-identically."""

    def _seed_files(self, tmp_path):
        """A finished sweep's checkpoint pair (main + rotated backup)."""
        run_resilient_trials(
            coin_trial, CONFIG, checkpoint_dir=tmp_path, checkpoint_every=8
        )
        main = tmp_path / CHECKPOINT_FILENAME
        backup = tmp_path / CHECKPOINT_BACKUP_FILENAME
        assert main.exists() and backup.exists()
        return main, backup

    def test_truncated_main_recovers_from_backup(self, tmp_path, baseline):
        main, backup = self._seed_files(tmp_path)
        text = main.read_text()
        main.write_text(text[: len(text) // 2])
        result = run_resilient_trials(
            coin_trial, CONFIG, checkpoint_dir=tmp_path, resume=True
        )
        # The backup holds an older resume point; replaying the tail
        # re-derives the same streams, so the healed run is identical.
        assert result.outcomes == baseline.outcomes
        assert result.resumed_trials == 16
        healed = json.loads(main.read_text())
        assert verify_checksum(healed)

    def test_missing_main_recovers_from_backup(self, tmp_path, baseline):
        main, backup = self._seed_files(tmp_path)
        main.unlink()
        result = run_resilient_trials(
            coin_trial, CONFIG, checkpoint_dir=tmp_path, resume=True
        )
        assert result.outcomes == baseline.outcomes

    def test_corrupt_main_without_backup_raises_with_hint(self, tmp_path):
        main, backup = self._seed_files(tmp_path)
        main.write_text("{not json")
        backup.unlink()
        with pytest.raises(CheckpointError, match="start the sweep fresh"):
            run_resilient_trials(
                coin_trial, CONFIG, checkpoint_dir=tmp_path, resume=True
            )

    def test_tampered_payload_fails_checksum(self, tmp_path):
        main, backup = self._seed_files(tmp_path)
        payload = json.loads(main.read_text())
        payload["next_trial"] = 3  # parseable, but no longer what was written
        main.write_text(json.dumps(payload))
        backup.unlink()
        with pytest.raises(CheckpointError, match="sha256"):
            run_resilient_trials(
                coin_trial, CONFIG, checkpoint_dir=tmp_path, resume=True
            )

    def test_corrupt_backup_reraises_main_error(self, tmp_path):
        main, backup = self._seed_files(tmp_path)
        main.write_text("{not json")
        backup.write_text("also {not json")
        with pytest.raises(CheckpointError, match="cannot read checkpoint"):
            run_resilient_trials(
                coin_trial, CONFIG, checkpoint_dir=tmp_path, resume=True
            )

    def test_legacy_checkpoint_without_checksum_loads(self, tmp_path, baseline):
        main, backup = self._seed_files(tmp_path)
        payload = json.loads(main.read_text())
        del payload["sha256"]
        main.write_text(json.dumps(payload))
        result = run_resilient_trials(
            coin_trial, CONFIG, checkpoint_dir=tmp_path, resume=True
        )
        assert result.outcomes == baseline.outcomes

    def test_chaos_corrupted_write_recovers_on_resume(self, tmp_path, baseline):
        # Find a chaos seed whose corrupt draw hits exactly the final
        # checkpoint write (index 2 of: trial 8, trial 16, final).
        chaos = None
        for seed in range(256):
            candidate = ChaosPolicy(seed=seed, corrupt=0.5)
            if (
                candidate.corrupts_checkpoint(2)
                and not candidate.corrupts_checkpoint(0)
                and not candidate.corrupts_checkpoint(1)
            ):
                chaos = candidate
                break
        assert chaos is not None
        with fault_scope(chaos=chaos):
            first = run_resilient_trials(
                coin_trial, CONFIG, checkpoint_dir=tmp_path, checkpoint_every=8
            )
        assert first.outcomes == baseline.outcomes
        main = tmp_path / CHECKPOINT_FILENAME
        try:
            corrupt = not verify_checksum(json.loads(main.read_text()))
        except ValueError:
            corrupt = True
        assert corrupt, "the chaos seam should have truncated the final write"
        # Resume (chaos-free) heals from the backup and replays the
        # tail into the same outcomes as an uninterrupted run.
        resumed = run_resilient_trials(
            coin_trial, CONFIG, checkpoint_dir=tmp_path, resume=True
        )
        assert resumed.outcomes == baseline.outcomes
        assert resumed.resumed_trials == 16


class TestTimeBudget:
    def test_tiny_budget_truncates_gracefully(self, tmp_path, baseline):
        result = run_resilient_trials(
            coin_trial,
            CONFIG,
            checkpoint_dir=tmp_path,
            time_budget=1e-9,
        )
        assert result.truncated
        assert result.attempted < 20
        # The checkpoint left behind lets a resume finish the sweep.
        resumed = run_resilient_trials(
            coin_trial, CONFIG, checkpoint_dir=tmp_path, resume=True
        )
        assert not resumed.truncated
        assert resumed.outcomes == baseline.outcomes

    def test_generous_budget_completes(self):
        result = run_resilient_trials(coin_trial, CONFIG, time_budget=60.0)
        assert not result.truncated
        assert result.completed == 20

    def test_no_outcomes_estimate_is_none(self):
        result = run_resilient_trials(
            coin_trial, CONFIG, time_budget=1e-9
        )
        if result.completed == 0:
            assert result.estimate is None
