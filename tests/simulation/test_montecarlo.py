"""Tests for the Monte-Carlo estimators."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.uniform_theory import necessary_failure_probability
from repro.deployment.poisson import PoissonDeployment
from repro.errors import InvalidParameterError
from repro.geometry.grid import DenseGrid
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.montecarlo import (
    MonteCarloConfig,
    condition_predicate,
    estimate_area_fraction,
    estimate_condition_chain,
    estimate_grid_failure_probability,
    estimate_point_probability,
)

THETA = math.pi / 3


@pytest.fixture
def profile():
    return HeterogeneousProfile.homogeneous(
        CameraSpec(radius=0.25, angle_of_view=math.pi / 2)
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            MonteCarloConfig(trials=0)

    def test_rngs_independent_and_reproducible(self):
        cfg = MonteCarloConfig(trials=5, seed=42)
        first = [g.random() for g in cfg.rngs()]
        second = [g.random() for g in MonteCarloConfig(trials=5, seed=42).rngs()]
        assert first == second
        assert len(set(first)) == 5  # distinct streams

    def test_rngs_is_lazy(self):
        import types

        gen = MonteCarloConfig(trials=10**9, seed=0).rngs()
        assert isinstance(gen, types.GeneratorType)
        # A billion-trial config must yield its first stream instantly.
        assert next(gen).random() == MonteCarloConfig(
            trials=10**9, seed=0
        ).rng_for_trial(0).random()

    def test_rngs_list_shim_matches_generator_and_warns(self):
        cfg = MonteCarloConfig(trials=4, seed=7)
        with pytest.warns(DeprecationWarning, match="rng_for_trial"):
            eager = [g.random() for g in cfg.rngs_list()]
        lazy = [g.random() for g in cfg.rngs()]
        assert eager == lazy

    def test_rngs_match_spawned_seed_sequences(self):
        # rng_for_trial uses explicit spawn keys; they must equal the
        # historical SeedSequence.spawn streams bit for bit.
        cfg = MonteCarloConfig(trials=3, seed=123)
        spawned = np.random.SeedSequence(123).spawn(3)
        for trial, seq in enumerate(spawned):
            expected = np.random.Generator(np.random.PCG64(seq)).random()
            assert cfg.rng_for_trial(trial).random() == expected

    def test_rng_for_trial_bounds(self):
        cfg = MonteCarloConfig(trials=3, seed=0)
        with pytest.raises(InvalidParameterError):
            cfg.rng_for_trial(-1)
        with pytest.raises(InvalidParameterError):
            cfg.rng_for_trial(3)


class TestConditionPredicate:
    def test_dispatch(self):
        dirs = np.array([0.0, math.pi / 2, math.pi, 3 * math.pi / 2])
        assert condition_predicate("exact", math.pi / 3)(dirs)
        assert condition_predicate("k_coverage", 1.0, k=4)(dirs)
        assert not condition_predicate("k_coverage", 1.0, k=5)(dirs)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            condition_predicate("bogus", 1.0)
        with pytest.raises(InvalidParameterError):
            condition_predicate("k_coverage", 1.0, k=0)


class TestEstimatePointProbability:
    def test_reproducible(self, profile):
        cfg = MonteCarloConfig(trials=50, seed=7)
        a = estimate_point_probability(profile, 100, THETA, "exact", cfg)
        b = estimate_point_probability(profile, 100, THETA, "exact", cfg)
        assert a.successes == b.successes

    def test_matches_theory_necessary(self, profile):
        """Simulation agrees with eq. (2) within the Wilson interval."""
        n = 300
        cfg = MonteCarloConfig(trials=500, seed=11)
        est = estimate_point_probability(profile, n, THETA, "necessary", cfg)
        theory = 1.0 - necessary_failure_probability(profile, n, THETA)
        assert est.contains(theory, slack=0.03)

    def test_point_choice_immaterial_on_torus(self, profile):
        """Any probe point gives statistically identical results."""
        cfg = MonteCarloConfig(trials=400, seed=3)
        centre = estimate_point_probability(profile, 200, THETA, "exact", cfg)
        corner = estimate_point_probability(
            profile, 200, THETA, "exact", cfg, point=(0.01, 0.99)
        )
        # Two-proportion comparison: within 4 pooled standard errors.
        diff = abs(centre.proportion - corner.proportion)
        pooled = (centre.proportion + corner.proportion) / 2
        se = math.sqrt(max(pooled * (1 - pooled), 1e-6) * 2 / 400)
        assert diff < 4 * se + 0.02

    def test_poisson_scheme(self, profile):
        cfg = MonteCarloConfig(trials=100, seed=5)
        est = estimate_point_probability(
            profile, 200, THETA, "exact", cfg, scheme=PoissonDeployment()
        )
        assert 0.0 <= est.proportion <= 1.0

    def test_more_sensors_help(self, profile):
        cfg = MonteCarloConfig(trials=200, seed=1)
        small = estimate_point_probability(profile, 50, THETA, "exact", cfg)
        large = estimate_point_probability(profile, 400, THETA, "exact", cfg)
        assert large.proportion >= small.proportion


class TestEstimateGridFailure:
    def test_zero_area_fleet_always_fails(self):
        tiny = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=0.001, angle_of_view=0.1)
        )
        cfg = MonteCarloConfig(trials=10, seed=0)
        est = estimate_grid_failure_probability(
            tiny, 20, THETA, "necessary", cfg, max_grid_points=20
        )
        assert est.proportion == 1.0

    def test_huge_fleet_never_fails(self):
        big = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=0.45, angle_of_view=2 * math.pi)
        )
        cfg = MonteCarloConfig(trials=10, seed=0)
        est = estimate_grid_failure_probability(
            big, 200, math.pi / 2, "necessary", cfg, max_grid_points=50
        )
        assert est.proportion < 0.5

    def test_custom_grid(self, profile):
        cfg = MonteCarloConfig(trials=5, seed=0)
        grid = DenseGrid(side=4)
        est = estimate_grid_failure_probability(
            profile, 100, THETA, "necessary", cfg, grid=grid
        )
        assert est.trials == 5

    def test_k_coverage_not_a_grid_condition(self, profile):
        """The vectorised grid estimator handles the three geometric
        conditions only; k_coverage is a point-level condition."""
        cfg = MonteCarloConfig(trials=2, seed=0)
        with pytest.raises(InvalidParameterError):
            estimate_grid_failure_probability(
                profile, 50, THETA, "k_coverage", cfg, max_grid_points=10
            )

    def test_subsample_lower_bounds_full(self, profile):
        """Failure measured on a grid subsample never exceeds full-grid."""
        cfg = MonteCarloConfig(trials=40, seed=2)
        grid = DenseGrid(side=8)
        sub = estimate_grid_failure_probability(
            profile, 60, THETA, "necessary", cfg, grid=grid, max_grid_points=8
        )
        full = estimate_grid_failure_probability(
            profile, 60, THETA, "necessary", cfg, grid=grid
        )
        assert sub.proportion <= full.proportion + 1e-9


class TestEstimateAreaFraction:
    def test_bounds(self, profile):
        cfg = MonteCarloConfig(trials=20, seed=0)
        mean, half = estimate_area_fraction(
            profile, 150, THETA, "exact", cfg, sample_points=64
        )
        assert 0.0 <= mean <= 1.0
        assert half >= 0.0

    def test_validation(self, profile):
        cfg = MonteCarloConfig(trials=5, seed=0)
        with pytest.raises(InvalidParameterError):
            estimate_area_fraction(profile, 100, THETA, "exact", cfg, sample_points=0)

    def test_condition_ordering(self, profile):
        """Area fractions preserve sufficient <= exact <= necessary."""
        cfg = MonteCarloConfig(trials=30, seed=4)
        nec, _ = estimate_area_fraction(profile, 200, THETA, "necessary", cfg, sample_points=64)
        exact, _ = estimate_area_fraction(profile, 200, THETA, "exact", cfg, sample_points=64)
        suf, _ = estimate_area_fraction(profile, 200, THETA, "sufficient", cfg, sample_points=64)
        assert suf <= exact + 1e-9
        assert exact <= nec + 1e-9


class TestConditionChain:
    def test_sandwich_never_violated(self, profile):
        cfg = MonteCarloConfig(trials=150, seed=9)
        chain = estimate_condition_chain(profile, 250, THETA, cfg)
        assert chain["sandwich_violations"] == 0
        assert (
            chain["sufficient"].proportion
            <= chain["exact"].proportion
            <= chain["necessary"].proportion
        )
