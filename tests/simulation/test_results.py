"""Tests for result tables."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.simulation.results import ResultTable


@pytest.fixture
def table():
    t = ResultTable(title="demo", columns=["n", "value", "ok"])
    t.add_row(100, 0.5, True)
    t.add_row(200, 0.25, False)
    return t


class TestConstruction:
    def test_needs_columns(self):
        with pytest.raises(InvalidParameterError):
            ResultTable(title="x", columns=[])

    def test_len(self, table):
        assert len(table) == 2


class TestAddRow:
    def test_positional_arity(self, table):
        with pytest.raises(InvalidParameterError):
            table.add_row(1, 2)

    def test_named(self):
        t = ResultTable(title="x", columns=["a", "b"])
        t.add_row(b=2, a=1)
        assert t.rows[0] == [1, 2]

    def test_named_unknown_column(self):
        t = ResultTable(title="x", columns=["a"])
        with pytest.raises(InvalidParameterError):
            t.add_row(zz=1)

    def test_mixed_rejected(self):
        t = ResultTable(title="x", columns=["a"])
        with pytest.raises(InvalidParameterError):
            t.add_row(1, a=1)

    def test_named_missing_defaults_none(self):
        t = ResultTable(title="x", columns=["a", "b"])
        t.add_row(a=1)
        assert t.rows[0] == [1, None]

    def test_add_rows(self):
        t = ResultTable(title="x", columns=["a"])
        t.add_rows([[1], [2]])
        assert len(t) == 2


class TestColumn:
    def test_values(self, table):
        assert table.column("n") == [100, 200]

    def test_unknown(self, table):
        with pytest.raises(InvalidParameterError):
            table.column("zz")


class TestRendering:
    def test_markdown(self, table):
        md = table.to_markdown()
        assert "### demo" in md
        assert "| n | value | ok |" in md
        assert "| 100 | 0.5 | yes |" in md

    def test_csv(self, table):
        csv_text = table.to_csv()
        lines = csv_text.strip().split("\n")
        assert lines[0] == "n,value,ok"
        assert lines[1] == "100,0.5,True"

    def test_records(self, table):
        recs = table.to_records()
        assert recs[0] == {"n": 100, "value": 0.5, "ok": True}

    def test_pretty(self, table):
        text = table.pretty()
        assert "demo" in text
        assert "100" in text

    def test_float_format(self):
        t = ResultTable(title="x", columns=["v"], float_format=".2f")
        t.add_row(0.123456)
        assert "0.12" in t.to_markdown()

    def test_none_renders_empty(self):
        t = ResultTable(title="x", columns=["v"])
        t.add_row(None)
        assert t.to_markdown().endswith("|  |")

    def test_save_csv(self, table, tmp_path):
        path = table.save_csv(tmp_path / "sub" / "out.csv")
        assert path.exists()
        assert path.read_text().startswith("n,value,ok")
