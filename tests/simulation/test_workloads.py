"""Tests for the built-in workload scenarios."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.deployment.poisson import PoissonDeployment
from repro.errors import InvalidParameterError
from repro.simulation.workloads import (
    Workload,
    border_barrier,
    estate_surveillance,
    registry,
    traffic_monitoring,
    wildlife_protection,
)


class TestRegistry:
    def test_contains_all(self):
        names = set(registry())
        assert names == {
            "traffic_monitoring",
            "estate_surveillance",
            "wildlife_protection",
            "border_barrier",
        }

    def test_all_deployable(self, rng):
        for workload in registry().values():
            fleet = workload.scheme.deploy(workload.profile, 50, rng)
            assert len(fleet) >= 0


class TestScenarioShapes:
    def test_traffic_is_strict(self):
        w = traffic_monitoring()
        assert w.theta <= math.pi / 4

    def test_wildlife_uses_poisson(self):
        assert isinstance(wildlife_protection().scheme, PoissonDeployment)

    def test_border_is_dense(self):
        assert border_barrier().n > estate_surveillance().n

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            Workload(
                name="x",
                description="",
                profile=estate_surveillance().profile,
                n=0,
                theta=1.0,
            )
        with pytest.raises(InvalidParameterError):
            Workload(
                name="x",
                description="",
                profile=estate_surveillance().profile,
                n=10,
                theta=4.0,
            )


class TestProvisioning:
    def test_margin_below_one_for_realistic_cameras(self):
        """The catalog cameras are far below the CSA — the paper's point
        that full-view coverage is a high-expense service."""
        for workload in registry().values():
            assert workload.csa_margin() < 1.0

    def test_provisioned_hits_target(self):
        w = estate_surveillance().provisioned(q=1.5)
        assert w.csa_margin() == pytest.approx(1.5, rel=1e-9)

    def test_provisioned_preserves_structure(self):
        base = estate_surveillance()
        scaled = base.provisioned(q=2.0)
        assert scaled.n == base.n
        assert scaled.theta == base.theta
        assert scaled.profile.num_groups == base.profile.num_groups
        for g_before, g_after in zip(base.profile, scaled.profile):
            assert g_after.angle_of_view == pytest.approx(g_before.angle_of_view)
            assert g_after.fraction == pytest.approx(g_before.fraction)

    def test_provisioned_necessary_condition_variant(self):
        w = estate_surveillance().provisioned(q=1.0, condition="necessary")
        from repro.core.csa import csa_necessary

        assert w.profile.weighted_sensing_area == pytest.approx(
            csa_necessary(w.n, w.theta)
        )

    def test_provisioned_validation(self):
        with pytest.raises(InvalidParameterError):
            estate_surveillance().provisioned(q=0.0)
        with pytest.raises(InvalidParameterError):
            estate_surveillance().provisioned(condition="bogus")

    def test_provisioned_fleet_actually_covers(self, rng):
        """End-to-end: a fleet provisioned above the sufficient CSA
        full-view covers a probe point with high simulated probability."""
        from repro.core.full_view import point_is_full_view_covered

        w = estate_surveillance().provisioned(q=1.5)
        hits = 0
        trials = 40
        for seed in range(trials):
            fleet = w.scheme.deploy(w.profile, w.n, np.random.default_rng(seed))
            fleet.build_index()
            hits += point_is_full_view_covered(fleet, (0.5, 0.5), w.theta)
        assert hits / trials > 0.9
