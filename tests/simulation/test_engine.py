"""Trial-execution engine: executors are interchangeable, bit for bit.

The engine's load-bearing guarantee is that the *executor is not part
of the statistical model*: because trial ``i``'s generator is
``SeedSequence(seed, spawn_key=(i,))``, any execution order — serial,
chunked across processes, replayed after a checkpoint — produces the
same outcomes.  These tests pin that guarantee for the raw executors,
for every estimator, and for the checkpointed resilient runner.
"""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.deployment.uniform import UniformDeployment
from repro.errors import InvalidParameterError
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.engine import (
    EXECUTOR_ENV_VAR,
    WORKERS_ENV_VAR,
    MonteCarloConfig,
    ParallelExecutor,
    SerialExecutor,
    ThreadExecutor,
    TrialOutcome,
    active_executor_kind,
    execute_trials,
    executor_for,
    executor_scope,
    run_trial,
)
from repro.simulation.montecarlo import (
    AreaFractionTask,
    PointProbabilityTask,
    estimate_area_fraction,
    estimate_condition_chain,
    estimate_grid_failure_probability,
    estimate_point_probability,
)
from repro.simulation.runner import run_resilient_trials


def draw_trial(trial: int, rng: np.random.Generator) -> float:
    """A cheap picklable task whose value fingerprints the rng stream."""
    return float(rng.random())


def failing_trial(trial: int, rng: np.random.Generator) -> float:
    """Fails on trial 3, succeeds elsewhere."""
    if trial == 3:
        raise ValueError("injected failure")
    return draw_trial(trial, rng)


def interrupting_trial(trial: int, rng: np.random.Generator) -> float:
    """Fails on trial 2, interrupts on trial 6, succeeds elsewhere."""
    if trial == 2:
        raise ValueError("injected failure")
    if trial == 6:
        raise KeyboardInterrupt()
    return draw_trial(trial, rng)


PROFILE = HeterogeneousProfile.homogeneous(
    CameraSpec(radius=0.3, angle_of_view=math.pi / 2)
)
THETA = math.pi / 3


@pytest.fixture
def profile():
    return PROFILE


class TestMonteCarloConfig:
    def test_rejects_bad_trials(self):
        with pytest.raises(InvalidParameterError):
            MonteCarloConfig(trials=0)

    def test_rejects_bad_workers(self):
        with pytest.raises(InvalidParameterError):
            MonteCarloConfig(trials=5, workers=0)

    def test_rng_for_trial_bounds(self):
        cfg = MonteCarloConfig(trials=5, seed=1)
        with pytest.raises(InvalidParameterError):
            cfg.rng_for_trial(5)
        with pytest.raises(InvalidParameterError):
            cfg.rng_for_trial(-1)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_streams_match_legacy_spawn(self, seed):
        # The historical eager spawn and O(1) addressing are the same
        # streams; this is the identity every executor leans on.
        cfg = MonteCarloConfig(trials=8, seed=seed)
        legacy = np.random.SeedSequence(seed).spawn(8)
        for trial, seq in enumerate(legacy):
            expected = np.random.Generator(np.random.PCG64(seq)).random(4)
            actual = cfg.rng_for_trial(trial).random(4)
            assert (expected == actual).all()

    def test_resolved_workers_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "7")
        assert MonteCarloConfig(trials=1, workers=3).resolved_workers() == 3

    def test_resolved_workers_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "4")
        assert MonteCarloConfig(trials=1).resolved_workers() == 4

    def test_resolved_workers_default_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert MonteCarloConfig(trials=1).resolved_workers() == 1

    @pytest.mark.parametrize("raw", ["zero", "-2", "0", "1.5"])
    def test_resolved_workers_rejects_bad_env(self, monkeypatch, raw):
        monkeypatch.setenv(WORKERS_ENV_VAR, raw)
        with pytest.raises(InvalidParameterError):
            MonteCarloConfig(trials=1).resolved_workers()

    def test_executor_for_respects_workers(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
        assert isinstance(executor_for(MonteCarloConfig(trials=1)), SerialExecutor)
        assert isinstance(
            executor_for(MonteCarloConfig(trials=1, workers=2)), ParallelExecutor
        )


class TestExecutorSelection:
    """Backend resolution: config field > scope > environment > auto."""

    @pytest.fixture(autouse=True)
    def _clean_env(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)

    def test_config_field_validated(self):
        with pytest.raises(InvalidParameterError):
            MonteCarloConfig(trials=1, executor="fibers")
        assert MonteCarloConfig(trials=1, executor="THREAD").executor == "thread"

    def test_env_value_validated(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "quantum")
        with pytest.raises(InvalidParameterError):
            MonteCarloConfig(trials=1).resolved_executor()

    def test_default_is_auto(self):
        assert MonteCarloConfig(trials=1).resolved_executor() == "auto"

    def test_env_overrides_auto(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "thread")
        cfg = MonteCarloConfig(trials=1, workers=2)
        assert cfg.resolved_executor() == "thread"
        assert isinstance(executor_for(cfg), ThreadExecutor)

    def test_scope_overrides_env(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "thread")
        with executor_scope("process"):
            assert active_executor_kind() == "process"
            cfg = MonteCarloConfig(trials=1, workers=2)
            assert cfg.resolved_executor() == "process"
            assert isinstance(executor_for(cfg), ParallelExecutor)
        assert active_executor_kind() is None

    def test_config_field_overrides_scope(self):
        with executor_scope("process"):
            cfg = MonteCarloConfig(trials=1, workers=2, executor="thread")
            assert cfg.resolved_executor() == "thread"

    def test_none_scope_is_transparent(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "thread")
        with executor_scope(None):
            assert MonteCarloConfig(trials=1).resolved_executor() == "thread"

    def test_scope_validates_kind(self):
        with pytest.raises(InvalidParameterError):
            executor_scope("coroutines")

    def test_single_worker_always_serial(self):
        cfg = MonteCarloConfig(trials=1, executor="process")
        assert isinstance(executor_for(cfg), SerialExecutor)
        cfg = MonteCarloConfig(trials=1, executor="thread")
        assert isinstance(executor_for(cfg), SerialExecutor)

    def test_auto_picks_threads_for_gil_releasing_tasks(self):
        # Estimator tasks advertise releases_gil (numpy kernels); plain
        # callables do not, so processes stay the safe default.
        task = PointProbabilityTask(
            profile=PROFILE,
            n=10,
            theta=THETA,
            condition="necessary",
            scheme=UniformDeployment(),
            point=(0.5, 0.5),
        )
        cfg = MonteCarloConfig(trials=1, workers=2)
        assert isinstance(executor_for(cfg, task), ThreadExecutor)
        assert isinstance(executor_for(cfg, draw_trial), ParallelExecutor)

    def test_selection_metrics_recorded(self):
        from repro.obs.metrics import MetricsRegistry, metrics_scope

        registry = MetricsRegistry()
        with metrics_scope(registry):
            executor_for(MonteCarloConfig(trials=1, workers=2, executor="thread"))
        snapshot = registry.snapshot()
        assert snapshot["counters"]["executor_selected_thread"] == 1
        assert snapshot["gauges"]["executor_workers"] == 2.0


class TestRunTrial:
    def test_isolated_failure_is_recorded(self):
        cfg = MonteCarloConfig(trials=5, seed=0)
        outcome = run_trial(failing_trial, cfg, 3, isolate=True)
        assert not outcome.ok
        assert outcome.error == "ValueError: injected failure"
        assert outcome.value is None

    def test_unisolated_failure_propagates(self):
        cfg = MonteCarloConfig(trials=5, seed=0)
        with pytest.raises(ValueError):
            run_trial(failing_trial, cfg, 3)

    def test_outcome_is_picklable(self):
        outcome = TrialOutcome(trial=2, value=0.5)
        assert pickle.loads(pickle.dumps(outcome)) == outcome


class TestExecutorEquivalence:
    """Serial and parallel executors must agree bit for bit."""

    CFG = MonteCarloConfig(trials=17, seed=42)

    def _serial(self):
        return execute_trials(draw_trial, self.CFG, executor=SerialExecutor())

    def test_serial_covers_trials_in_order(self):
        outcomes = self._serial()
        assert [o.trial for o in outcomes] == list(range(17))

    @pytest.mark.parametrize("chunk_size", [None, 1, 4, 17, 100])
    def test_parallel_matches_serial(self, chunk_size):
        parallel = execute_trials(
            draw_trial,
            self.CFG,
            executor=ParallelExecutor(workers=2, chunk_size=chunk_size),
        )
        assert parallel == self._serial()

    def test_closure_task_falls_back_in_process(self):
        # Closures cannot pickle into workers; the per-chunk fallback
        # must still complete the sweep with identical results.
        offset = 0.0
        parallel = execute_trials(
            lambda trial, rng: float(rng.random()) + offset,
            self.CFG,
            executor=ParallelExecutor(workers=2),
        )
        assert parallel == self._serial()

    def test_parallel_isolated_failures_recorded(self):
        outcomes = execute_trials(
            failing_trial,
            self.CFG,
            executor=ParallelExecutor(workers=2, chunk_size=5),
            isolate=True,
        )
        assert len(outcomes) == 17
        bad = [o for o in outcomes if not o.ok]
        assert [o.trial for o in bad] == [3]
        assert bad[0].error == "ValueError: injected failure"

    def test_parallel_unisolated_failure_propagates(self):
        with pytest.raises(ValueError):
            execute_trials(
                failing_trial, self.CFG, executor=ParallelExecutor(workers=2)
            )

    @pytest.mark.parametrize("chunk_size", [None, 1, 4, 17, 100])
    def test_thread_matches_serial(self, chunk_size):
        threaded = execute_trials(
            draw_trial,
            self.CFG,
            executor=ThreadExecutor(workers=2, chunk_size=chunk_size),
        )
        assert threaded == self._serial()

    def test_thread_closure_task_needs_no_fallback(self):
        # Threads share the interpreter: closures never hit a pickle
        # boundary, so they run directly and still match serial.
        offset = 0.0
        threaded = execute_trials(
            lambda trial, rng: float(rng.random()) + offset,
            self.CFG,
            executor=ThreadExecutor(workers=2),
        )
        assert threaded == self._serial()

    def test_thread_isolated_failures_recorded(self):
        outcomes = execute_trials(
            failing_trial,
            self.CFG,
            executor=ThreadExecutor(workers=2, chunk_size=5),
            isolate=True,
        )
        assert len(outcomes) == 17
        bad = [o for o in outcomes if not o.ok]
        assert [o.trial for o in bad] == [3]
        assert bad[0].error == "ValueError: injected failure"

    def test_thread_unisolated_failure_propagates(self):
        with pytest.raises(ValueError):
            execute_trials(
                failing_trial, self.CFG, executor=ThreadExecutor(workers=2)
            )

    def test_invalid_executor_parameters(self):
        with pytest.raises(InvalidParameterError):
            ParallelExecutor(workers=0)
        with pytest.raises(InvalidParameterError):
            ParallelExecutor(workers=2, chunk_size=0)
        with pytest.raises(InvalidParameterError):
            ThreadExecutor(workers=0)
        with pytest.raises(InvalidParameterError):
            ThreadExecutor(workers=2, chunk_size=0)

    def test_empty_trial_range_yields_nothing(self):
        batches = list(ParallelExecutor(workers=2).run(draw_trial, self.CFG, []))
        assert batches == []
        batches = list(ThreadExecutor(workers=2).run(draw_trial, self.CFG, []))
        assert batches == []


class TestAdaptiveChunking:
    """Default chunking probes per-trial cost and targets >= 50 ms/chunk."""

    def test_slow_trials_get_small_chunks(self):
        # A probed trial slower than the target means one trial per chunk.
        assert ParallelExecutor(workers=4)._adaptive_size(0.2, 100) == 1

    def test_fast_trials_get_large_chunks(self):
        # 1 ms/trial -> 50 trials reach the 50 ms target.
        assert ParallelExecutor(workers=2)._adaptive_size(0.001, 1000) == 50

    def test_chunks_capped_by_max_auto_chunk(self):
        from repro.simulation.engine import _MAX_AUTO_CHUNK

        assert (
            ParallelExecutor(workers=1)._adaptive_size(1e-9, 10**6)
            == _MAX_AUTO_CHUNK
        )

    def test_chunks_never_starve_workers(self):
        # 8 remaining trials over 4 workers: at most 2 per chunk, however
        # cheap the probe says they are.
        assert ParallelExecutor(workers=4)._adaptive_size(1e-6, 8) == 2

    def test_probe_first_batch_is_trial_zero(self):
        cfg = MonteCarloConfig(trials=9, seed=3)
        batches = list(
            ParallelExecutor(workers=2).run(draw_trial, cfg, list(range(9)))
        )
        assert [o.trial for o in batches[0]] == [0]
        assert [o.trial for batch in batches for o in batch] == list(range(9))

    def test_chunk_size_gauge_recorded(self):
        from repro.obs.metrics import MetricsRegistry, metrics_scope

        cfg = MonteCarloConfig(trials=6, seed=5)
        registry = MetricsRegistry()
        with metrics_scope(registry):
            execute_trials(
                draw_trial, cfg, executor=ParallelExecutor(workers=2)
            )
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["parallel_chunk_size"] >= 1
        assert "parallel_probe_seconds" in snapshot["gauges"]

    def test_interrupt_preserves_completed_chunk_outcomes(self):
        # An interrupt mid-chunk must not discard the chunk's completed
        # trials — however coarse the adaptive sizing made the chunk.
        cfg = MonteCarloConfig(trials=20, seed=99)
        seen = []
        with pytest.raises(KeyboardInterrupt):
            for batch in ParallelExecutor(workers=2).run(
                interrupting_trial, cfg, list(range(20)), isolate=True
            ):
                seen.extend(batch)
        trials_seen = [o.trial for o in seen]
        assert trials_seen == list(range(6))
        assert [o.trial for o in seen if not o.ok] == [2]

    def test_explicit_chunk_size_gauge_recorded(self):
        from repro.obs.metrics import MetricsRegistry, metrics_scope

        cfg = MonteCarloConfig(trials=6, seed=5)
        registry = MetricsRegistry()
        with metrics_scope(registry):
            execute_trials(
                draw_trial,
                cfg,
                executor=ParallelExecutor(workers=2, chunk_size=3),
            )
        assert registry.snapshot()["gauges"]["parallel_chunk_size"] == 3


class TestEstimatorBitIdentity:
    """The issue's acceptance criterion: every estimator, workers > 1
    == serial, exactly."""

    def _cfg(self, workers, seed=11, trials=10):
        return MonteCarloConfig(trials=trials, seed=seed, workers=workers)

    def test_point_probability(self, profile):
        serial = estimate_point_probability(
            profile, 60, THETA, "necessary", self._cfg(1)
        )
        parallel = estimate_point_probability(
            profile, 60, THETA, "necessary", self._cfg(2)
        )
        assert serial == parallel

    def test_grid_failure(self, profile):
        serial = estimate_grid_failure_probability(
            profile, 40, THETA, "exact", self._cfg(1), max_grid_points=25
        )
        parallel = estimate_grid_failure_probability(
            profile, 40, THETA, "exact", self._cfg(2), max_grid_points=25
        )
        assert serial == parallel

    def test_area_fraction(self, profile):
        serial = estimate_area_fraction(
            profile, 40, THETA, "k_coverage", self._cfg(1), sample_points=32, k=2
        )
        parallel = estimate_area_fraction(
            profile, 40, THETA, "k_coverage", self._cfg(2), sample_points=32, k=2
        )
        assert serial == parallel

    def test_condition_chain(self, profile):
        serial = estimate_condition_chain(profile, 60, THETA, self._cfg(1))
        parallel = estimate_condition_chain(profile, 60, THETA, self._cfg(2))
        assert serial == parallel

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_point_probability_any_seed(self, seed):
        serial = estimate_point_probability(
            PROFILE, 50, THETA, "exact", self._cfg(1, seed=seed, trials=6)
        )
        parallel = estimate_point_probability(
            PROFILE, 50, THETA, "exact", self._cfg(2, seed=seed, trials=6)
        )
        assert serial == parallel

    def test_env_var_path_matches(self, profile, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        serial = estimate_point_probability(
            profile, 60, THETA, "sufficient", self._cfg(None)
        )
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        parallel = estimate_point_probability(
            profile, 60, THETA, "sufficient", self._cfg(None)
        )
        assert serial == parallel


class TestThreeExecutorIdentity:
    """serial == process == thread, bit for bit, on every estimator.

    The ``executor`` config field drives selection here, exactly as the
    CLI and the env override do; one extra case pins the
    ``FULLVIEW_EXECUTOR`` path itself.
    """

    def _cfg(self, executor, workers=2, seed=11, trials=10):
        return MonteCarloConfig(
            trials=trials, seed=seed, workers=workers, executor=executor
        )

    def _estimate(self, estimator, profile, cfg):
        if estimator == "point":
            return estimate_point_probability(profile, 60, THETA, "necessary", cfg)
        if estimator == "grid":
            return estimate_grid_failure_probability(
                profile, 40, THETA, "exact", cfg, max_grid_points=25
            )
        if estimator == "area":
            return estimate_area_fraction(
                profile, 40, THETA, "k_coverage", cfg, sample_points=32, k=2
            )
        return estimate_condition_chain(profile, 60, THETA, cfg)

    @pytest.mark.parametrize("estimator", ["point", "grid", "area", "chain"])
    def test_all_backends_agree(self, profile, estimator):
        serial = self._estimate(estimator, profile, self._cfg("serial"))
        threaded = self._estimate(estimator, profile, self._cfg("thread"))
        process = self._estimate(estimator, profile, self._cfg("process"))
        assert serial == threaded
        assert serial == process

    def test_env_override_path_matches(self, profile, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        serial = self._estimate("point", profile, self._cfg("serial"))
        for kind in ("thread", "process"):
            monkeypatch.setenv(EXECUTOR_ENV_VAR, kind)
            assert self._estimate("point", profile, self._cfg(None)) == serial

    def test_auto_uses_threads_and_matches(self, profile, monkeypatch):
        # Estimator tasks release the GIL, so auto lands on threads —
        # and the answer is still the serial answer.
        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
        from repro.obs.metrics import MetricsRegistry, metrics_scope

        serial = self._estimate("point", profile, self._cfg("serial"))
        registry = MetricsRegistry()
        with metrics_scope(registry):
            auto = self._estimate("point", profile, self._cfg("auto"))
        assert auto == serial
        assert registry.snapshot()["counters"]["executor_selected_thread"] >= 1


class TestParallelCheckpointResume:
    """Checkpoint/resume under the parallel executor == uninterrupted."""

    TASK = PointProbabilityTask(
        profile=PROFILE,
        n=50,
        theta=THETA,
        condition="necessary",
        scheme=UniformDeployment(),
        point=(0.5, 0.5),
    )

    def test_interrupted_parallel_equals_uninterrupted_serial(self, tmp_path):
        serial_cfg = MonteCarloConfig(trials=16, seed=7, workers=1)
        parallel_cfg = MonteCarloConfig(trials=16, seed=7, workers=2)
        baseline = run_resilient_trials(self.TASK, serial_cfg)
        truncated = run_resilient_trials(
            self.TASK,
            parallel_cfg,
            checkpoint_dir=tmp_path,
            checkpoint_every=1,
            time_budget=1e-9,
        )
        assert truncated.truncated
        resumed = run_resilient_trials(
            self.TASK, parallel_cfg, checkpoint_dir=tmp_path, resume=True
        )
        assert not resumed.truncated
        assert resumed.outcomes == baseline.outcomes

    def test_parallel_sweep_matches_serial(self):
        serial = run_resilient_trials(
            self.TASK, MonteCarloConfig(trials=12, seed=3, workers=1)
        )
        parallel = run_resilient_trials(
            self.TASK, MonteCarloConfig(trials=12, seed=3, workers=2)
        )
        assert parallel.outcomes == serial.outcomes

    def test_area_task_is_picklable(self):
        # Every estimator task must cross the process boundary.
        task = AreaFractionTask(
            profile=PROFILE,
            n=10,
            theta=THETA,
            condition="exact",
            scheme=UniformDeployment(),
            sample_points=8,
        )
        clone = pickle.loads(pickle.dumps(task))
        rng = np.random.SeedSequence(5)
        original = task(0, np.random.Generator(np.random.PCG64(rng)))
        restored = clone(0, np.random.Generator(np.random.PCG64(rng)))
        assert original == restored
