"""The public API surface: everything in __all__ imports and works."""

from __future__ import annotations

import math

import numpy as np
import pytest

import repro


class TestSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"{name} missing from package"

    def test_no_private_exports(self):
        assert all(not n.startswith("_") or n == "__version__" for n in repro.__all__)


class TestQuickstartFlow:
    """The README quickstart, as a test."""

    def test_end_to_end(self):
        profile = repro.HeterogeneousProfile.homogeneous(
            repro.CameraSpec(radius=0.2, angle_of_view=math.pi / 3)
        )
        fleet = repro.UniformDeployment().deploy(
            profile, n=500, rng=np.random.default_rng(7)
        )
        assert len(fleet) == 500
        covered = repro.point_is_full_view_covered(fleet, (0.5, 0.5), theta=math.pi / 3)
        assert isinstance(covered, bool)
        diag = repro.diagnose_point(fleet, (0.5, 0.5), theta=math.pi / 3)
        assert diag.num_covering_sensors >= 0
        csa = repro.csa_sufficient(n=500, theta=math.pi / 4)
        assert 0 < csa < 1

    def test_theory_functions_exposed(self):
        profile = repro.HeterogeneousProfile.homogeneous(
            repro.CameraSpec(radius=0.2, angle_of_view=math.pi / 3)
        )
        p = repro.necessary_failure_probability(profile, 300, math.pi / 4)
        q = repro.sufficient_failure_probability(profile, 300, math.pi / 4)
        assert 0 <= p <= q <= 1
        pn = repro.poisson_necessary_probability(profile, 300, math.pi / 4)
        ps = repro.poisson_sufficient_probability(profile, 300, math.pi / 4)
        assert 0 <= ps <= pn <= 1

    def test_monte_carlo_exposed(self):
        profile = repro.HeterogeneousProfile.homogeneous(
            repro.CameraSpec(radius=0.25, angle_of_view=math.pi / 2)
        )
        cfg = repro.MonteCarloConfig(trials=20, seed=0)
        est = repro.estimate_point_probability(profile, 100, math.pi / 2, "exact", cfg)
        assert isinstance(est, repro.BernoulliEstimate)

    def test_errors_catchable_by_base(self):
        with pytest.raises(repro.FullViewError):
            repro.CameraSpec(radius=-1.0, angle_of_view=1.0)
