"""Tests for the stable :mod:`repro.api` facade.

The facade re-exports blessed machinery, so these tests focus on the
facade's own responsibilities: argument normalisation and validation,
dispatch to the right estimator, and parity with the deep-module
spellings it wraps.
"""

import math

import numpy as np
import pytest

from repro.api import (
    GridEvaluation,
    deploy,
    estimate,
    evaluate_grid,
    load_results,
    run_experiment,
)
from repro.core.batch import full_view_mask
from repro.errors import ExperimentError, InvalidParameterError
from repro.geometry.grid import DenseGrid
from repro.sensors.fleet import SensorFleet
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.results import ResultTable
from repro.simulation.statistics import BernoulliEstimate

THETA = math.pi / 3
SPEC = CameraSpec(radius=0.25, angle_of_view=math.pi / 2)
PROFILE = HeterogeneousProfile.homogeneous(SPEC)


class TestDeploy:
    def test_returns_indexed_fleet(self):
        fleet = deploy(profile=PROFILE, n=20, seed=1)
        assert isinstance(fleet, SensorFleet)
        assert len(fleet) == 20
        assert fleet.index is not None

    def test_seed_is_deterministic(self):
        a = deploy(profile=PROFILE, n=15, seed=42)
        b = deploy(profile=PROFILE, n=15, seed=42)
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.orientations, b.orientations)

    def test_rng_overrides_seed(self):
        a = deploy(profile=PROFILE, n=10, seed=0, rng=np.random.default_rng(9))
        b = deploy(profile=PROFILE, n=10, seed=123, rng=np.random.default_rng(9))
        assert np.array_equal(a.positions, b.positions)

    def test_camera_spec_treated_as_homogeneous(self):
        a = deploy(profile=SPEC, n=12, seed=3)
        b = deploy(profile=PROFILE, n=12, seed=3)
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.radii, b.radii)

    def test_radius_angle_shorthand(self):
        a = deploy(radius=0.25, angle_of_view=math.pi / 2, n=12, seed=3)
        b = deploy(profile=PROFILE, n=12, seed=3)
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.radii, b.radii)

    def test_profile_and_radius_conflict(self):
        with pytest.raises(InvalidParameterError, match="not both"):
            deploy(profile=PROFILE, radius=0.2, n=5)

    def test_no_camera_description(self):
        with pytest.raises(InvalidParameterError, match="radius"):
            deploy(n=5)

    def test_partial_shorthand_rejected(self):
        with pytest.raises(InvalidParameterError):
            deploy(radius=0.2, n=5)

    def test_build_index_false(self):
        fleet = deploy(profile=PROFILE, n=8, seed=0, build_index=False)
        assert fleet.index is None


class TestEvaluateGrid:
    def test_default_grid(self):
        fleet = deploy(profile=PROFILE, n=50, seed=2)
        result = evaluate_grid(fleet=fleet, theta=THETA)
        assert isinstance(result, GridEvaluation)
        assert len(result) == result.points.shape[0]
        assert 0.0 <= result.fraction <= 1.0
        assert result.num_covered == int(result.mask.sum())

    def test_matches_deep_module(self):
        fleet = deploy(profile=PROFILE, n=60, seed=4)
        grid = DenseGrid(side=12)
        result = evaluate_grid(fleet=fleet, theta=THETA, grid=grid)
        expected = full_view_mask(fleet, grid.points, THETA)
        assert np.array_equal(result.mask, expected)

    def test_resolution_shorthand(self):
        fleet = deploy(profile=PROFILE, n=30, seed=5)
        result = evaluate_grid(fleet=fleet, theta=THETA, resolution=7)
        assert len(result) == 49

    def test_explicit_points(self):
        fleet = deploy(profile=PROFILE, n=30, seed=5)
        pts = np.array([[0.5, 0.5], [0.1, 0.9]])
        result = evaluate_grid(fleet=fleet, theta=THETA, points=pts)
        assert len(result) == 2
        assert np.array_equal(result.points, pts)

    def test_point_sources_are_exclusive(self):
        fleet = deploy(profile=PROFILE, n=10, seed=0)
        with pytest.raises(InvalidParameterError, match="at most one"):
            evaluate_grid(
                fleet=fleet, theta=THETA, resolution=5, grid=DenseGrid(side=5)
            )

    def test_kernel_paths_agree(self):
        fleet = deploy(profile=PROFILE, n=80, seed=6)
        dense = evaluate_grid(fleet=fleet, theta=THETA, resolution=9, kernel="dense")
        sparse = evaluate_grid(fleet=fleet, theta=THETA, resolution=9, kernel="sparse")
        assert np.array_equal(dense.mask, sparse.mask)

    def test_empty_mask_fraction_is_zero(self):
        ev = GridEvaluation(
            points=np.empty((0, 2)),
            mask=np.empty(0, dtype=bool),
            theta=THETA,
            condition="exact",
        )
        assert ev.fraction == 0.0


class TestEstimate:
    def test_point_kind(self):
        result = estimate(
            kind="point", profile=PROFILE, n=40, theta=THETA, trials=8, seed=0
        )
        assert isinstance(result, BernoulliEstimate)
        assert result.trials == 8

    def test_grid_failure_kind(self):
        result = estimate(
            kind="grid_failure",
            profile=PROFILE,
            n=40,
            theta=THETA,
            trials=6,
            seed=0,
            max_grid_points=16,
        )
        assert isinstance(result, BernoulliEstimate)

    def test_area_fraction_kind(self):
        mean, half = estimate(
            kind="area_fraction",
            profile=PROFILE,
            n=40,
            theta=THETA,
            trials=6,
            seed=0,
            sample_points=32,
        )
        assert 0.0 <= mean <= 1.0
        assert half >= 0.0

    def test_condition_chain_kind(self):
        result = estimate(
            kind="condition_chain", profile=PROFILE, n=40, theta=THETA,
            trials=6, seed=0,
        )
        assert {"necessary", "exact", "sufficient"} <= set(result)

    def test_unknown_kind(self):
        with pytest.raises(InvalidParameterError, match="kind"):
            estimate(kind="bogus", profile=PROFILE, n=10, theta=THETA)

    def test_radius_shorthand_matches_profile(self):
        a = estimate(
            kind="point", profile=PROFILE, n=30, theta=THETA, trials=5, seed=1
        )
        b = estimate(
            kind="point", radius=0.25, angle_of_view=math.pi / 2,
            n=30, theta=THETA, trials=5, seed=1,
        )
        assert a == b


class TestRunExperiment:
    def test_runs_registered_experiment(self):
        result = run_experiment(experiment_id="FIG7", fast=True, seed=0)
        assert result.tables

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            run_experiment(experiment_id="NOPE")


class TestLoadResults:
    def test_round_trip_single_file(self, tmp_path):
        table = ResultTable(title="t", columns=["a", "b"])
        table.add_row(1, 2.5)
        table.add_row(3, None)
        path = table.save_csv(tmp_path / "t.csv")
        loaded = load_results(path=path)
        assert isinstance(loaded, ResultTable)
        assert loaded.title == "t"
        assert loaded.rows == [[1, 2.5], [3, None]]

    def test_directory_load(self, tmp_path):
        for name in ("one", "two"):
            t = ResultTable(title=name, columns=["x"])
            t.add_row(7)
            t.save_csv(tmp_path / f"{name}.csv")
        loaded = load_results(path=tmp_path)
        assert set(loaded) == {"one", "two"}
        assert loaded["one"].rows == [[7]]

    def test_missing_file(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="no result file"):
            load_results(path=tmp_path / "absent.csv")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="no .csv"):
            load_results(path=tmp_path)
