"""Regression pins for bugs found during development.

Each test reproduces a concrete failure that property-based testing or
fuzzing surfaced, so the fix can never silently regress.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.csa import csa_necessary
from repro.errors import FullViewError
from repro.geometry.angles import TWO_PI, normalize_angle
from repro.geometry.intervals import AngularInterval, AngularIntervalSet
from repro.geometry.obstacles import ObstacleField
from repro.geometry.sector import Sector, sector_area
from repro.sensors.fleet import SensorFleet


class TestNormalizeAngleUlp:
    def test_tiny_negative_array_does_not_return_two_pi(self):
        """np.mod(-1e-64, 2*pi) rounds to exactly 2*pi; must map to 0."""
        out = normalize_angle(np.array([-1.2704758872296637e-64]))
        assert out[0] < TWO_PI


class TestIntervalSetSeamContainment:
    def test_probe_one_ulp_below_two_pi(self):
        """A probe at 2*pi - ulp is the same direction as 0 and must be
        inside an arc starting at 0."""
        s = AngularIntervalSet([AngularInterval(0.0, 1.0)])
        assert s.contains(6.283185307179585, tol=1e-6)


class TestApexEpsilon:
    def test_point_epsilon_from_apex_is_covered(self):
        """A point 1e-16 from the apex has a numerically meaningless
        bearing; the binary model covers it regardless of wedge."""
        sector = Sector((0.0, 0.0), radius=0.375, angle=1.0, orientation=0.0)
        point = (4.4989204517465445e-17, 7.00665346415799e-17)
        assert sector.contains(point)

    def test_fleet_matches_sector_at_epsilon(self):
        fleet = SensorFleet(
            positions=np.array([[0.0, 0.0]]),
            orientations=np.array([0.0]),
            radii=np.array([0.375]),
            angles=np.array([1.0]),
        )
        point = (4.4989204517465445e-17, 7.00665346415799e-17)
        assert fleet.covering(point, use_index=False).tolist() == [0]
        # And the bearing-less sensor contributes no viewed direction.
        assert fleet.covering_directions(point, use_index=False).size == 0


class TestSectorAreaOverflow:
    def test_underflow_rejected(self):
        with pytest.raises(FullViewError):
            sector_area(1.5353911529847533e-298, 1.0)

    def test_overflow_rejected(self):
        with pytest.raises(FullViewError):
            sector_area(1e200, 1.0)

    def test_boundary_radius_keeps_invariant(self):
        """r = 1.34078...e154 squares to within one ulp of DBL_MAX; it
        may be accepted, but only with a finite positive area (the
        original fuzz contract)."""
        try:
            area = sector_area(1.3407807929942597e154, 1.0)
        except FullViewError:
            return
        assert math.isfinite(area) and area > 0


class TestTinyThetaCsa:
    def test_denormal_theta_raises_library_error(self):
        """pi/theta overflowing int conversion must raise FullViewError,
        not OverflowError."""
        with pytest.raises(FullViewError):
            csa_necessary(100, 5e-324)

    def test_small_but_evaluable_theta_ok(self):
        value = csa_necessary(1000, 1e-3)
        assert value > 0 and math.isfinite(value)


class TestObstacleTorusImages:
    def test_segment_blocked_by_far_image(self):
        """The geodesic 0.625 -> 0 wraps east; the obstacle at x=0.125
        blocks it near the wrapped endpoint even though its nearest
        image to the source lies west."""
        field = ObstacleField(np.array([[0.125, 0.0]]), np.array([0.1875]))
        assert field.blocks((0.625, 0.0), (0.0, 0.0))


class TestWilsonDegenerateEndpoints:
    def test_full_success_upper_is_one(self):
        from repro.simulation.statistics import wilson_interval

        lo, hi = wilson_interval(41, 41)
        assert hi == 1.0
        assert lo <= 1.0
