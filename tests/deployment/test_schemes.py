"""Tests for deployment schemes."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.deployment.lattice import (
    SquareLatticeDeployment,
    TriangularLatticeDeployment,
)
from repro.deployment.poisson import PoissonDeployment
from repro.deployment.uniform import UniformDeployment
from repro.errors import InvalidParameterError
from repro.geometry.torus import Region


class TestUniformDeployment:
    def test_exact_count(self, homogeneous_profile, rng):
        fleet = UniformDeployment().deploy(homogeneous_profile, 137, rng)
        assert len(fleet) == 137

    def test_positions_in_region(self, homogeneous_profile, rng):
        fleet = UniformDeployment().deploy(homogeneous_profile, 500, rng)
        assert (fleet.positions >= 0).all()
        assert (fleet.positions < 1).all()

    def test_reproducible(self, homogeneous_profile):
        a = UniformDeployment().deploy(homogeneous_profile, 50, np.random.default_rng(5))
        b = UniformDeployment().deploy(homogeneous_profile, 50, np.random.default_rng(5))
        assert np.allclose(a.positions, b.positions)
        assert np.allclose(a.orientations, b.orientations)

    def test_different_seeds_differ(self, homogeneous_profile):
        a = UniformDeployment().deploy(homogeneous_profile, 50, np.random.default_rng(5))
        b = UniformDeployment().deploy(homogeneous_profile, 50, np.random.default_rng(6))
        assert not np.allclose(a.positions, b.positions)

    def test_count_validation(self, homogeneous_profile, rng):
        with pytest.raises(InvalidParameterError):
            UniformDeployment().deploy(homogeneous_profile, 0, rng)

    def test_group_counts(self, two_group_profile, rng):
        fleet = UniformDeployment().deploy(two_group_profile, 250, rng)
        assert fleet.group_sizes().tolist() == two_group_profile.group_counts(250)

    def test_group_membership_independent_of_location(self, two_group_profile):
        """Across many deployments, each group's mean x must be ~0.5."""
        xs = {0: [], 1: []}
        for seed in range(60):
            fleet = UniformDeployment().deploy(
                two_group_profile, 100, np.random.default_rng(seed)
            )
            for gid in (0, 1):
                xs[gid].append(float(fleet.positions[fleet.group_ids == gid, 0].mean()))
        for gid in (0, 1):
            assert np.mean(xs[gid]) == pytest.approx(0.5, abs=0.02)

    def test_uniformity_chi_square(self, homogeneous_profile):
        """Positions over many trials fill a 4x4 histogram uniformly."""
        counts = np.zeros((4, 4))
        for seed in range(20):
            fleet = UniformDeployment().deploy(
                homogeneous_profile, 200, np.random.default_rng(seed)
            )
            h, _, _ = np.histogram2d(
                fleet.positions[:, 0], fleet.positions[:, 1], bins=4, range=[[0, 1], [0, 1]]
            )
            counts += h
        expected = counts.sum() / 16
        chi2 = ((counts - expected) ** 2 / expected).sum()
        # 15 dof; 99.9th percentile ~ 37.7
        assert chi2 < 37.7

    def test_orientations_uniform(self, homogeneous_profile):
        fleet = UniformDeployment().deploy(
            homogeneous_profile, 5000, np.random.default_rng(0)
        )
        hist, _ = np.histogram(fleet.orientations, bins=8, range=(0, 2 * math.pi))
        expected = 5000 / 8
        chi2 = ((hist - expected) ** 2 / expected).sum()
        assert chi2 < 24.3  # 7 dof, 99.9th percentile

    def test_custom_region(self, homogeneous_profile, rng):
        region = Region(side=3.0)
        fleet = UniformDeployment(region).deploy(homogeneous_profile, 100, rng)
        assert (fleet.positions < 3.0).all()
        assert fleet.positions.max() > 1.0  # actually uses the larger square


class TestPoissonDeployment:
    def test_count_is_random_with_correct_mean(self, homogeneous_profile):
        counts = [
            len(PoissonDeployment().deploy(homogeneous_profile, 100, np.random.default_rng(s)))
            for s in range(300)
        ]
        assert np.mean(counts) == pytest.approx(100, abs=2.5)
        assert np.var(counts) == pytest.approx(100, rel=0.3)

    def test_zero_realisation_gives_empty_fleet(self, homogeneous_profile):
        # With expectation 1 some seeds realise 0 sensors.
        empties = sum(
            len(PoissonDeployment().deploy(homogeneous_profile, 1, np.random.default_rng(s))) == 0
            for s in range(100)
        )
        assert empties > 10  # P(0) = 1/e ~ 0.37

    def test_positions_in_region(self, homogeneous_profile, rng):
        fleet = PoissonDeployment().deploy(homogeneous_profile, 200, rng)
        assert (fleet.positions >= 0).all() and (fleet.positions < 1).all()

    def test_reproducible(self, homogeneous_profile):
        a = PoissonDeployment().deploy(homogeneous_profile, 80, np.random.default_rng(3))
        b = PoissonDeployment().deploy(homogeneous_profile, 80, np.random.default_rng(3))
        assert len(a) == len(b)
        assert np.allclose(a.positions, b.positions)


class TestSquareLattice:
    def test_count_is_square(self, homogeneous_profile, rng):
        fleet = SquareLatticeDeployment().deploy(homogeneous_profile, 100, rng)
        assert len(fleet) == 100

    def test_rounds_to_nearest_square(self, homogeneous_profile, rng):
        fleet = SquareLatticeDeployment().deploy(homogeneous_profile, 90, rng)
        side = round(math.sqrt(90))
        assert len(fleet) == side * side

    def test_deterministic_positions(self, homogeneous_profile):
        a = SquareLatticeDeployment().deploy(homogeneous_profile, 49, np.random.default_rng(0))
        b = SquareLatticeDeployment().deploy(homogeneous_profile, 49, np.random.default_rng(9))
        # Positions identical regardless of rng (orientations differ).
        assert np.allclose(np.sort(a.positions, axis=0), np.sort(b.positions, axis=0))

    def test_spacing_regular(self, homogeneous_profile, rng):
        fleet = SquareLatticeDeployment().deploy(homogeneous_profile, 16, rng)
        xs = np.unique(np.round(fleet.positions[:, 0], 9))
        assert len(xs) == 4
        assert np.allclose(np.diff(xs), 0.25)


class TestTriangularLattice:
    def test_count_close_to_requested(self, homogeneous_profile, rng):
        for n in (10, 100, 500):
            fleet = TriangularLatticeDeployment().deploy(homogeneous_profile, n, rng)
            assert abs(len(fleet) - n) / n < 0.35

    def test_single_point(self, homogeneous_profile, rng):
        fleet = TriangularLatticeDeployment().deploy(homogeneous_profile, 1, rng)
        assert len(fleet) == 1
        assert np.allclose(fleet.positions, [[0.5, 0.5]])

    def test_rows_offset(self, homogeneous_profile, rng):
        fleet = TriangularLatticeDeployment().deploy(homogeneous_profile, 100, rng)
        ys = np.unique(np.round(fleet.positions[:, 1], 9))
        assert len(ys) >= 2
        row0 = np.sort(fleet.positions[np.isclose(fleet.positions[:, 1], ys[0]), 0])
        row1 = np.sort(fleet.positions[np.isclose(fleet.positions[:, 1], ys[1]), 0])
        # Adjacent rows are shifted by half a column spacing.
        dx = row0[1] - row0[0]
        shift = abs(row1[0] - row0[0])
        assert shift == pytest.approx(dx / 2, rel=1e-6)

    def test_positions_in_region(self, homogeneous_profile, rng):
        fleet = TriangularLatticeDeployment().deploy(homogeneous_profile, 200, rng)
        assert (fleet.positions >= 0).all() and (fleet.positions < 1).all()


class TestLatticeVsRandomCoverage:
    def test_lattice_more_even_than_random(self, homogeneous_profile):
        """Lattice nearest-sensor distances have lower variance than random."""
        from repro.geometry.spatial import ToroidalCellIndex

        probes = np.random.default_rng(1).uniform(size=(100, 2))

        def nearest_spread(fleet):
            idx = ToroidalCellIndex(fleet.positions, 0.1)
            dists = [idx.nearest((float(x), float(y)))[1] for x, y in probes]
            return np.var(dists)

        lattice = SquareLatticeDeployment().deploy(
            homogeneous_profile, 100, np.random.default_rng(0)
        )
        random_fleet = UniformDeployment().deploy(
            homogeneous_profile, 100, np.random.default_rng(0)
        )
        assert nearest_spread(lattice) < nearest_spread(random_fleet)
