"""Tests for the Matérn cluster deployment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.deployment.cluster import MaternClusterDeployment
from repro.errors import InvalidParameterError


class TestConstruction:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            MaternClusterDeployment(expected_parents=0.0)
        with pytest.raises(InvalidParameterError):
            MaternClusterDeployment(cluster_radius=0.0)
        with pytest.raises(InvalidParameterError):
            MaternClusterDeployment(cluster_radius=2.0)


class TestPositions:
    def test_expected_count(self, homogeneous_profile):
        counts = [
            len(
                MaternClusterDeployment(expected_parents=8).deploy(
                    homogeneous_profile, 200, np.random.default_rng(s)
                )
            )
            for s in range(200)
        ]
        assert np.mean(counts) == pytest.approx(200, rel=0.1)

    def test_positions_in_region(self, homogeneous_profile, rng):
        fleet = MaternClusterDeployment(expected_parents=5).deploy(
            homogeneous_profile, 300, rng
        )
        assert (fleet.positions >= 0).all() and (fleet.positions < 1).all()

    def test_reproducible(self, homogeneous_profile):
        a = MaternClusterDeployment().deploy(
            homogeneous_profile, 100, np.random.default_rng(3)
        )
        b = MaternClusterDeployment().deploy(
            homogeneous_profile, 100, np.random.default_rng(3)
        )
        assert len(a) == len(b)
        assert np.allclose(np.sort(a.positions, axis=0), np.sort(b.positions, axis=0))

    def test_zero_parents_possible(self, homogeneous_profile):
        """With tiny expected_parents some seeds realise an empty fleet."""
        empties = sum(
            len(
                MaternClusterDeployment(expected_parents=0.5).deploy(
                    homogeneous_profile, 50, np.random.default_rng(s)
                )
            )
            == 0
            for s in range(100)
        )
        assert empties > 20  # P(no parents) = e^{-0.5} ~ 0.61

    def test_clustering_is_real(self, homogeneous_profile):
        """Nearest-neighbour distances shrink versus uniform placement."""
        from repro.geometry.spatial import ToroidalCellIndex
        from repro.deployment.uniform import UniformDeployment

        def mean_nn(fleet):
            if len(fleet) < 2:
                return np.nan
            idx = ToroidalCellIndex(fleet.positions, 0.05)
            dists = []
            for i, (x, y) in enumerate(fleet.positions):
                hits = idx.query((float(x), float(y)), 0.2)
                hits = hits[hits != i]
                if hits.size:
                    dists.append(
                        fleet.region.distances((float(x), float(y)), fleet.positions[hits]).min()
                    )
            return np.mean(dists) if dists else np.nan

        clustered = MaternClusterDeployment(
            expected_parents=4, cluster_radius=0.05
        ).deploy(homogeneous_profile, 300, np.random.default_rng(0))
        uniform = UniformDeployment().deploy(
            homogeneous_profile, 300, np.random.default_rng(0)
        )
        assert mean_nn(clustered) < mean_nn(uniform)

    def test_many_parents_fills_region(self, homogeneous_profile, rng):
        """With many parents the occupied area approaches uniform."""
        fleet = MaternClusterDeployment(
            expected_parents=200, cluster_radius=0.1
        ).deploy(homogeneous_profile, 2000, rng)
        h, _, _ = np.histogram2d(
            fleet.positions[:, 0], fleet.positions[:, 1], bins=4, range=[[0, 1], [0, 1]]
        )
        assert h.min() > 0.3 * h.max()
