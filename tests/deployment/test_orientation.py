"""Tests for orientation samplers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.deployment.orientation import (
    InwardOrientation,
    UniformOrientation,
    VonMisesOrientation,
)


@pytest.fixture
def positions(rng):
    return rng.uniform(size=(500, 2))


class TestUniformOrientation:
    def test_range(self, positions, rng):
        out = UniformOrientation().sample(positions, rng)
        assert out.shape == (500,)
        assert (out >= 0).all() and (out < 2 * math.pi).all()

    def test_uniformity(self, positions):
        out = UniformOrientation().sample(positions, np.random.default_rng(0))
        hist, _ = np.histogram(out, bins=8, range=(0, 2 * math.pi))
        chi2 = ((hist - 500 / 8) ** 2 / (500 / 8)).sum()
        assert chi2 < 24.3


class TestVonMisesOrientation:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            VonMisesOrientation(kappa=-1.0)

    def test_concentrates_on_mean(self, positions, rng):
        mean = 1.2
        out = VonMisesOrientation(mean=mean, kappa=50.0).sample(positions, rng)
        # Circular distance to the mean should be small for almost all.
        from repro.geometry.angles import angular_distance

        dists = angular_distance(out, mean)
        assert np.median(dists) < 0.2

    def test_kappa_zero_is_spread_out(self, positions, rng):
        out = VonMisesOrientation(mean=0.0, kappa=0.0).sample(positions, rng)
        hist, _ = np.histogram(out, bins=4, range=(0, 2 * math.pi))
        assert (hist > 50).all()

    def test_range(self, positions, rng):
        out = VonMisesOrientation(mean=5.0, kappa=2.0).sample(positions, rng)
        assert (out >= 0).all() and (out < 2 * math.pi).all()


class TestInwardOrientation:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            InwardOrientation(jitter=-0.1)

    def test_aims_at_focus(self, rng):
        positions = np.array([[0.0, 0.5], [0.5, 0.0], [1.0, 0.5]])
        out = InwardOrientation(focus_x=0.5, focus_y=0.5).sample(positions, rng)
        assert out[0] == pytest.approx(0.0)  # east towards centre
        assert out[1] == pytest.approx(math.pi / 2)  # north
        assert out[2] == pytest.approx(math.pi)  # west

    def test_jitter_perturbs(self):
        positions = np.tile([[0.0, 0.5]], (200, 1))
        exact = InwardOrientation().sample(positions, np.random.default_rng(0))
        noisy = InwardOrientation(jitter=0.2).sample(positions, np.random.default_rng(0))
        assert np.allclose(exact, exact[0])
        assert np.std(noisy) > 0.05

    def test_makes_focus_full_view_covered(self, rng):
        """Perimeter cameras aimed at the centre full-view cover it with
        just ceil(pi/theta) sensors — the paper's minimum."""
        import numpy as np

        from repro.core.full_view import is_full_view_covered
        from repro.sensors.fleet import SensorFleet

        theta = math.pi / 3
        k = math.ceil(math.pi / theta)
        angles = np.arange(k) * (2 * math.pi / k)
        positions = np.stack(
            [0.5 + 0.2 * np.cos(angles), 0.5 + 0.2 * np.sin(angles)], axis=1
        )
        orientations = InwardOrientation().sample(positions, rng)
        fleet = SensorFleet(
            positions=positions,
            orientations=orientations,
            radii=np.full(k, 0.3),
            angles=np.full(k, math.pi / 2),
        )
        dirs = fleet.covering_directions((0.5, 0.5))
        assert dirs.size == k
        assert is_full_view_covered(dirs, theta)
