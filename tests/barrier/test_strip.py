"""Tests for strong-barrier strips."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.barrier.strip import find_widest_covered_strip, strip_fully_covered
from repro.deployment.uniform import UniformDeployment
from repro.errors import InvalidParameterError
from repro.sensors.fleet import SensorFleet
from repro.sensors.model import CameraSpec, HeterogeneousProfile


def band_fleet(y_center=0.5, columns=14, reach=0.4):
    """Two staggered rows of opposed cameras covering a horizontal band."""
    xs = (np.arange(columns) + 0.5) / columns
    # Cameras below the band looking up, above looking down.
    below = np.stack([xs, np.full(columns, y_center - 0.15)], axis=1)
    above = np.stack([xs, np.full(columns, y_center + 0.15)], axis=1)
    positions = np.concatenate([below, above])
    orientations = np.concatenate(
        [np.full(columns, math.pi / 2), np.full(columns, -math.pi / 2)]
    )
    n = positions.shape[0]
    return SensorFleet(
        positions=positions,
        orientations=orientations,
        radii=np.full(n, reach),
        angles=np.full(n, math.pi),
    )


class TestStripFullyCovered:
    def test_validation(self):
        fleet = band_fleet()
        with pytest.raises(InvalidParameterError):
            strip_fully_covered(fleet, math.pi / 2, 0.6, 0.4)
        with pytest.raises(InvalidParameterError):
            strip_fully_covered(fleet, math.pi / 2, 0.4, 0.6, resolution=1)

    def test_band_fleet_covers_its_band(self):
        fleet = band_fleet()
        assert strip_fully_covered(fleet, math.pi / 2, 0.45, 0.55, resolution=20)

    def test_band_fleet_does_not_cover_far_strip(self):
        fleet = band_fleet()
        assert not strip_fully_covered(fleet, math.pi / 2, 0.0, 0.1, resolution=20)

    def test_sparse_fleet_covers_nothing(self):
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=0.05, angle_of_view=0.5)
        )
        fleet = UniformDeployment().deploy(profile, 10, np.random.default_rng(0))
        assert not strip_fully_covered(fleet, math.pi / 3, 0.4, 0.6)


class TestWidestStrip:
    def test_band_fleet_strip_contains_center(self):
        fleet = band_fleet()
        strip = find_widest_covered_strip(fleet, math.pi / 2, resolution=20)
        assert strip is not None
        y_min, y_max = strip
        assert y_min < 0.5 < y_max

    def test_none_when_uncovered(self):
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=0.05, angle_of_view=0.5)
        )
        fleet = UniformDeployment().deploy(profile, 10, np.random.default_rng(0))
        assert find_widest_covered_strip(fleet, math.pi / 3, resolution=12) is None

    def test_strip_is_verified_by_strip_test(self):
        """The reported strip passes strip_fully_covered at the same
        resolution (cell centres)."""
        fleet = band_fleet()
        strip = find_widest_covered_strip(fleet, math.pi / 2, resolution=16)
        assert strip is not None
        y_min, y_max = strip
        # Shrink slightly inside cell centres before re-testing.
        pad = (y_max - y_min) * 0.26
        assert strip_fully_covered(
            fleet, math.pi / 2, y_min + pad, y_max - pad, resolution=16
        )

    def test_full_coverage_returns_whole_region(self):
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=0.45, angle_of_view=2 * math.pi)
        )
        fleet = UniformDeployment().deploy(profile, 400, np.random.default_rng(1))
        strip = find_widest_covered_strip(fleet, math.pi / 2, resolution=10)
        if strip is not None and strip[0] == 0.0:
            assert strip[1] == pytest.approx(1.0)
