"""Tests for grid-based barrier detection."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.barrier.grid_barrier import (
    BarrierAnalysis,
    CoverageGrid,
    barrier_exists,
    compute_coverage_grid,
    find_breach_path,
    find_covered_band,
)
from repro.deployment.uniform import UniformDeployment
from repro.errors import InvalidParameterError
from repro.geometry.torus import Region
from repro.sensors.fleet import SensorFleet
from repro.sensors.model import CameraSpec, HeterogeneousProfile


def grid_from_mask(mask: np.ndarray, torus_x: bool = False) -> CoverageGrid:
    """Build a CoverageGrid directly from a boolean [col, row] array."""
    return CoverageGrid(covered=mask, resolution=mask.shape[0], torus_x=torus_x)


def ring_fleet(cx, cy, k=12, ring_radius=0.18, reach=0.45):
    """k sensors around (cx, cy), all looking inward — a covered blob."""
    angles = np.arange(k) * (2 * math.pi / k)
    positions = np.stack(
        [cx + ring_radius * np.cos(angles), cy + ring_radius * np.sin(angles)], axis=1
    )
    return SensorFleet(
        positions=positions,
        orientations=np.mod(angles + math.pi, 2 * math.pi),
        radii=np.full(k, reach),
        angles=np.full(k, math.pi),
    )


class TestCoverageGrid:
    def test_resolution_validation(self):
        fleet = ring_fleet(0.5, 0.5)
        with pytest.raises(InvalidParameterError):
            compute_coverage_grid(fleet, math.pi / 2, resolution=1)

    def test_covered_fraction(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = True
        assert grid_from_mask(mask).covered_fraction == pytest.approx(1 / 16)

    def test_cell_center(self):
        grid = grid_from_mask(np.zeros((4, 4), dtype=bool))
        assert grid.cell_center((0, 0)) == pytest.approx((0.125, 0.125))

    def test_matches_pointwise_exact_test(self):
        from repro.core.full_view import point_is_full_view_covered

        fleet = ring_fleet(0.5, 0.5)
        grid = compute_coverage_grid(fleet, math.pi / 2, resolution=8)
        for cx in range(8):
            for cy in range(8):
                point = grid.cell_center((cx, cy))
                assert grid.covered[cx, cy] == point_is_full_view_covered(
                    fleet, point, math.pi / 2
                )


class TestBreachPath:
    def test_empty_coverage_breaches(self):
        grid = grid_from_mask(np.zeros((6, 6), dtype=bool))
        path = find_breach_path(grid)
        assert path is not None
        rows = [cy for _, cy in path]
        assert 0 in rows and 5 in rows

    def test_full_coverage_blocks(self):
        grid = grid_from_mask(np.ones((6, 6), dtype=bool))
        assert find_breach_path(grid) is None

    def test_horizontal_band_blocks(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[:, 3] = True  # one covered row across all columns
        assert find_breach_path(grid_from_mask(mask)) is None

    def test_band_with_hole_breaches(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[:, 3] = True
        mask[2, 3] = False  # hole
        path = find_breach_path(grid_from_mask(mask))
        assert path is not None
        assert (2, 3) in path  # the breach goes through the hole

    def test_diagonal_gap_is_passable(self):
        """8-connectivity: an intruder slips through a diagonal gap in
        a 'staircase' of covered cells."""
        mask = np.zeros((4, 4), dtype=bool)
        # Covered cells at (0,1),(1,1) and (2,2),(3,2): uncovered cells
        # (2,1) and (1,2) touch diagonally -> breach exists.
        mask[0, 1] = mask[1, 1] = True
        mask[2, 2] = mask[3, 2] = True
        assert find_breach_path(grid_from_mask(mask)) is not None

    def test_vertical_wall_does_not_block(self):
        """A covered vertical column does not stop a vertical crossing."""
        mask = np.zeros((6, 6), dtype=bool)
        mask[3, :] = True
        assert find_breach_path(grid_from_mask(mask)) is not None

    def test_torus_seam_wraps(self):
        """A band broken only at the x seam still leaks when the seam
        wraps is irrelevant for crossing; but an uncovered channel that
        exists only via the wrapped seam must be found."""
        mask = np.ones((6, 6), dtype=bool)
        # Uncovered vertical channel split across the seam: column 0
        # uncovered in lower half, column 5 uncovered in upper half.
        mask[0, 0:3] = False
        mask[5, 2:6] = False
        # Without wrap: (0,2) and (5,2..) are not adjacent -> barrier holds.
        assert find_breach_path(grid_from_mask(mask, torus_x=False)) is None
        # With wrap: columns 0 and 5 are neighbours -> breach.
        assert find_breach_path(grid_from_mask(mask, torus_x=True)) is not None


class TestCoveredBand:
    def test_found_when_row_covered(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[:, 2] = True
        band = find_covered_band(grid_from_mask(mask))
        assert band is not None
        assert all(cy == 2 for _, cy in band)

    def test_none_when_no_band(self):
        assert find_covered_band(grid_from_mask(np.zeros((5, 5), dtype=bool))) is None

    def test_snaking_band(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = mask[1, 0] = mask[1, 1] = mask[2, 1] = mask[2, 2] = mask[3, 2] = True
        assert find_covered_band(grid_from_mask(mask)) is not None


class TestBarrierExists:
    def test_dense_fleet_forms_barrier(self):
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=0.35, angle_of_view=math.pi)
        )
        fleet = UniformDeployment().deploy(profile, 600, np.random.default_rng(0))
        analysis = barrier_exists(fleet, math.pi / 2, resolution=16)
        assert isinstance(analysis, BarrierAnalysis)
        assert analysis.has_barrier
        assert analysis.breach is None
        assert analysis.covered_fraction > 0.9

    def test_sparse_fleet_no_barrier(self):
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=0.05, angle_of_view=0.5)
        )
        fleet = UniformDeployment().deploy(profile, 20, np.random.default_rng(0))
        analysis = barrier_exists(fleet, math.pi / 3, resolution=16)
        assert not analysis.has_barrier
        assert analysis.breach is not None
        rows = [cy for _, cy in analysis.breach]
        assert 0 in rows and 15 in rows

    def test_breach_cells_are_uncovered(self):
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=0.15, angle_of_view=1.5)
        )
        fleet = UniformDeployment().deploy(profile, 150, np.random.default_rng(1))
        grid = compute_coverage_grid(fleet, math.pi / 3, resolution=12)
        path = find_breach_path(grid)
        if path is not None:
            assert all(not grid.covered[cx, cy] for cx, cy in path)

    def test_barrier_weaker_than_area_coverage(self):
        """A fleet can form a barrier while NOT covering the full area;
        the converse cannot happen."""
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=0.3, angle_of_view=math.pi)
        )
        barrier_count = 0
        area_count = 0
        for seed in range(12):
            fleet = UniformDeployment().deploy(profile, 250, np.random.default_rng(seed))
            analysis = barrier_exists(fleet, math.pi / 2, resolution=12)
            fully_covered = analysis.covered_fraction == 1.0
            barrier_count += analysis.has_barrier
            area_count += fully_covered
            if fully_covered:
                assert analysis.has_barrier  # area coverage implies barrier
        assert barrier_count >= area_count
