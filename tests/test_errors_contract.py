"""Every public entry point rejects bad input with a FullViewError subclass.

Callers are promised a single exception family: ``except FullViewError``
catches every deliberate rejection this library makes, and the concrete
classes keep their stdlib lineage (``ValueError``/``RuntimeError``) for
code that catches those instead.  This module pins that contract across
the public surface — construction, geometry, simulation, resilience,
the runner and the experiment registry.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    BernoulliFailure,
    CameraSpec,
    CheckpointError,
    DenseGrid,
    FailureSchedule,
    FullViewError,
    HeterogeneousProfile,
    InvalidParameterError,
    InvalidProfileError,
    MonteCarloConfig,
    OrientationDrift,
    RadiusDegradation,
    ResultTable,
    SensorFleet,
    simulate_lifetime,
)
from repro.errors import ExperimentError
from repro.experiments import get_experiment
from repro.simulation.montecarlo import condition_predicate
from repro.simulation.runner import run_resilient_trials
from repro.simulation.statistics import wilson_interval


def _fleet(n: int = 4) -> SensorFleet:
    rng = np.random.default_rng(0)
    return SensorFleet(
        positions=rng.random((n, 2)),
        orientations=rng.uniform(0, 2 * math.pi, n),
        radii=np.full(n, 0.2),
        angles=np.full(n, math.pi / 2),
    )


class TestErrorHierarchy:
    def test_every_library_error_is_a_fullvieverror(self):
        from repro import errors

        concrete = [
            errors.InvalidParameterError,
            errors.InvalidProfileError,
            errors.DeploymentError,
            errors.ConvergenceError,
            errors.ExperimentError,
            errors.CheckpointError,
            errors.ChaosError,
        ]
        for cls in concrete:
            assert issubclass(cls, FullViewError)

    def test_stdlib_lineage_preserved(self):
        from repro.errors import ChaosError

        assert issubclass(InvalidParameterError, ValueError)
        assert issubclass(InvalidProfileError, ValueError)
        assert issubclass(CheckpointError, RuntimeError)
        assert issubclass(ExperimentError, RuntimeError)
        assert issubclass(ChaosError, RuntimeError)


class TestConstructionRejections:
    def test_camera_spec(self):
        with pytest.raises(FullViewError):
            CameraSpec(radius=-1.0, angle_of_view=math.pi / 2)
        with pytest.raises(FullViewError):
            CameraSpec(radius=0.2, angle_of_view=0.0)

    def test_profile(self):
        with pytest.raises(FullViewError):
            HeterogeneousProfile([])

    def test_sensor_fleet_shapes_and_ranges(self):
        with pytest.raises(FullViewError):
            SensorFleet(
                positions=np.zeros((2, 2)),
                orientations=np.zeros(3),
                radii=np.ones(2),
                angles=np.full(2, 1.0),
            )
        with pytest.raises(FullViewError):
            SensorFleet(
                positions=np.zeros((2, 2)),
                orientations=np.zeros(2),
                radii=np.array([0.2, -0.1]),
                angles=np.full(2, 1.0),
            )

    def test_dense_grid(self):
        with pytest.raises(FullViewError):
            DenseGrid.for_sensor_count(0)
        grid = DenseGrid.for_sensor_count(10)
        with pytest.raises(FullViewError):
            grid.sample(0, np.random.default_rng(0))


class TestSimulationRejections:
    def test_monte_carlo_config(self):
        with pytest.raises(FullViewError):
            MonteCarloConfig(trials=0)

    def test_rng_for_trial_out_of_range(self):
        cfg = MonteCarloConfig(trials=3, seed=0)
        with pytest.raises(FullViewError):
            cfg.rng_for_trial(3)
        with pytest.raises(FullViewError):
            cfg.rng_for_trial(-1)

    def test_condition_predicate(self):
        with pytest.raises(FullViewError):
            condition_predicate("bogus", math.pi / 3)

    def test_wilson_interval(self):
        with pytest.raises(FullViewError):
            wilson_interval(1, 0)
        with pytest.raises(FullViewError):
            wilson_interval(1, 10, confidence=1.5)

    def test_result_table_needs_columns(self):
        with pytest.raises(FullViewError):
            ResultTable(title="empty", columns=[])


class TestResilienceRejections:
    def test_failure_model_parameters(self):
        with pytest.raises(FullViewError):
            BernoulliFailure(2.0)
        with pytest.raises(FullViewError):
            OrientationDrift(-1.0)
        with pytest.raises(FullViewError):
            RadiusDegradation(0.0)
        with pytest.raises(FullViewError):
            FailureSchedule([object()])

    def test_simulate_lifetime_parameters(self):
        with pytest.raises(FullViewError):
            simulate_lifetime(
                _fleet(),
                FailureSchedule(),
                math.pi / 3,
                epochs=0,
                rng=np.random.default_rng(0),
            )

    def test_runner_parameters(self):
        cfg = MonteCarloConfig(trials=2, seed=0)
        with pytest.raises(FullViewError):
            run_resilient_trials(lambda t, r: True, cfg, checkpoint_every=0)
        with pytest.raises(FullViewError):
            run_resilient_trials(lambda t, r: True, cfg, time_budget=-1.0)
        with pytest.raises(FullViewError):
            run_resilient_trials(lambda t, r: True, cfg, resume=True)

    def test_corrupt_checkpoint(self, tmp_path):
        from repro.simulation.runner import CHECKPOINT_FILENAME

        (tmp_path / CHECKPOINT_FILENAME).write_text("nonsense")
        with pytest.raises(FullViewError):
            run_resilient_trials(
                lambda t, r: True,
                MonteCarloConfig(trials=2, seed=0),
                checkpoint_dir=tmp_path,
                resume=True,
            )


class TestRegistryRejections:
    def test_unknown_experiment(self):
        with pytest.raises(FullViewError):
            get_experiment("NO_SUCH_EXPERIMENT")


class TestStaticContractSweep:
    """The fvlint FV002 pass proves the contract holds at every raise site.

    The tests above spot-check the contract at runtime; this sweep closes
    the gap statically: after importing every module under ``repro`` (so
    the rule's dynamically-resolved error family is complete), the linter
    must report zero non-baselined raise-site violations across the tree.
    """

    @staticmethod
    def _import_all_modules():
        import importlib
        import pkgutil

        import repro

        names = [
            info.name
            for info in pkgutil.walk_packages(repro.__path__, prefix="repro.")
            if not info.name.rsplit(".", 1)[-1].startswith("__")
        ]
        for name in names:
            importlib.import_module(name)
        return names

    def test_every_module_imports(self):
        names = self._import_all_modules()
        assert len(names) > 60, "package walk looks truncated"

    def test_fv002_sweep_is_clean(self):
        from pathlib import Path

        import repro
        from repro.lint import lint_paths

        src_root = Path(repro.__file__).resolve().parent
        result = lint_paths([src_root], select=["FV002"])
        assert result.ok, "error-contract violations:\n" + "\n".join(
            f.render() for f in result.findings
        )
        assert result.files_checked > 60

    def test_rule_family_matches_runtime_hierarchy(self):
        from repro.lint.rules.errors_contract import error_family_names

        self._import_all_modules()
        runtime = {FullViewError.__name__}
        stack = [FullViewError]
        while stack:
            for sub in stack.pop().__subclasses__():
                if sub.__name__ not in runtime:
                    runtime.add(sub.__name__)
                    stack.append(sub)
        assert runtime <= error_family_names()
