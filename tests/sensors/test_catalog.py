"""Tests for the camera catalog."""

from __future__ import annotations

import math

import pytest

from repro.errors import InvalidParameterError
from repro.sensors.catalog import (
    CAMERA_PRESETS,
    aging_fleet,
    budget_mix,
    camera,
    equal_area_pair,
    mixed_profile,
)


class TestCamera:
    def test_all_presets_valid(self):
        for name in CAMERA_PRESETS:
            spec = camera(name)
            assert spec.radius > 0
            assert 0 < spec.angle_of_view <= 2 * math.pi + 1e-12

    def test_unknown_raises(self):
        with pytest.raises(InvalidParameterError):
            camera("nonexistent")

    def test_omnidirectional_preset(self):
        assert camera("omnidirectional").is_omnidirectional

    def test_telephoto_is_narrow_and_long(self):
        tele = camera("telephoto")
        wide = camera("wide_angle")
        assert tele.radius > wide.radius
        assert tele.angle_of_view < wide.angle_of_view


class TestMixedProfile:
    def test_builds(self):
        p = mixed_profile([("standard", 0.7), ("telephoto", 0.3)])
        assert p.num_groups == 2
        assert [g.name for g in p] == ["standard", "telephoto"]

    def test_fraction_validation_via_profile(self):
        with pytest.raises(Exception):
            mixed_profile([("standard", 0.7), ("telephoto", 0.7)])


class TestEqualAreaPair:
    def test_equal_areas(self):
        a, b = equal_area_pair(0.01, math.pi / 6, math.pi)
        assert a.sensing_area == pytest.approx(b.sensing_area)
        assert a.angle_of_view != b.angle_of_view

    def test_same_angle_rejected(self):
        with pytest.raises(InvalidParameterError):
            equal_area_pair(0.01, 1.0, 1.0)


class TestBudgetMix:
    def test_fractions(self):
        p = budget_mix(0.25)
        fractions = {g.name: g.fraction for g in p}
        assert fractions["telephoto"] == pytest.approx(0.25)
        assert fractions["wide_angle"] == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            budget_mix(0.0)
        with pytest.raises(InvalidParameterError):
            budget_mix(1.0)


class TestAgingFleet:
    def test_degraded_group_present(self):
        p = aging_fleet(0.6)
        names = [g.name for g in p]
        assert "degraded" in names

    def test_degraded_is_worse(self):
        p = aging_fleet(0.5)
        by_name = {g.name: g for g in p}
        assert by_name["degraded"].sensing_area < by_name["standard"].sensing_area

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            aging_fleet(1.0)
