"""Tests for probabilistic sensing models."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.sensors.probabilistic import (
    BinaryModel,
    ExponentialDecayModel,
    StaircaseModel,
    probabilistic_covering,
    probabilistic_covering_directions,
)


class TestBinaryModel:
    def test_always_one(self):
        model = BinaryModel()
        d = np.linspace(0, 1, 5)
        assert (model.detection_probability(d, np.ones(5)) == 1.0).all()

    def test_expected_ratio_is_one(self):
        assert BinaryModel().expected_coverage_ratio() == pytest.approx(1.0)


class TestExponentialDecayModel:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ExponentialDecayModel(beta=-1.0)
        with pytest.raises(InvalidParameterError):
            ExponentialDecayModel(gamma=0.0)

    def test_at_apex(self):
        model = ExponentialDecayModel(beta=2.0, gamma=2.0)
        assert model.detection_probability(np.array([0.0]), np.array([1.0]))[0] == 1.0

    def test_at_rim(self):
        model = ExponentialDecayModel(beta=2.0, gamma=2.0)
        p = model.detection_probability(np.array([1.0]), np.array([1.0]))[0]
        assert p == pytest.approx(math.exp(-2.0))

    def test_monotone_decreasing(self):
        model = ExponentialDecayModel(beta=1.0, gamma=2.0)
        d = np.linspace(0, 1, 20)
        p = model.detection_probability(d, np.ones(20))
        assert (np.diff(p) <= 0).all()

    def test_scales_with_radius(self):
        model = ExponentialDecayModel(beta=1.0, gamma=2.0)
        # Same normalised distance -> same probability.
        p1 = model.detection_probability(np.array([0.5]), np.array([1.0]))[0]
        p2 = model.detection_probability(np.array([0.1]), np.array([0.2]))[0]
        assert p1 == pytest.approx(p2)

    def test_expected_ratio_below_one(self):
        model = ExponentialDecayModel(beta=1.0, gamma=2.0)
        ratio = model.expected_coverage_ratio()
        assert 0.0 < ratio < 1.0

    def test_expected_ratio_analytic(self):
        """For gamma=2: E = int_0^1 e^{-b t^2} 2t dt = (1 - e^{-b}) / b."""
        beta = 1.7
        model = ExponentialDecayModel(beta=beta, gamma=2.0)
        expected = (1.0 - math.exp(-beta)) / beta
        assert model.expected_coverage_ratio() == pytest.approx(expected, rel=1e-3)


class TestStaircaseModel:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            StaircaseModel(reliable_fraction=1.5)
        with pytest.raises(InvalidParameterError):
            StaircaseModel(far_probability=-0.1)

    def test_levels(self):
        model = StaircaseModel(reliable_fraction=0.5, far_probability=0.25)
        p = model.detection_probability(np.array([0.2, 0.8]), np.array([1.0, 1.0]))
        assert p.tolist() == [1.0, 0.25]


class TestProbabilisticCovering:
    def test_binary_matches_covering(self, small_fleet, rng):
        point = (0.5, 0.5)
        binary = probabilistic_covering(small_fleet, point, BinaryModel(), rng)
        assert set(binary.tolist()) == set(small_fleet.covering(point).tolist())

    def test_thinning_is_subset(self, small_fleet, rng):
        point = (0.5, 0.5)
        model = ExponentialDecayModel(beta=3.0)
        thinned = probabilistic_covering(small_fleet, point, model, rng)
        assert set(thinned.tolist()) <= set(small_fleet.covering(point).tolist())

    def test_zero_probability_drops_all(self, small_fleet, rng):
        model = StaircaseModel(reliable_fraction=0.0, far_probability=0.0)
        thinned = probabilistic_covering(small_fleet, (0.5, 0.5), model, rng)
        assert thinned.size == 0

    def test_thinning_rate_statistical(self, small_fleet):
        """Empirical keep rate across seeds approximates the model mean."""
        point = (0.5, 0.5)
        base = small_fleet.covering(point)
        if base.size == 0:
            pytest.skip("probe point not covered in this fixture")
        model = StaircaseModel(reliable_fraction=0.0, far_probability=0.5)
        total = kept = 0
        for seed in range(200):
            rng = np.random.default_rng(seed)
            kept += probabilistic_covering(small_fleet, point, model, rng).size
            total += base.size
        assert kept / total == pytest.approx(0.5, abs=0.08)

    def test_directions_subset(self, small_fleet, rng):
        point = (0.5, 0.5)
        model = ExponentialDecayModel(beta=1.0)
        dirs = probabilistic_covering_directions(small_fleet, point, model, rng)
        all_dirs = set(np.round(small_fleet.covering_directions(point), 9).tolist())
        assert set(np.round(dirs, 9).tolist()) <= all_dirs
