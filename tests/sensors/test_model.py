"""Tests for camera specs and heterogeneous profiles."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidParameterError, InvalidProfileError
from repro.geometry.angles import TWO_PI
from repro.sensors.model import CameraSpec, GroupSpec, HeterogeneousProfile

radii = st.floats(min_value=0.01, max_value=0.5, allow_nan=False)
view_angles = st.floats(min_value=0.05, max_value=TWO_PI, allow_nan=False)
areas = st.floats(min_value=1e-5, max_value=0.5, allow_nan=False)


class TestCameraSpec:
    def test_sensing_area(self):
        spec = CameraSpec(radius=0.2, angle_of_view=math.pi / 2)
        assert spec.sensing_area == pytest.approx(0.5 * (math.pi / 2) * 0.04)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            CameraSpec(radius=0.0, angle_of_view=1.0)
        with pytest.raises(InvalidParameterError):
            CameraSpec(radius=0.1, angle_of_view=0.0)
        with pytest.raises(InvalidParameterError):
            CameraSpec(radius=0.1, angle_of_view=TWO_PI + 1)

    def test_disk(self):
        spec = CameraSpec.disk(0.1)
        assert spec.is_omnidirectional
        assert spec.sensing_area == pytest.approx(math.pi * 0.01)

    def test_from_area_roundtrip(self):
        spec = CameraSpec.from_area(0.01, math.pi / 3)
        assert spec.sensing_area == pytest.approx(0.01)
        assert spec.angle_of_view == pytest.approx(math.pi / 3)

    def test_from_area_validation(self):
        with pytest.raises(InvalidParameterError):
            CameraSpec.from_area(0.0, 1.0)
        with pytest.raises(InvalidParameterError):
            CameraSpec.from_area(0.1, 0.0)

    def test_scaled_to_area(self):
        spec = CameraSpec(radius=0.2, angle_of_view=1.0).scaled_to_area(0.005)
        assert spec.sensing_area == pytest.approx(0.005)
        assert spec.angle_of_view == pytest.approx(1.0)

    @given(areas, view_angles)
    def test_from_area_property(self, s, phi):
        spec = CameraSpec.from_area(s, phi)
        assert spec.sensing_area == pytest.approx(s, rel=1e-9)

    def test_frozen(self):
        spec = CameraSpec(radius=0.2, angle_of_view=1.0)
        with pytest.raises(AttributeError):
            spec.radius = 0.5  # type: ignore[misc]


class TestGroupSpec:
    def test_weighted_area(self):
        g = GroupSpec(CameraSpec(radius=0.2, angle_of_view=1.0), fraction=0.25)
        assert g.weighted_sensing_area == pytest.approx(0.25 * g.sensing_area)

    def test_fraction_validation(self):
        spec = CameraSpec(radius=0.2, angle_of_view=1.0)
        with pytest.raises(InvalidProfileError):
            GroupSpec(spec, fraction=0.0)
        with pytest.raises(InvalidProfileError):
            GroupSpec(spec, fraction=1.5)

    def test_accessors(self):
        g = GroupSpec(CameraSpec(radius=0.2, angle_of_view=1.0), fraction=0.5, name="x")
        assert g.radius == 0.2
        assert g.angle_of_view == 1.0
        assert g.name == "x"


class TestHeterogeneousProfile:
    def test_homogeneous(self):
        p = HeterogeneousProfile.homogeneous(CameraSpec(radius=0.2, angle_of_view=1.0))
        assert p.is_homogeneous
        assert p.num_groups == 1
        assert p.weighted_sensing_area == pytest.approx(0.02)

    def test_fractions_must_sum_to_one(self):
        spec1 = CameraSpec(radius=0.2, angle_of_view=1.0)
        spec2 = CameraSpec(radius=0.1, angle_of_view=1.0)
        with pytest.raises(InvalidProfileError):
            HeterogeneousProfile(
                [GroupSpec(spec1, 0.5), GroupSpec(spec2, 0.4)]
            )

    def test_no_duplicate_specs(self):
        spec = CameraSpec(radius=0.2, angle_of_view=1.0)
        with pytest.raises(InvalidProfileError):
            HeterogeneousProfile([GroupSpec(spec, 0.5), GroupSpec(spec, 0.5)])

    def test_needs_a_group(self):
        with pytest.raises(InvalidProfileError):
            HeterogeneousProfile([])

    def test_from_pairs(self):
        p = HeterogeneousProfile.from_pairs(
            [
                (CameraSpec(radius=0.2, angle_of_view=1.0), 0.6),
                (CameraSpec(radius=0.1, angle_of_view=2.0), 0.4),
            ]
        )
        assert p.num_groups == 2
        assert [g.name for g in p] == ["G1", "G2"]

    def test_weighted_sensing_area(self, two_group_profile):
        expected = sum(g.fraction * g.sensing_area for g in two_group_profile)
        assert two_group_profile.weighted_sensing_area == pytest.approx(expected)

    def test_max_radius(self, two_group_profile):
        assert two_group_profile.max_radius == 0.22

    def test_group_counts_sum_exactly(self, two_group_profile):
        for n in (1, 7, 10, 99, 100, 1001):
            counts = two_group_profile.group_counts(n)
            assert sum(counts) == n
            assert all(c >= 0 for c in counts)

    def test_group_counts_proportions(self, two_group_profile):
        counts = two_group_profile.group_counts(1000)
        assert counts == [600, 400]

    def test_group_counts_largest_remainder(self):
        p = HeterogeneousProfile.from_pairs(
            [
                (CameraSpec(radius=0.2, angle_of_view=1.0), 1 / 3),
                (CameraSpec(radius=0.1, angle_of_view=1.0), 1 / 3),
                (CameraSpec(radius=0.15, angle_of_view=1.0), 1 / 3),
            ]
        )
        assert sorted(p.group_counts(10)) == [3, 3, 4]

    def test_group_counts_validation(self, two_group_profile):
        with pytest.raises(InvalidParameterError):
            two_group_profile.group_counts(0)

    def test_scaled_to_weighted_area(self, two_group_profile):
        scaled = two_group_profile.scaled_to_weighted_area(0.05)
        assert scaled.weighted_sensing_area == pytest.approx(0.05)
        # Angles and fractions preserved.
        for before, after in zip(two_group_profile, scaled):
            assert after.angle_of_view == pytest.approx(before.angle_of_view)
            assert after.fraction == pytest.approx(before.fraction)
        # Areas scale proportionally: ratios between groups unchanged.
        r_before = two_group_profile.sensing_areas()
        r_after = scaled.sensing_areas()
        assert r_after[0] / r_after[1] == pytest.approx(r_before[0] / r_before[1])

    def test_scaled_validation(self, two_group_profile):
        with pytest.raises(InvalidParameterError):
            two_group_profile.scaled_to_weighted_area(0.0)

    def test_equality_and_hash(self, two_group_profile):
        clone = HeterogeneousProfile(list(two_group_profile.groups))
        assert clone == two_group_profile
        assert hash(clone) == hash(two_group_profile)

    def test_describe(self, two_group_profile):
        info = two_group_profile.describe()
        assert info["num_groups"] == 2
        assert len(info["groups"]) == 2

    def test_repr_contains_parameters(self, two_group_profile):
        text = repr(two_group_profile)
        assert "0.22" in text and "0.14" in text

    @given(st.integers(min_value=1, max_value=10_000))
    def test_group_counts_always_sum(self, n):
        p = HeterogeneousProfile.from_pairs(
            [
                (CameraSpec(radius=0.2, angle_of_view=1.0), 0.17),
                (CameraSpec(radius=0.1, angle_of_view=2.0), 0.33),
                (CameraSpec(radius=0.15, angle_of_view=1.5), 0.5),
            ]
        )
        assert sum(p.group_counts(n)) == n

    @given(areas)
    def test_scaling_hits_target(self, target):
        p = HeterogeneousProfile.from_pairs(
            [
                (CameraSpec(radius=0.2, angle_of_view=1.0), 0.5),
                (CameraSpec(radius=0.1, angle_of_view=2.0), 0.5),
            ]
        )
        assert p.scaled_to_weighted_area(target).weighted_sensing_area == pytest.approx(
            target, rel=1e-9
        )
