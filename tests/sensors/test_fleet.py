"""Tests for the deployed sensor fleet."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI, angular_distance
from repro.geometry.torus import UNIT_TORUS
from repro.sensors.fleet import SensorFleet, fleet_from_profile_arrays
from repro.sensors.model import CameraSpec, HeterogeneousProfile

coords = st.floats(min_value=0.0, max_value=0.999999, allow_nan=False)


def make_fleet(positions, orientations, radius=0.25, angle=math.pi / 2):
    positions = np.asarray(positions, dtype=float)
    n = positions.shape[0]
    return SensorFleet(
        positions=positions,
        orientations=np.asarray(orientations, dtype=float),
        radii=np.full(n, radius),
        angles=np.full(n, angle),
    )


class TestConstruction:
    def test_empty(self):
        fleet = SensorFleet(
            positions=np.empty((0, 2)),
            orientations=np.empty(0),
            radii=np.empty(0),
            angles=np.empty(0),
        )
        assert len(fleet) == 0
        assert fleet.max_radius == 0.0
        assert fleet.covering((0.5, 0.5)).size == 0

    def test_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            SensorFleet(
                positions=np.zeros((2, 2)),
                orientations=np.zeros(3),
                radii=np.ones(2),
                angles=np.ones(2),
            )

    def test_invalid_radius(self):
        with pytest.raises(InvalidParameterError):
            make_fleet([[0.5, 0.5]], [0.0], radius=0.0)

    def test_invalid_angle(self):
        with pytest.raises(InvalidParameterError):
            make_fleet([[0.5, 0.5]], [0.0], angle=TWO_PI + 1.0)

    def test_positions_wrapped(self):
        fleet = make_fleet([[1.2, -0.3]], [0.0])
        assert np.allclose(fleet.positions, [[0.2, 0.7]])

    def test_arrays_read_only(self):
        fleet = make_fleet([[0.5, 0.5]], [0.0])
        with pytest.raises(ValueError):
            fleet.positions[0, 0] = 0.0

    def test_input_arrays_copied(self):
        positions = np.array([[0.5, 0.5]])
        fleet = make_fleet(positions, [0.0])
        positions[0, 0] = 0.9
        assert fleet.positions[0, 0] == 0.5

    def test_group_ids_default_zero(self):
        fleet = make_fleet([[0.5, 0.5], [0.2, 0.2]], [0.0, 1.0])
        assert fleet.group_ids.tolist() == [0, 0]


class TestCovering:
    def test_sensor_looking_at_point(self):
        # Sensor east of the point, looking west.
        fleet = make_fleet([[0.6, 0.5]], [math.pi])
        assert fleet.covering((0.5, 0.5)).tolist() == [0]

    def test_sensor_looking_away(self):
        fleet = make_fleet([[0.6, 0.5]], [0.0])
        assert fleet.covering((0.5, 0.5)).size == 0

    def test_out_of_range(self):
        fleet = make_fleet([[0.9, 0.5]], [math.pi], radius=0.2)
        assert fleet.covering((0.5, 0.5)).size == 0

    def test_coincident_sensor_covers(self):
        fleet = make_fleet([[0.5, 0.5]], [0.0])
        assert fleet.covering((0.5, 0.5)).tolist() == [0]

    def test_across_seam(self):
        fleet = make_fleet([[0.02, 0.5]], [math.pi])  # looks west, across seam
        assert fleet.covering((0.9, 0.5)).tolist() == [0]

    def test_matches_scalar_sector(self, small_fleet, rng):
        """Fleet covering() must agree with the scalar Sector reference."""
        probes = rng.uniform(size=(30, 2))
        for probe in probes:
            point = (float(probe[0]), float(probe[1]))
            expected = {
                i for i in range(len(small_fleet)) if small_fleet.sensor(i).contains(point)
            }
            actual = set(small_fleet.covering(point).tolist())
            assert actual == expected

    def test_index_does_not_change_results(self, small_fleet, rng):
        probes = rng.uniform(size=(20, 2))
        for probe in probes:
            point = (float(probe[0]), float(probe[1]))
            with_index = set(small_fleet.covering(point, use_index=True).tolist())
            without = set(small_fleet.covering(point, use_index=False).tolist())
            assert with_index == without

    @given(
        st.lists(st.tuples(coords, coords, st.floats(min_value=0, max_value=TWO_PI)), min_size=1, max_size=30),
        st.tuples(coords, coords),
    )
    @settings(max_examples=100, deadline=None)
    def test_covering_matches_definition(self, sensors, probe):
        positions = [(x, y) for x, y, _ in sensors]
        orientations = [o for _, _, o in sensors]
        fleet = make_fleet(positions, orientations, radius=0.3, angle=1.2)
        covered = set(fleet.covering(probe).tolist())
        for i, (pos, orient) in enumerate(zip(positions, orientations)):
            dist = UNIT_TORUS.distance(pos, probe)
            if dist > 1e-12 and dist < 0.3 - 1e-9:
                bearing = UNIT_TORUS.direction(pos, probe)
                offset = angular_distance(bearing, orient)
                if offset < 0.6 - 1e-9:
                    assert i in covered
                elif offset > 0.6 + 1e-9:
                    assert i not in covered


class TestCoveringDirections:
    def test_direction_points_at_sensor(self):
        fleet = make_fleet([[0.7, 0.5]], [math.pi])
        dirs = fleet.covering_directions((0.5, 0.5))
        assert dirs.shape == (1,)
        assert dirs[0] == pytest.approx(0.0)  # sensor is east of the point

    def test_coincident_sensor_dropped(self):
        fleet = make_fleet([[0.5, 0.5]], [0.0])
        assert fleet.covering_directions((0.5, 0.5)).size == 0

    def test_multiple_sensors(self):
        fleet = make_fleet(
            [[0.7, 0.5], [0.5, 0.7], [0.3, 0.5]],
            [math.pi, -math.pi / 2, 0.0],
        )
        dirs = sorted(fleet.covering_directions((0.5, 0.5)).tolist())
        assert dirs == pytest.approx([0.0, math.pi / 2, math.pi])


class TestCoverageCounts:
    def test_count(self):
        fleet = make_fleet([[0.6, 0.5], [0.4, 0.5]], [math.pi, 0.0])
        assert fleet.coverage_count((0.5, 0.5)) == 2

    def test_counts_vector(self):
        fleet = make_fleet([[0.6, 0.5]], [math.pi])
        counts = fleet.coverage_counts(np.array([[0.5, 0.5], [0.0, 0.0]]))
        assert counts.tolist() == [1, 0]


class TestSensingAreas:
    def test_per_sensor(self):
        fleet = make_fleet([[0.5, 0.5]], [0.0], radius=0.2, angle=1.0)
        assert fleet.sensing_areas()[0] == pytest.approx(0.02)

    def test_total_weighted(self, two_group_profile, rng):
        from repro.deployment.uniform import UniformDeployment

        fleet = UniformDeployment().deploy(two_group_profile, 1000, rng)
        assert fleet.total_weighted_sensing_area() == pytest.approx(
            two_group_profile.weighted_sensing_area, rel=1e-9
        )

    def test_empty_fleet_zero(self):
        fleet = SensorFleet(
            positions=np.empty((0, 2)),
            orientations=np.empty(0),
            radii=np.empty(0),
            angles=np.empty(0),
        )
        assert fleet.total_weighted_sensing_area() == 0.0


class TestSubsetConcat:
    def test_subset(self, small_fleet):
        sub = small_fleet.subset([0, 5, 10])
        assert len(sub) == 3
        assert np.allclose(sub.positions[1], small_fleet.positions[5])

    def test_concat(self, small_fleet):
        both = small_fleet.concat(small_fleet)
        assert len(both) == 2 * len(small_fleet)
        # Group ids shifted for the second half.
        assert both.group_ids[len(small_fleet)] == small_fleet.group_ids.max() + 1

    def test_concat_region_mismatch(self, small_fleet):
        from repro.geometry.torus import Region

        other = SensorFleet(
            positions=np.array([[0.5, 0.5]]),
            orientations=np.array([0.0]),
            radii=np.array([0.1]),
            angles=np.array([1.0]),
            region=Region(side=2.0),
        )
        with pytest.raises(InvalidParameterError):
            small_fleet.concat(other)


class TestSensorAccessor:
    def test_round_trip(self, small_fleet):
        s = small_fleet.sensor(3)
        assert s.radius == small_fleet.radii[3]
        assert s.angle == small_fleet.angles[3]
        assert s.orientation == pytest.approx(small_fleet.orientations[3])


class TestFleetFromProfile:
    def test_group_assignment(self, two_group_profile, rng):
        n = 100
        positions = rng.uniform(size=(n, 2))
        orientations = rng.uniform(0, TWO_PI, size=n)
        fleet = fleet_from_profile_arrays(two_group_profile, positions, orientations)
        sizes = fleet.group_sizes()
        assert sizes.tolist() == two_group_profile.group_counts(n)
        # Radii match the group parameters.
        for gid, group in enumerate(two_group_profile.groups):
            mask = fleet.group_ids == gid
            assert np.allclose(fleet.radii[mask], group.radius)
            assert np.allclose(fleet.angles[mask], group.angle_of_view)

    def test_repr(self, small_fleet):
        assert "SensorFleet" in repr(small_fleet)
