"""Tests for fleet persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.geometry.torus import Region
from repro.sensors.io import load_fleet, save_fleet


class TestRoundTrip:
    def test_identity(self, small_fleet, tmp_path):
        path = save_fleet(small_fleet, tmp_path / "fleet.npz")
        loaded = load_fleet(path)
        assert len(loaded) == len(small_fleet)
        assert np.allclose(loaded.positions, small_fleet.positions)
        assert np.allclose(loaded.orientations, small_fleet.orientations)
        assert np.allclose(loaded.radii, small_fleet.radii)
        assert np.allclose(loaded.angles, small_fleet.angles)
        assert (loaded.group_ids == small_fleet.group_ids).all()
        assert loaded.region == small_fleet.region

    def test_coverage_identical_after_reload(self, small_fleet, tmp_path):
        """The loaded fleet answers queries identically."""
        path = save_fleet(small_fleet, tmp_path / "fleet.npz")
        loaded = load_fleet(path)
        for probe in [(0.5, 0.5), (0.1, 0.9), (0.99, 0.01)]:
            a = set(small_fleet.covering(probe, use_index=False).tolist())
            b = set(loaded.covering(probe, use_index=False).tolist())
            assert a == b

    def test_region_preserved(self, tmp_path):
        from repro.deployment.uniform import UniformDeployment
        from repro.sensors.model import CameraSpec, HeterogeneousProfile

        region = Region(side=2.0, torus=False)
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=0.3, angle_of_view=1.0)
        )
        fleet = UniformDeployment(region).deploy(profile, 20, np.random.default_rng(0))
        loaded = load_fleet(save_fleet(fleet, tmp_path / "f.npz"))
        assert loaded.region.side == 2.0
        assert not loaded.region.torus

    def test_suffix_added(self, small_fleet, tmp_path):
        path = save_fleet(small_fleet, tmp_path / "fleet")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_missing_file(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            load_fleet(tmp_path / "nothing.npz")

    def test_creates_directories(self, small_fleet, tmp_path):
        path = save_fleet(small_fleet, tmp_path / "deep" / "dir" / "fleet.npz")
        assert path.exists()
