"""Tests for the live progress tracker: math, throttle, status, engine feed."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.obs.events import EventLog, event_scope
from repro.obs.progress import (
    NOTE_KINDS,
    STATUS_FORMAT,
    ProgressTracker,
    active_progress,
    progress_scope,
    set_progress,
)
from repro.simulation.engine import (
    MonteCarloConfig,
    ParallelExecutor,
    SerialExecutor,
    ThreadExecutor,
    execute_trials,
)

CFG = MonteCarloConfig(trials=20, seed=9)


def draw_trial(trial: int, rng: np.random.Generator) -> float:
    return float(rng.random())


def _progress_rows(sink: io.StringIO):
    return [
        row
        for row in map(json.loads, sink.getvalue().splitlines())
        if row.get("event") == "RunProgress"
    ]


class TestTrackerMath:
    def test_counts_accumulate_across_sweeps(self):
        tracker = ProgressTracker()
        tracker.begin(10)
        tracker.advance(4)
        tracker.begin(5)
        tracker.advance(11, failed=2)
        assert tracker.total == 15
        assert tracker.done == 15
        assert tracker.snapshot()["failed"] == 2

    def test_negative_begin_rejected(self):
        with pytest.raises(InvalidParameterError):
            ProgressTracker().begin(-1)

    def test_negative_heartbeat_rejected(self):
        with pytest.raises(InvalidParameterError):
            ProgressTracker(heartbeat_seconds=-0.1)

    def test_zero_advance_is_a_noop(self):
        tracker = ProgressTracker()
        tracker.begin(5)
        before = tracker.heartbeats
        tracker.advance(0)
        assert tracker.done == 0
        assert tracker.heartbeats == before

    def test_unknown_note_kind_rejected(self):
        tracker = ProgressTracker()
        with pytest.raises(InvalidParameterError):
            tracker.note("no-such-kind")

    def test_note_kinds_tally(self):
        tracker = ProgressTracker()
        for kind in NOTE_KINDS:
            tracker.note(kind)
            tracker.note(kind, count=2)
        snapshot = tracker.snapshot()
        assert all(snapshot[kind] == 3 for kind in NOTE_KINDS)

    def test_eta_is_none_before_rate_then_zero_at_completion(self):
        tracker = ProgressTracker()
        tracker.begin(8)
        assert tracker.eta_seconds() is None
        tracker.advance(8)
        assert tracker.eta_seconds() == 0.0

    def test_eta_finite_and_positive_midway(self):
        tracker = ProgressTracker(heartbeat_seconds=0.0)
        tracker.begin(1000)
        tracker.advance(500)
        eta = tracker.eta_seconds()
        if eta is not None:  # rate needs a nonzero clock delta
            assert 0.0 <= eta < float("inf")


class TestThrottle:
    def test_long_heartbeat_keeps_only_forced_emits(self):
        sink = io.StringIO()
        tracker = ProgressTracker(heartbeat_seconds=3600.0)
        with event_scope(EventLog(sink)):
            tracker.begin(1000)  # forced
            for _ in range(1000):
                tracker.advance(1)
            tracker.finish()  # forced
        rows = _progress_rows(sink)
        assert len(rows) == 2
        assert rows[-1]["done"] == 1000

    def test_zero_heartbeat_emits_every_advance(self):
        sink = io.StringIO()
        tracker = ProgressTracker(heartbeat_seconds=0.0)
        with event_scope(EventLog(sink)):
            tracker.begin(5)
            for _ in range(5):
                tracker.advance(1)
        assert [row["done"] for row in _progress_rows(sink)] == [0, 1, 2, 3, 4, 5]

    def test_done_is_monotone_across_heartbeats(self):
        sink = io.StringIO()
        tracker = ProgressTracker(heartbeat_seconds=0.0)
        with event_scope(EventLog(sink)):
            tracker.begin(50)
            for _ in range(10):
                tracker.advance(5)
            tracker.finish()
        dones = [row["done"] for row in _progress_rows(sink)]
        assert dones == sorted(dones)
        assert dones[-1] == 50


class TestStatusFile:
    def test_status_file_is_schema_valid(self, tmp_path):
        status = tmp_path / "status.json"
        tracker = ProgressTracker(status_path=status, run_id="abc123")
        tracker.begin(4)
        tracker.advance(4)
        tracker.close()
        payload = json.loads(status.read_text())
        assert payload["format"] == STATUS_FORMAT
        assert payload["run_id"] == "abc123"
        assert payload["state"] == "finished"
        assert (payload["done"], payload["total"]) == (4, 4)
        assert payload["heartbeats"] >= 1
        assert payload["elapsed_seconds"] >= 0.0
        for kind in NOTE_KINDS:
            assert payload[kind] == 0

    def test_close_always_lands_finished_state(self, tmp_path):
        # Forced *event* heartbeats throttle the status file, but the
        # final close must rewrite it whatever the throttle says.
        status = tmp_path / "status.json"
        tracker = ProgressTracker(status_path=status, heartbeat_seconds=3600.0)
        tracker.begin(2)
        tracker.advance(2)
        tracker.finish()
        assert json.loads(status.read_text())["state"] == "running"
        tracker.close()
        assert json.loads(status.read_text())["state"] == "finished"

    def test_no_leftover_tmp_file(self, tmp_path):
        status = tmp_path / "status.json"
        tracker = ProgressTracker(status_path=status)
        tracker.begin(1)
        tracker.close()
        assert [p.name for p in tmp_path.iterdir()] == ["status.json"]

    def test_status_json_never_contains_infinity(self, tmp_path):
        status = tmp_path / "status.json"
        tracker = ProgressTracker(status_path=status)
        tracker.begin(10)  # no rate yet: ETA must be null, not Infinity
        text = status.read_text()
        assert "Infinity" not in text and "NaN" not in text
        assert json.loads(text)["eta_seconds"] is None


class TestScope:
    def test_disabled_by_default(self):
        assert active_progress() is None

    def test_scope_installs_and_restores(self):
        tracker = ProgressTracker()
        with progress_scope(tracker):
            assert active_progress() is tracker
        assert active_progress() is None

    def test_set_progress_returns_previous(self):
        tracker = ProgressTracker()
        assert set_progress(tracker) is None
        assert set_progress(None) is tracker


class TestEngineFeed:
    @pytest.mark.parametrize(
        "executor_factory",
        [
            SerialExecutor,
            lambda: ThreadExecutor(workers=2, chunk_size=4),
            lambda: ParallelExecutor(workers=2, chunk_size=4),
        ],
        ids=["serial", "thread", "process"],
    )
    def test_every_executor_feeds_done_to_total(self, executor_factory):
        tracker = ProgressTracker()
        with progress_scope(tracker):
            outcomes = execute_trials(draw_trial, CFG, executor=executor_factory())
        assert len(outcomes) == CFG.trials
        assert tracker.done == CFG.trials
        assert tracker.total == CFG.trials

    def test_final_heartbeat_reports_completion(self):
        sink = io.StringIO()
        tracker = ProgressTracker()
        with event_scope(EventLog(sink)), progress_scope(tracker):
            execute_trials(draw_trial, CFG, executor=SerialExecutor())
        last = _progress_rows(sink)[-1]
        assert (last["done"], last["total"]) == (CFG.trials, CFG.trials)
        assert last["eta_seconds"] == 0.0

    def test_pool_fallback_is_noted(self):
        # A lambda cannot cross the pickle seam: every chunk falls back
        # to the parent-side serial path, which must tally "fallbacks".
        tracker = ProgressTracker()
        with progress_scope(tracker):
            outcomes = execute_trials(
                lambda trial, rng: float(rng.random()),
                CFG,
                executor=ParallelExecutor(workers=2, chunk_size=4),
            )
        assert len(outcomes) == CFG.trials
        assert tracker.done == CFG.trials
        assert tracker.snapshot()["fallbacks"] >= 1
