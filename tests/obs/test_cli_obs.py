"""CLI surface of the observability work: --trace/--metrics, report, diagnose."""

from __future__ import annotations

import json

from repro.cli import main


class TestRunFlags:
    def test_run_writes_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        assert (
            main(
                ["run", "EQ2-MC", "--trace", str(trace), "--metrics", str(metrics)]
            )
            == 0
        )
        capsys.readouterr()
        assert json.loads(trace.read_text().splitlines()[0])["kind"] == "manifest"
        payload = json.loads(metrics.read_text())
        assert payload["counters"]["trials_completed"] > 0

    def test_run_without_flags_writes_nothing(self, tmp_path, capsys):
        assert main(["run", "FIG7"]) == 0
        capsys.readouterr()
        assert list(tmp_path.iterdir()) == []

    def test_checkpoint_is_version_stamped(self, tmp_path, capsys):
        assert main(["run", "FIG7", "--checkpoint", str(tmp_path)]) == 0
        capsys.readouterr()
        payload = json.loads((tmp_path / "run_checkpoint.json").read_text())
        assert payload["version"]
        assert payload["seed"] == 0


class TestReport:
    def _trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["run", "EQ2-MC", "--trace", str(trace)]) == 0
        capsys.readouterr()
        return trace

    def test_text_report(self, tmp_path, capsys):
        trace = self._trace(tmp_path, capsys)
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "fullview run report" in out
        assert "trials/s" in out

    def test_json_report(self, tmp_path, capsys):
        trace = self._trace(tmp_path, capsys)
        assert main(["report", str(trace), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trials_completed"] > 0

    def test_rejects_non_trace_file(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text("not json\n")
        assert main(["report", str(bogus)]) == 2
        assert "fullview report" in capsys.readouterr().err


class TestLifetimeFlags:
    def test_lifetime_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "lifetime",
                    "--n",
                    "40",
                    "--trials",
                    "4",
                    "--epochs",
                    "3",
                    "--max-grid-points",
                    "32",
                    "--trace",
                    str(trace),
                ]
            )
            == 0
        )
        capsys.readouterr()
        kinds = {json.loads(line)["kind"] for line in trace.read_text().splitlines()}
        assert "manifest" in kinds and "event" in kinds


class TestDiagnoseSelfCheck:
    def test_diagnose_prints_obs_self_check(self, capsys):
        assert main(["diagnose", "estate_surveillance", "--resolution", "8"]) == 0
        out = capsys.readouterr().out
        assert "observability self-check" in out
        assert "ns/span" in out
        assert "writable" in out
