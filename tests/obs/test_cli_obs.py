"""CLI surface of the observability work: --trace/--metrics, report, diagnose,
status/ledger flags, ``fullview runs`` and ``fullview watch``."""

from __future__ import annotations

import json

from repro.cli import main
from repro.obs.ledger import LEDGER_FORMAT
from repro.obs.progress import STATUS_FORMAT


class TestRunFlags:
    def test_run_writes_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        assert (
            main(
                ["run", "EQ2-MC", "--trace", str(trace), "--metrics", str(metrics)]
            )
            == 0
        )
        capsys.readouterr()
        assert json.loads(trace.read_text().splitlines()[0])["kind"] == "manifest"
        payload = json.loads(metrics.read_text())
        assert payload["counters"]["trials_completed"] > 0

    def test_run_without_flags_writes_nothing(self, tmp_path, capsys):
        assert main(["run", "FIG7"]) == 0
        capsys.readouterr()
        assert list(tmp_path.iterdir()) == []

    def test_checkpoint_is_version_stamped(self, tmp_path, capsys):
        assert main(["run", "FIG7", "--checkpoint", str(tmp_path)]) == 0
        capsys.readouterr()
        payload = json.loads((tmp_path / "run_checkpoint.json").read_text())
        assert payload["version"]
        assert payload["seed"] == 0


class TestReport:
    def _trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["run", "EQ2-MC", "--trace", str(trace)]) == 0
        capsys.readouterr()
        return trace

    def test_text_report(self, tmp_path, capsys):
        trace = self._trace(tmp_path, capsys)
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "fullview run report" in out
        assert "trials/s" in out

    def test_json_report(self, tmp_path, capsys):
        trace = self._trace(tmp_path, capsys)
        assert main(["report", str(trace), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trials_completed"] > 0

    def test_rejects_non_trace_file(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text("not json\n")
        assert main(["report", str(bogus)]) == 2
        assert "fullview report" in capsys.readouterr().err


class TestReportExportFormats:
    def _trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["run", "EQ2-MC", "--trace", str(trace)]) == 0
        capsys.readouterr()
        return trace

    def test_chrome_format_emits_valid_trace_event_json(self, tmp_path, capsys):
        trace = self._trace(tmp_path, capsys)
        assert main(["report", str(trace), "--format", "chrome"]) == 0
        events = json.loads(capsys.readouterr().out)
        assert isinstance(events, list) and events
        assert {e["ph"] for e in events} <= {"X", "i", "C", "M"}

    def test_flamegraph_format_emits_collapsed_stacks(self, tmp_path, capsys):
        trace = self._trace(tmp_path, capsys)
        assert main(["report", str(trace), "--format", "flamegraph"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        assert all(line.rpartition(" ")[2].isdigit() for line in lines)

    def test_prom_format_emits_exposition_text(self, tmp_path, capsys):
        trace = self._trace(tmp_path, capsys)
        assert main(["report", str(trace), "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE fullview_trials_completed_total counter" in out


class TestStatusAndLedgerFlags:
    def test_run_writes_status_and_ledger(self, tmp_path, capsys):
        status = tmp_path / "status.json"
        ledger = tmp_path / "runs.jsonl"
        assert (
            main(
                [
                    "run",
                    "EQ2-MC",
                    "--status",
                    str(status),
                    "--ledger",
                    str(ledger),
                ]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(status.read_text())
        assert payload["format"] == STATUS_FORMAT
        assert payload["state"] == "finished"
        assert payload["done"] == payload["total"] > 0
        (line,) = ledger.read_text().splitlines()
        row = json.loads(line)
        assert row["format"] == LEDGER_FORMAT
        assert row["outcome"] == "ok"
        assert row["experiment"] == "EQ2-MC"
        assert row["trials_completed"] > 0

    def test_bare_ledger_flag_uses_env_default(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("FULLVIEW_LEDGER", str(tmp_path / "default.jsonl"))
        assert main(["run", "EQ2-MC", "--ledger"]) == 0
        capsys.readouterr()
        assert (tmp_path / "default.jsonl").exists()


class TestRunsCommand:
    def _ledger(self, tmp_path, capsys):
        ledger = tmp_path / "runs.jsonl"
        assert main(["run", "EQ2-MC", "--ledger", str(ledger)]) == 0
        capsys.readouterr()
        return ledger

    def test_runs_lists_completed_run(self, tmp_path, capsys):
        ledger = self._ledger(tmp_path, capsys)
        assert main(["runs", "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("RUN")
        assert "EQ2-MC" in out

    def test_runs_json_round_trips(self, tmp_path, capsys):
        ledger = self._ledger(tmp_path, capsys)
        assert main(["runs", "--ledger", str(ledger), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1
        assert rows[0]["experiment"] == "EQ2-MC"

    def test_runs_shows_one_run_by_id_prefix(self, tmp_path, capsys):
        ledger = self._ledger(tmp_path, capsys)
        run_id = json.loads(ledger.read_text().splitlines()[0])["run_id"]
        assert main(["runs", run_id[:6], "--ledger", str(ledger)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["run_id"] == run_id

    def test_runs_unknown_id_fails(self, tmp_path, capsys):
        ledger = self._ledger(tmp_path, capsys)
        assert main(["runs", "zzzzzz", "--ledger", str(ledger)]) == 1
        assert "no run" in capsys.readouterr().err

    def test_runs_missing_ledger_is_calm(self, tmp_path, capsys):
        assert main(["runs", "--ledger", str(tmp_path / "absent.jsonl")]) == 0
        assert "no run ledger" in capsys.readouterr().out


class TestWatchCommand:
    def test_watch_once_on_finished_status(self, tmp_path, capsys):
        status = tmp_path / "status.json"
        assert main(["run", "EQ2-MC", "--status", str(status)]) == 0
        capsys.readouterr()
        assert main(["watch", str(status), "--once"]) == 0
        out = capsys.readouterr().out
        assert "[finished]" in out
        assert "trials" in out

    def test_watch_once_on_absent_file_fails(self, tmp_path, capsys):
        assert main(["watch", str(tmp_path / "absent.json"), "--once"]) == 1
        assert capsys.readouterr().err

    def test_watch_polls_until_finished(self, tmp_path, capsys):
        status = tmp_path / "status.json"
        assert main(["run", "EQ2-MC", "--status", str(status)]) == 0
        capsys.readouterr()
        assert main(["watch", str(status), "--interval", "0.01"]) == 0
        assert "[finished]" in capsys.readouterr().out

    def test_watch_timeout_on_stuck_run(self, tmp_path, capsys):
        status = tmp_path / "status.json"
        payload = {
            "format": STATUS_FORMAT,
            "run_id": "abc",
            "state": "running",
            "done": 1,
            "total": 2,
            "failed": 0,
            "trials_per_sec": 1.0,
            "eta_seconds": 1.0,
            "elapsed_seconds": 1.0,
            "heartbeats": 1,
            "updated_unix": 0.0,
            "retries": 0,
            "respawns": 0,
            "quarantined": 0,
            "fallbacks": 0,
            "epochs": 0,
        }
        status.write_text(json.dumps(payload))
        assert (
            main(["watch", str(status), "--interval", "0.01", "--timeout", "0.05"])
            == 1
        )
        assert "timeout" in capsys.readouterr().err.lower()


class TestLifetimeFlags:
    def test_lifetime_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "lifetime",
                    "--n",
                    "40",
                    "--trials",
                    "4",
                    "--epochs",
                    "3",
                    "--max-grid-points",
                    "32",
                    "--trace",
                    str(trace),
                ]
            )
            == 0
        )
        capsys.readouterr()
        kinds = {json.loads(line)["kind"] for line in trace.read_text().splitlines()}
        assert "manifest" in kinds and "event" in kinds


class TestDiagnoseSelfCheck:
    def test_diagnose_prints_obs_self_check(self, capsys):
        assert main(["diagnose", "estate_surveillance", "--resolution", "8"]) == 0
        out = capsys.readouterr().out
        assert "observability self-check" in out
        assert "ns/span" in out
        assert "writable" in out
