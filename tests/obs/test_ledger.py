"""Tests for the append-only run ledger: round-trip, concurrency, hygiene."""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs.ledger import (
    LEDGER_ENV_VAR,
    LEDGER_FORMAT,
    append_run,
    default_ledger_path,
    load_runs,
    new_run_id,
    render_runs_table,
    validate_row,
)


def make_row(run_id: str = "abc123def456", **overrides):
    row = {
        "format": LEDGER_FORMAT,
        "run_id": run_id,
        "experiment": "EQ2-MC",
        "config_digest": "deadbeef",
        "seed": 42,
        "git_sha": None,
        "executor": "serial",
        "workers": 1,
        "wall_seconds": 1.5,
        "trials_per_sec": 533.3,
        "trials_completed": 800,
        "trials_failed": 0,
        "outcome": "ok",
        "retries": 0,
        "respawns": 0,
        "quarantined": 0,
        "checkpoints_recovered": 0,
        "trace_path": None,
        "metrics_path": None,
        "started_unix": 1754000000.0,
    }
    row.update(overrides)
    return row


class TestValidation:
    def test_well_formed_row_passes(self):
        assert validate_row(make_row()) is None

    def test_missing_field_named(self):
        row = make_row()
        del row["executor"]
        assert "executor" in validate_row(row)

    def test_bool_masquerading_as_int_rejected(self):
        assert validate_row(make_row(workers=True)) is not None

    def test_nonfinite_float_rejected(self):
        assert validate_row(make_row(wall_seconds=float("inf"))) is not None

    def test_zero_workers_rejected(self):
        assert validate_row(make_row(workers=0)) is not None

    def test_negative_count_rejected(self):
        assert validate_row(make_row(retries=-1)) is not None

    def test_unknown_outcome_rejected(self):
        assert validate_row(make_row(outcome="meh")) is not None

    def test_append_refuses_invalid_row(self, tmp_path):
        with pytest.raises(ObservabilityError):
            append_run(tmp_path / "runs.jsonl", make_row(outcome="meh"))
        assert not (tmp_path / "runs.jsonl").exists()


class TestRoundTrip:
    def test_append_then_load(self, tmp_path):
        ledger = tmp_path / "runs.jsonl"
        append_run(ledger, make_row("first0000000"))
        append_run(ledger, make_row("second000000"))
        rows, problems = load_runs(ledger)
        assert problems == []
        # Newest first: the last row appended leads the listing.
        assert [r["run_id"] for r in rows] == ["second000000", "first0000000"]

    def test_bad_lines_skipped_and_reported(self, tmp_path):
        ledger = tmp_path / "runs.jsonl"
        append_run(ledger, make_row())
        with ledger.open("a", encoding="utf-8") as fh:
            fh.write("not json\n")
            fh.write(json.dumps({"format": "other-v9"}) + "\n")
        rows, problems = load_runs(ledger)
        assert len(rows) == 1
        assert len(problems) == 2

    def test_missing_ledger_raises_observability_error(self, tmp_path):
        with pytest.raises(ObservabilityError):
            load_runs(tmp_path / "absent.jsonl")

    def test_concurrent_appends_never_tear_lines(self, tmp_path):
        ledger = tmp_path / "runs.jsonl"
        writers = 8
        per_writer = 10

        def spin(writer: int) -> None:
            for i in range(per_writer):
                append_run(ledger, make_row(f"w{writer:02d}i{i:04d}xxxx"))

        threads = [
            threading.Thread(target=spin, args=(w,)) for w in range(writers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        rows, problems = load_runs(ledger)
        assert problems == []
        assert len(rows) == writers * per_writer
        assert len({r["run_id"] for r in rows}) == writers * per_writer


class TestDefaults:
    def test_env_var_overrides_default_path(self, monkeypatch, tmp_path):
        monkeypatch.setenv(LEDGER_ENV_VAR, str(tmp_path / "custom.jsonl"))
        assert default_ledger_path() == tmp_path / "custom.jsonl"

    def test_default_lands_in_home(self, monkeypatch):
        monkeypatch.delenv(LEDGER_ENV_VAR, raising=False)
        assert default_ledger_path().name == "runs.jsonl"
        assert default_ledger_path().parent.name == ".fullview"

    def test_run_ids_are_twelve_hex_and_unique(self):
        ids = {new_run_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 12 and set(i) <= set("0123456789abcdef") for i in ids)


class TestTable:
    def test_table_has_header_and_one_line_per_row(self):
        rows = [make_row("a" * 12), make_row("b" * 12, seed=None)]
        table = render_runs_table(rows)
        lines = table.splitlines()
        assert lines[0].startswith("RUN")
        assert len(lines) == 3
        assert "a" * 12 in lines[1]
        # A null seed renders as "-" instead of crashing the table.
        assert " - " in lines[2]
