"""Tests for counters, gauges, histograms and the snapshot exporter."""

from __future__ import annotations

import json

import pytest

from repro.errors import InvalidParameterError
from repro.obs.metrics import (
    METRICS_FORMAT,
    Histogram,
    MetricsRegistry,
    active_metrics,
    metrics_scope,
)


class TestCounters:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        assert registry.inc("trials") == 1
        assert registry.inc("trials", 4) == 5
        assert registry.counter("trials") == 5

    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().counter("never") == 0

    def test_negative_increment_rejected(self):
        with pytest.raises(InvalidParameterError):
            MetricsRegistry().inc("trials", -1)


class TestGauges:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("workers", 2)
        registry.set_gauge("workers", 4)
        assert registry.gauge("workers") == pytest.approx(4.0)

    def test_unset_gauge_is_none(self):
        assert MetricsRegistry().gauge("never") is None


class TestHistogram:
    def test_bounds_must_ascend(self):
        with pytest.raises(InvalidParameterError):
            Histogram([1.0, 1.0])
        with pytest.raises(InvalidParameterError):
            Histogram([])

    def test_bucketing_and_overflow(self):
        h = Histogram([1.0, 10.0])
        for value in (0.5, 5.0, 50.0):
            h.observe(value)
        assert h.counts == [1, 1, 1]
        assert h.count == 3
        assert h.min == pytest.approx(0.5)
        assert h.max == pytest.approx(50.0)
        assert h.total == pytest.approx(55.5)

    def test_snapshot_shape(self):
        h = Histogram([1.0])
        h.observe(0.2)
        snap = h.snapshot()
        assert len(snap["counts"]) == len(snap["buckets"]) + 1
        assert sum(snap["counts"]) == snap["count"] == 1


class TestRegistrySnapshot:
    def test_snapshot_is_schema_tagged(self):
        registry = MetricsRegistry()
        registry.inc("trials_completed", 3)
        registry.set_gauge("workers", 2)
        registry.observe("trial_seconds", 0.01)
        snap = registry.snapshot()
        assert snap["format"] == METRICS_FORMAT
        assert snap["counters"] == {"trials_completed": 3}
        assert snap["gauges"] == {"workers": 2.0}
        assert snap["histograms"]["trial_seconds"]["count"] == 1

    def test_export_json_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("chunk_fallbacks")
        path = registry.export_json(tmp_path / "metrics.json")
        payload = json.loads(path.read_text())
        assert payload["format"] == METRICS_FORMAT
        assert payload["counters"]["chunk_fallbacks"] == 1
        # Atomic write leaves no temp file behind.
        assert list(tmp_path.iterdir()) == [path]


class TestScope:
    def test_disabled_by_default(self):
        assert active_metrics() is None

    def test_scope_installs_and_restores(self):
        registry = MetricsRegistry()
        with metrics_scope(registry):
            assert active_metrics() is registry
        assert active_metrics() is None
