"""Tests for the typed lifecycle events and their JSONL sink."""

from __future__ import annotations

import io
import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.events import (
    CheckpointWritten,
    ChunkDispatched,
    ChunkFellBack,
    EpochAdvanced,
    EventLog,
    RunFinished,
    RunStarted,
    active_event_log,
    event_scope,
)


def _lines(sink: io.StringIO):
    return [json.loads(line) for line in sink.getvalue().splitlines()]


class TestEventLog:
    def test_sequence_starts_at_zero_and_increments(self):
        sink = io.StringIO()
        log = EventLog(sink)
        assert log.emit(RunStarted(trials=4, seed=0, workers=1)) == 0
        assert log.emit(RunFinished(completed=4, failed=0, wall_ns=1, cpu_ns=1)) == 1
        rows = _lines(sink)
        assert [row["seq"] for row in rows] == [0, 1]
        assert log.emitted == 2

    def test_t_ns_is_monotonic(self):
        sink = io.StringIO()
        log = EventLog(sink)
        for _ in range(5):
            log.emit(ChunkDispatched(chunk=0, first_trial=0, trials=8))
        stamps = [row["t_ns"] for row in _lines(sink)]
        assert stamps == sorted(stamps)

    def test_line_shape_includes_type_and_fields(self):
        sink = io.StringIO()
        EventLog(sink).emit(
            ChunkFellBack(chunk=2, first_trial=16, trials=8, reason="broken-pool")
        )
        (row,) = _lines(sink)
        assert row["kind"] == "event"
        assert row["event"] == "ChunkFellBack"
        assert row["reason"] == "broken-pool"
        assert row["first_trial"] == 16

    def test_checkpoint_event_keeps_line_kind(self):
        """The event's own checkpoint_kind must not clobber the line kind."""
        sink = io.StringIO()
        EventLog(sink).emit(
            CheckpointWritten(path="x.json", checkpoint_kind="run", next_trial=3)
        )
        (row,) = _lines(sink)
        assert row["kind"] == "event"
        assert row["checkpoint_kind"] == "run"

    def test_epoch_event_round_trips(self):
        sink = io.StringIO()
        EventLog(sink).emit(EpochAdvanced(epoch=3, alive=17, coverage=0.5))
        (row,) = _lines(sink)
        assert (row["epoch"], row["alive"], row["coverage"]) == (3, 17, 0.5)

    def test_closed_sink_raises_observability_error(self):
        sink = io.StringIO()
        log = EventLog(sink)
        sink.close()
        with pytest.raises(ObservabilityError):
            log.emit(RunStarted(trials=1, seed=0, workers=1))


class TestScope:
    def test_disabled_by_default(self):
        assert active_event_log() is None

    def test_scope_installs_and_restores(self):
        log = EventLog(io.StringIO())
        with event_scope(log):
            assert active_event_log() is log
        assert active_event_log() is None
