"""Tests for the span API: nesting, threading, pickling, aggregation."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.errors import InvalidParameterError
from repro.obs.trace import (
    TRIAL_SPAN,
    ChunkTrace,
    SpanSummary,
    TraceRecorder,
    active_recorder,
    recording,
    set_recorder,
    span,
)


class TestDisabledPath:
    def test_no_recorder_by_default(self):
        assert active_recorder() is None

    def test_span_is_noop_without_recorder(self):
        with recording(None):
            s = span("anything", trial=3)
            with s:
                pass
            assert s.duration_ns == 0

    def test_null_span_is_shared(self):
        with recording(None):
            assert span("a") is span("b")


class TestRecording:
    def test_records_name_trial_and_duration(self):
        with recording(TraceRecorder()) as recorder:
            with span("estimate", trial=7) as s:
                pass
        (record,) = recorder.records
        assert record.name == "estimate"
        assert record.trial == 7
        assert record.duration_ns == s.duration_ns > 0

    def test_nested_span_records_parent(self):
        with recording(TraceRecorder()) as recorder:
            with span(TRIAL_SPAN, trial=0):
                with span("deploy"):
                    pass
        by_name = {r.name: r for r in recorder.records}
        assert by_name["deploy"].parent == TRIAL_SPAN
        assert by_name[TRIAL_SPAN].parent is None

    def test_attrs_are_kept(self):
        with recording(TraceRecorder()) as recorder:
            with span("experiment", experiment="FIG7"):
                pass
        (record,) = recorder.records
        assert record.attrs == {"experiment": "FIG7"}

    def test_scope_restores_previous_recorder(self):
        outer = TraceRecorder()
        previous = set_recorder(outer)
        try:
            with recording(TraceRecorder()) as inner:
                assert active_recorder() is inner
            assert active_recorder() is outer
        finally:
            set_recorder(previous)

    def test_thread_safety_and_per_thread_stacks(self):
        recorder = TraceRecorder()
        errors = []

        def work(index: int):
            try:
                for trial in range(50):
                    with span(TRIAL_SPAN, trial=index * 50 + trial):
                        with span("deploy"):
                            pass
            except Exception as exc:  # pragma: no cover - diagnostic only
                errors.append(exc)

        with recording(recorder):
            threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        assert recorder.span_count(TRIAL_SPAN) == 200
        assert recorder.span_count("deploy") == 200
        # Stacks are thread-local: every deploy has the trial parent.
        assert all(
            r.parent == TRIAL_SPAN
            for r in recorder.records
            if r.name == "deploy"
        )


class TestAggregation:
    def _traced_recorder(self, trials):
        recorder = TraceRecorder()
        with recording(recorder):
            for trial in trials:
                with span(TRIAL_SPAN, trial=trial):
                    pass
        return recorder

    def test_to_chunk_is_picklable(self):
        recorder = self._traced_recorder(range(4))
        chunk = recorder.to_chunk(tuple(range(4)), wall_ns=123)
        clone = pickle.loads(pickle.dumps(chunk))
        assert clone == chunk
        assert clone.wall_ns == 123
        assert [t for t, _ in clone.trial_ns] == [0, 1, 2, 3]

    def test_merge_chunk_counts_and_durations(self):
        parent = TraceRecorder()
        worker = self._traced_recorder([5, 6])
        parent.merge_chunk(worker.to_chunk((5, 6), wall_ns=10))
        assert parent.span_count(TRIAL_SPAN) == 2
        assert [t for t, _ in parent.trial_durations()] == [5, 6]

    def test_summaries_merge_direct_and_chunks(self):
        parent = self._traced_recorder([0])
        worker = self._traced_recorder([1, 2])
        parent.merge_chunk(worker.to_chunk((1, 2), wall_ns=1))
        summary = parent.summaries()[(TRIAL_SPAN, None)]
        assert summary.count == 3
        assert summary.total_ns >= summary.min_ns + summary.max_ns

    def test_summary_merge_rejects_mismatched_population(self):
        a = SpanSummary(name="a", count=1, total_ns=1, min_ns=1, max_ns=1)
        b = SpanSummary(name="b", count=1, total_ns=1, min_ns=1, max_ns=1)
        with pytest.raises(InvalidParameterError):
            a.merged(b)

    def test_iter_summary_rows_sorted_by_total(self):
        recorder = TraceRecorder()
        with recording(recorder):
            with span("outer"):
                with span("inner"):
                    pass
        totals = [s.total_ns for s in recorder.iter_summary_rows()]
        assert totals == sorted(totals, reverse=True)

    def test_chunktrace_holds_trial_order(self):
        chunk = ChunkTrace(
            trials=(3, 4), wall_ns=9, summaries=(), trial_ns=((3, 10), (4, 20))
        )
        parent = TraceRecorder()
        parent.merge_chunk(chunk)
        assert parent.trial_durations() == [(3, 10), (4, 20)]
