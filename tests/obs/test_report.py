"""End-to-end: observe() -> trace file -> load_trace -> build_report."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ObservabilityError
from repro.obs import observe
from repro.obs.events import RunFinished, RunStarted, active_event_log
from repro.obs.report import TRACE_FORMAT, build_report, load_trace
from repro.simulation.engine import (
    MonteCarloConfig,
    ParallelExecutor,
    execute_trials,
)

CHECKER = Path(__file__).resolve().parents[2] / "scripts" / "check_obs_schema.py"


def draw_trial(trial: int, rng: np.random.Generator) -> float:
    return float(rng.random())


@pytest.fixture()
def traced_run(tmp_path):
    trace = tmp_path / "trace.jsonl"
    metrics = tmp_path / "metrics.json"
    cfg = MonteCarloConfig(trials=20, seed=7)
    with observe(trace=trace, metrics=metrics, meta={"command": "test"}):
        execute_trials(draw_trial, cfg, executor=ParallelExecutor(workers=2))
    return trace, metrics, cfg


class TestObserveContext:
    def test_trace_file_has_manifest_first(self, traced_run):
        trace, _, _ = traced_run
        first = json.loads(trace.read_text().splitlines()[0])
        assert first["kind"] == "manifest"
        assert first["format"] == TRACE_FORMAT
        assert first["meta"] == {"command": "test"}

    def test_inert_without_sinks(self):
        with observe() as ctx:
            assert not ctx.enabled
            assert active_event_log() is None

    def test_contexts_restore_previous_actives(self, tmp_path):
        with observe(trace=tmp_path / "outer.jsonl"):
            outer = active_event_log()
            with observe(trace=tmp_path / "inner.jsonl"):
                assert active_event_log() is not outer
            assert active_event_log() is outer

    def test_metrics_exported(self, traced_run):
        _, metrics, cfg = traced_run
        payload = json.loads(metrics.read_text())
        assert payload["counters"]["trials_completed"] == cfg.trials


class TestLoadTrace:
    def test_parses_all_line_kinds(self, traced_run):
        trace, _, cfg = traced_run
        data = load_trace(trace)
        assert data.manifest["format"] == TRACE_FORMAT
        assert len(data.trials) == cfg.trials
        assert data.chunks
        assert data.metrics is not None
        assert any(e["event"] == "RunStarted" for e in data.events)

    def test_rejects_non_trace(self, tmp_path):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text('{"kind": "nonsense"}\n')
        with pytest.raises(ObservabilityError):
            load_trace(bogus)

    def test_rejects_missing_manifest(self, tmp_path):
        headless = tmp_path / "headless.jsonl"
        headless.write_text('{"kind": "trial", "trial": 0, "dur_ns": 1}\n')
        with pytest.raises(ObservabilityError):
            load_trace(headless)


class TestBuildReport:
    def test_report_totals_and_workers(self, traced_run):
        trace, _, cfg = traced_run
        report = build_report(load_trace(trace))
        assert report.trials_completed == cfg.trials
        assert report.trials_failed == 0
        assert report.workers == 2
        assert report.chunks_dispatched > 0
        assert report.wall_seconds > 0
        assert 0.0 < (report.worker_utilization or 0.0) <= 1.0

    def test_render_text_mentions_throughput(self, traced_run):
        trace, _, _ = traced_run
        text = build_report(load_trace(trace)).render_text()
        assert "trials/s" in text
        assert "span breakdown" in text

    def test_to_json_parses(self, traced_run):
        trace, _, cfg = traced_run
        payload = json.loads(build_report(load_trace(trace)).to_json())
        assert payload["trials_completed"] == cfg.trials
        assert payload["slowest_trials"]

    def test_event_clock_fallback_without_run_events(self, tmp_path):
        trace = tmp_path / "partial.jsonl"
        with observe(trace=trace):
            log = active_event_log()
            log.emit(RunStarted(trials=2, seed=0, workers=1))
            log.emit(RunFinished(completed=2, failed=0, wall_ns=0, cpu_ns=0))
        report = build_report(load_trace(trace))
        # wall_ns of 0 in the event forces the t_ns fallback clock.
        assert report.wall_seconds >= 0.0


class TestLatencyPercentiles:
    def _data_with_durations(self, tmp_path, durations_ns):
        trace = tmp_path / "synthetic.jsonl"
        lines = [json.dumps({"kind": "manifest", "format": TRACE_FORMAT})]
        lines += [
            json.dumps({"kind": "trial", "trial": i, "dur_ns": d})
            for i, d in enumerate(durations_ns)
        ]
        trace.write_text("\n".join(lines) + "\n")
        return load_trace(trace)

    def test_percentiles_from_known_durations(self, tmp_path):
        # 100 trials at 1..100 ms: nearest-rank percentiles are exact.
        data = self._data_with_durations(
            tmp_path, [i * 1_000_000 for i in range(1, 101)]
        )
        report = build_report(data)
        assert report.trial_p50_ms == 50.0
        assert report.trial_p90_ms == 90.0
        assert report.trial_p99_ms == 99.0

    def test_single_trial_collapses_all_percentiles(self, tmp_path):
        report = build_report(self._data_with_durations(tmp_path, [7_000_000]))
        assert report.trial_p50_ms == report.trial_p90_ms == report.trial_p99_ms == 7.0

    def test_percentiles_render_in_text_and_json(self, traced_run):
        trace, _, _ = traced_run
        report = build_report(load_trace(trace))
        assert "trial latency" in report.render_text()
        latency = json.loads(report.to_json())["trial_latency_ms"]
        assert set(latency) == {"p50", "p90", "p99"}
        assert latency["p50"] <= latency["p90"] <= latency["p99"]

    def test_zero_trials_omit_percentiles(self, tmp_path):
        report = build_report(self._data_with_durations(tmp_path, []))
        assert report.trial_p50_ms is None
        assert "trial latency" not in report.render_text()
        assert json.loads(report.to_json())["trial_latency_ms"]["p99"] is None


class TestSchemaChecker:
    def test_checker_accepts_real_artifacts(self, traced_run):
        trace, metrics, _ = traced_run
        proc = subprocess.run(
            [
                sys.executable,
                str(CHECKER),
                "--trace",
                str(trace),
                "--metrics",
                str(metrics),
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr

    def test_checker_rejects_corrupt_trace(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "bogus"}\n')
        proc = subprocess.run(
            [sys.executable, str(CHECKER), "--trace", str(bad)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "unknown line kind" in proc.stderr
