"""Tests for the trace exporters: chrome, flamegraph, prometheus."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ObservabilityError
from repro.obs import observe
from repro.obs.export import (
    EXPORT_FORMATS,
    chrome_trace,
    chrome_trace_json,
    export_trace,
    flamegraph_lines,
    prometheus_lines,
)
from repro.obs.report import build_report, load_trace
from repro.simulation.engine import (
    MonteCarloConfig,
    ParallelExecutor,
    SerialExecutor,
    execute_trials,
)

CFG = MonteCarloConfig(trials=20, seed=7)


def draw_trial(trial: int, rng: np.random.Generator) -> float:
    return float(rng.random())


@pytest.fixture()
def traced_data(tmp_path):
    trace = tmp_path / "trace.jsonl"
    metrics = tmp_path / "metrics.json"
    with observe(trace=trace, metrics=metrics, meta={"command": "test"}):
        execute_trials(draw_trial, CFG, executor=ParallelExecutor(workers=2))
    return load_trace(trace)


@pytest.fixture()
def empty_data(tmp_path):
    """A run that executed zero trials: manifest + tail, nothing else."""
    trace = tmp_path / "empty.jsonl"
    with observe(trace=trace, meta={"command": "empty"}):
        pass
    return load_trace(trace)


class TestChrome:
    def test_output_is_valid_trace_event_json(self, traced_data):
        events = json.loads(chrome_trace_json(traced_data))
        assert isinstance(events, list) and events
        assert events == chrome_trace(traced_data)
        for event in events:
            assert isinstance(event["name"], str)
            assert event["ph"] in ("X", "i", "C", "M")
            assert isinstance(event["pid"], int)
            if event["ph"] != "M":
                assert isinstance(event["ts"], (int, float))
                assert event["ts"] >= 0

    def test_duration_events_cover_all_trials(self, traced_data):
        events = json.loads(chrome_trace_json(traced_data))
        trials = [e for e in events if e["ph"] == "X" and e["name"].startswith("trial ")]
        assert len(trials) == CFG.trials
        assert all(e["dur"] >= 0 for e in trials)

    def test_chunk_tracks_never_overlap(self, traced_data):
        events = json.loads(chrome_trace_json(traced_data))
        chunks = [e for e in events if e["ph"] == "X" and e["name"].startswith("chunk[")]
        assert chunks
        by_tid = {}
        for c in chunks:
            by_tid.setdefault(c["tid"], []).append((c["ts"], c["ts"] + c["dur"]))
        for spans in by_tid.values():
            spans.sort()
            for (_, end), (start, _) in zip(spans, spans[1:]):
                assert start >= end

    def test_metadata_names_process_and_threads(self, traced_data):
        events = json.loads(chrome_trace_json(traced_data))
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta)
        assert any(e["name"] == "thread_name" for e in meta)

    def test_progress_counter_series_present_when_tracked(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        with observe(trace=trace, meta={"command": "test"}):
            execute_trials(draw_trial, CFG, executor=SerialExecutor())
        events = json.loads(chrome_trace_json(load_trace(trace)))
        counters = [e for e in events if e["ph"] == "C"]
        assert counters, "observe() tracks progress, so counters must exist"
        assert counters[-1]["args"]["done"] == CFG.trials


class TestFlamegraph:
    def test_lines_are_collapsed_stacks(self, traced_data):
        lines = flamegraph_lines(traced_data)
        assert lines
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert stack
            assert weight.isdigit()

    def test_self_time_weights_are_positive(self, traced_data):
        for line in flamegraph_lines(traced_data):
            assert int(line.rpartition(" ")[2]) > 0


class TestPrometheus:
    def test_counters_and_gauges_exposed(self, traced_data):
        lines = prometheus_lines(traced_data.metrics)
        text = "\n".join(lines)
        assert "# TYPE fullview_trials_completed_total counter" in text
        assert "fullview_trials_completed_total 20" in text

    def test_histogram_buckets_are_cumulative(self, traced_data):
        lines = prometheus_lines(traced_data.metrics)
        buckets = [
            float(line.rpartition(" ")[2])
            for line in lines
            if line.startswith("fullview_trial_seconds_bucket")
        ]
        assert buckets == sorted(buckets)
        inf_line = next(
            line
            for line in lines
            if line.startswith('fullview_trial_seconds_bucket{le="+Inf"}')
        )
        count_line = next(
            line for line in lines if line.startswith("fullview_trial_seconds_count")
        )
        assert inf_line.rpartition(" ")[2] == count_line.rpartition(" ")[2]

    def test_missing_snapshot_yields_comment(self):
        lines = prometheus_lines(None)
        assert lines == ["# no metrics snapshot in trace"]


class TestDispatchAndDegenerates:
    def test_unknown_format_raises(self, traced_data):
        with pytest.raises(ObservabilityError):
            export_trace(traced_data, "svg")

    def test_every_format_handles_a_real_trace(self, traced_data):
        for fmt in EXPORT_FORMATS:
            assert export_trace(traced_data, fmt)

    def test_every_format_handles_a_zero_trial_trace(self, empty_data):
        for fmt in EXPORT_FORMATS:
            out = export_trace(empty_data, fmt)
            assert isinstance(out, str)
        assert json.loads(export_trace(empty_data, "chrome")) is not None

    def test_report_handles_a_zero_trial_trace(self, empty_data):
        report = build_report(empty_data)
        assert json.loads(report.to_json())["trial_latency_ms"]["p50"] is None
        assert report.render_text()

    def test_report_percentiles_on_a_real_trace(self, traced_data):
        report = build_report(traced_data)
        latency = json.loads(report.to_json())["trial_latency_ms"]
        assert latency["p50"] is not None
        assert latency["p50"] <= latency["p90"] <= latency["p99"]
        assert "p50" in report.render_text()
