"""The acceptance invariants: tracing never perturbs results.

Bit-identity of trial outcomes between traced and untraced execution —
serially and through the process pool — is the load-bearing guarantee
that lets the instrumentation live permanently in the engine.  The
merged span count equaling the trial count is the companion guarantee
that the chunk-aggregation path loses nothing.
"""

from __future__ import annotations

import numpy as np

from repro.obs import obs_self_check
from repro.obs.progress import ProgressTracker, progress_scope
from repro.obs.trace import TRIAL_SPAN, TraceRecorder, recording
from repro.simulation.engine import (
    MonteCarloConfig,
    ParallelExecutor,
    SerialExecutor,
    ThreadExecutor,
    execute_trials,
)

CFG = MonteCarloConfig(trials=24, seed=123)


def draw_trial(trial: int, rng: np.random.Generator) -> float:
    """Deterministic per-seed value: any perturbation of RNG use shows."""
    return float(rng.random() + rng.normal())


def _values(outcomes):
    return [(o.trial, o.value, o.error) for o in outcomes]


class TestBitIdentity:
    def test_traced_serial_matches_untraced(self):
        untraced = execute_trials(draw_trial, CFG, executor=SerialExecutor())
        with recording(TraceRecorder()):
            traced = execute_trials(draw_trial, CFG, executor=SerialExecutor())
        assert _values(traced) == _values(untraced)

    def test_traced_parallel_matches_untraced(self):
        untraced = execute_trials(
            draw_trial, CFG, executor=ParallelExecutor(workers=2)
        )
        with recording(TraceRecorder()):
            traced = execute_trials(
                draw_trial, CFG, executor=ParallelExecutor(workers=2)
            )
        assert _values(traced) == _values(untraced)

    def test_traced_parallel_matches_traced_serial(self):
        with recording(TraceRecorder()):
            serial = execute_trials(draw_trial, CFG, executor=SerialExecutor())
        with recording(TraceRecorder()):
            parallel = execute_trials(
                draw_trial, CFG, executor=ParallelExecutor(workers=2)
            )
        assert _values(serial) == _values(parallel)


class TestSpanCompleteness:
    def test_serial_span_count_equals_trials(self):
        with recording(TraceRecorder()) as recorder:
            execute_trials(draw_trial, CFG, executor=SerialExecutor())
        assert recorder.span_count(TRIAL_SPAN) == CFG.trials

    def test_parallel_merged_span_count_equals_trials(self):
        with recording(TraceRecorder()) as recorder:
            execute_trials(
                draw_trial, CFG, executor=ParallelExecutor(workers=2, chunk_size=5)
            )
        assert recorder.span_count(TRIAL_SPAN) == CFG.trials
        # Every trial's wall time survived the pool boundary, in order.
        assert [t for t, _ in recorder.trial_durations()] == list(range(CFG.trials))

    def test_parallel_chunks_cover_all_trials(self):
        with recording(TraceRecorder()) as recorder:
            execute_trials(
                draw_trial, CFG, executor=ParallelExecutor(workers=2, chunk_size=7)
            )
        covered = [t for chunk in recorder.chunks for t in chunk.trials]
        assert sorted(covered) == list(range(CFG.trials))


class TestProgressIdentity:
    """Live progress tracking must be invisible to the numbers too.

    The tracker is fed parent-side on already-computed batches, so a
    progress-enabled run must stay bit-identical to an untracked one on
    every executor — and the tracker must have seen every trial.
    """

    def _tracked(self, executor):
        tracker = ProgressTracker()
        with progress_scope(tracker):
            outcomes = execute_trials(draw_trial, CFG, executor=executor)
        assert tracker.done == CFG.trials
        assert tracker.total == CFG.trials
        return outcomes

    def test_progress_serial_matches_untracked(self):
        untracked = execute_trials(draw_trial, CFG, executor=SerialExecutor())
        assert _values(self._tracked(SerialExecutor())) == _values(untracked)

    def test_progress_thread_matches_untracked(self):
        untracked = execute_trials(draw_trial, CFG, executor=SerialExecutor())
        tracked = self._tracked(ThreadExecutor(workers=2, chunk_size=5))
        assert _values(tracked) == _values(untracked)

    def test_progress_process_matches_untracked(self):
        untracked = execute_trials(draw_trial, CFG, executor=SerialExecutor())
        tracked = self._tracked(ParallelExecutor(workers=2, chunk_size=5))
        assert _values(tracked) == _values(untracked)


class TestDisabledOverhead:
    def test_disabled_span_cost_is_tiny(self):
        """The no-op guard must stay in the nanosecond range.

        The acceptance budget is <= 5% on the dispatch benchmark whose
        per-trial cost is ~10 us; 2 us per span is an order of magnitude
        inside that and loose enough for noisy CI machines.
        """
        check = obs_self_check()
        assert check["disabled_ns_per_span"] < 2000.0
        assert check["enabled_ns_per_span"] > 0.0
