"""Tests for the fullview CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "fullview" in capsys.readouterr().out


class TestList:
    def test_lists_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for eid in ("FIG7", "FIG8", "EQ19", "PHASE", "GAP"):
            assert eid in out


class TestRun:
    def test_run_single(self, capsys):
        assert main(["run", "FIG7"]) == 0
        out = capsys.readouterr().out
        assert "FIG7" in out
        assert "overall: PASS" in out

    def test_run_exports_csv(self, tmp_path, capsys):
        assert main(["run", "FIG8", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig8.csv").exists()

    def test_run_unknown_experiment(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            main(["run", "BOGUS"])

    def test_run_seed_flag(self, capsys):
        assert main(["run", "EQ19", "--seed", "3"]) == 0

    def test_run_executor_flag(self, capsys):
        # --executor scopes the backend for the whole command; the
        # results must be what the serial run prints (bit-identity).
        assert main(["run", "EQ19", "--executor", "thread", "--workers", "2"]) == 0
        assert "overall: PASS" in capsys.readouterr().out

    def test_run_executor_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["run", "EQ19", "--executor", "fibers"])

    def test_executor_flag_on_lifetime_and_workloads_parsers(self):
        parser = build_parser()
        args = parser.parse_args(["lifetime", "--executor", "process"])
        assert args.executor == "process"
        args = parser.parse_args(["workloads", "--executor", "serial"])
        assert args.executor == "serial"


class TestFigures:
    def test_prints_plots(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out and "Figure 8" in out
        assert "necessary" in out and "sufficient" in out

    def test_exports(self, tmp_path, capsys):
        assert main(["figures", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "figure7.csv").exists()
        assert (tmp_path / "figure8.csv").exists()


class TestDiagnose:
    def test_renders_maps(self, capsys):
        assert main(["diagnose", "estate_surveillance", "--resolution", "8"]) == 0
        out = capsys.readouterr().out
        assert "sensor positions" in out
        assert "full-view covered cells" in out
        assert "barrier" in out
        assert "centre point" in out

    def test_unknown_workload(self, capsys):
        assert main(["diagnose", "nope"]) == 1
        assert "unknown workload" in capsys.readouterr().out

    def test_provision_flag(self, capsys):
        assert main(
            ["diagnose", "estate_surveillance", "--provision", "1.2",
             "--resolution", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "provisioned" in out

    def test_save_fleet(self, tmp_path, capsys):
        target = tmp_path / "fleet.npz"
        assert main(
            ["diagnose", "estate_surveillance", "--resolution", "8",
             "--save-fleet", str(target)]
        ) == 0
        assert target.exists()
        from repro.sensors.io import load_fleet

        fleet = load_fleet(target)
        assert len(fleet) == 500


class TestDesign:
    def test_report(self, capsys):
        assert main(["design", "estate_surveillance", "--target", "0.95"]) == 0
        out = capsys.readouterr().out
        assert "design report" in out
        assert "required weighted area" in out
        assert "scale every radius" in out

    def test_unknown_workload(self, capsys):
        assert main(["design", "nope"]) == 1


class TestDiagnoseNoBarrier:
    def test_breach_branch(self, capsys):
        """The stock (under-provisioned) workload has no barrier; the
        breach branch must render."""
        assert main(["diagnose", "traffic_monitoring", "--resolution", "8"]) == 0
        out = capsys.readouterr().out
        assert "barrier: NO" in out


class TestWorkloads:
    def test_assessment(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "traffic_monitoring" in out
        assert "verdict" in out

    def test_simulated(self, capsys):
        assert main(["workloads", "--simulate", "--trials", "5"]) == 0
        out = capsys.readouterr().out
        assert "simulated full-view area fraction" in out


_FAST_LIFETIME = [
    "lifetime", "--n", "40", "--trials", "3", "--epochs", "2",
    "--max-grid-points", "9", "--seed", "5",
]


class TestLifetime:
    def test_prints_survival_curve(self, capsys):
        assert main(list(_FAST_LIFETIME)) == 0
        out = capsys.readouterr().out
        assert "survival curve" in out
        assert "mean lifetime" in out
        assert "trials: 3/3 completed" in out

    def test_exports_csv(self, tmp_path, capsys):
        assert main(_FAST_LIFETIME + ["--out", str(tmp_path)]) == 0
        assert (tmp_path / "lifetime_survival.csv").exists()

    def test_checkpoint_and_resume(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(_FAST_LIFETIME + ["--checkpoint", str(ckpt)]) == 0
        assert (ckpt / "checkpoint.json").exists()
        first = capsys.readouterr().out
        assert main(
            _FAST_LIFETIME + ["--checkpoint", str(ckpt), "--resume"]
        ) == 0
        resumed = capsys.readouterr().out
        assert "trials: 3/3 completed" in first
        assert "trials: 3/3 completed" in resumed

    def test_tiny_time_budget_reports_truncation(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        code = main(
            _FAST_LIFETIME
            + ["--checkpoint", str(ckpt), "--time-budget", "1e-9"]
        )
        out = capsys.readouterr().out
        # Nothing completed: exit 1 with a hint, checkpoint written.
        assert code == 1
        assert "no trials completed" in out
        assert (ckpt / "checkpoint.json").exists()
        # A resume without the budget finishes the sweep.
        assert main(
            _FAST_LIFETIME + ["--checkpoint", str(ckpt), "--resume"]
        ) == 0
        assert "trials: 3/3 completed" in capsys.readouterr().out

    def test_schedule_flags(self, capsys):
        assert main(
            _FAST_LIFETIME
            + ["--blackout-radius", "0.1", "--drift", "0.2", "--decay", "0.9"]
        ) == 0
        assert "4 failure model(s)" in capsys.readouterr().out


class TestRunCheckpoint:
    def test_run_resume_skips_completed(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(["run", "EQ19", "--checkpoint", str(ckpt)]) == 0
        assert (ckpt / "run_checkpoint.json").exists()
        capsys.readouterr()
        assert main(
            ["run", "EQ19", "--checkpoint", str(ckpt), "--resume"]
        ) == 0
        assert "already completed (checkpoint)" in capsys.readouterr().out

    def test_run_time_budget_truncates(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        code = main(
            ["run", "EQ19", "FIG7", "--checkpoint", str(ckpt),
             "--time-budget", "1e-9"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "resume with" in out
