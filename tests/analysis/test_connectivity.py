"""Tests for communication connectivity analysis."""

from __future__ import annotations

import math

import networkx as nx
import numpy as np
import pytest

from repro.analysis.connectivity import (
    communication_graph,
    connectivity_scaling_constant,
    critical_communication_radius,
    is_connected,
    largest_component_fraction,
)
from repro.deployment.uniform import UniformDeployment
from repro.errors import InvalidParameterError
from repro.sensors.fleet import SensorFleet
from repro.sensors.model import CameraSpec, HeterogeneousProfile


def line_fleet(xs):
    n = len(xs)
    return SensorFleet(
        positions=np.array([[x, 0.5] for x in xs]),
        orientations=np.zeros(n),
        radii=np.full(n, 0.1),
        angles=np.full(n, 1.0),
    )


class TestCommunicationGraph:
    def test_edges_by_distance(self):
        fleet = line_fleet([0.1, 0.2, 0.5])
        graph = communication_graph(fleet, 0.15)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 2)
        assert graph.number_of_nodes() == 3

    def test_radius_validation(self):
        with pytest.raises(InvalidParameterError):
            communication_graph(line_fleet([0.1]), 0.0)

    def test_torus_edges(self):
        fleet = line_fleet([0.02, 0.98])
        graph = communication_graph(fleet, 0.1)
        assert graph.has_edge(0, 1)

    def test_single_sensor(self):
        graph = communication_graph(line_fleet([0.5]), 0.1)
        assert graph.number_of_nodes() == 1
        assert graph.number_of_edges() == 0


class TestIsConnected:
    def test_trivial_cases(self):
        assert is_connected(line_fleet([0.5]), 0.01)

    def test_chain(self):
        fleet = line_fleet([0.1, 0.2, 0.3, 0.4])
        assert is_connected(fleet, 0.11)
        assert not is_connected(fleet, 0.09)

    def test_largest_component(self):
        fleet = line_fleet([0.1, 0.2, 0.6])
        assert largest_component_fraction(fleet, 0.11) == pytest.approx(2 / 3)
        assert largest_component_fraction(fleet, 0.5) == 1.0


class TestCriticalRadius:
    def test_chain_bottleneck(self):
        fleet = line_fleet([0.1, 0.25, 0.33])
        # Gaps: 0.15 and 0.08 -> critical = 0.15.
        assert critical_communication_radius(fleet) == pytest.approx(0.15)

    def test_trivial(self):
        assert critical_communication_radius(line_fleet([0.5])) == 0.0

    def test_connect_at_critical_disconnect_below(self, homogeneous_profile, rng):
        fleet = UniformDeployment().deploy(homogeneous_profile, 60, rng)
        r_crit = critical_communication_radius(fleet)
        assert is_connected(fleet, r_crit + 1e-12)
        assert not is_connected(fleet, r_crit * 0.999)

    def test_matches_networkx_mst(self, homogeneous_profile, rng):
        """The union-find sweep equals the max edge of a networkx MST."""
        fleet = UniformDeployment().deploy(homogeneous_profile, 40, rng)
        positions = fleet.positions
        n = len(fleet)
        graph = nx.Graph()
        for i in range(n):
            for j in range(i + 1, n):
                d = fleet.region.distance(
                    (positions[i, 0], positions[i, 1]),
                    (positions[j, 0], positions[j, 1]),
                )
                graph.add_edge(i, j, weight=d)
        mst = nx.minimum_spanning_tree(graph)
        expected = max(d["weight"] for _, _, d in mst.edges(data=True))
        assert critical_communication_radius(fleet) == pytest.approx(expected)


class TestScaling:
    def test_constant_is_order_one(self):
        """Penrose scaling: R_crit / sqrt(log n/(pi n)) stays O(1)."""
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=0.1, angle_of_view=1.0)
        )
        constants = []
        for seed in range(8):
            fleet = UniformDeployment().deploy(
                profile, 300, np.random.default_rng(seed)
            )
            constants.append(connectivity_scaling_constant(fleet))
        mean = float(np.mean(constants))
        assert 0.5 < mean < 2.5

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            connectivity_scaling_constant(line_fleet([0.5]))

    def test_coverage_grade_fleet_connected_at_twice_radius(self, rng):
        """Folk theorem: R_c = 2 r connects fleets provisioned for
        coverage (their sensing radius is far above the connectivity
        threshold)."""
        from repro.core.csa import csa_sufficient

        n = 300
        theta = math.pi / 3
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec.from_area(csa_sufficient(n, theta), math.pi / 2)
        )
        fleet = UniformDeployment().deploy(profile, n, rng)
        r = profile.groups[0].radius
        assert is_connected(fleet, 2.0 * r)
