"""Tests for obstacle fields and occlusion."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidParameterError
from repro.geometry.obstacles import ObstacleField, occluded_covering_directions
from repro.geometry.torus import UNIT_SQUARE, UNIT_TORUS
from repro.sensors.fleet import SensorFleet

coords = st.floats(min_value=0.0, max_value=0.999999, allow_nan=False)


def single_obstacle(x, y, r, region=UNIT_TORUS):
    return ObstacleField(np.array([[x, y]]), np.array([r]), region)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ObstacleField(np.zeros((2, 2)), np.array([0.1]))
        with pytest.raises(InvalidParameterError):
            ObstacleField(np.zeros((1, 2)), np.array([0.0]))

    def test_empty(self):
        field = ObstacleField.empty()
        assert len(field) == 0
        assert not field.contains((0.5, 0.5))
        assert not field.blocks((0.0, 0.0), (1.0, 1.0))

    def test_random(self, rng):
        field = ObstacleField.random(10, 0.05, rng)
        assert len(field) == 10
        assert field.total_area() == pytest.approx(10 * math.pi * 0.0025)

    def test_random_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            ObstacleField.random(-1, 0.1, rng)
        with pytest.raises(InvalidParameterError):
            ObstacleField.random(2, 0.0, rng)

    def test_random_zero_count(self, rng):
        assert len(ObstacleField.random(0, 0.1, rng)) == 0


class TestContains:
    def test_inside(self):
        field = single_obstacle(0.5, 0.5, 0.1)
        assert field.contains((0.55, 0.5))
        assert not field.contains((0.7, 0.5))

    def test_wraps(self):
        field = single_obstacle(0.02, 0.5, 0.05)
        assert field.contains((0.99, 0.5))


class TestBlocks:
    def test_obstacle_between(self):
        field = single_obstacle(0.5, 0.5, 0.05)
        assert field.blocks((0.3, 0.5), (0.7, 0.5))

    def test_obstacle_beside(self):
        field = single_obstacle(0.5, 0.6, 0.05)
        assert not field.blocks((0.3, 0.5), (0.7, 0.5))

    def test_obstacle_behind_target(self):
        field = single_obstacle(0.9, 0.5, 0.05)
        assert not field.blocks((0.3, 0.5), (0.7, 0.5))

    def test_obstacle_behind_source(self):
        field = single_obstacle(0.1, 0.5, 0.05)
        assert not field.blocks((0.3, 0.5), (0.7, 0.5))

    def test_endpoint_inside_blocked(self):
        field = single_obstacle(0.3, 0.5, 0.05)
        assert field.blocks((0.3, 0.5), (0.7, 0.5))

    def test_wrapped_geodesic(self):
        """The geodesic from 0.9 to 0.1 crosses the seam, not the middle."""
        middle = single_obstacle(0.5, 0.5, 0.05)
        seam = single_obstacle(0.0, 0.5, 0.03)
        assert not middle.blocks((0.9, 0.5), (0.1, 0.5))
        assert seam.blocks((0.9, 0.5), (0.1, 0.5))

    def test_no_wrap_on_square(self):
        field = single_obstacle(0.5, 0.5, 0.05, region=UNIT_SQUARE)
        # On the bounded square the path 0.9 -> 0.1 goes through the middle.
        assert field.blocks((0.9, 0.5), (0.1, 0.5))

    def test_symmetry(self, rng):
        field = ObstacleField.random(6, 0.06, rng)
        for _ in range(30):
            a = tuple(rng.uniform(size=2))
            b = tuple(rng.uniform(size=2))
            assert field.blocks(a, b) == field.blocks(b, a)

    @given(
        st.tuples(coords, coords),
        st.tuples(coords, coords),
        st.tuples(coords, coords),
        st.floats(min_value=0.01, max_value=0.2),
    )
    @settings(max_examples=200, deadline=None)
    def test_blocks_matches_sampling(self, a, b, center, radius):
        """Segment-disk test agrees with dense sampling of the geodesic."""
        field = single_obstacle(center[0], center[1], radius)
        dx, dy = UNIT_TORUS.displacement(a, b)
        ts = np.linspace(0.0, 1.0, 400)
        samples = UNIT_TORUS.wrap_points(
            np.stack([a[0] + ts * dx, a[1] + ts * dy], axis=1)
        )
        sampled_blocked = bool(
            (UNIT_TORUS.distances(center, samples) <= radius - 1e-9).any()
        )
        exact = field.blocks(a, b)
        if sampled_blocked:
            assert exact
        # (the converse can differ within a sampling gap; tolerance
        # handled by the -1e-9 shrink above)


class TestVisibleMask:
    def test_matches_scalar_blocks(self, rng):
        field = ObstacleField.random(8, 0.05, rng)
        source = (0.5, 0.5)
        targets = rng.uniform(size=(40, 2))
        mask = field.visible_mask(source, targets)
        for i, (x, y) in enumerate(targets):
            assert mask[i] == (not field.blocks(source, (float(x), float(y))))

    def test_empty_field_all_visible(self, rng):
        field = ObstacleField.empty()
        mask = field.visible_mask((0.5, 0.5), rng.uniform(size=(10, 2)))
        assert mask.all()


class TestOccludedCovering:
    def _fleet(self):
        # One sensor east of centre, looking west.
        return SensorFleet(
            positions=np.array([[0.7, 0.5]]),
            orientations=np.array([math.pi]),
            radii=np.array([0.3]),
            angles=np.array([math.pi]),
        )

    def test_unobstructed_matches_plain(self):
        fleet = self._fleet()
        dirs = occluded_covering_directions(fleet, (0.5, 0.5), ObstacleField.empty())
        assert np.allclose(dirs, fleet.covering_directions((0.5, 0.5)))

    def test_wall_blocks(self):
        fleet = self._fleet()
        wall = single_obstacle(0.6, 0.5, 0.04)
        dirs = occluded_covering_directions(fleet, (0.5, 0.5), wall)
        assert dirs.size == 0

    def test_point_inside_obstacle_unseen(self):
        fleet = self._fleet()
        blob = single_obstacle(0.5, 0.5, 0.02)
        dirs = occluded_covering_directions(fleet, (0.5, 0.5), blob)
        assert dirs.size == 0

    def test_subset_of_unoccluded(self, small_fleet, rng):
        field = ObstacleField.random(10, 0.04, rng)
        point = (0.5, 0.5)
        occluded = occluded_covering_directions(small_fleet, point, field)
        plain = set(np.round(small_fleet.covering_directions(point), 9).tolist())
        assert set(np.round(occluded, 9).tolist()) <= plain
