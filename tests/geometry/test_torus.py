"""Tests for the toroidal region geometry."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidParameterError
from repro.geometry.torus import UNIT_SQUARE, UNIT_TORUS, Region

coords = st.floats(min_value=0.0, max_value=0.999999, allow_nan=False)
points = st.tuples(coords, coords)


class TestRegionConstruction:
    def test_defaults(self):
        region = Region()
        assert region.side == 1.0
        assert region.torus

    def test_area(self):
        assert Region(side=2.0).area == 4.0

    def test_invalid_side(self):
        with pytest.raises(InvalidParameterError):
            Region(side=0.0)
        with pytest.raises(InvalidParameterError):
            Region(side=-1.0)
        with pytest.raises(InvalidParameterError):
            Region(side=math.inf)

    def test_constants(self):
        assert UNIT_TORUS.torus and not UNIT_SQUARE.torus


class TestWrapping:
    def test_wrap_inside_unchanged(self):
        assert UNIT_TORUS.wrap_point((0.3, 0.7)) == (0.3, 0.7)

    def test_wrap_outside(self):
        assert UNIT_TORUS.wrap_point((1.2, -0.3)) == pytest.approx((0.2, 0.7))

    def test_no_wrap_on_square(self):
        assert UNIT_SQUARE.wrap_point((1.2, -0.3)) == (1.2, -0.3)

    def test_wrap_points_array(self):
        pts = np.array([[1.5, -0.25]])
        assert np.allclose(UNIT_TORUS.wrap_points(pts), [[0.5, 0.75]])

    def test_contains(self):
        assert UNIT_TORUS.contains((0.0, 0.999))
        assert not UNIT_TORUS.contains((1.0, 0.5))


class TestDisplacement:
    def test_plain(self):
        assert UNIT_TORUS.displacement((0.2, 0.2), (0.5, 0.6)) == pytest.approx((0.3, 0.4))

    def test_wraps_short_way(self):
        dx, dy = UNIT_TORUS.displacement((0.9, 0.5), (0.1, 0.5))
        assert dx == pytest.approx(0.2)
        assert dy == pytest.approx(0.0)

    def test_square_does_not_wrap(self):
        dx, dy = UNIT_SQUARE.displacement((0.9, 0.5), (0.1, 0.5))
        assert dx == pytest.approx(-0.8)

    def test_component_range_on_torus(self):
        dx, dy = UNIT_TORUS.displacement((0.0, 0.0), (0.5, 0.5))
        assert -0.5 <= dx < 0.5 and -0.5 <= dy < 0.5

    @given(points, points)
    def test_displacement_components_bounded(self, a, b):
        dx, dy = UNIT_TORUS.displacement(a, b)
        assert -0.5 - 1e-9 <= dx <= 0.5 + 1e-9
        assert -0.5 - 1e-9 <= dy <= 0.5 + 1e-9

    @given(points, points)
    def test_vectorised_matches_scalar(self, a, b):
        scalar = UNIT_TORUS.displacement(a, b)
        vector = UNIT_TORUS.displacements(a, np.array([b]))[0]
        assert scalar[0] == pytest.approx(vector[0], abs=1e-12)
        assert scalar[1] == pytest.approx(vector[1], abs=1e-12)


class TestDistance:
    def test_simple(self):
        assert UNIT_TORUS.distance((0.0, 0.0), (0.3, 0.4)) == pytest.approx(0.5)

    def test_across_seam(self):
        assert UNIT_TORUS.distance((0.95, 0.5), (0.05, 0.5)) == pytest.approx(0.1)

    def test_square_across_is_long(self):
        assert UNIT_SQUARE.distance((0.95, 0.5), (0.05, 0.5)) == pytest.approx(0.9)

    def test_max_distance(self):
        assert UNIT_TORUS.max_distance() == pytest.approx(math.sqrt(2) / 2)
        assert UNIT_SQUARE.max_distance() == pytest.approx(math.sqrt(2))

    @given(points, points)
    def test_symmetry(self, a, b):
        assert UNIT_TORUS.distance(a, b) == pytest.approx(
            UNIT_TORUS.distance(b, a), abs=1e-12
        )

    @given(points, points)
    def test_torus_never_longer_than_plane(self, a, b):
        plane = math.hypot(a[0] - b[0], a[1] - b[1])
        assert UNIT_TORUS.distance(a, b) <= plane + 1e-12

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert UNIT_TORUS.distance(a, c) <= (
            UNIT_TORUS.distance(a, b) + UNIT_TORUS.distance(b, c) + 1e-9
        )

    @given(points, points, st.tuples(coords, coords))
    def test_translation_invariance(self, a, b, offset):
        a2 = UNIT_TORUS.wrap_point((a[0] + offset[0], a[1] + offset[1]))
        b2 = UNIT_TORUS.wrap_point((b[0] + offset[0], b[1] + offset[1]))
        assert UNIT_TORUS.distance(a2, b2) == pytest.approx(
            UNIT_TORUS.distance(a, b), abs=1e-9
        )

    def test_distances_vectorised(self):
        targets = np.array([[0.3, 0.4], [0.95, 0.0]])
        out = UNIT_TORUS.distances((0.0, 0.0), targets)
        assert np.allclose(out, [0.5, 0.05])


class TestDirection:
    def test_east(self):
        assert UNIT_TORUS.direction((0.5, 0.5), (0.7, 0.5)) == pytest.approx(0.0)

    def test_across_seam(self):
        # Shortest path from 0.95 to 0.05 heads east (+x).
        assert UNIT_TORUS.direction((0.95, 0.5), (0.05, 0.5)) == pytest.approx(0.0)

    def test_coincident_raises(self):
        with pytest.raises(ValueError):
            UNIT_TORUS.direction((0.5, 0.5), (0.5, 0.5))


class TestPairwise:
    def test_shape(self):
        src = np.zeros((3, 2))
        dst = np.zeros((5, 2))
        out = UNIT_TORUS.pairwise_displacements(src, dst)
        assert out.shape == (3, 5, 2)

    def test_values_match_scalar(self):
        src = np.array([[0.9, 0.9]])
        dst = np.array([[0.1, 0.1]])
        out = UNIT_TORUS.pairwise_displacements(src, dst)[0, 0]
        assert np.allclose(out, [0.2, 0.2])
