"""Tests for the binary sector sensing region."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI
from repro.geometry.sector import Sector, sector_area
from repro.geometry.torus import UNIT_SQUARE, UNIT_TORUS

coords = st.floats(min_value=0.0, max_value=0.999999, allow_nan=False)
radii = st.floats(min_value=0.01, max_value=0.45, allow_nan=False)
view_angles = st.floats(min_value=0.05, max_value=TWO_PI, allow_nan=False)
headings = st.floats(min_value=0.0, max_value=TWO_PI, allow_nan=False)


def sector_strategy():
    return st.builds(
        Sector,
        apex=st.tuples(coords, coords),
        radius=radii,
        angle=view_angles,
        orientation=headings,
    )


class TestConstruction:
    def test_validation_radius(self):
        with pytest.raises(InvalidParameterError):
            Sector((0.5, 0.5), radius=0.0, angle=1.0, orientation=0.0)
        with pytest.raises(InvalidParameterError):
            Sector((0.5, 0.5), radius=-1.0, angle=1.0, orientation=0.0)

    def test_validation_angle(self):
        with pytest.raises(InvalidParameterError):
            Sector((0.5, 0.5), radius=0.1, angle=0.0, orientation=0.0)
        with pytest.raises(InvalidParameterError):
            Sector((0.5, 0.5), radius=0.1, angle=TWO_PI + 0.5, orientation=0.0)

    def test_apex_wrapped(self):
        s = Sector((1.2, -0.3), radius=0.1, angle=1.0, orientation=0.0)
        assert s.apex == pytest.approx((0.2, 0.7))

    def test_area(self):
        s = Sector((0.5, 0.5), radius=0.2, angle=math.pi / 2, orientation=0.0)
        assert s.area == pytest.approx(0.5 * (math.pi / 2) * 0.04)

    def test_omnidirectional(self):
        s = Sector((0.5, 0.5), radius=0.2, angle=TWO_PI, orientation=0.0)
        assert s.is_omnidirectional


class TestContains:
    def test_apex_covered(self):
        s = Sector((0.5, 0.5), radius=0.1, angle=0.5, orientation=0.0)
        assert s.contains((0.5, 0.5))

    def test_along_orientation(self):
        s = Sector((0.5, 0.5), radius=0.2, angle=math.pi / 2, orientation=0.0)
        assert s.contains((0.6, 0.5))
        assert not s.contains((0.75, 0.5))  # beyond radius

    def test_behind_not_covered(self):
        s = Sector((0.5, 0.5), radius=0.2, angle=math.pi / 2, orientation=0.0)
        assert not s.contains((0.4, 0.5))

    def test_wedge_edges_inclusive(self):
        s = Sector((0.5, 0.5), radius=0.2, angle=math.pi / 2, orientation=0.0)
        # Point exactly on the upper wedge edge (45 degrees).
        d = 0.1
        assert s.contains((0.5 + d * math.cos(math.pi / 4), 0.5 + d * math.sin(math.pi / 4)))

    def test_circle_boundary_inclusive(self):
        s = Sector((0.5, 0.5), radius=0.2, angle=math.pi, orientation=0.0)
        assert s.contains((0.7, 0.5))

    def test_wraps_across_torus_seam(self):
        s = Sector((0.95, 0.5), radius=0.2, angle=math.pi / 2, orientation=0.0)
        assert s.contains((0.05, 0.5))

    def test_no_wrap_on_square(self):
        s = Sector(
            (0.95, 0.5), radius=0.2, angle=math.pi / 2, orientation=0.0,
            region=UNIT_SQUARE,
        )
        assert not s.contains((0.05, 0.5))

    def test_omnidirectional_covers_disk(self):
        s = Sector((0.5, 0.5), radius=0.2, angle=TWO_PI, orientation=0.0)
        assert s.contains((0.35, 0.5))
        assert s.contains((0.5, 0.65))
        assert not s.contains((0.5, 0.75))

    @given(sector_strategy(), st.tuples(coords, coords))
    @settings(max_examples=300)
    def test_scalar_matches_vectorised(self, sector, point):
        scalar = sector.contains(point)
        vector = bool(sector.contains_many(np.array([point]))[0])
        assert scalar == vector

    @given(sector_strategy(), st.floats(min_value=0.0, max_value=1.0), headings)
    @settings(max_examples=300)
    def test_polar_containment(self, sector, t, bearing):
        """A point at distance t*r along bearing from the apex is inside
        iff the bearing is within half the view angle of the orientation."""
        from repro.geometry.angles import angular_distance

        distance = t * sector.radius
        point = UNIT_TORUS.wrap_point(
            (
                sector.apex[0] + distance * math.cos(bearing),
                sector.apex[1] + distance * math.sin(bearing),
            )
        )
        # The wrap can only matter when the distance is < half the side,
        # which the radius strategy guarantees.
        offset = angular_distance(bearing, sector.orientation)
        if distance < 1e-12:
            assert sector.contains(point)
        elif offset < sector.half_angle - 1e-9 and t < 1.0 - 1e-9:
            assert sector.contains(point)
        elif offset > sector.half_angle + 1e-9 and not sector.is_omnidirectional:
            assert not sector.contains(point)


class TestViewedDirection:
    def test_points_back_to_sensor(self):
        s = Sector((0.7, 0.5), radius=0.3, angle=math.pi, orientation=math.pi)
        # Object at (0.5, 0.5) sees the sensor to its east.
        assert s.viewed_direction_of((0.5, 0.5)) == pytest.approx(0.0)

    def test_wraps(self):
        s = Sector((0.05, 0.5), radius=0.3, angle=math.pi, orientation=math.pi)
        # Object at 0.95: shortest path to sensor heads east across the seam.
        assert s.viewed_direction_of((0.95, 0.5)) == pytest.approx(0.0)


class TestBoundaryPoints:
    def test_boundary_is_inside_closed_region(self):
        s = Sector((0.5, 0.5), radius=0.2, angle=1.2, orientation=0.7)
        boundary = s.boundary_points(8)
        inside = s.contains_many(boundary)
        assert inside.all()

    def test_validation(self):
        s = Sector((0.5, 0.5), radius=0.2, angle=1.2, orientation=0.7)
        with pytest.raises(InvalidParameterError):
            s.boundary_points(1)


class TestSectorArea:
    def test_matches_formula(self):
        assert sector_area(0.3, 1.5) == pytest.approx(0.5 * 1.5 * 0.09)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            sector_area(0.0, 1.0)
        with pytest.raises(InvalidParameterError):
            sector_area(1.0, 0.0)
        with pytest.raises(InvalidParameterError):
            sector_area(1.0, 7.0)

    @given(radii, view_angles)
    def test_agrees_with_sector(self, r, phi):
        s = Sector((0.5, 0.5), radius=r, angle=phi, orientation=0.0)
        assert s.area == pytest.approx(sector_area(r, phi))
