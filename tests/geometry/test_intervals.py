"""Unit and property tests for the angular interval algebra."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.angles import TWO_PI, normalize_angle
from repro.geometry.intervals import (
    AngularInterval,
    AngularIntervalSet,
    max_circular_gap,
)

angles = st.floats(min_value=0.0, max_value=TWO_PI, allow_nan=False)
extents = st.floats(min_value=0.0, max_value=TWO_PI, allow_nan=False)


def interval_strategy():
    return st.builds(AngularInterval, angles, extents)


class TestAngularInterval:
    def test_normalises_start(self):
        arc = AngularInterval(-0.5, 1.0)
        assert arc.start == pytest.approx(TWO_PI - 0.5)

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            AngularInterval(0.0, -0.1)
        with pytest.raises(ValueError):
            AngularInterval(0.0, TWO_PI + 0.1)

    def test_nonfinite_raises(self):
        with pytest.raises(ValueError):
            AngularInterval(math.nan, 1.0)

    def test_end_wraps(self):
        arc = AngularInterval(TWO_PI - 0.2, 0.5)
        assert arc.end == pytest.approx(0.3)

    def test_midpoint(self):
        assert AngularInterval(0.0, 1.0).midpoint == pytest.approx(0.5)

    def test_midpoint_wrapping(self):
        arc = AngularInterval(TWO_PI - 0.5, 1.0)
        assert arc.midpoint == pytest.approx(0.0, abs=1e-12)

    def test_contains_interior(self):
        arc = AngularInterval(1.0, 1.0)
        assert arc.contains(1.5)
        assert not arc.contains(2.5)

    def test_contains_endpoints(self):
        arc = AngularInterval(1.0, 1.0)
        assert arc.contains(1.0)
        assert arc.contains(2.0)

    def test_contains_across_wrap(self):
        arc = AngularInterval(TWO_PI - 0.5, 1.0)
        assert arc.contains(0.2)
        assert arc.contains(TWO_PI - 0.2)
        assert not arc.contains(math.pi)

    def test_full_circle(self):
        arc = AngularInterval.full_circle()
        assert arc.is_full_circle
        for angle in np.linspace(0, TWO_PI, 17):
            assert arc.contains(float(angle))

    def test_from_endpoints(self):
        arc = AngularInterval.from_endpoints(1.0, 2.5)
        assert arc.extent == pytest.approx(1.5)

    def test_from_endpoints_wrapping(self):
        arc = AngularInterval.from_endpoints(TWO_PI - 1.0, 1.0)
        assert arc.extent == pytest.approx(2.0)

    def test_centered(self):
        arc = AngularInterval.centered(1.0, 0.25)
        assert arc.contains(1.0)
        assert arc.extent == pytest.approx(0.5)
        assert arc.midpoint == pytest.approx(1.0)

    def test_centered_saturates_to_full_circle(self):
        assert AngularInterval.centered(0.0, math.pi).is_full_circle

    def test_centered_negative_halfwidth(self):
        with pytest.raises(ValueError):
            AngularInterval.centered(0.0, -0.1)

    def test_contains_interval_nested(self):
        outer = AngularInterval(0.0, 2.0)
        inner = AngularInterval(0.5, 1.0)
        assert outer.contains_interval(inner)
        assert not inner.contains_interval(outer)

    def test_contains_interval_wrap(self):
        outer = AngularInterval(TWO_PI - 1.0, 2.0)
        inner = AngularInterval(TWO_PI - 0.5, 1.0)
        assert outer.contains_interval(inner)

    def test_overlaps(self):
        a = AngularInterval(0.0, 1.0)
        b = AngularInterval(0.5, 1.0)
        c = AngularInterval(2.0, 1.0)
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_rotated(self):
        arc = AngularInterval(1.0, 0.5).rotated(0.5)
        assert arc.start == pytest.approx(1.5)
        assert arc.extent == pytest.approx(0.5)

    def test_sample_endpoints(self):
        arc = AngularInterval(1.0, 1.0)
        samples = arc.sample(5)
        assert samples[0] == pytest.approx(1.0)
        assert samples[-1] == pytest.approx(2.0)
        assert all(arc.contains(float(s)) for s in samples)

    def test_sample_single_is_midpoint(self):
        arc = AngularInterval(1.0, 1.0)
        assert arc.sample(1)[0] == pytest.approx(arc.midpoint)

    def test_iter_unpacks(self):
        start, extent = AngularInterval(1.0, 0.5)
        assert (start, extent) == (1.0, 0.5)

    @given(interval_strategy(), angles)
    def test_contains_respects_offset(self, arc, angle):
        offset = normalize_angle(angle - arc.start)
        if offset < arc.extent - 1e-9:
            assert arc.contains(angle)
        elif offset > arc.extent + 1e-9 and offset < TWO_PI - 1e-9:
            assert not arc.contains(angle)


class TestAngularIntervalSet:
    def test_empty(self):
        s = AngularIntervalSet.empty()
        assert s.is_empty
        assert s.measure() == 0.0
        assert not s.contains(1.0)
        assert s.max_gap() == pytest.approx(TWO_PI)

    def test_single_interval(self):
        s = AngularIntervalSet([AngularInterval(0.0, 1.0)])
        assert s.measure() == pytest.approx(1.0)
        assert s.contains(0.5)
        assert not s.contains(2.0)

    def test_merge_overlapping(self):
        s = AngularIntervalSet([AngularInterval(0.0, 1.0), AngularInterval(0.5, 1.0)])
        assert len(s) == 1
        assert s.measure() == pytest.approx(1.5)

    def test_merge_touching(self):
        s = AngularIntervalSet([AngularInterval(0.0, 1.0), AngularInterval(1.0, 1.0)])
        assert len(s) == 1
        assert s.measure() == pytest.approx(2.0)

    def test_disjoint_stay_disjoint(self):
        s = AngularIntervalSet([AngularInterval(0.0, 1.0), AngularInterval(2.0, 1.0)])
        assert len(s) == 2
        assert s.measure() == pytest.approx(2.0)

    def test_merge_across_seam(self):
        s = AngularIntervalSet(
            [AngularInterval(TWO_PI - 0.5, 0.5), AngularInterval(0.0, 0.5)]
        )
        assert len(s) == 1
        assert s.measure() == pytest.approx(1.0)
        assert s.contains(0.0)
        assert s.contains(TWO_PI - 0.1)

    def test_full_circle_from_cover(self):
        arcs = [AngularInterval(i * math.pi / 2, math.pi / 2 + 0.01) for i in range(4)]
        s = AngularIntervalSet(arcs)
        assert s.is_full_circle
        assert s.covers_circle()

    def test_complement_of_empty(self):
        assert AngularIntervalSet.empty().complement().is_full_circle

    def test_complement_of_full(self):
        assert AngularIntervalSet.full_circle().complement().is_empty

    def test_complement_single(self):
        s = AngularIntervalSet([AngularInterval(0.0, 1.0)])
        comp = s.complement()
        assert comp.measure() == pytest.approx(TWO_PI - 1.0)
        assert comp.contains(2.0)
        assert not comp.contains(0.5)

    def test_gaps(self):
        s = AngularIntervalSet([AngularInterval(0.0, 1.0), AngularInterval(2.0, 1.0)])
        gaps = s.gaps()
        extents = sorted(g.extent for g in gaps)
        assert extents == pytest.approx([1.0, TWO_PI - 3.0])
        assert s.max_gap() == pytest.approx(TWO_PI - 3.0)

    def test_union(self):
        a = AngularIntervalSet([AngularInterval(0.0, 1.0)])
        b = AngularIntervalSet([AngularInterval(2.0, 1.0)])
        u = a.union(b)
        assert u.measure() == pytest.approx(2.0)

    def test_add(self):
        s = AngularIntervalSet.empty().add(AngularInterval(1.0, 0.5))
        assert s.measure() == pytest.approx(0.5)

    def test_intersection(self):
        a = AngularIntervalSet([AngularInterval(0.0, 2.0)])
        b = AngularIntervalSet([AngularInterval(1.0, 2.0)])
        inter = a.intersection(b)
        assert inter.measure() == pytest.approx(1.0, abs=1e-9)
        assert inter.contains(1.5)
        assert not inter.contains(0.5)
        assert not inter.contains(2.5)

    def test_from_directions(self):
        s = AngularIntervalSet.from_directions([0.0, math.pi], math.pi / 2)
        assert s.measure() == pytest.approx(TWO_PI)
        assert s.is_full_circle

    def test_from_directions_gap(self):
        s = AngularIntervalSet.from_directions([0.0, math.pi], math.pi / 4)
        assert s.measure() == pytest.approx(math.pi)
        assert not s.covers_circle()

    def test_equality(self):
        a = AngularIntervalSet([AngularInterval(0.0, 1.0)])
        b = AngularIntervalSet([AngularInterval(0.0, 0.5), AngularInterval(0.5, 0.5)])
        assert a == b

    def test_zero_extent_dropped(self):
        s = AngularIntervalSet([AngularInterval(1.0, 0.0)])
        assert s.is_empty

    @given(st.lists(interval_strategy(), max_size=8))
    @settings(max_examples=200)
    def test_measure_bounds(self, arcs):
        s = AngularIntervalSet(arcs)
        assert -1e-9 <= s.measure() <= TWO_PI + 1e-9

    @given(st.lists(interval_strategy(), max_size=8))
    @settings(max_examples=200)
    def test_complement_measure(self, arcs):
        s = AngularIntervalSet(arcs)
        assert s.measure() + s.complement().measure() == pytest.approx(
            TWO_PI, abs=1e-6
        )

    @given(st.lists(interval_strategy(), max_size=8))
    @settings(max_examples=200)
    def test_double_complement_is_identity(self, arcs):
        s = AngularIntervalSet(arcs)
        twice = s.complement().complement()
        assert twice.measure() == pytest.approx(s.measure(), abs=1e-6)

    @given(st.lists(interval_strategy(), min_size=1, max_size=8), angles)
    @settings(max_examples=200)
    def test_contains_matches_members(self, arcs, probe):
        # Degenerate (zero-measure) arcs are dropped by the set, so only
        # positive-extent members are binding.
        s = AngularIntervalSet(arcs)
        member_says = any(
            arc.extent > 1e-9 and arc.contains(probe, tol=1e-9) for arc in arcs
        )
        if member_says:
            assert s.contains(probe, tol=1e-6)

    @given(st.lists(interval_strategy(), max_size=6))
    @settings(max_examples=150)
    def test_union_is_monotone(self, arcs):
        s = AngularIntervalSet(arcs)
        grown = s.add(AngularInterval(0.3, 0.4))
        assert grown.measure() >= s.measure() - 1e-9


class TestMaxCircularGap:
    def test_empty(self):
        assert max_circular_gap([]) == pytest.approx(TWO_PI)

    def test_single(self):
        assert max_circular_gap([1.0]) == pytest.approx(TWO_PI)

    def test_two_opposite(self):
        assert max_circular_gap([0.0, math.pi]) == pytest.approx(math.pi)

    def test_uniform_spacing(self):
        dirs = np.arange(8) * (TWO_PI / 8)
        assert max_circular_gap(dirs) == pytest.approx(TWO_PI / 8)

    def test_cluster(self):
        assert max_circular_gap([0.0, 0.1, 0.2]) == pytest.approx(TWO_PI - 0.2)

    def test_wraps(self):
        assert max_circular_gap([TWO_PI - 0.1, 0.1]) == pytest.approx(TWO_PI - 0.2)

    @given(st.lists(angles, min_size=2, max_size=32))
    @settings(max_examples=200)
    def test_gaps_sum_to_circle(self, dirs):
        ordered = np.sort(normalize_angle(np.asarray(dirs)))
        gaps = np.diff(ordered).tolist() + [TWO_PI - (ordered[-1] - ordered[0])]
        assert max(gaps) == pytest.approx(max_circular_gap(dirs), abs=1e-9)
        assert sum(gaps) == pytest.approx(TWO_PI, abs=1e-6)

    @given(st.lists(angles, min_size=1, max_size=32), angles)
    @settings(max_examples=200)
    def test_rotation_invariant(self, dirs, offset):
        rotated = [normalize_angle(d + offset) for d in dirs]
        assert max_circular_gap(rotated) == pytest.approx(
            max_circular_gap(dirs), abs=1e-6
        )

    @given(st.lists(angles, min_size=1, max_size=16), angles)
    @settings(max_examples=200)
    def test_adding_direction_never_increases_gap(self, dirs, extra):
        assert max_circular_gap(dirs + [extra]) <= max_circular_gap(dirs) + 1e-9

    @given(st.lists(angles, min_size=1, max_size=16), st.floats(min_value=0.01, max_value=math.pi))
    @settings(max_examples=200)
    def test_gap_criterion_matches_interval_cover(self, dirs, theta):
        """max gap <= 2*theta  <=>  theta-arcs around directions cover S^1."""
        gap = max_circular_gap(dirs)
        covered = AngularIntervalSet.from_directions(dirs, theta).covers_circle()
        if gap < 2 * theta - 1e-9:
            assert covered
        elif gap > 2 * theta + 1e-9:
            assert not covered
