"""Unit and property tests for angular arithmetic."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.angles import (
    TWO_PI,
    angle_linspace,
    angular_distance,
    circular_mean,
    is_angle_between,
    normalize_angle,
    normalize_angle_signed,
    signed_angular_difference,
)

finite_angles = st.floats(
    min_value=-1000.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)


class TestNormalizeAngle:
    def test_identity_in_range(self):
        assert normalize_angle(1.0) == 1.0

    def test_wraps_negative(self):
        assert normalize_angle(-math.pi / 2) == pytest.approx(3 * math.pi / 2)

    def test_wraps_above_two_pi(self):
        assert normalize_angle(TWO_PI + 0.5) == pytest.approx(0.5)

    def test_exactly_two_pi_maps_to_zero(self):
        assert normalize_angle(TWO_PI) == 0.0

    def test_zero(self):
        assert normalize_angle(0.0) == 0.0

    def test_large_multiple(self):
        assert normalize_angle(1000 * TWO_PI + 0.25) == pytest.approx(0.25, abs=1e-9)

    def test_array_input(self):
        out = normalize_angle(np.array([-0.1, 0.0, TWO_PI + 0.1]))
        assert out.shape == (3,)
        assert np.allclose(out, [TWO_PI - 0.1, 0.0, 0.1])

    @given(finite_angles)
    def test_range_property(self, angle):
        result = normalize_angle(angle)
        assert 0.0 <= result < TWO_PI

    @given(finite_angles)
    def test_scalar_matches_array(self, angle):
        scalar = normalize_angle(angle)
        vector = normalize_angle(np.array([angle]))[0]
        assert scalar == pytest.approx(vector, abs=1e-9)

    @given(finite_angles)
    def test_idempotent(self, angle):
        once = normalize_angle(angle)
        assert normalize_angle(once) == pytest.approx(once)


class TestNormalizeAngleSigned:
    def test_positive_stays(self):
        assert normalize_angle_signed(1.0) == 1.0

    def test_pi_maps_to_pi(self):
        assert normalize_angle_signed(math.pi) == pytest.approx(math.pi)

    def test_minus_pi_maps_to_pi(self):
        assert normalize_angle_signed(-math.pi) == pytest.approx(math.pi)

    def test_array(self):
        out = normalize_angle_signed(np.array([3 * math.pi / 2]))
        assert out[0] == pytest.approx(-math.pi / 2)

    @given(finite_angles)
    def test_range_property(self, angle):
        result = normalize_angle_signed(angle)
        assert -math.pi < result <= math.pi + 1e-12

    @given(finite_angles)
    def test_same_direction(self, angle):
        assert normalize_angle(normalize_angle_signed(angle)) == pytest.approx(
            normalize_angle(angle), abs=1e-9
        )


class TestSignedAngularDifference:
    def test_simple(self):
        assert signed_angular_difference(1.0, 0.5) == pytest.approx(0.5)

    def test_wraps_short_way(self):
        assert signed_angular_difference(0.1, TWO_PI - 0.1) == pytest.approx(0.2)

    def test_negative_direction(self):
        assert signed_angular_difference(0.0, 0.5) == pytest.approx(-0.5)

    @given(finite_angles, finite_angles)
    def test_antisymmetric_modulo_pi(self, a, b):
        fwd = signed_angular_difference(a, b)
        back = signed_angular_difference(b, a)
        if abs(abs(fwd) - math.pi) > 1e-9:  # pi maps to itself both ways
            assert fwd == pytest.approx(-back, abs=1e-9)


class TestAngularDistance:
    def test_zero(self):
        assert angular_distance(1.0, 1.0) == 0.0

    def test_across_wrap(self):
        assert angular_distance(0.05, TWO_PI - 0.05) == pytest.approx(0.1)

    def test_max_is_pi(self):
        assert angular_distance(0.0, math.pi) == pytest.approx(math.pi)

    def test_arrays_broadcast(self):
        out = angular_distance(np.array([0.0, 1.0]), 0.5)
        assert np.allclose(out, [0.5, 0.5])

    @given(finite_angles, finite_angles)
    def test_symmetric(self, a, b):
        assert angular_distance(a, b) == pytest.approx(angular_distance(b, a), abs=1e-9)

    @given(finite_angles, finite_angles)
    def test_range(self, a, b):
        d = angular_distance(a, b)
        assert 0.0 <= d <= math.pi + 1e-12

    @given(finite_angles, finite_angles, finite_angles)
    def test_triangle_inequality(self, a, b, c):
        assert angular_distance(a, c) <= (
            angular_distance(a, b) + angular_distance(b, c) + 1e-9
        )

    @given(finite_angles, finite_angles)
    def test_invariant_under_rotation(self, a, offset):
        b = a + 0.7
        assert angular_distance(a + offset, b + offset) == pytest.approx(
            angular_distance(a, b), abs=1e-9
        )


class TestIsAngleBetween:
    def test_inside(self):
        assert is_angle_between(0.5, 0.0, 1.0)

    def test_outside(self):
        assert not is_angle_between(1.5, 0.0, 1.0)

    def test_endpoints_inclusive(self):
        assert is_angle_between(0.0, 0.0, 1.0)
        assert is_angle_between(1.0, 0.0, 1.0)

    def test_wrapping_arc(self):
        assert is_angle_between(0.1, TWO_PI - 0.5, 1.0)
        assert not is_angle_between(math.pi, TWO_PI - 0.5, 1.0)

    def test_full_circle_contains_everything(self):
        assert is_angle_between(3.7, 1.0, TWO_PI)

    def test_zero_extent_only_start(self):
        assert is_angle_between(1.0, 1.0, 0.0)
        assert not is_angle_between(1.1, 1.0, 0.0)

    def test_array(self):
        out = is_angle_between(np.array([0.5, 1.5]), 0.0, 1.0)
        assert out.tolist() == [True, False]

    def test_invalid_extent_raises(self):
        with pytest.raises(ValueError):
            is_angle_between(0.0, 0.0, -1.0)
        with pytest.raises(ValueError):
            is_angle_between(0.0, 0.0, TWO_PI + 1.0)

    @given(finite_angles, finite_angles, st.floats(min_value=0.0, max_value=TWO_PI))
    def test_matches_offset_definition(self, angle, start, extent):
        expected = normalize_angle(angle - start) <= extent
        # Allow boundary ambiguity within float noise.
        offset = normalize_angle(angle - start)
        if abs(offset - extent) > 1e-9 and abs(offset - TWO_PI) > 1e-9:
            assert is_angle_between(angle, start, extent) == expected


class TestCircularMean:
    def test_simple_cluster(self):
        assert circular_mean(np.array([0.1, 0.2, 0.3])) == pytest.approx(0.2)

    def test_across_wrap(self):
        mean = circular_mean(np.array([TWO_PI - 0.1, 0.1]))
        assert mean == pytest.approx(0.0, abs=1e-9) or mean == pytest.approx(
            TWO_PI, abs=1e-9
        )

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            circular_mean(np.array([]))

    def test_antipodal_raises(self):
        with pytest.raises(ValueError):
            circular_mean(np.array([0.0, math.pi]))


class TestAngleLinspace:
    def test_full_circle_uniform(self):
        out = angle_linspace(0.0, TWO_PI, 4)
        assert np.allclose(out, [0.0, math.pi / 2, math.pi, 3 * math.pi / 2])

    def test_endpoint_excluded(self):
        out = angle_linspace(0.0, 1.0, 2)
        assert np.allclose(out, [0.0, 0.5])

    def test_count_validation(self):
        with pytest.raises(ValueError):
            angle_linspace(0.0, 1.0, 0)
