"""Tests for the dense grid M."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidParameterError
from repro.geometry.grid import DenseGrid, grid_points_required, grid_side_for
from repro.geometry.torus import Region


class TestGridPointsRequired:
    def test_n1(self):
        assert grid_points_required(1) == 1

    def test_formula(self):
        assert grid_points_required(100) == math.ceil(100 * math.log(100))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            grid_points_required(0)

    @given(st.integers(min_value=2, max_value=100_000))
    def test_at_least_n_log_n(self, n):
        assert grid_points_required(n) >= n * math.log(n)


class TestGridSideFor:
    def test_squares_suffice(self):
        for n in (2, 10, 100, 1000, 5000):
            side = grid_side_for(n)
            assert side * side >= grid_points_required(n)
            assert (side - 1) * (side - 1) < grid_points_required(n)


class TestDenseGrid:
    def test_point_count(self):
        grid = DenseGrid(side=5)
        assert len(grid) == 25
        assert grid.points.shape == (25, 2)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            DenseGrid(side=0)

    def test_points_inside_region(self):
        grid = DenseGrid(side=7)
        pts = grid.points
        assert (pts >= 0).all() and (pts < 1).all()

    def test_cell_centres(self):
        grid = DenseGrid(side=2)
        expected = {(0.25, 0.25), (0.25, 0.75), (0.75, 0.25), (0.75, 0.75)}
        actual = {tuple(np.round(p, 9)) for p in grid.points}
        assert actual == expected

    def test_spacing(self):
        assert DenseGrid(side=4).spacing == pytest.approx(0.25)

    def test_point_indexing(self):
        grid = DenseGrid(side=3)
        assert grid.point(0, 0) == pytest.approx((1 / 6, 1 / 6))
        with pytest.raises(IndexError):
            grid.point(3, 0)

    def test_iter_matches_points(self):
        grid = DenseGrid(side=3)
        assert list(grid) == [tuple(p) for p in grid.points]

    def test_for_sensor_count(self):
        grid = DenseGrid.for_sensor_count(100)
        assert len(grid) >= 100 * math.log(100)

    def test_scales_with_region(self):
        grid = DenseGrid(side=2, region=Region(side=2.0))
        assert grid.spacing == pytest.approx(1.0)
        assert (grid.points < 2.0).all()

    def test_points_read_only(self):
        grid = DenseGrid(side=3)
        with pytest.raises(ValueError):
            grid.points[0, 0] = 99.0

    def test_sample_subset(self, rng):
        grid = DenseGrid(side=10)
        sample = grid.sample(17, rng)
        assert sample.shape == (17, 2)
        # Every sampled point is a grid point.
        grid_set = {tuple(np.round(p, 9)) for p in grid.points}
        assert all(tuple(np.round(p, 9)) in grid_set for p in sample)

    def test_sample_all_when_count_exceeds(self, rng):
        grid = DenseGrid(side=3)
        sample = grid.sample(100, rng)
        assert sample.shape == (9, 2)

    def test_sample_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            DenseGrid(side=3).sample(0, rng)

    def test_sample_distinct(self, rng):
        grid = DenseGrid(side=5)
        sample = grid.sample(25, rng)
        assert len({tuple(p) for p in sample}) == 25

    def test_max_spacing_covers_square(self):
        """Every point of the region is within spacing/sqrt(2) of a grid point."""
        grid = DenseGrid(side=8)
        probes = np.random.default_rng(0).uniform(0, 1, size=(200, 2))
        for probe in probes:
            dists = grid.region.distances((probe[0], probe[1]), grid.points)
            assert dists.min() <= grid.spacing / math.sqrt(2.0) + 1e-9
