"""Tests for the toroidal cell index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidParameterError
from repro.geometry.spatial import ToroidalCellIndex
from repro.geometry.torus import UNIT_SQUARE, UNIT_TORUS

coords = st.floats(min_value=0.0, max_value=0.999999, allow_nan=False)


def brute_force_query(points, probe, radius, region):
    dists = region.distances(probe, points)
    return set(np.flatnonzero(dists <= radius).tolist())


class TestConstruction:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ToroidalCellIndex(np.zeros((3, 2)), cell_size=0.0)

    def test_len(self):
        idx = ToroidalCellIndex(np.random.default_rng(0).uniform(size=(10, 2)), 0.1)
        assert len(idx) == 10

    def test_empty(self):
        idx = ToroidalCellIndex(np.empty((0, 2)), 0.1)
        assert len(idx) == 0
        assert idx.query((0.5, 0.5), 0.2).size == 0

    def test_points_wrapped(self):
        idx = ToroidalCellIndex(np.array([[1.3, -0.2]]), 0.1)
        assert np.allclose(idx.points, [[0.3, 0.8]])


class TestQuery:
    def test_matches_brute_force_basic(self, rng):
        points = rng.uniform(size=(200, 2))
        idx = ToroidalCellIndex(points, cell_size=0.1)
        for probe in [(0.5, 0.5), (0.01, 0.99), (0.0, 0.0)]:
            expected = brute_force_query(points, probe, 0.15, UNIT_TORUS)
            actual = set(idx.query(probe, 0.15).tolist())
            assert actual == expected

    def test_query_radius_larger_than_cell(self, rng):
        points = rng.uniform(size=(100, 2))
        idx = ToroidalCellIndex(points, cell_size=0.05)
        expected = brute_force_query(points, (0.3, 0.3), 0.3, UNIT_TORUS)
        assert set(idx.query((0.3, 0.3), 0.3).tolist()) == expected

    def test_query_spanning_whole_region(self, rng):
        points = rng.uniform(size=(50, 2))
        idx = ToroidalCellIndex(points, cell_size=0.2)
        hits = idx.query((0.5, 0.5), 1.0)
        assert hits.size == 50

    def test_bounded_square(self, rng):
        points = rng.uniform(size=(100, 2))
        idx = ToroidalCellIndex(points, cell_size=0.1, region=UNIT_SQUARE)
        probe = (0.02, 0.02)
        expected = brute_force_query(points, probe, 0.15, UNIT_SQUARE)
        assert set(idx.query(probe, 0.15).tolist()) == expected

    def test_negative_radius_raises(self, rng):
        idx = ToroidalCellIndex(rng.uniform(size=(10, 2)), 0.1)
        with pytest.raises(InvalidParameterError):
            idx.query((0.5, 0.5), -0.1)

    def test_zero_radius_exact_hit(self):
        idx = ToroidalCellIndex(np.array([[0.5, 0.5]]), 0.1)
        assert idx.query((0.5, 0.5), 0.0).tolist() == [0]

    @given(
        st.lists(st.tuples(coords, coords), min_size=1, max_size=60),
        st.tuples(coords, coords),
        st.floats(min_value=0.01, max_value=0.6),
        st.floats(min_value=0.02, max_value=0.3),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_brute_force_property(self, pts, probe, radius, cell):
        points = np.array(pts)
        idx = ToroidalCellIndex(points, cell_size=cell)
        expected = brute_force_query(points, probe, radius, UNIT_TORUS)
        actual = set(idx.query(probe, radius).tolist())
        assert actual == expected


class TestCandidates:
    def test_superset_of_query(self, rng):
        points = rng.uniform(size=(150, 2))
        idx = ToroidalCellIndex(points, cell_size=0.12)
        hits = set(idx.query((0.4, 0.6), 0.12).tolist())
        candidates = set(idx.candidates_within((0.4, 0.6), 0.12).tolist())
        assert hits <= candidates


class TestQueryRadiusBatch:
    def _rows(self, indptr, indices):
        return [indices[indptr[i] : indptr[i + 1]].tolist() for i in range(len(indptr) - 1)]

    def test_matches_scalar_query(self, rng):
        points = rng.uniform(size=(200, 2))
        idx = ToroidalCellIndex(points, cell_size=0.1)
        probes = rng.uniform(size=(40, 2))
        indptr, indices = idx.query_radius_batch(probes, 0.15)
        assert indptr.shape == (41,)
        assert indptr[-1] == indices.shape[0]
        for i, row in enumerate(self._rows(indptr, indices)):
            assert row == idx.query(tuple(probes[i]), 0.15).tolist()

    def test_unrefined_matches_candidates_within(self, rng):
        points = rng.uniform(size=(150, 2))
        idx = ToroidalCellIndex(points, cell_size=0.12)
        probes = rng.uniform(size=(25, 2))
        indptr, indices = idx.query_radius_batch(probes, 0.12, refine=False)
        for i, row in enumerate(self._rows(indptr, indices)):
            assert row == idx.candidates_within(tuple(probes[i]), 0.12).tolist()

    def test_wrap_seam_probes(self, rng):
        points = rng.uniform(size=(120, 2))
        idx = ToroidalCellIndex(points, cell_size=0.1)
        probes = np.array([[0.0, 0.0], [0.999, 0.001], [0.001, 0.999], [0.999, 0.999]])
        indptr, indices = idx.query_radius_batch(probes, 0.2)
        for i, row in enumerate(self._rows(indptr, indices)):
            expected = brute_force_query(points, tuple(probes[i]), 0.2, UNIT_TORUS)
            assert set(row) == expected

    def test_radius_spanning_whole_region(self, rng):
        points = rng.uniform(size=(30, 2))
        idx = ToroidalCellIndex(points, cell_size=0.2)
        indptr, indices = idx.query_radius_batch(rng.uniform(size=(5, 2)), 1.0, refine=False)
        for row in self._rows(indptr, indices):
            assert row == list(range(30))

    def test_empty_probe_set(self, rng):
        idx = ToroidalCellIndex(rng.uniform(size=(10, 2)), 0.1)
        indptr, indices = idx.query_radius_batch(np.empty((0, 2)), 0.2)
        assert indptr.tolist() == [0]
        assert indices.size == 0

    def test_empty_index(self):
        idx = ToroidalCellIndex(np.empty((0, 2)), 0.1)
        indptr, indices = idx.query_radius_batch(np.array([[0.5, 0.5]]), 0.2)
        assert indptr.tolist() == [0, 0]
        assert indices.size == 0

    def test_bounded_square(self, rng):
        points = rng.uniform(size=(100, 2))
        idx = ToroidalCellIndex(points, cell_size=0.1, region=UNIT_SQUARE)
        probes = np.array([[0.02, 0.02], [0.98, 0.5], [0.5, 0.5]])
        indptr, indices = idx.query_radius_batch(probes, 0.15)
        for i, row in enumerate(self._rows(indptr, indices)):
            expected = brute_force_query(points, tuple(probes[i]), 0.15, UNIT_SQUARE)
            assert set(row) == expected

    def test_negative_radius_raises(self, rng):
        idx = ToroidalCellIndex(rng.uniform(size=(10, 2)), 0.1)
        with pytest.raises(InvalidParameterError):
            idx.query_radius_batch(np.array([[0.5, 0.5]]), -0.1)

    def test_rows_sorted_and_unique(self, rng):
        points = rng.uniform(size=(300, 2))
        idx = ToroidalCellIndex(points, cell_size=0.07)
        indptr, indices = idx.query_radius_batch(rng.uniform(size=(50, 2)), 0.11, refine=False)
        for row in self._rows(indptr, indices):
            assert row == sorted(set(row))

    @given(
        st.lists(st.tuples(coords, coords), min_size=1, max_size=50),
        st.lists(st.tuples(coords, coords), min_size=1, max_size=10),
        st.floats(min_value=0.01, max_value=0.6),
        st.floats(min_value=0.02, max_value=0.3),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_brute_force_property(self, pts, probes, radius, cell):
        points = np.array(pts)
        idx = ToroidalCellIndex(points, cell_size=cell)
        indptr, indices = idx.query_radius_batch(np.array(probes), radius)
        for i, row in enumerate(self._rows(indptr, indices)):
            assert set(row) == brute_force_query(points, probes[i], radius, UNIT_TORUS)


class TestNearest:
    def test_simple(self):
        points = np.array([[0.1, 0.1], [0.9, 0.9]])
        idx = ToroidalCellIndex(points, cell_size=0.1)
        i, d = idx.nearest((0.12, 0.1))
        assert i == 0
        assert d == pytest.approx(0.02)

    def test_wraps(self):
        points = np.array([[0.02, 0.5], [0.5, 0.5]])
        idx = ToroidalCellIndex(points, cell_size=0.1)
        i, d = idx.nearest((0.98, 0.5))
        assert i == 0
        assert d == pytest.approx(0.04)

    def test_empty_raises(self):
        idx = ToroidalCellIndex(np.empty((0, 2)), 0.1)
        with pytest.raises(ValueError):
            idx.nearest((0.5, 0.5))

    @given(st.lists(st.tuples(coords, coords), min_size=1, max_size=40), st.tuples(coords, coords))
    @settings(max_examples=100, deadline=None)
    def test_matches_brute_force(self, pts, probe):
        points = np.array(pts)
        idx = ToroidalCellIndex(points, cell_size=0.15)
        _, d = idx.nearest(probe)
        expected = UNIT_TORUS.distances(probe, points).min()
        assert d == pytest.approx(float(expected), abs=1e-12)
