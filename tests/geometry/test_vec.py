"""Tests for 2-D vector helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.vec import (
    angle_of,
    as_points_array,
    from_polar,
    norm,
    rotate,
    translate,
    unit_vector,
)

angles = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)


class TestUnitVector:
    def test_east(self):
        x, y = unit_vector(0.0)
        assert (x, y) == pytest.approx((1.0, 0.0))

    def test_north(self):
        x, y = unit_vector(math.pi / 2)
        assert x == pytest.approx(0.0, abs=1e-12)
        assert y == pytest.approx(1.0)

    @given(angles)
    def test_unit_length(self, angle):
        assert norm(unit_vector(angle)) == pytest.approx(1.0)


class TestFromPolar:
    def test_radius_scales(self):
        x, y = from_polar(2.0, 0.0)
        assert (x, y) == pytest.approx((2.0, 0.0))

    @given(st.floats(min_value=0.0, max_value=100.0), angles)
    def test_round_trip(self, radius, angle):
        if radius > 1e-9:
            vec = from_polar(radius, angle)
            assert norm(vec) == pytest.approx(radius, rel=1e-9)
            recovered = angle_of(vec)
            assert math.cos(recovered) == pytest.approx(math.cos(angle), abs=1e-9)
            assert math.sin(recovered) == pytest.approx(math.sin(angle), abs=1e-9)


class TestAngleOf:
    def test_axes(self):
        assert angle_of((1.0, 0.0)) == pytest.approx(0.0)
        assert angle_of((0.0, 1.0)) == pytest.approx(math.pi / 2)
        assert angle_of((-1.0, 0.0)) == pytest.approx(math.pi)
        assert angle_of((0.0, -1.0)) == pytest.approx(3 * math.pi / 2)

    def test_zero_vector_raises(self):
        with pytest.raises(ValueError):
            angle_of((0.0, 0.0))

    def test_array_rows(self):
        arr = np.array([[1.0, 0.0], [0.0, 1.0]])
        out = angle_of(arr)
        assert np.allclose(out, [0.0, math.pi / 2])

    def test_array_zero_row_is_zero(self):
        arr = np.array([[0.0, 0.0]])
        assert angle_of(arr)[0] == 0.0


class TestRotate:
    def test_quarter_turn(self):
        x, y = rotate((1.0, 0.0), math.pi / 2)
        assert x == pytest.approx(0.0, abs=1e-12)
        assert y == pytest.approx(1.0)

    @given(angles, angles)
    def test_preserves_length(self, heading, by):
        vec = unit_vector(heading)
        assert norm(rotate(vec, by)) == pytest.approx(1.0)

    @given(angles)
    def test_inverse(self, by):
        vec = (0.3, -0.7)
        back = rotate(rotate(vec, by), -by)
        assert back[0] == pytest.approx(vec[0], abs=1e-9)
        assert back[1] == pytest.approx(vec[1], abs=1e-9)


class TestNormTranslate:
    def test_norm_scalar(self):
        assert norm((3.0, 4.0)) == pytest.approx(5.0)

    def test_norm_array(self):
        arr = np.array([[3.0, 4.0], [0.0, 1.0]])
        assert np.allclose(norm(arr), [5.0, 1.0])

    def test_translate(self):
        assert translate((1.0, 2.0), (0.5, -0.5)) == (1.5, 1.5)


class TestAsPointsArray:
    def test_single_point(self):
        out = as_points_array((1.0, 2.0))
        assert out.shape == (1, 2)

    def test_list_of_points(self):
        out = as_points_array([(1.0, 2.0), (3.0, 4.0)])
        assert out.shape == (2, 2)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            as_points_array([1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            as_points_array(np.zeros((2, 3)))
