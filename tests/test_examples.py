"""Smoke tests: every example script runs to completion."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable: at least three scenarios


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must print their findings"
