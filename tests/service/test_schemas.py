"""The fullview-api-v1 wire schema: strict parsing, exact round-trips."""

from __future__ import annotations

import json

import pytest

from repro.api import config_digest
from repro.api.schemas import (
    API_SCHEMA,
    DeployRequest,
    ErrorBody,
    EstimateRequest,
    EvaluateRequest,
    REQUEST_TYPES,
    describe_schema,
    parse_request,
)
from repro.errors import SchemaError


def estimate_body(**overrides):
    body = {
        "kind": "point",
        "radius": 0.25,
        "angle_of_view": 1.2,
        "n": 30,
        "theta": 1.0,
    }
    body.update(overrides)
    return body


class TestParsing:
    def test_round_trip_is_identity(self):
        request = EstimateRequest.from_wire(estimate_body(trials=32, seed=9))
        again = EstimateRequest.from_wire(json.loads(json.dumps(request.to_wire())))
        assert again == request

    def test_to_wire_carries_schema_tag(self):
        assert DeployRequest.from_wire(
            {"radius": 0.2, "angle_of_view": 1.0, "n": 4}
        ).to_wire()["schema"] == API_SCHEMA

    def test_wrong_schema_tag_rejected(self):
        with pytest.raises(SchemaError):
            EstimateRequest.from_wire(estimate_body(schema="fullview-api-v0"))

    def test_unknown_field_rejected_by_name(self):
        with pytest.raises(SchemaError, match="bogus"):
            EstimateRequest.from_wire(estimate_body(bogus=1))

    def test_missing_required_field_rejected_by_name(self):
        body = estimate_body()
        del body["theta"]
        with pytest.raises(SchemaError, match="theta"):
            EstimateRequest.from_wire(body)

    def test_non_object_body_rejected(self):
        with pytest.raises(SchemaError):
            EstimateRequest.from_wire([1, 2, 3])

    def test_bool_never_passes_as_int(self):
        with pytest.raises(SchemaError):
            EstimateRequest.from_wire(estimate_body(n=True))

    def test_string_never_passes_as_number(self):
        with pytest.raises(SchemaError):
            EstimateRequest.from_wire(estimate_body(radius="0.25"))

    def test_int_widens_to_float(self):
        request = EstimateRequest.from_wire(estimate_body(radius=1))
        assert request.radius == pytest.approx(1.0)
        assert isinstance(request.radius, float)

    def test_point_parses_to_tuple(self):
        request = EstimateRequest.from_wire(estimate_body(point=[0.5, 0.5]))
        assert request.point == (0.5, 0.5)

    def test_malformed_point_rejected(self):
        with pytest.raises(SchemaError):
            EstimateRequest.from_wire(estimate_body(point=[0.5]))

    def test_bad_kind_rejected(self):
        with pytest.raises(SchemaError, match="kind"):
            EstimateRequest.from_wire(estimate_body(kind="sideways"))

    def test_bad_condition_rejected(self):
        with pytest.raises(SchemaError, match="condition"):
            EvaluateRequest.from_wire(
                {
                    "radius": 0.2,
                    "angle_of_view": 1.0,
                    "n": 4,
                    "theta": 1.0,
                    "condition": "vibes",
                }
            )

    def test_parse_request_routes_by_endpoint(self):
        request = parse_request("deploy", {"radius": 0.2, "angle_of_view": 1.0, "n": 4})
        assert isinstance(request, DeployRequest)

    def test_parse_request_unknown_endpoint(self):
        with pytest.raises(SchemaError, match="endpoint"):
            parse_request("optimize", {})


class TestCanonical:
    def test_spelled_defaults_digest_identically(self):
        implicit = EstimateRequest.from_wire(estimate_body())
        explicit = EstimateRequest.from_wire(
            estimate_body(
                trials=200, seed=0, condition="exact", k=1,
                sample_points=256, kernel="auto",
            )
        )
        assert implicit.canonical() == explicit.canonical()
        assert config_digest(implicit.canonical()) == config_digest(
            explicit.canonical()
        )

    def test_canonical_embeds_endpoint(self):
        assert EstimateRequest.from_wire(estimate_body()).canonical()[
            "endpoint"
        ] == "estimate"

    def test_different_seeds_digest_differently(self):
        a = EstimateRequest.from_wire(estimate_body(seed=1))
        b = EstimateRequest.from_wire(estimate_body(seed=2))
        assert config_digest(a.canonical()) != config_digest(b.canonical())


class TestDescribe:
    def test_every_endpoint_described(self):
        description = describe_schema()
        assert description["schema"] == API_SCHEMA
        assert set(description["endpoints"]) == set(REQUEST_TYPES)

    def test_required_and_default_fields_marked(self):
        fields = describe_schema()["endpoints"]["estimate"]["fields"]
        assert fields["kind"]["required"] is True
        assert fields["seed"] == {"type": "int", "required": False, "default": 0}

    def test_description_is_json_serializable(self):
        json.dumps(describe_schema())


class TestErrorBody:
    def test_defaults(self):
        body = ErrorBody(error="nope")
        assert body.kind == "FullViewError"
        assert body.status == 400
        assert json.loads(json.dumps(body.to_wire()))["error"] == "nope"
