"""The coverage service end to end: routing, caching, coalescing, drain.

Every test hosts a real :class:`CoverageService` on an ephemeral port
inside ``asyncio.run`` and talks raw HTTP to it.  Compute is replaced
by a counted (and, where ordering matters, event-gated) fake, so the
"exactly one engine run" properties are asserted deterministically
rather than by racing real Monte-Carlo timings.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.errors import InvalidParameterError
from repro.obs.ledger import load_runs
from repro.service import CoverageService, ResultCache
from tests.service.conftest import http_request, post


def body(seed: int = 0, **overrides):
    payload = {
        "kind": "point",
        "radius": 0.25,
        "angle_of_view": 1.2,
        "n": 30,
        "theta": 1.0,
        "trials": 8,
        "seed": seed,
    }
    payload.update(overrides)
    return payload


def run(coro):
    return asyncio.run(coro)


async def started(**kwargs) -> CoverageService:
    service = CoverageService(**kwargs)
    await service.start()
    return service


class TestRouting:
    def test_healthz_schema_stats_and_misses(self):
        async def main():
            service = await started()
            health = await http_request(service.port, "GET", "/v1/healthz")
            schema = await http_request(service.port, "GET", "/v1/schema")
            stats = await http_request(service.port, "GET", "/v1/stats")
            missing = await http_request(service.port, "GET", "/v1/nothing")
            wrong_verb = await http_request(service.port, "POST", "/v1/healthz", {})
            await service.stop()
            return health, schema, stats, missing, wrong_verb

        health, schema, stats, missing, wrong_verb = run(main())
        assert health == (200, {"status": "ok", "schema": "fullview-api-v1"})
        assert schema[0] == 200 and "estimate" in schema[1]["endpoints"]
        assert stats[0] == 200 and stats[1]["pending"] == 0
        assert missing[0] == 404
        assert wrong_verb[0] == 405

    def test_invalid_json_and_schema_violations_are_400(self):
        async def main():
            service = await started()
            bad_field = await post(service.port, "estimate", body(bogus=1))
            missing = await post(
                service.port, "estimate", {"kind": "point", "radius": 0.2}
            )
            await service.stop()
            return bad_field, missing

        bad_field, missing = run(main())
        assert bad_field[0] == 400
        assert bad_field[1]["kind"] == "SchemaError"
        assert missing[0] == 400


class TestComputePath:
    def test_miss_then_warm_hit_computes_once(self, monkeypatch):
        calls = []

        def fake_run(request, *, workers=None, executor=None):
            calls.append(request)
            return {"answer": 42}

        monkeypatch.setattr("repro.service.server.run_request", fake_run)

        async def main():
            service = await started()
            first = await post(service.port, "estimate", body())
            second = await post(service.port, "estimate", body())
            counters = service.metrics.snapshot()["counters"]
            await service.stop()
            return first, second, counters

        first, second, counters = run(main())
        assert len(calls) == 1, "warm cache hit must not re-compute"
        assert first[0] == second[0] == 200
        assert first[1]["source"] == "computed" and first[1]["cached"] is False
        assert second[1]["source"] == "memory" and second[1]["cached"] is True
        assert second[1]["result"] == first[1]["result"] == {"answer": 42}
        assert counters["service_cache_misses"] == 1
        assert counters["service_cache_hits"] == 1

    def test_n_concurrent_identical_requests_one_compute(self, monkeypatch):
        fan_out = 5
        calls = []
        gate = threading.Event()

        def fake_run(request, *, workers=None, executor=None):
            calls.append(request)
            assert gate.wait(timeout=10)
            return {"answer": 42}

        monkeypatch.setattr("repro.service.server.run_request", fake_run)

        async def main():
            service = await started(queue_limit=fan_out, service_workers=2)
            tasks = [
                asyncio.ensure_future(post(service.port, "estimate", body()))
                for _ in range(fan_out)
            ]
            # Followers are parked on the leader's future once the
            # coalesce counter accounts for all N-1 of them.
            while service.metrics.counter("service_coalesced") < fan_out - 1:
                await asyncio.sleep(0.005)
            gate.set()
            responses = await asyncio.gather(*tasks)
            counters = service.metrics.snapshot()["counters"]
            await service.stop()
            return responses, counters

        responses, counters = run(main())
        assert len(calls) == 1, "N identical concurrent requests => 1 engine run"
        assert counters["service_coalesced"] == fan_out - 1
        assert counters["service_cache_misses"] == 1
        assert [status for status, _ in responses] == [200] * fan_out
        sources = sorted(envelope["source"] for _, envelope in responses)
        assert sources == ["coalesced"] * (fan_out - 1) + ["computed"]
        assert {tuple(sorted(envelope["result"].items())) for _, envelope in responses} == {
            (("answer", 42),)
        }

    def test_backpressure_refuses_with_503(self, monkeypatch):
        gate = threading.Event()

        def fake_run(request, *, workers=None, executor=None):
            assert gate.wait(timeout=10)
            return {"answer": 42}

        monkeypatch.setattr("repro.service.server.run_request", fake_run)

        async def main():
            service = await started(queue_limit=1, service_workers=2)
            first = asyncio.ensure_future(post(service.port, "estimate", body(seed=1)))
            while service.metrics.gauge("service_queue_depth") != 1:
                await asyncio.sleep(0.005)
            refused = await post(service.port, "estimate", body(seed=2))
            gate.set()
            ok = await first
            counters = service.metrics.snapshot()["counters"]
            await service.stop()
            return refused, ok, counters

        refused, ok, counters = run(main())
        assert refused[0] == 503
        assert refused[1]["kind"] == "ServiceError"
        assert ok[0] == 200
        assert counters["service_rejections"] == 1

    def test_job_errors_reach_leader_and_followers(self, monkeypatch):
        gate = threading.Event()

        def fake_run(request, *, workers=None, executor=None):
            assert gate.wait(timeout=10)
            raise InvalidParameterError("radius out of domain")

        monkeypatch.setattr("repro.service.server.run_request", fake_run)

        async def main():
            service = await started()
            leader = asyncio.ensure_future(post(service.port, "estimate", body()))
            follower = asyncio.ensure_future(post(service.port, "estimate", body()))
            while service.metrics.counter("service_coalesced") < 1:
                await asyncio.sleep(0.005)
            gate.set()
            responses = await asyncio.gather(leader, follower)
            await service.stop()
            return responses

        responses = run(main())
        for status, envelope in responses:
            assert status == 400
            assert envelope["kind"] == "InvalidParameterError"
            assert "radius" in envelope["error"]

    def test_failed_compute_is_not_cached(self, monkeypatch):
        calls = []

        def fake_run(request, *, workers=None, executor=None):
            calls.append(request)
            if len(calls) == 1:
                raise InvalidParameterError("transient misconfiguration")
            return {"answer": 42}

        monkeypatch.setattr("repro.service.server.run_request", fake_run)

        async def main():
            service = await started()
            first = await post(service.port, "estimate", body())
            second = await post(service.port, "estimate", body())
            await service.stop()
            return first, second

        first, second = run(main())
        assert first[0] == 400
        assert second == (200, second[1])
        assert second[1]["source"] == "computed"
        assert len(calls) == 2

    def test_graceful_stop_drains_in_flight_compute(self, monkeypatch):
        gate = threading.Event()

        def fake_run(request, *, workers=None, executor=None):
            assert gate.wait(timeout=10)
            return {"answer": 42}

        monkeypatch.setattr("repro.service.server.run_request", fake_run)

        async def main():
            service = await started()
            inflight = asyncio.ensure_future(post(service.port, "estimate", body()))
            while service.metrics.gauge("service_queue_depth") != 1:
                await asyncio.sleep(0.005)
            stopping = asyncio.ensure_future(service.stop())
            await asyncio.sleep(0.02)
            assert not stopping.done(), "stop must wait for in-flight work"
            gate.set()
            response = await inflight
            await stopping
            return response

        status, envelope = run(main())
        assert status == 200
        assert envelope["result"] == {"answer": 42}


class TestLedgerPolicy:
    def test_rows_for_misses_and_disk_hits_only(self, tmp_path, monkeypatch):
        """ok rows per compute, one cached row per disk hit, none for memory."""
        calls = []

        def fake_run(request, *, workers=None, executor=None):
            calls.append(request)
            return {"answer": 42}

        monkeypatch.setattr("repro.service.server.run_request", fake_run)
        cache_dir = tmp_path / "cache"
        ledger = tmp_path / "runs.jsonl"

        async def generation_one():
            service = await started(
                cache=ResultCache(cache_dir), ledger_path=ledger
            )
            await post(service.port, "estimate", body())  # miss -> ok row
            await post(service.port, "estimate", body())  # memory -> no row
            await service.stop()

        async def generation_two():
            service = await started(
                cache=ResultCache(cache_dir), ledger_path=ledger
            )
            await post(service.port, "estimate", body())  # disk -> cached row
            await post(service.port, "estimate", body())  # memory -> no row
            await service.stop()

        run(generation_one())
        run(generation_two())

        rows, problems = load_runs(ledger)
        assert problems == []
        assert len(calls) == 1, "the second process must reuse the disk cache"
        assert [row["outcome"] for row in rows] == ["cached", "ok"]
        cached_row, ok_row = rows
        assert ok_row["experiment"] == "svc-estimate"
        assert ok_row["trials_completed"] == body()["trials"]
        # Cached rows carry no throughput, so rate numbers stay honest.
        assert cached_row["trials_completed"] == 0
        assert cached_row["trials_per_sec"] == pytest.approx(0.0)
        assert cached_row["config_digest"] == ok_row["config_digest"]

    def test_error_outcome_row(self, tmp_path, monkeypatch):
        def fake_run(request, *, workers=None, executor=None):
            raise InvalidParameterError("broken")

        monkeypatch.setattr("repro.service.server.run_request", fake_run)
        ledger = tmp_path / "runs.jsonl"

        async def main():
            service = await started(ledger_path=ledger)
            await post(service.port, "estimate", body())
            await service.stop()

        run(main())
        rows, problems = load_runs(ledger)
        assert problems == []
        assert [row["outcome"] for row in rows] == ["error"]
