"""The ``fullview serve`` wiring and the ``runs --outcome`` filter."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.cli import build_parser
from repro.obs.ledger import LEDGER_FORMAT, append_run

SRC = Path(__file__).resolve().parent.parent.parent / "src"


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.func.__name__ == "_cmd_serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8471
        assert args.cache_dir is None
        assert args.queue_limit == 8
        assert args.service_workers == 2
        assert args.workers is None
        assert args.executor is None
        assert args.ledger is None

    def test_all_flags(self, tmp_path):
        args = build_parser().parse_args(
            [
                "serve",
                "--host", "0.0.0.0",
                "--port", "0",
                "--cache-dir", str(tmp_path),
                "--queue-limit", "3",
                "--service-workers", "4",
                "--workers", "2",
                "--executor", "thread",
                "--ledger", str(tmp_path / "runs.jsonl"),
                "--metrics", str(tmp_path / "metrics.json"),
            ]
        )
        assert args.port == 0
        assert args.queue_limit == 3
        assert args.executor == "thread"
        assert args.ledger == str(tmp_path / "runs.jsonl")

    def test_bare_ledger_flag_means_default_location(self):
        args = build_parser().parse_args(["serve", "--ledger"])
        assert args.ledger == ""


class TestRunsOutcomeFilter:
    @staticmethod
    def _row(run_id: str, outcome: str) -> dict:
        return {
            "format": LEDGER_FORMAT,
            "run_id": run_id,
            "experiment": "svc-estimate",
            "config_digest": "deadbeef",
            "seed": 0,
            "git_sha": None,
            "executor": "auto",
            "workers": 1,
            "wall_seconds": 0.5,
            "trials_per_sec": 0.0,
            "trials_completed": 0,
            "trials_failed": 0,
            "outcome": outcome,
            "retries": 0,
            "respawns": 0,
            "quarantined": 0,
            "checkpoints_recovered": 0,
            "trace_path": None,
            "metrics_path": None,
            "started_unix": 1754000000.0,
        }

    def test_cached_outcome_surfaces_and_filters(self, tmp_path, capsys):
        from repro.cli import main

        ledger = tmp_path / "runs.jsonl"
        append_run(ledger, self._row("aaaaaaaaaaaa", "ok"))
        append_run(ledger, self._row("bbbbbbbbbbbb", "cached"))
        assert main(["runs", "--ledger", str(ledger)]) == 0
        table = capsys.readouterr().out
        assert "cached" in table
        assert main(
            ["runs", "--ledger", str(ledger), "--outcome", "cached", "--json"]
        ) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["run_id"] for row in rows] == ["bbbbbbbbbbbb"]


class TestServeEndToEnd:
    def test_serve_answers_and_drains_on_sigterm(self, tmp_path):
        """Boot the real CLI server, ask one question, SIGTERM it."""
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        try:
            line = proc.stdout.readline()
            assert "listening on http://" in line, line
            port = int(line.rsplit(":", 1)[1].split()[0].strip("/"))
            from repro.service import ServiceClient

            with ServiceClient("127.0.0.1", port, timeout=60) as client:
                assert client.healthz()["status"] == "ok"
                envelope = client.deploy(
                    radius=0.2, angle_of_view=1.0, n=3, seed=1
                )
                assert envelope["result"]["n"] == 3
            proc.terminate()
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
