"""Shared helpers for the coverage-service tests.

The server is exercised from *inside* its own event loop via raw
asyncio streams (no third-party HTTP client, no extra threads), so
tests can deterministically interleave requests with gated fake
computations.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple


async def http_request(
    port: int,
    method: str,
    path: str,
    payload: Optional[Dict[str, Any]] = None,
    host: str = "127.0.0.1",
) -> Tuple[int, Any]:
    """One HTTP exchange against a CoverageService; returns (status, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        raw = await reader.readexactly(length) if length else b""
        return status, json.loads(raw.decode("utf-8")) if raw else None
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def post(port: int, endpoint: str, payload: Dict[str, Any]):
    """Coroutine POSTing ``payload`` to ``/v1/<endpoint>``."""
    return http_request(port, "POST", f"/v1/{endpoint}", payload)
