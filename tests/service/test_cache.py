"""The content-addressed result cache: tiers, durability, corruption."""

from __future__ import annotations

import json

from repro.api.schemas import EstimateRequest
from repro.service.cache import CACHE_FORMAT, ResultCache, cache_key


def request(seed: int = 0) -> EstimateRequest:
    return EstimateRequest(
        kind="point", radius=0.25, angle_of_view=1.2, n=30, theta=1.0, seed=seed
    )


class TestCacheKey:
    def test_stable_for_equal_requests(self):
        assert cache_key(request(), "abc") == cache_key(request(), "abc")

    def test_changes_with_seed(self):
        assert cache_key(request(0), "abc") != cache_key(request(1), "abc")

    def test_changes_with_git_sha(self):
        assert cache_key(request(), "abc") != cache_key(request(), "def")

    def test_unversioned_tree_still_keys(self):
        assert len(cache_key(request(), None)) == 64


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = ResultCache()
        key = cache_key(request(), None)
        assert cache.get(key) == (None, None)
        cache.put(key, {"answer": 42})
        assert cache.get(key) == ({"answer": 42}, "memory")
        assert len(cache) == 1

    def test_memory_only_without_directory(self):
        cache = ResultCache()
        assert cache.directory is None


class TestDiskTier:
    def test_round_trip_across_instances(self, tmp_path):
        key = cache_key(request(), "sha")
        ResultCache(tmp_path).put(key, {"answer": 42})
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) == ({"answer": 42}, "disk")
        # Promotion: the second read is a memory hit.
        assert fresh.get(key) == ({"answer": 42}, "memory")

    def test_entries_are_fanned_out_and_stamped(self, tmp_path):
        key = cache_key(request(), "sha")
        ResultCache(tmp_path).put(key, 7)
        path = tmp_path / key[:2] / f"{key}.json"
        envelope = json.loads(path.read_text())
        assert envelope["format"] == CACHE_FORMAT
        assert envelope["key"] == key
        assert "sha256" in envelope

    def test_corrupt_json_is_a_miss(self, tmp_path):
        key = cache_key(request(), "sha")
        ResultCache(tmp_path).put(key, 7)
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text("{ torn")
        assert ResultCache(tmp_path).get(key) == (None, None)

    def test_tampered_checksum_is_a_miss(self, tmp_path):
        key = cache_key(request(), "sha")
        ResultCache(tmp_path).put(key, 7)
        path = tmp_path / key[:2] / f"{key}.json"
        envelope = json.loads(path.read_text())
        envelope["result"] = 8
        path.write_text(json.dumps(envelope))
        assert ResultCache(tmp_path).get(key) == (None, None)

    def test_wrong_key_in_envelope_is_a_miss(self, tmp_path):
        key_a = cache_key(request(0), "sha")
        key_b = cache_key(request(1), "sha")
        cache = ResultCache(tmp_path)
        cache.put(key_a, 7)
        source = tmp_path / key_a[:2] / f"{key_a}.json"
        target = tmp_path / key_b[:2] / f"{key_b}.json"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source.read_text())
        assert ResultCache(tmp_path).get(key_b) == (None, None)
