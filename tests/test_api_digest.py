"""Digest stability: one canonical hash across spellings and processes.

The satellite contract: identical configurations built via
``repro.api``, via raw dataclasses, or recovered from a JSON round
trip must produce byte-identical digests — across key orderings and
across processes (no ``PYTHONHASHSEED`` leakage).
"""

from __future__ import annotations

import json
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import canonical_payload, config_digest
from repro.api.schemas import EstimateRequest
from repro.ioutil import config_digest as ioutil_config_digest
from repro.simulation.engine import MonteCarloConfig

SRC = Path(__file__).resolve().parent.parent / "src"

# JSON-representable payloads: finite floats only (NaN breaks JSON
# round-trips by design), string keys, modest depth.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=12),
)
_payloads = st.recursive(
    _scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=8), inner, max_size=4),
    ),
    max_leaves=12,
)


class TestOneImplementation:
    def test_api_and_ioutil_are_the_same_function(self):
        assert config_digest is ioutil_config_digest

    def test_digest_is_sha256_hex(self):
        digest = config_digest({"n": 500, "seed": 7})
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")


class TestSpellings:
    def test_key_order_never_matters(self):
        assert config_digest({"n": 500, "seed": 7}) == config_digest(
            {"seed": 7, "n": 500}
        )

    def test_dataclass_and_raw_dict_agree(self):
        config = MonteCarloConfig(trials=64, seed=9)
        as_dict = {
            "trials": 64,
            "seed": 9,
            "use_index": config.use_index,
            "workers": None,
            "executor": None,
        }
        assert config_digest(config) == config_digest(as_dict)

    def test_local_dataclass_and_dict_agree(self):
        @dataclass(frozen=True)
        class Config:
            n: int
            seed: int

        assert config_digest(Config(n=500, seed=7)) == config_digest(
            {"n": 500, "seed": 7}
        )

    def test_tuple_and_list_agree(self):
        assert config_digest({"point": (0.5, 0.5)}) == config_digest(
            {"point": [0.5, 0.5]}
        )

    def test_numpy_scalars_agree_with_python(self):
        assert config_digest(
            {"radius": np.float64(0.25), "n": np.int64(30)}
        ) == config_digest({"radius": 0.25, "n": 30})

    def test_numpy_array_agrees_with_list(self):
        assert config_digest({"point": np.array([0.5, 0.25])}) == config_digest(
            {"point": [0.5, 0.25]}
        )

    def test_wire_request_defaults_vs_explicit(self):
        implicit = EstimateRequest(
            kind="point", radius=0.25, angle_of_view=1.2, n=30, theta=1.0
        )
        explicit = EstimateRequest.from_wire(implicit.to_wire())
        assert config_digest(implicit.canonical()) == config_digest(
            explicit.canonical()
        )


class TestHypothesisSweep:
    @settings(max_examples=200, deadline=None)
    @given(payload=_payloads)
    def test_json_round_trip_preserves_digest(self, payload):
        canonical = canonical_payload(payload)
        round_tripped = json.loads(json.dumps(canonical))
        assert config_digest(round_tripped) == config_digest(payload)

    @settings(max_examples=200, deadline=None)
    @given(entries=st.dictionaries(st.text(max_size=8), _scalars, max_size=6))
    def test_insertion_order_never_matters(self, entries):
        reversed_order = dict(reversed(list(entries.items())))
        assert config_digest(entries) == config_digest(reversed_order)

    @settings(max_examples=100, deadline=None)
    @given(payload=_payloads)
    def test_canonicalization_is_idempotent(self, payload):
        once = canonical_payload(payload)
        assert canonical_payload(once) == once


class TestCrossProcess:
    def test_digest_is_identical_in_a_fresh_interpreter(self):
        config = {"experiment": "EQ2-MC", "trials": 800, "seed": 42, "nested": {"k": 1}}
        script = (
            "import json, sys\n"
            "from repro.api import config_digest\n"
            "print(config_digest(json.loads(sys.argv[1])))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, json.dumps(config)],
            capture_output=True,
            text=True,
            timeout=120,
            env={"PYTHONPATH": str(SRC), "PYTHONHASHSEED": "12345"},
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == config_digest(config)

    def test_ledger_checkpoint_and_cache_share_the_digest(self):
        """The three consumers all call the one ioutil implementation."""
        from repro.obs import __init__ as _  # noqa: F401 - import check only
        import repro.obs as obs_module
        import repro.service.cache as cache_module
        import repro.simulation.runner as runner_module

        for module in (obs_module, cache_module, runner_module):
            assert getattr(module, "config_digest") is ioutil_config_digest


def test_requires_hypothesis_marker_absent():
    """The sweep runs in tier 1: hypothesis is a baked-in test dep."""
    assert "hypothesis" in sys.modules
