"""The canonical configuration digest, re-exported at the facade.

``repro.api.config_digest`` is the public spelling of the one digest
implementation in :mod:`repro.ioutil` — the same canonical
(dataclass/dict/JSON-agnostic, sorted-key, sha256) hashing that stamps
checkpoints, keys the service result cache and fills the run ledger's
``config_digest`` column.  It lives in :mod:`repro.ioutil` so the
low-level layers (obs, simulation) can share it without importing the
facade; clients should import it from here.

Two configurations digest identically exactly when they are the same
configuration: equal seeds, equal parameters, any spelling::

    from repro.api import config_digest

    config_digest({"n": 500, "seed": 7}) == config_digest(
        {"seed": 7, "n": 500}
    )  # True — key order never matters
"""

from __future__ import annotations

from repro.ioutil import canonical_payload, config_digest

__all__ = [
    "canonical_payload",
    "config_digest",
]
