"""The ``fullview-api-v1`` wire schema: typed request/response bodies.

The coverage service (:mod:`repro.service`) and any future client
speak JSON over HTTP; this module is the single place that JSON's
shape is defined.  Each body is a frozen keyword-only dataclass whose
fields mirror the :mod:`repro.api` facade signatures (``deploy`` /
``evaluate_grid`` / ``estimate``), with:

- :meth:`WireBody.from_wire` — strict parsing: unknown fields reject,
  missing required fields reject, types are checked (bools never pass
  as ints), and the optional ``schema`` tag must be exactly
  :data:`API_SCHEMA`.  Every violation raises
  :class:`~repro.errors.SchemaError`.
- :meth:`WireBody.to_wire` — the inverse: a JSON-ready dict carrying
  the ``schema`` tag, such that ``from_wire(to_wire(body)) == body``.
- :meth:`WireBody.canonical` — the body as canonical plain data with
  every default filled in, which is what
  :func:`repro.api.config_digest` hashes: two requests that mean the
  same computation digest identically no matter how they were spelled.

:func:`describe_schema` renders the whole contract (endpoints, fields,
types, defaults) as one JSON-ready dict — served at ``GET /v1/schema``
so clients can discover the contract without reading source.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Mapping, Optional, Tuple

from repro.errors import SchemaError
from repro.ioutil import canonical_payload

__all__ = [
    "API_SCHEMA",
    "DeployRequest",
    "DeployResult",
    "ErrorBody",
    "EstimateRequest",
    "EstimateResult",
    "EvaluateRequest",
    "EvaluateResult",
    "REQUEST_TYPES",
    "WireBody",
    "describe_schema",
    "parse_request",
]

#: Version tag of this wire contract; breaking changes bump it.
API_SCHEMA = "fullview-api-v1"

#: Estimator kinds the estimate endpoint accepts (mirrors repro.api).
_ESTIMATE_KINDS = ("point", "grid_failure", "area_fraction", "condition_chain")

#: Coverage conditions the evaluate/estimate endpoints accept.
_CONDITIONS = ("exact", "necessary", "sufficient", "k_coverage")

#: Kernel dispatch policies (mirrors core.kernels).
_KERNELS = ("auto", "dense", "sparse")


def _wire(kind: str, **kwargs: Any) -> Any:
    """A dataclass field carrying its wire-type tag in metadata."""
    return field(metadata={"wire": kind}, **kwargs)


def _coerce(owner: str, name: str, kind: str, value: Any) -> Any:
    """Check/convert one wire value against its declared ``kind``."""
    optional = kind.endswith("?")
    if optional:
        if value is None:
            return None
        kind = kind[:-1]
    if kind == "int":
        if isinstance(value, bool) or not isinstance(value, int):
            raise SchemaError(f"{owner}.{name} must be an integer, got {value!r}")
        return value
    if kind == "float":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SchemaError(f"{owner}.{name} must be a number, got {value!r}")
        return float(value)
    if kind == "str":
        if not isinstance(value, str):
            raise SchemaError(f"{owner}.{name} must be a string, got {value!r}")
        return value
    if kind == "point":
        if (
            not isinstance(value, (list, tuple))
            or len(value) != 2
            or any(isinstance(v, bool) or not isinstance(v, (int, float)) for v in value)
        ):
            raise SchemaError(
                f"{owner}.{name} must be a two-number [x, y] pair, got {value!r}"
            )
        return (float(value[0]), float(value[1]))
    raise SchemaError(f"{owner}.{name} has unknown wire type {kind!r}")


@dataclass(frozen=True, kw_only=True)
class WireBody:
    """Base for every v1 wire body: strict parse, exact serialize."""

    #: The service route this body belongs to ("" for result bodies).
    ENDPOINT: ClassVar[str] = ""

    @classmethod
    def from_wire(cls, payload: Any) -> "WireBody":
        """Parse a decoded JSON object into a validated body.

        Rejects non-objects, a wrong ``schema`` tag, unknown fields,
        missing required fields and wrongly-typed values — all as
        :class:`~repro.errors.SchemaError`, so the service can map any
        parse failure to one 400 response shape.
        """
        if not isinstance(payload, Mapping):
            raise SchemaError(
                f"{cls.__name__} body must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        body = dict(payload)
        tag = body.pop("schema", API_SCHEMA)
        if tag != API_SCHEMA:
            raise SchemaError(
                f"unsupported schema {tag!r}; this server speaks {API_SCHEMA!r}"
            )
        known = {spec.name for spec in dataclasses.fields(cls)}
        unknown = sorted(set(body) - known)
        if unknown:
            raise SchemaError(
                f"{cls.__name__} does not accept field(s) {', '.join(unknown)}"
            )
        kwargs: Dict[str, Any] = {}
        for spec in dataclasses.fields(cls):
            kind = spec.metadata.get("wire", "float")
            if spec.name in body:
                kwargs[spec.name] = _coerce(cls.__name__, spec.name, kind, body[spec.name])
            elif (
                spec.default is dataclasses.MISSING
                and spec.default_factory is dataclasses.MISSING
            ):
                raise SchemaError(f"{cls.__name__} requires field {spec.name!r}")
        return cls(**kwargs)

    def to_wire(self) -> Dict[str, Any]:
        """The body as a JSON-ready dict, ``schema`` tag included."""
        wire = {"schema": API_SCHEMA}
        wire.update(canonical_payload(self))
        return wire

    def canonical(self) -> Dict[str, Any]:
        """Canonical plain data with every default filled in.

        This is the digest input: requests that mean the same
        computation canonicalize to the same dict regardless of which
        defaults were spelled out, field order, or a JSON round trip.
        """
        canonical = canonical_payload(self)
        canonical["endpoint"] = self.ENDPOINT
        return canonical


@dataclass(frozen=True, kw_only=True)
class DeployRequest(WireBody):
    """``POST /v1/deploy`` — scatter ``n`` seeded cameras, return the fleet."""

    ENDPOINT: ClassVar[str] = "deploy"

    radius: float = _wire("float")
    angle_of_view: float = _wire("float")
    n: int = _wire("int")
    seed: int = _wire("int", default=0)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise SchemaError(f"deploy.n must be >= 1, got {self.n!r}")


@dataclass(frozen=True, kw_only=True)
class EvaluateRequest(WireBody):
    """``POST /v1/evaluate`` — deploy then grade a grid of points."""

    ENDPOINT: ClassVar[str] = "evaluate"

    radius: float = _wire("float")
    angle_of_view: float = _wire("float")
    n: int = _wire("int")
    theta: float = _wire("float")
    seed: int = _wire("int", default=0)
    condition: str = _wire("str", default="exact")
    resolution: Optional[int] = _wire("int?", default=None)
    k: int = _wire("int", default=1)
    kernel: str = _wire("str", default="auto")

    def __post_init__(self) -> None:
        if self.n < 1:
            raise SchemaError(f"evaluate.n must be >= 1, got {self.n!r}")
        if self.condition not in _CONDITIONS:
            raise SchemaError(
                f"evaluate.condition must be one of {_CONDITIONS}, got "
                f"{self.condition!r}"
            )
        if self.resolution is not None and self.resolution < 1:
            raise SchemaError(
                f"evaluate.resolution must be >= 1, got {self.resolution!r}"
            )
        if self.kernel not in _KERNELS:
            raise SchemaError(
                f"evaluate.kernel must be one of {_KERNELS}, got {self.kernel!r}"
            )


@dataclass(frozen=True, kw_only=True)
class EstimateRequest(WireBody):
    """``POST /v1/estimate`` — one of the four Monte-Carlo estimators."""

    ENDPOINT: ClassVar[str] = "estimate"

    kind: str = _wire("str")
    radius: float = _wire("float")
    angle_of_view: float = _wire("float")
    n: int = _wire("int")
    theta: float = _wire("float")
    trials: int = _wire("int", default=200)
    seed: int = _wire("int", default=0)
    condition: str = _wire("str", default="exact")
    point: Optional[Tuple[float, float]] = _wire("point?", default=None)
    k: int = _wire("int", default=1)
    sample_points: int = _wire("int", default=256)
    max_grid_points: Optional[int] = _wire("int?", default=None)
    kernel: str = _wire("str", default="auto")

    def __post_init__(self) -> None:
        if self.kind not in _ESTIMATE_KINDS:
            raise SchemaError(
                f"estimate.kind must be one of {_ESTIMATE_KINDS}, got {self.kind!r}"
            )
        if self.n < 1:
            raise SchemaError(f"estimate.n must be >= 1, got {self.n!r}")
        if self.trials < 1:
            raise SchemaError(f"estimate.trials must be >= 1, got {self.trials!r}")
        if self.condition not in _CONDITIONS:
            raise SchemaError(
                f"estimate.condition must be one of {_CONDITIONS}, got "
                f"{self.condition!r}"
            )
        if self.sample_points < 1:
            raise SchemaError(
                f"estimate.sample_points must be >= 1, got {self.sample_points!r}"
            )
        if self.kernel not in _KERNELS:
            raise SchemaError(
                f"estimate.kernel must be one of {_KERNELS}, got {self.kernel!r}"
            )


@dataclass(frozen=True, kw_only=True)
class DeployResult(WireBody):
    """Body of a deploy response: the deployed fleet, column-wise."""

    n: int = _wire("int")
    seed: int = _wire("int")
    positions: Any = _wire("point?", default=None)
    orientations: Any = _wire("point?", default=None)
    radii: Any = _wire("point?", default=None)
    angles_of_view: Any = _wire("point?", default=None)


@dataclass(frozen=True, kw_only=True)
class EvaluateResult(WireBody):
    """Body of an evaluate response: verdict counts over the grid."""

    fraction: float = _wire("float")
    num_covered: int = _wire("int")
    num_points: int = _wire("int")
    theta: float = _wire("float")
    condition: str = _wire("str")


@dataclass(frozen=True, kw_only=True)
class EstimateResult(WireBody):
    """Body of an estimate response: the estimator-specific numbers."""

    kind: str = _wire("str")
    trials: int = _wire("int")
    estimate: Any = _wire("point?", default=None)


@dataclass(frozen=True, kw_only=True)
class ErrorBody(WireBody):
    """Every service error response: one shape for every failure."""

    error: str = _wire("str")
    kind: str = _wire("str", default="FullViewError")
    status: int = _wire("int", default=400)


#: Endpoint name -> request class, the service's routing table.
REQUEST_TYPES: Dict[str, type] = {
    DeployRequest.ENDPOINT: DeployRequest,
    EvaluateRequest.ENDPOINT: EvaluateRequest,
    EstimateRequest.ENDPOINT: EstimateRequest,
}


def parse_request(endpoint: str, payload: Any) -> WireBody:
    """Parse ``payload`` as the request body for ``endpoint``."""
    request_type = REQUEST_TYPES.get(endpoint)
    if request_type is None:
        raise SchemaError(
            f"unknown endpoint {endpoint!r}; known: {sorted(REQUEST_TYPES)}"
        )
    return request_type.from_wire(payload)


def describe_schema() -> Dict[str, Any]:
    """The whole v1 contract as one JSON-ready dict (``GET /v1/schema``)."""
    endpoints: Dict[str, Any] = {}
    for endpoint, request_type in sorted(REQUEST_TYPES.items()):
        fields: Dict[str, Any] = {}
        for spec in dataclasses.fields(request_type):
            required = (
                spec.default is dataclasses.MISSING
                and spec.default_factory is dataclasses.MISSING
            )
            fields[spec.name] = {
                "type": spec.metadata.get("wire", "float"),
                "required": required,
                "default": None if required else canonical_payload(spec.default),
            }
        endpoints[endpoint] = {
            "method": "POST",
            "path": f"/v1/{endpoint}",
            "fields": fields,
        }
    return {"schema": API_SCHEMA, "endpoints": endpoints}
