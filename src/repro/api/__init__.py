"""The stable, high-level facade of the reproduction.

Five entry points cover the workflows notebooks and scripts actually
need, with keyword-only arguments and defaults matching the paper:

- :func:`deploy` — describe cameras, scatter ``n`` of them, get a
  :class:`~repro.sensors.fleet.SensorFleet`.
- :func:`evaluate_grid` — full-view (or any named condition) verdicts
  over a grid of points, through the dense/sparse kernel dispatch.
- :func:`estimate` — the four seeded Monte-Carlo estimators behind one
  ``kind`` switch.
- :func:`run_experiment` — any registered paper experiment by id.
- :func:`load_results` — read back the CSV tables ``fullview run
  --out`` wrote.

Two supporting pieces round out the facade: :func:`config_digest`
(re-exported from :mod:`repro.api.digest`) is the one canonical
configuration hash shared by the coverage service cache, the run
ledger and checkpoint stamps; and :mod:`repro.api.schemas` defines the
``fullview-api-v1`` wire bodies the coverage service speaks.

Everything here re-exports blessed machinery from the deep modules —
no new behaviour, just a stable spelling.  Deep imports keep working;
this module exists so casual users never need them.

Quickstart::

    import math
    from repro.api import deploy, evaluate_grid

    fleet = deploy(radius=0.2, angle_of_view=math.pi / 3, n=500, seed=7)
    result = evaluate_grid(fleet=fleet, theta=math.pi / 3)
    print(f"full-view covered fraction: {result.fraction:.3f}")
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.core.batch import condition_mask
from repro.deployment.base import DeploymentScheme
from repro.deployment.uniform import UniformDeployment
from repro.errors import InvalidParameterError
from repro.experiments import registry as _registry
from repro.experiments.registry import ExperimentResult
from repro.geometry.angles import validate_effective_angle
from repro.geometry.grid import DenseGrid
from repro.sensors.fleet import SensorFleet
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.engine import MonteCarloConfig
from repro.simulation.montecarlo import (
    estimate_area_fraction,
    estimate_condition_chain,
    estimate_grid_failure_probability,
    estimate_point_probability,
)
from repro.simulation.results import ResultTable

from repro.api import schemas
from repro.api.digest import canonical_payload, config_digest

__all__ = [
    "GridEvaluation",
    "canonical_payload",
    "config_digest",
    "deploy",
    "estimate",
    "evaluate_grid",
    "load_results",
    "run_experiment",
    "schemas",
]

#: The estimator kinds :func:`estimate` dispatches on.
_ESTIMATE_KINDS = ("point", "grid_failure", "area_fraction", "condition_chain")


def _as_profile(
    profile: Optional[Union[HeterogeneousProfile, CameraSpec]],
    radius: Optional[float],
    angle_of_view: Optional[float],
) -> HeterogeneousProfile:
    """Normalise the three accepted camera descriptions to a profile."""
    if profile is not None:
        if radius is not None or angle_of_view is not None:
            raise InvalidParameterError(
                "pass either profile= or radius=/angle_of_view=, not both"
            )
        if isinstance(profile, CameraSpec):
            return HeterogeneousProfile.homogeneous(profile)
        return profile
    if radius is None or angle_of_view is None:
        raise InvalidParameterError(
            "describe the cameras with profile= (HeterogeneousProfile or "
            "CameraSpec) or with both radius= and angle_of_view="
        )
    return HeterogeneousProfile.homogeneous(
        CameraSpec(radius=radius, angle_of_view=angle_of_view)
    )


def deploy(
    *,
    profile: Optional[Union[HeterogeneousProfile, CameraSpec]] = None,
    radius: Optional[float] = None,
    angle_of_view: Optional[float] = None,
    n: int,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
    scheme: Optional[DeploymentScheme] = None,
    build_index: bool = True,
) -> SensorFleet:
    """Deploy ``n`` cameras and return the fleet.

    Cameras are described either by a ``profile`` (a
    :class:`HeterogeneousProfile`, or a single :class:`CameraSpec`
    treated as homogeneous) or by ``radius``/``angle_of_view`` for the
    common homogeneous case.  ``scheme`` defaults to the paper's
    uniform deployment on the unit torus; randomness comes from ``rng``
    when given, else from ``seed`` (so equal seeds give bit-identical
    fleets).  ``build_index`` pre-builds the spatial index the sparse
    kernels and scalar queries use.
    """
    resolved = _as_profile(profile, radius, angle_of_view)
    scheme = scheme or UniformDeployment()
    if rng is None:
        rng = np.random.default_rng(seed)
    fleet = scheme.deploy(resolved, n=n, rng=rng)
    if build_index and len(fleet) > 0:
        fleet.build_index()
    return fleet


@dataclass(frozen=True)
class GridEvaluation:
    """The result of :func:`evaluate_grid`.

    ``points`` are the evaluated locations (``(m, 2)``) and ``mask``
    the per-point verdicts for ``condition`` at effective angle
    ``theta``.
    """

    points: np.ndarray
    mask: np.ndarray
    theta: float
    condition: str

    @property
    def fraction(self) -> float:
        """Fraction of evaluated points meeting the condition."""
        return float(self.mask.mean()) if self.mask.size else 0.0

    @property
    def num_covered(self) -> int:
        """How many evaluated points meet the condition."""
        return int(self.mask.sum())

    def __len__(self) -> int:
        return int(self.mask.shape[0])


def evaluate_grid(
    *,
    fleet: SensorFleet,
    theta: float,
    condition: str = "exact",
    grid: Optional[DenseGrid] = None,
    points: Optional[np.ndarray] = None,
    resolution: Optional[int] = None,
    k: int = 1,
    kernel: str = "auto",
) -> GridEvaluation:
    """Evaluate a named coverage condition over a grid of points.

    The evaluation points come from ``points`` (any ``(m, 2)`` array),
    an explicit ``grid``, a ``resolution`` (a ``resolution x
    resolution`` cell-centre grid), or — by default — the paper's dense
    grid for the fleet's sensor count.  ``condition`` is ``"exact"``
    (full-view), ``"necessary"``, ``"sufficient"`` or ``"k_coverage"``
    (with ``k``); ``kernel`` selects the dense or sparse evaluation
    path (``"auto"`` picks by candidate density — both paths are
    bit-identical).
    """
    theta = validate_effective_angle(theta)
    supplied = [points is not None, grid is not None, resolution is not None]
    if sum(supplied) > 1:
        raise InvalidParameterError(
            "pass at most one of points=, grid= or resolution="
        )
    if points is None:
        if grid is None:
            if resolution is not None:
                grid = DenseGrid(side=resolution, region=fleet.region)
            else:
                grid = DenseGrid.for_sensor_count(max(1, len(fleet)), fleet.region)
        points = grid.points
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    mask = condition_mask(fleet, points, theta, condition, k=k, kernel=kernel)
    return GridEvaluation(points=points, mask=mask, theta=theta, condition=condition)


def estimate(
    *,
    kind: str,
    profile: Optional[Union[HeterogeneousProfile, CameraSpec]] = None,
    radius: Optional[float] = None,
    angle_of_view: Optional[float] = None,
    n: int,
    theta: float,
    condition: str = "exact",
    trials: int = 200,
    seed: int = 0,
    workers: Optional[int] = None,
    scheme: Optional[DeploymentScheme] = None,
    point: Optional[Tuple[float, float]] = None,
    k: int = 1,
    sample_points: int = 256,
    grid: Optional[DenseGrid] = None,
    max_grid_points: Optional[int] = None,
    kernel: str = "auto",
) -> Any:
    """Run one of the seeded Monte-Carlo estimators.

    ``kind`` selects the estimator:

    - ``"point"`` — P(a fixed point meets ``condition``); returns a
      :class:`~repro.simulation.statistics.BernoulliEstimate`.
    - ``"grid_failure"`` — P(some grid point fails ``condition``);
      returns a ``BernoulliEstimate`` (honours ``grid`` and
      ``max_grid_points``).
    - ``"area_fraction"`` — expected fraction of the region meeting
      ``condition``; returns ``(mean, ci_half_width)`` (honours
      ``sample_points``).
    - ``"condition_chain"`` — necessary/exact/sufficient on the same
      deployments; returns a dict of estimates (``condition`` is
      ignored; evaluation is scalar, so ``kernel`` is too).

    All kinds share ``trials``/``seed`` (reproducible, bit-identical
    serial vs parallel), ``workers`` and the ``kernel`` dispatch policy.
    """
    resolved = _as_profile(profile, radius, angle_of_view)
    config = MonteCarloConfig(trials=trials, seed=seed, workers=workers)
    if kind == "point":
        return estimate_point_probability(
            resolved, n, theta, condition, config,
            scheme=scheme, point=point, k=k, kernel=kernel,
        )
    if kind == "grid_failure":
        return estimate_grid_failure_probability(
            resolved, n, theta, condition, config,
            scheme=scheme, grid=grid, max_grid_points=max_grid_points,
            kernel=kernel,
        )
    if kind == "area_fraction":
        return estimate_area_fraction(
            resolved, n, theta, condition, config,
            scheme=scheme, sample_points=sample_points, k=k, kernel=kernel,
        )
    if kind == "condition_chain":
        return estimate_condition_chain(
            resolved, n, theta, config, scheme=scheme, point=point
        )
    raise InvalidParameterError(
        f"kind must be one of {_ESTIMATE_KINDS}, got {kind!r}"
    )


def run_experiment(
    *,
    experiment_id: str,
    fast: bool = True,
    seed: int = 0,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Run a registered paper experiment (PHASE, GAP, BARRIER, ...).

    ``fast`` trades trial counts for wall-clock (fast mode is the CI
    budget); ``seed`` pins every random stream; ``workers`` forwards to
    runners that support parallel execution.  See
    :func:`repro.experiments.registry.all_experiments` for the ids.
    """
    experiment = _registry.get_experiment(experiment_id)
    return experiment.run(fast=fast, seed=seed, workers=workers)


def load_results(
    *, path: Union[str, Path]
) -> Union[ResultTable, Dict[str, ResultTable]]:
    """Load result tables saved by ``fullview run --out``.

    A CSV file loads as one :class:`ResultTable`; a directory loads
    every ``*.csv`` inside it as a dict keyed by file stem.  Raises
    :class:`~repro.errors.InvalidParameterError` when the path does not
    exist or a directory holds no CSV files.
    """
    path = Path(path)
    if path.is_dir():
        tables = {
            csv_path.stem: ResultTable.load_csv(csv_path)
            for csv_path in sorted(path.glob("*.csv"))
        }
        if not tables:
            raise InvalidParameterError(f"no .csv result files in {path}")
        return tables
    return ResultTable.load_csv(path)
