"""SLEEP — shift scheduling: buying lifetime with the CSA.

Section VII-B adopts Kumar et al.'s framing where each sensor sleeps
with probability ``p`` and only ``np`` sensors are awake.  The design
version: partition a fleet of ``n`` sensors into ``k`` disjoint shifts
and run one shift at a time — lifetime multiplies by ``k`` while each
shift is a uniform random deployment of ``n/k`` sensors, so coverage
per shift is governed by the theory at ``n/k``.

This extension validates that reduction (each shift's simulated
necessary-condition probability matches eq. (2) at ``n/k``) and
tabulates the lifetime-coverage frontier: the k at which per-shift
coverage collapses is exactly where ``s_c`` crosses the CSA of
``n/k``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.conditions import necessary_condition_holds
from repro.core.csa import csa_necessary
from repro.core.uniform_theory import necessary_failure_probability
from repro.deployment.uniform import UniformDeployment
from repro.experiments.registry import ExperimentResult, register
from repro.seeding import derive_seed
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.montecarlo import MonteCarloConfig
from repro.simulation.results import ResultTable
from repro.simulation.statistics import BernoulliEstimate

__all__ = ["run"]


@register(
    "SLEEP",
    "Shift scheduling: lifetime vs per-shift coverage (extension)",
    "Section VII-B sleep-probability framing",
)
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Trade lifetime against per-shift coverage via shift scheduling."""
    n_total = 1200
    theta = math.pi / 3.0
    trials = 200 if fast else 1200
    profile = HeterogeneousProfile.homogeneous(
        CameraSpec(radius=0.22, angle_of_view=math.pi / 2)
    )
    scheme = UniformDeployment()
    point = (0.5, 0.5)
    ks = [1, 2, 4, 8, 16]
    table = ResultTable(
        title=f"SLEEP: per-shift coverage vs shift count k "
        f"(n_total={n_total}, theta=pi/3)",
        columns=[
            "k_shifts",
            "n_per_shift",
            "lifetime_factor",
            "simulated_shift_coverage",
            "theory_at_n_over_k",
            "s_c_over_csa_necessary",
            "agrees",
        ],
    )
    checks = {}
    coverages = []
    for i, k in enumerate(ks):
        n_shift = n_total // k
        cfg = MonteCarloConfig(trials=trials, seed=derive_seed(seed, 27000, i))
        successes = 0
        for rng in cfg.rngs():
            # Deploy the full fleet and activate one random shift — the
            # shift is then a uniform deployment of n/k sensors.
            fleet = scheme.deploy(profile, n_total, rng)
            shift = rng.permutation(n_total)[:n_shift]
            active = fleet.subset(shift)
            active.build_index()
            dirs = active.covering_directions(point)
            successes += necessary_condition_holds(dirs, theta)
        estimate = BernoulliEstimate(successes=successes, trials=trials)
        simulated = estimate.proportion
        theory = 1.0 - necessary_failure_probability(profile, n_shift, theta)
        margin = profile.weighted_sensing_area / csa_necessary(n_shift, theta)
        agrees = estimate.contains(theory, slack=0.03)
        table.add_row(k, n_shift, k, simulated, theory, margin, agrees)
        checks[f"shift_theory_k{k}"] = agrees
        coverages.append(simulated)
    checks["coverage_decreases_with_k"] = all(
        coverages[i + 1] <= coverages[i] + 0.03 for i in range(len(coverages) - 1)
    )
    checks["frontier_exists"] = coverages[0] > 0.9 and coverages[-1] < 0.9
    notes = [
        "Each shift is a uniform deployment of n/k sensors, so eq. (2) at "
        "n/k predicts per-shift coverage — validated at every k.",
        "Designers read the frontier right-to-left: the largest k whose "
        "per-shift coverage meets the requirement multiplies network "
        "lifetime by k at zero hardware cost.",
    ]
    return ExperimentResult(
        experiment_id="SLEEP",
        title="Shift scheduling: lifetime vs per-shift coverage",
        tables=[table],
        checks=checks,
        notes=notes,
    )
