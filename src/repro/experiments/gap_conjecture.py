"""GAP — Section VI-C: between the CSAs, coverage is a random event.

The paper observes that its necessary condition is not sufficient
(uneven sensors can leave a hole direction wider than ``2*theta``,
Fig. 9 left) and its sufficient condition is not necessary (closely
spaced sensors are redundant, Fig. 9 right), and concludes: below
``s_N,c`` the area cannot be full-view covered, above ``s_S,c`` it
surely is, and in between "whether the area is full view covered is a
random event, depending on the actual deployment of sensors".

We probe the band with the *exact* full-view test applied to every
point of (a subsample of) the dense grid: fleets are scaled to the
necessary CSA, the geometric midpoint of the band, and above the
sufficient CSA, and the probability that the grid is fully full-view
covered is measured.  The paper's claim shows up as a monotone ramp:
near-certain failure at ``s_N,c``, a non-degenerate coin-flip inside
the band, and reliable success above ``s_S,c``.  A per-point condition
chain (necessary / exact / sufficient on common deployments) is also
tabulated and must satisfy the sandwich ordering.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.csa import csa_necessary, csa_sufficient
from repro.experiments.registry import ExperimentResult, register
from repro.seeding import derive_seed
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.montecarlo import (
    MonteCarloConfig,
    estimate_condition_chain,
    estimate_grid_failure_probability,
)
from repro.simulation.results import ResultTable

__all__ = ["run"]

_PHI = math.pi / 2.0


@register(
    "GAP",
    "Coverage is a random event between the CSAs (Section VI-C, Fig. 9)",
    "Section VI-C discussion / Figure 9",
)
def run(
    fast: bool = True, seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Show coverage is a random event between the two CSAs (Fig. 9)."""
    n = 300 if fast else 1000
    theta = math.pi / 3.0
    trials = 60 if fast else 300
    max_points = 300 if fast else 2000
    s_nec = csa_necessary(n, theta)
    s_suf = csa_sufficient(n, theta)
    targets = [
        ("below_necessary_csa", 0.5 * s_nec),
        ("at_necessary_csa", s_nec),
        ("band_midpoint", math.sqrt(s_nec * s_suf)),
        ("above_sufficient_csa", 1.6 * s_suf),
    ]
    grid_table = ResultTable(
        title=f"GAP: P(grid fully full-view covered) across the CSA band "
        f"(n={n}, theta=pi/3, exact test)",
        columns=["placement", "weighted_sensing_area", "p_grid_covered", "p_grid_fails"],
    )
    checks = {}
    covered_probs = []
    for i, (label, target) in enumerate(targets):
        profile = HeterogeneousProfile.homogeneous(CameraSpec.from_area(target, _PHI))
        cfg = MonteCarloConfig(
            trials=trials, seed=derive_seed(seed, 3000, i), workers=workers
        )
        failure = estimate_grid_failure_probability(
            profile, n, theta, "exact", cfg, max_grid_points=max_points
        )
        covered = 1.0 - failure.proportion
        covered_probs.append(covered)
        grid_table.add_row(label, target, covered, failure.proportion)

    checks["fails_below_necessary_csa"] = covered_probs[0] < 0.2
    checks["succeeds_above_sufficient_csa"] = covered_probs[-1] > 0.8
    # At finite n the coin-flip regime sits near the necessary CSA; the
    # claim is that SOME placement in the band is non-degenerate.
    checks["band_contains_random_event"] = any(
        0.02 < p < 0.98 for p in covered_probs[1:-1]
    )
    checks["coverage_nondecreasing_across_band"] = all(
        covered_probs[i] <= covered_probs[i + 1] + 0.1
        for i in range(len(covered_probs) - 1)
    )

    # Per-point condition chain on common deployments (sandwich check).
    chain_table = ResultTable(
        title="GAP: per-point condition chain at the band midpoint",
        columns=[
            "placement",
            "p_necessary",
            "p_exact_full_view",
            "p_sufficient",
            "sandwich_violations",
        ],
    )
    mid_profile = HeterogeneousProfile.homogeneous(
        CameraSpec.from_area(targets[1][1], _PHI)
    )
    chain_cfg = MonteCarloConfig(
        trials=max(trials, 200), seed=derive_seed(seed, 99), workers=workers
    )
    chain = estimate_condition_chain(mid_profile, n, theta, chain_cfg)
    chain_table.add_row(
        "band_midpoint",
        chain["necessary"].proportion,
        chain["exact"].proportion,
        chain["sufficient"].proportion,
        chain["sandwich_violations"],
    )
    checks["sandwich_holds"] = chain["sandwich_violations"] == 0
    ramp = " -> ".join(f"{p:.2f}" for p in covered_probs)
    notes = [
        f"Grid coverage probability ramps {ramp} across the band: inside "
        "it, full-view coverage of the region is decided by the "
        "particular deployment, exactly the Section VI-C conjecture.",
        "sufficient => exact => necessary held on every sampled deployment.",
    ]
    return ExperimentResult(
        experiment_id="GAP",
        title="Coverage is a random event between the CSAs",
        tables=[grid_table, chain_table],
        checks=checks,
        notes=notes,
    )
