"""FIG7 — Figure 7: CSA versus effective angle theta.

The paper plots ``s_N,c(n)`` and ``s_S,c(n)`` for ``n = 1000`` as
``theta`` sweeps ``0.1*pi .. 0.5*pi`` and observes (Section VI-B):

1. both CSAs *decrease* as theta grows (looser recognition quality
   needs smaller sensing areas);
2. the decay resembles an inverse proportion, ``s_c(n) ~ 1/theta``
   for large ``n``;
3. the sufficient curve sits roughly a factor two above the necessary
   one (Section VI-C).

This module regenerates the two series and checks all three shapes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.csa import csa_necessary, csa_sufficient
from repro.experiments.registry import ExperimentResult, register
from repro.simulation.results import ResultTable
from repro.simulation.sweeps import theta_axis

__all__ = ["N_SENSORS", "build_table", "run"]

#: The sensor count Figure 7 fixes.
N_SENSORS = 1000


def build_table(n: int = N_SENSORS, points: int = 9) -> ResultTable:
    """The Figure 7 series as a table."""
    thetas = theta_axis(0.1, 0.5, points)
    table = ResultTable(
        title=f"Figure 7: CSA vs effective angle (n = {n})",
        columns=[
            "theta_over_pi",
            "theta",
            "csa_necessary",
            "csa_sufficient",
            "ratio_suf_over_nec",
            "theta_times_csa_nec",
        ],
    )
    for theta in thetas:
        nec = csa_necessary(n, float(theta))
        suf = csa_sufficient(n, float(theta))
        table.add_row(
            float(theta) / math.pi,
            float(theta),
            nec,
            suf,
            suf / nec,
            float(theta) * nec,
        )
    return table


@register("FIG7", "CSA vs effective angle theta (Figure 7)", "Figure 7")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 7: CSA versus the effective angle theta."""
    table = build_table(points=9 if fast else 41)
    nec = np.array([row for row in table.column("csa_necessary")], dtype=float)
    suf = np.array([row for row in table.column("csa_sufficient")], dtype=float)
    ratio = suf / nec
    theta_csa = np.array(
        [row for row in table.column("theta_times_csa_nec")], dtype=float
    )
    checks = {
        # (1) Monotone decreasing in theta.
        "necessary_decreasing": bool((np.diff(nec) < 0).all()),
        "sufficient_decreasing": bool((np.diff(suf) < 0).all()),
        # (2) Inverse proportionality: theta * CSA varies little
        # (within 25% of its mean across the sweep).
        "inverse_proportionality": bool(
            (np.abs(theta_csa - theta_csa.mean()) / theta_csa.mean() < 0.25).all()
        ),
        # (3) Sufficient ~ 2x necessary (within [1.8, 2.6]).
        "factor_two_gap": bool(((ratio > 1.8) & (ratio < 2.6)).all()),
        "sufficient_above_necessary": bool((suf > nec).all()),
    }
    notes = [
        "Paper: both CSAs decay like 1/theta from 0.1*pi to 0.5*pi; the",
        "sufficient curve is roughly twice the necessary one.",
        f"Measured ratio range: [{ratio.min():.3f}, {ratio.max():.3f}].",
    ]
    return ExperimentResult(
        experiment_id="FIG7",
        title="CSA vs effective angle theta (Figure 7)",
        tables=[table],
        checks=checks,
        notes=notes,
    )
