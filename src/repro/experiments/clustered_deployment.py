"""CLUSTER — clustered drops degrade full-view coverage.

The paper's random-deployment motivation (air drops, artillery) is
modelled as uniform/Poisson, but each pass of a plane scatters a
*cluster* of sensors.  This ablation deploys Matérn cluster processes
at fixed expected count and fixed per-sensor sensing area, varying the
number of cluster parents, and measures per-point exact full-view
coverage.

Expected shape: few parents (heavily clustered) cover far worse than
the Poisson baseline — clusters over-cover their neighbourhoods and
leave the rest bare — and coverage recovers monotonically toward the
baseline as the parent count grows, quantifying how load-bearing the
idealised randomness assumption is.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.full_view import is_full_view_covered
from repro.deployment.cluster import MaternClusterDeployment
from repro.deployment.poisson import PoissonDeployment
from repro.experiments.registry import ExperimentResult, register
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.montecarlo import MonteCarloConfig
from repro.simulation.results import ResultTable

__all__ = ["run"]


def _point_probability(scheme, profile, n, theta, trials, seed) -> float:
    cfg = MonteCarloConfig(trials=trials, seed=seed)
    point = (0.5, 0.5)
    hits = 0
    for rng in cfg.rngs():
        fleet = scheme.deploy(profile, n, rng)
        if len(fleet):
            fleet.build_index()
            dirs = fleet.covering_directions(point)
        else:
            dirs = np.empty(0)
        hits += is_full_view_covered(dirs, theta)
    return hits / trials


@register(
    "CLUSTER",
    "Clustered (Matern) drops degrade full-view coverage (extension)",
    "Section I deployment motivation ablation",
)
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Quantify how clustered (Matern) drops degrade full-view coverage."""
    n = 400
    theta = math.pi / 3.0
    trials = 250 if fast else 1500
    profile = HeterogeneousProfile.homogeneous(
        CameraSpec(radius=0.3, angle_of_view=math.pi / 2)
    )
    cluster_radius = 0.08
    parent_counts = [2, 4, 8, 16, 64]
    table = ResultTable(
        title=f"CLUSTER: full-view point probability vs cluster parents "
        f"(n={n}, theta=pi/3, cluster radius {cluster_radius})",
        columns=["deployment", "p_full_view"],
    )
    baseline = _point_probability(
        PoissonDeployment(), profile, n, theta, trials, seed
    )
    table.add_row("poisson_baseline", baseline)
    series = []
    for i, parents in enumerate(parent_counts):
        scheme = MaternClusterDeployment(
            expected_parents=parents, cluster_radius=cluster_radius
        )
        p = _point_probability(scheme, profile, n, theta, trials, seed + 41000 * i)
        table.add_row(f"matern_{parents}_parents", p)
        series.append(p)
    checks = {
        "heavy_clustering_hurts": series[0] < baseline - 0.15,
        "recovers_towards_poisson": series[-1] > baseline - 0.1,
        "roughly_monotone_in_parents": all(
            series[i + 1] >= series[i] - 0.08 for i in range(len(series) - 1)
        ),
    }
    notes = [
        f"Poisson baseline: {baseline:.3f}; heavily clustered (2 parents): "
        f"{series[0]:.3f}; 64 parents: {series[-1]:.3f}.",
        "Clusters waste sensing area on over-covered neighbourhoods and "
        "leave hole directions elsewhere — planners using the paper's "
        "thresholds must deploy enough independent passes for the "
        "uniformity assumption to hold.",
    ]
    return ExperimentResult(
        experiment_id="CLUSTER",
        title="Clustered (Matern) drops degrade full-view coverage",
        tables=[table],
        checks=checks,
        notes=notes,
    )
