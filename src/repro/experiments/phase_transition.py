"""PHASE — the Definition 2 phase transition at ``s_c = q * CSA``.

Definition 2 says the CSA splits the parameter space: weighted sensing
areas a constant factor *above* ``s_c(n)`` make the grid event happen
asymptotically surely (Proposition 2/4), while a factor *below* leaves
the failure probability bounded away from zero (Proposition 1/3, floor
``e^{-xi} - e^{-2 xi}``).

This experiment deploys homogeneous fleets scaled to ``q x CSA_N`` for
``q`` straddling 1 and measures the probability that the dense grid
fails the necessary condition somewhere.  At finite ``n`` the
transition is soft; the checks assert monotonicity and separation of
the extremes, the shape Definition 2 predicts.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.csa import csa_necessary
from repro.core.uniform_theory import grid_failure_bounds
from repro.experiments.registry import ExperimentResult, register
from repro.seeding import derive_seed
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.montecarlo import (
    MonteCarloConfig,
    estimate_grid_failure_probability,
)
from repro.simulation.results import ResultTable

__all__ = ["run"]

#: Angle of view used for the homogeneous probe fleet.
_PHI = math.pi / 2.0


@register(
    "PHASE",
    "Grid-failure phase transition at s_c = q * CSA (Definition 2)",
    "Definition 2, Propositions 1-4",
)
def run(
    fast: bool = True, seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Trace the grid-failure phase transition at s_c = q * CSA."""
    n = 300 if fast else 1000
    theta = math.pi / 2.0
    trials = 60 if fast else 400
    max_points = 300 if fast else 2000
    q_values = [0.4, 0.7, 1.0, 1.6, 2.5]
    base_csa = csa_necessary(n, theta)
    table = ResultTable(
        title=f"PHASE: P(grid fails necessary condition) vs q (n={n}, theta=pi/2)",
        columns=[
            "q",
            "weighted_sensing_area",
            "simulated_failure",
            "bonferroni_upper",
            "bonferroni_lower",
        ],
    )
    failures = []
    for i, q in enumerate(q_values):
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec.from_area(q * base_csa, _PHI)
        )
        cfg = MonteCarloConfig(
            trials=trials, seed=derive_seed(seed, 7000, i), workers=workers
        )
        estimate = estimate_grid_failure_probability(
            profile,
            n,
            theta,
            "necessary",
            cfg,
            max_grid_points=max_points,
        )
        bounds = grid_failure_bounds(profile, n, theta, "necessary")
        table.add_row(
            q,
            profile.weighted_sensing_area,
            estimate.proportion,
            bounds.upper,
            bounds.lower,
        )
        failures.append(estimate.proportion)
    checks = {
        # Monotone (small MC noise tolerated).
        "failure_nonincreasing_in_q": all(
            failures[i + 1] <= failures[i] + 0.08 for i in range(len(failures) - 1)
        ),
        # Below the CSA: failure is the norm.
        "subcritical_fails": failures[0] > 0.8,
        # Comfortably above: failure is rare.
        "supercritical_succeeds": failures[-1] < 0.25,
        # The two regimes are separated.
        "regimes_separated": failures[0] - failures[-1] > 0.5,
    }
    notes = [
        "Definition 2 predicts failure prob -> (bounded away from 0) for "
        "q < 1 and -> 0 for q > 1 as n -> infinity; at finite n the "
        "transition is soft but already well separated.",
        "The grid is subsampled to bound runtime; the measured failure "
        "probability therefore lower-bounds the full-grid value "
        "(conservative for the supercritical check).",
    ]
    return ExperimentResult(
        experiment_id="PHASE",
        title="Grid-failure phase transition at s_c = q * CSA",
        tables=[table],
        checks=checks,
        notes=notes,
    )
