"""EQ19 — Section VII-A: at theta = pi full view degenerates to 1-coverage.

With ``theta = pi`` the necessary partition collapses to a single
sector (any single covering sensor makes every direction safe), and
the paper shows eq. (19): the necessary CSA reduces to::

    s_N,c(n) = (log n + log log n) / n

which is exactly the critical sensing area for classic 1-coverage
(Wang et al.'s critical effective sensing radius
``R*(n) = sqrt((log n + log log n)/(pi n))`` converted to an area).

This is an *identity*, so the check is near machine precision; a
Monte-Carlo column confirms that at theta = pi, exact full view and
1-coverage decide identically on every deployment.
"""

from __future__ import annotations

import math

from repro.core.csa import csa_necessary
from repro.core.kcoverage import critical_esr, one_coverage_csa
from repro.experiments.registry import ExperimentResult, register
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.montecarlo import MonteCarloConfig, estimate_point_probability
from repro.simulation.results import ResultTable

__all__ = ["run"]


@register(
    "EQ19",
    "theta = pi degeneration to the 1-coverage CSA (eq. (19))",
    "Section VII-A, eq. (19)",
)
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Check the theta = pi degeneration to the 1-coverage CSA (eq. 19)."""
    ns = [100, 300, 1000, 3000, 10_000] if fast else [
        100, 200, 500, 1000, 2000, 5000, 10_000, 20_000, 50_000, 100_000
    ]
    table = ResultTable(
        title="EQ19: s_N,c(n) at theta = pi vs the 1-coverage CSA",
        columns=[
            "n",
            "csa_necessary_at_pi",
            "one_coverage_csa",
            "relative_error",
            "critical_esr_area",
        ],
    )
    max_rel_err = 0.0
    for n in ns:
        a = csa_necessary(n, math.pi)
        b = one_coverage_csa(n)
        esr_area = math.pi * critical_esr(n) ** 2
        rel = abs(a - b) / b
        max_rel_err = max(max_rel_err, rel)
        table.add_row(n, a, b, rel, esr_area)
    checks = {"identity_machine_precision": max_rel_err < 1e-9}

    # Simulation cross-check: at theta = pi, exact full view == 1-coverage.
    n = 150
    theta = math.pi
    profile = HeterogeneousProfile.homogeneous(
        CameraSpec(radius=0.15, angle_of_view=math.pi / 2.0)
    )
    trials = 200 if fast else 1500
    cfg = MonteCarloConfig(trials=trials, seed=seed)
    full_view = estimate_point_probability(profile, n, theta, "exact", cfg)
    one_cov = estimate_point_probability(
        profile, n, theta, "k_coverage", MonteCarloConfig(trials=trials, seed=seed), k=1
    )
    checks["full_view_equals_1coverage_at_pi"] = (
        full_view.successes == one_cov.successes
    )
    notes = [
        f"Max relative error of the identity over n in {ns}: {max_rel_err:.2e}.",
        "On identical deployments (same seeds), the exact full-view test at "
        "theta = pi and the 1-coverage test returned the same verdict in "
        f"all {trials} trials.",
    ]
    return ExperimentResult(
        experiment_id="EQ19",
        title="theta = pi degeneration to the 1-coverage CSA",
        tables=[table],
        checks=checks,
        notes=notes,
    )
