"""BARRIER — full-view barriers emerge far below full area coverage.

The paper names "the critical condition to reach barrier full view
coverage" as future work (Section VIII).  This extension experiment
measures the barrier's emergence empirically: fleets scaled to
``q x s_S,c(n)`` are deployed, and three events are compared per
deployment —

- a weak full-view *barrier* exists (no uncovered bottom-to-top path,
  percolation test on the coverage grid);
- a *strong* barrier exists (some horizontal strip of fully covered
  rows);
- the whole grid is full-view covered (area coverage).

Expected shape: P(barrier) >= P(strong barrier) >= P(area), with the
barrier transition occurring at visibly smaller ``q`` — barrier
full-view coverage is the cheaper service the paper anticipates.
"""

from __future__ import annotations

import math

from repro.barrier.grid_barrier import barrier_exists
from repro.barrier.strip import find_widest_covered_strip
from repro.core.csa import csa_sufficient
from repro.deployment.uniform import UniformDeployment
from repro.experiments.registry import ExperimentResult, register
from repro.seeding import derive_seed
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.montecarlo import MonteCarloConfig
from repro.simulation.results import ResultTable

__all__ = ["run"]

_PHI = math.pi / 2.0


@register(
    "BARRIER",
    "Full-view barriers emerge below full area coverage (extension)",
    "Section VIII future work",
)
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Measure full-view barrier emergence below full area coverage."""
    n = 250 if fast else 800
    theta = math.pi / 2.0
    trials = 40 if fast else 200
    resolution = 14 if fast else 24
    q_values = [0.02, 0.05, 0.1, 0.2, 0.5, 1.0]
    base = csa_sufficient(n, theta)
    scheme = UniformDeployment()
    table = ResultTable(
        title=f"BARRIER: P(weak barrier) / P(strong barrier) / P(area covered) "
        f"vs q (n={n}, theta=pi/2)",
        columns=[
            "q",
            "p_weak_barrier",
            "p_strong_barrier",
            "p_area_covered",
            "mean_covered_fraction",
        ],
    )
    weak_series = []
    area_series = []
    checks = {}
    for i, q in enumerate(q_values):
        profile = HeterogeneousProfile.homogeneous(CameraSpec.from_area(q * base, _PHI))
        cfg = MonteCarloConfig(trials=trials, seed=derive_seed(seed, i))
        weak = strong = area = 0
        fraction_sum = 0.0
        ordering_ok = True
        for rng in cfg.rngs():
            fleet = scheme.deploy(profile, n, rng)
            analysis = barrier_exists(fleet, theta, resolution)
            grid_covered = analysis.covered_fraction == 1.0  # fvlint: disable=FV004 (integer cell ratio is exact at 1)
            strip = find_widest_covered_strip(fleet, theta, resolution)
            weak += analysis.has_barrier
            strong += strip is not None
            area += grid_covered
            fraction_sum += analysis.covered_fraction
            # Per-deployment implications: area => strong => weak.
            if grid_covered and strip is None:
                ordering_ok = False
            if strip is not None and not analysis.has_barrier:
                ordering_ok = False
        table.add_row(q, weak / trials, strong / trials, area / trials, fraction_sum / trials)
        weak_series.append(weak / trials)
        area_series.append(area / trials)
        checks[f"implication_chain_q{q}"] = ordering_ok
    checks["barrier_dominates_area_everywhere"] = all(
        w >= a for w, a in zip(weak_series, area_series)
    )
    checks["barrier_emerges_earlier"] = any(
        w - a > 0.2 for w, a in zip(weak_series, area_series)
    )
    checks["barrier_monotone_in_q"] = all(
        weak_series[i + 1] >= weak_series[i] - 0.1 for i in range(len(weak_series) - 1)
    )
    notes = [
        "Weak barrier: no uncovered 8-connected path crosses bottom-to-top "
        "(networkx percolation test).  Strong barrier: a horizontal strip "
        "of fully covered grid rows.  Area: every grid cell covered.",
        "The barrier transition precedes area coverage by a wide q margin — "
        "the quantitative form of the paper's barrier-coverage outlook.",
    ]
    return ExperimentResult(
        experiment_id="BARRIER",
        title="Full-view barriers emerge below full area coverage",
        tables=[table],
        checks=checks,
        notes=notes,
    )
