"""LIFETIME — network lifetime under progressive failures (extension).

The paper prices full-view coverage in *sensing area at deployment
time*; this experiment prices it in *epochs of guaranteed operation*.
Fleets provisioned at ``q`` times the sufficient CSA are stepped
through a fixed per-epoch failure schedule — independent deaths,
a spatially-correlated disk blackout, and radius aging
(:mod:`repro.resilience.failures`) — and the lifetime clock stops at
the first epoch where the necessary full-view condition breaks on the
(subsampled) dense grid.

Expected shapes:

- lifetime grows with provisioning ``q`` (the k-coverage fault
  tolerance argument of Section VII-B, made dynamic), with diminishing
  returns once sensing radii saturate the torus reach;
- the mean coverage fraction decays monotonically over epochs (fleets
  only lose capability under this schedule);
- the survival curve ``S(t)`` shifts right as ``q`` grows.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.csa import csa_sufficient
from repro.experiments.registry import ExperimentResult, register
from repro.resilience.failures import (
    BernoulliFailure,
    DiskBlackout,
    FailureSchedule,
    RadiusDegradation,
)
from repro.resilience.lifetime import lifetime_distribution
from repro.seeding import derive_seed
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.montecarlo import MonteCarloConfig

__all__ = ["run"]

_PHI = math.pi / 2.0

#: Per-epoch degradation: 8% independent deaths, one blackout disk of
#: radius 0.12, and 3% radius shrink — a mixed, realistic failure diet.
_SCHEDULE = FailureSchedule(
    [BernoulliFailure(0.08), DiskBlackout(0.12), RadiusDegradation(0.97)]
)


def _profile_at(q: float, base_area: float) -> HeterogeneousProfile:
    profile = HeterogeneousProfile.homogeneous(
        CameraSpec(radius=0.25, angle_of_view=_PHI)
    )
    return profile.scaled_to_weighted_area(q * base_area)


@register(
    "LIFETIME",
    "Network lifetime under progressive sensor failures (extension)",
    "Section VII-B fault-tolerance motivation, dynamic form",
)
def run(
    fast: bool = True, seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Simulate network lifetime under progressive sensor failures."""
    from repro.simulation.results import ResultTable

    n = 240
    theta = math.pi / 3.0
    epochs = 18
    trials = 25 if fast else 150
    grid_cap = 81 if fast else 256
    base = csa_sufficient(n, theta)
    checks = {}

    # 1. Lifetime vs provisioning.
    q_values = [0.5, 1.0, 2.0, 4.0]
    lifetime_table = ResultTable(
        title=f"LIFETIME: epochs until the necessary condition breaks "
        f"(n={n}, theta=pi/3, {epochs}-epoch horizon)",
        columns=[
            "q_of_sufficient_csa",
            "mean_lifetime",
            "median_lifetime",
            "censored_fraction",
        ],
    )
    means = []
    for i, q in enumerate(q_values):
        cfg = MonteCarloConfig(
            trials=trials, seed=derive_seed(seed, 51000, i), workers=workers
        )
        dist = lifetime_distribution(
            _profile_at(q, base),
            n,
            theta,
            _SCHEDULE,
            cfg,
            epochs=epochs,
            condition="necessary",
            max_grid_points=grid_cap,
            isolate=True,
        )
        means.append(dist.mean_lifetime)
        lifetime_table.add_row(
            q, dist.mean_lifetime, dist.median_lifetime, dist.censored_fraction
        )
    checks["lifetime_nondecreasing_with_q"] = all(
        b >= a - 0.75 for a, b in zip(means, means[1:])
    )
    checks["provisioning_buys_lifetime"] = means[-1] >= means[0] + 2.0
    checks["underprovisioned_dies_early"] = means[0] < 0.5 * epochs

    # 2. Coverage-vs-time and survival curves at q = 2.
    cfg = MonteCarloConfig(
        trials=trials, seed=derive_seed(seed, 52000), workers=workers
    )
    curve_dist = lifetime_distribution(
        _profile_at(2.0, base),
        n,
        theta,
        _SCHEDULE,
        cfg,
        epochs=epochs,
        condition="necessary",
        max_grid_points=grid_cap,
        track_curves=True,
        isolate=True,
    )
    survival = curve_dist.survival_curve()
    curve_table = ResultTable(
        title="LIFETIME: coverage decay and survival over epochs (q=2)",
        columns=["epoch", "mean_coverage_fraction", "survival"],
    )
    for epoch, (fraction, alive) in enumerate(
        zip(curve_dist.mean_coverage_by_epoch, survival)
    ):
        curve_table.add_row(epoch, fraction, alive)
    checks["coverage_curve_nonincreasing"] = all(
        b <= a + 0.02
        for a, b in zip(
            curve_dist.mean_coverage_by_epoch, curve_dist.mean_coverage_by_epoch[1:]
        )
    )
    checks["survival_starts_full"] = survival[0] >= 0.9
    checks["horizon_exhausts_q2_fleets"] = survival[-1] <= 0.25

    notes = [
        "Lifetime = first epoch at which some grid point fails the "
        "necessary full-view condition; the per-epoch schedule is 8% "
        "independent deaths + one blackout disk (r=0.12) + 3% radius "
        "aging.",
        f"Provisioning at 4x the sufficient CSA extends mean lifetime "
        f"from {means[0]:.1f} to {means[-1]:.1f} epochs; returns "
        "diminish once radii saturate the torus reach (cf. ROBUST's "
        "breach-cost plateau).",
    ]
    return ExperimentResult(
        experiment_id="LIFETIME",
        title="Network lifetime under progressive sensor failures",
        tables=[lifetime_table, curve_table],
        checks=checks,
        notes=notes,
    )
