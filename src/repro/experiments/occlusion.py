"""OCCL — terrain occlusion degrades full-view coverage.

The paper's introduction cites "the obstruction of terrains" as a
source of degraded sensing.  This extension measures it directly:
opaque disks (Boolean model, intensity lambda, radius R) block camera
sight lines, and per-point full-view coverage is compared against a
first-order prediction.

Prediction: a sight line of length ``d`` is clear iff no obstacle
centre falls in the stadium of area ``2 R d + pi R^2`` around it, so
under the Boolean model ``P(clear) = exp(-lambda (2 R d + pi R^2))``;
averaging over a uniform in-sector object distance gives a mean
visibility ratio ``rho_vis``, and — by the area-decisiveness principle
(Section VI-A, extended by PROB) — the occluded fleet should behave
like a binary fleet with sensing areas scaled by ``rho_vis``.

Correlation caveat: one obstacle near the object blocks a whole
angular swath of cameras at once, which independent thinning ignores;
the prediction is therefore expected to be slightly optimistic, and the
experiment reports the bias alongside the trend checks.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.conditions import necessary_condition_holds
from repro.core.uniform_theory import necessary_failure_probability
from repro.deployment.uniform import UniformDeployment
from repro.experiments.registry import ExperimentResult, register
from repro.geometry.obstacles import ObstacleField, occluded_covering_directions
from repro.seeding import derive_seed
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.montecarlo import MonteCarloConfig
from repro.simulation.results import ResultTable

__all__ = ["run", "visibility_ratio"]

_OBSTACLE_RADIUS = 0.02


def visibility_ratio(intensity: float, obstacle_radius: float, reach: float) -> float:
    """Mean clear-sight probability over a uniform in-sector object.

    ``int_0^1 2 t exp(-intensity (2 R reach t + pi R^2)) dt`` by a
    256-point midpoint rule.
    """
    ts = (np.arange(256) + 0.5) / 256.0
    clear = np.exp(
        -intensity * (2.0 * obstacle_radius * reach * ts + math.pi * obstacle_radius**2)
    )
    return float(np.sum(clear * 2.0 * ts) / 256.0)


@register(
    "OCCL",
    "Terrain occlusion degrades coverage; stadium-model prediction (extension)",
    "Section I terrain-obstruction motivation",
)
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Measure coverage degradation under terrain occlusion."""
    n = 350
    theta = math.pi / 3.0
    trials = 250 if fast else 1500
    base = HeterogeneousProfile.homogeneous(
        CameraSpec(radius=0.28, angle_of_view=math.pi / 2)
    )
    reach = base.groups[0].radius
    scheme = UniformDeployment()
    point = (0.5, 0.5)
    counts = [0, 10, 30, 80]
    table = ResultTable(
        title=f"OCCL: occluded necessary-condition probability vs obstacle "
        f"count (n={n}, theta=pi/3, R={_OBSTACLE_RADIUS})",
        columns=[
            "obstacles",
            "rho_visibility",
            "simulated",
            "stadium_prediction",
            "prediction_bias",
        ],
    )
    simulated_series = []
    checks = {}
    for i, count in enumerate(counts):
        cfg = MonteCarloConfig(trials=trials, seed=derive_seed(seed, 23000, i))
        successes = 0
        for rng in cfg.rngs():
            fleet = scheme.deploy(base, n, rng)
            fleet.build_index()
            # Rejection-sample obstacle fields that do not swallow the
            # probe point, so the prediction need not model that case.
            while True:
                field = ObstacleField.random(count, _OBSTACLE_RADIUS, rng)
                if not field.contains(point):
                    break
            dirs = occluded_covering_directions(fleet, point, field)
            successes += necessary_condition_holds(dirs, theta)
        simulated = successes / trials
        rho = visibility_ratio(count, _OBSTACLE_RADIUS, reach)
        scaled = base.scaled_to_weighted_area(rho * base.weighted_sensing_area)
        prediction = 1.0 - necessary_failure_probability(scaled, n, theta)
        table.add_row(count, rho, simulated, prediction, prediction - simulated)
        simulated_series.append(simulated)
        # The stadium model's documented optimism grows with density;
        # 0.15 absolute headroom accommodates the correlation bias while
        # still binding the prediction to the measurement.
        checks[f"prediction_tracks_count{count}"] = abs(prediction - simulated) < 0.15
    checks["occlusion_hurts"] = simulated_series[-1] < simulated_series[0] - 0.1
    checks["monotone_in_density"] = all(
        simulated_series[i + 1] <= simulated_series[i] + 0.05
        for i in range(len(simulated_series) - 1)
    )
    notes = [
        "rho_visibility is the stadium-model mean clear-sight probability; "
        "the prediction scales sensing areas by rho (area decisiveness).",
        "The prediction's optimism (positive bias) grows with obstacle "
        "density — a single obstacle near the object blocks a correlated "
        "angular swath, which independent thinning cannot capture.",
    ]
    return ExperimentResult(
        experiment_id="OCCL",
        title="Terrain occlusion degrades coverage; stadium-model prediction",
        tables=[table],
        checks=checks,
        notes=notes,
    )
