"""HET — heterogeneity enters only through the weighted sensing area.

The CSA (Definition 2) is a *centralised* parameter: the condition is
on ``s_c = sum_y c_y s_y``, not on any individual group.  Asymptotically
the per-point vacancy probability ``prod_y (1 - theta s_y/pi)^{n_y}``
collapses to ``exp(-theta n s_c / pi)``, a function of the weighted sum
alone.  This experiment compares fleets with identical ``s_c`` but very
different group structures — homogeneous, a 2-group high/low mix and a
4-group spread — analytically (eq. (2)) and by simulation.

Checks: the analytic per-point success probabilities agree to within
the second-order term Lemma 2 bounds, and the simulated probabilities
agree within Monte-Carlo noise.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.core.uniform_theory import necessary_failure_probability
from repro.experiments.registry import ExperimentResult, register
from repro.seeding import derive_seed
from repro.sensors.model import CameraSpec, GroupSpec, HeterogeneousProfile
from repro.simulation.montecarlo import MonteCarloConfig, estimate_point_probability
from repro.simulation.results import ResultTable

__all__ = ["profiles_with_equal_weighted_area", "run"]


def profiles_with_equal_weighted_area(s_c: float) -> List[Tuple[str, HeterogeneousProfile]]:
    """Three profiles sharing the same weighted sensing area ``s_c``."""
    phi = math.pi / 2.0
    homogeneous = HeterogeneousProfile.homogeneous(CameraSpec.from_area(s_c, phi))
    # High/low mix: 30% sensors with 2x area, 70% with 4/7 x area.
    high_low = HeterogeneousProfile(
        [
            GroupSpec(CameraSpec.from_area(2.0 * s_c, math.pi / 3.0), 0.3, "high"),
            GroupSpec(CameraSpec.from_area((s_c - 0.3 * 2.0 * s_c) / 0.7, 1.9), 0.7, "low"),
        ]
    )
    # Four-group spread with areas 0.4x, 0.8x, 1.2x, 1.6x at 25% each.
    spread = HeterogeneousProfile(
        [
            GroupSpec(CameraSpec.from_area(0.4 * s_c, 0.8), 0.25, "q1"),
            GroupSpec(CameraSpec.from_area(0.8 * s_c, 1.2), 0.25, "q2"),
            GroupSpec(CameraSpec.from_area(1.2 * s_c, 1.6), 0.25, "q3"),
            GroupSpec(CameraSpec.from_area(1.6 * s_c, 2.0), 0.25, "q4"),
        ]
    )
    return [("homogeneous", homogeneous), ("high_low_mix", high_low), ("four_group", spread)]


@register(
    "HET",
    "Heterogeneity enters only through the weighted sensing area s_c",
    "Section II-C / Definition 2 centralisation",
)
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Verify heterogeneity enters only through the weighted area s_c."""
    s_c = 0.015
    n = 400
    theta = math.pi / 3.0
    trials = 400 if fast else 4000
    table = ResultTable(
        title=f"HET: equal weighted sensing area s_c={s_c}, different group "
        f"structures (n={n}, theta=pi/3)",
        columns=[
            "structure",
            "num_groups",
            "weighted_area",
            "theory_p_necessary",
            "simulated_p_necessary",
        ],
    )
    theory_values = []
    sim_values = []
    checks = {}
    for i, (label, profile) in enumerate(profiles_with_equal_weighted_area(s_c)):
        checks[f"weighted_area_exact_{label}"] = (
            abs(profile.weighted_sensing_area - s_c) < 1e-12
        )
        theory = 1.0 - necessary_failure_probability(profile, n, theta)
        cfg = MonteCarloConfig(trials=trials, seed=derive_seed(seed, 9000, i))
        estimate = estimate_point_probability(profile, n, theta, "necessary", cfg)
        table.add_row(
            label,
            profile.num_groups,
            profile.weighted_sensing_area,
            theory,
            estimate.proportion,
        )
        theory_values.append(theory)
        sim_values.append(estimate.proportion)
    theory_spread = max(theory_values) - min(theory_values)
    sim_spread = max(sim_values) - min(sim_values)
    checks["theory_collapses_on_s_c"] = theory_spread < 0.01
    checks["simulation_collapses_on_s_c"] = sim_spread < 0.08
    notes = [
        f"Analytic spread across structures: {theory_spread:.2e} "
        "(the second-order (1-x)^n residue Lemma 2 bounds).",
        f"Simulated spread: {sim_spread:.3f} (Monte-Carlo noise at "
        f"{trials} trials).",
        "The centralised CSA criterion treats all three fleets "
        "identically, as Definition 2 intends.",
    ]
    return ExperimentResult(
        experiment_id="HET",
        title="Heterogeneity enters only through the weighted sensing area",
        tables=[table],
        checks=checks,
        notes=notes,
    )
