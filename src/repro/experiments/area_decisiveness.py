"""AREA — Section VI-A: only the sensing area matters, not its shape.

"Cameras with different r and phi but own the same s = phi r^2 / 2
will perform all the same in the network."  Analytically this is
visible in eqs. (2)/(13), where ``r`` and ``phi`` appear only through
``s``; this experiment confirms it empirically: three homogeneous
fleets with the same per-sensor sensing area but very different sector
shapes (narrow-and-long, standard, wide-and-short) are deployed and
their exact full-view point probabilities compared.

Check: all pairwise differences are within Monte-Carlo noise (pooled
two-proportion z-test at 3 sigma, plus an absolute cap).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.experiments.registry import ExperimentResult, register
from repro.seeding import derive_seed
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.montecarlo import MonteCarloConfig, estimate_point_probability
from repro.simulation.results import ResultTable

__all__ = ["run"]


def _z_statistic(p1: float, n1: int, p2: float, n2: int) -> float:
    """Two-proportion pooled z statistic."""
    pooled = (p1 * n1 + p2 * n2) / (n1 + n2)
    if pooled in (0.0, 1.0):
        return 0.0
    se = math.sqrt(pooled * (1.0 - pooled) * (1.0 / n1 + 1.0 / n2))
    return abs(p1 - p2) / se


@register(
    "AREA",
    "Sensing area is decisive; sector shape is irrelevant (Section VI-A)",
    "Section VI-A discussion",
)
def run(
    fast: bool = True, seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Verify sensing area is decisive while sector shape is irrelevant."""
    sensing_area = 0.012
    n = 400
    theta = math.pi / 3.0
    trials = 400 if fast else 4000
    shapes: List[Tuple[str, float]] = [
        ("narrow_long", math.pi / 6.0),
        ("standard", math.pi / 2.0),
        ("wide_short", 1.6 * math.pi),
    ]
    table = ResultTable(
        title=f"AREA: equal sensing area s={sensing_area}, different shapes "
        f"(n={n}, theta=pi/3)",
        columns=[
            "shape",
            "angle_of_view",
            "radius",
            "sensing_area",
            "p_full_view",
            "wilson_low",
            "wilson_high",
        ],
    )
    estimates = []
    for i, (label, phi) in enumerate(shapes):
        spec = CameraSpec.from_area(sensing_area, phi)
        profile = HeterogeneousProfile.homogeneous(spec)
        cfg = MonteCarloConfig(
            trials=trials, seed=derive_seed(seed, 5000, i), workers=workers
        )
        estimate = estimate_point_probability(profile, n, theta, "exact", cfg)
        low, high = estimate.wilson()
        table.add_row(
            label, phi, spec.radius, spec.sensing_area, estimate.proportion, low, high
        )
        estimates.append(estimate)
    checks = {}
    for i in range(len(estimates)):
        for j in range(i + 1, len(estimates)):
            z = _z_statistic(
                estimates[i].proportion,
                estimates[i].trials,
                estimates[j].proportion,
                estimates[j].trials,
            )
            diff = abs(estimates[i].proportion - estimates[j].proportion)
            checks[f"equal_{shapes[i][0]}_vs_{shapes[j][0]}"] = z < 3.0 or diff < 0.05
    notes = [
        "Three fleets share s = phi r^2/2 exactly; their full-view point "
        "probabilities agree within Monte-Carlo noise, confirming that "
        "under uniform deployment only the sensing area matters.",
        "The paper further conjectures the same for irregular sensing "
        "regions; the sector family here spans aspect ratios from "
        "pi/6 to 1.6*pi.",
    ]
    return ExperimentResult(
        experiment_id="AREA",
        title="Sensing area is decisive; sector shape is irrelevant",
        tables=[table],
        checks=checks,
        notes=notes,
    )
