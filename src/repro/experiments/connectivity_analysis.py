"""CONN — connectivity rides for free on coverage-grade fleets.

Coverage without communication connectivity is useless — captures must
reach a sink (the concern the paper's introduction pairs with
coverage).  This extension measures, for uniformly deployed fleets:

1. the critical communication radius (longest MST edge) against
   Penrose's ``sqrt(log n / (pi n))`` scaling — the normalised constant
   should be O(1) and stable across fleet sizes;
2. whether fleets provisioned at the *sufficient CSA* are connected
   when the communication radius equals twice the sensing radius (the
   classic coverage-implies-connectivity rule of thumb): since the
   full-view sensing radius is Theta(sqrt(log n / n)) with a large
   constant, connectivity should hold with overwhelming probability.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.connectivity import (
    connectivity_scaling_constant,
    critical_communication_radius,
    is_connected,
)
from repro.core.csa import csa_sufficient
from repro.deployment.uniform import UniformDeployment
from repro.experiments.registry import ExperimentResult, register
from repro.seeding import derive_seed
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.montecarlo import MonteCarloConfig
from repro.simulation.results import ResultTable

__all__ = ["run"]


@register(
    "CONN",
    "Connectivity of coverage-grade fleets (extension)",
    "Section I coverage-and-connectivity pairing",
)
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Assess connectivity of coverage-grade fleets."""
    theta = math.pi / 3.0
    ns = [100, 200, 400] if fast else [100, 200, 400, 800, 1600]
    trials = 25 if fast else 120
    scheme = UniformDeployment()
    scaling_table = ResultTable(
        title="CONN: critical communication radius vs Penrose scaling",
        columns=[
            "n",
            "mean_critical_radius",
            "penrose_normalisation",
            "mean_scaling_constant",
        ],
    )
    constants = []
    checks = {}
    for i, n in enumerate(ns):
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec(radius=0.1, angle_of_view=1.0)
        )
        cfg = MonteCarloConfig(trials=trials, seed=derive_seed(seed, 33000, i))
        radii = []
        consts = []
        for rng in cfg.rngs():
            fleet = scheme.deploy(profile, n, rng)
            radii.append(critical_communication_radius(fleet))
            consts.append(connectivity_scaling_constant(fleet))
        norm = math.sqrt(math.log(n) / (math.pi * n))
        mean_const = float(np.mean(consts))
        constants.append(mean_const)
        scaling_table.add_row(n, float(np.mean(radii)), norm, mean_const)
    checks["scaling_constant_order_one"] = all(0.5 < c < 2.5 for c in constants)
    checks["scaling_constant_stable"] = (
        max(constants) / min(constants) < 1.6
    )

    # Coverage-grade fleets: connected at R_c = 2 * sensing radius.
    conn_table = ResultTable(
        title="CONN: P(connected at R_c = 2r) for fleets at the sufficient CSA",
        columns=["n", "sensing_radius", "p_connected_at_2r"],
    )
    connected_probs = []
    for i, n in enumerate(ns):
        profile = HeterogeneousProfile.homogeneous(
            CameraSpec.from_area(csa_sufficient(n, theta), math.pi / 2)
        )
        r = profile.groups[0].radius
        cfg = MonteCarloConfig(trials=trials, seed=derive_seed(seed, 44000, i))
        connected = 0
        for rng in cfg.rngs():
            fleet = scheme.deploy(profile, n, rng)
            connected += is_connected(fleet, 2.0 * r)
        p = connected / trials
        connected_probs.append(p)
        conn_table.add_row(n, r, p)
    checks["coverage_grade_fleets_connected"] = all(p > 0.95 for p in connected_probs)
    notes = [
        "Critical radius = longest MST edge (exact union-find sweep, "
        "cross-checked against networkx MSTs in the unit tests).",
        "Full-view provisioning dwarfs the connectivity threshold: the "
        "sufficient-CSA sensing radius is Theta(sqrt(log n/n)) with a "
        "large constant, so R_c = 2r connects the fleet essentially "
        "always — coverage-grade networks get connectivity for free.",
    ]
    return ExperimentResult(
        experiment_id="CONN",
        title="Connectivity of coverage-grade fleets",
        tables=[scaling_table, conn_table],
        checks=checks,
        notes=notes,
    )
