"""KCOV — Section VII-B: full view demands more than the k-coverage it implies.

Full-view coverage with effective angle ``theta`` forces at least
``k = ceil(pi/theta)`` covering sensors per point, hence implies
k-coverage.  The paper proves the converse fails at the CSA level:
``s_N,c(n) >= s_K(n)`` where
``s_K(n) = (log n + k log log n)/n`` is Kumar et al.'s sufficient
sensing area for asymptotic k-coverage — meeting the k-coverage
threshold cannot guarantee even the *necessary* condition of full-view
coverage.

Checks: the analytic margin is non-negative over a grid of (n, theta);
and on simulated deployments every full-view-covered point is
k-covered while the reverse implication fails on a positive fraction.
"""

from __future__ import annotations

import math

from repro.core.csa import csa_necessary
from repro.core.full_view import is_full_view_covered
from repro.core.kcoverage import implied_k, kumar_sufficient_area
from repro.deployment.uniform import UniformDeployment
from repro.experiments.registry import ExperimentResult, register
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.montecarlo import MonteCarloConfig
from repro.simulation.results import ResultTable

__all__ = ["run"]


@register(
    "KCOV",
    "Full-view CSA dominates the k-coverage threshold (Section VII-B)",
    "Section VII-B inequality",
)
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Compare the full-view CSA against the k-coverage threshold."""
    ns = [100, 1000, 10_000] if fast else [100, 300, 1000, 3000, 10_000, 100_000]
    thetas = [math.pi / 6, math.pi / 4, math.pi / 3, math.pi / 2, math.pi]
    table = ResultTable(
        title="KCOV: s_N,c(n) vs Kumar's k-coverage area at k = ceil(pi/theta)",
        columns=["n", "theta", "k", "csa_necessary", "kumar_area", "margin"],
    )
    all_nonnegative = True
    for n in ns:
        for theta in thetas:
            k = implied_k(theta)
            nec = csa_necessary(n, theta)
            kum = kumar_sufficient_area(n, k)
            margin = nec - kum
            all_nonnegative &= margin >= -1e-12
            table.add_row(n, theta, k, nec, kum, margin)
    checks = {"csa_dominates_kumar_everywhere": bool(all_nonnegative)}

    # Simulation: full view => k-coverage, and not conversely.
    n, theta = (250, math.pi / 3.0) if fast else (1000, math.pi / 4.0)
    k = implied_k(theta)
    trials = 250 if fast else 1500
    # Pin the fleet to the marginal regime: the expected number of
    # sensors covering a point is n * s, so s = (k + 2)/n makes
    # k-coverage common while full view (which also needs angular
    # spread) still fails often — the regime where the two notions
    # separate observably.
    profile = HeterogeneousProfile.homogeneous(
        CameraSpec.from_area((k + 2) / n, math.pi / 2.0)
    )
    scheme = UniformDeployment()
    cfg = MonteCarloConfig(trials=trials, seed=seed)
    implication_violations = 0
    k_covered_not_full_view = 0
    full_view_count = 0
    point = (0.5, 0.5)
    for rng in cfg.rngs():
        fleet = scheme.deploy(profile, n, rng)
        fleet.build_index()
        directions = fleet.covering_directions(point)
        fv = is_full_view_covered(directions, theta)
        kc = directions.size >= k
        full_view_count += fv
        if fv and not kc:
            implication_violations += 1
        if kc and not fv:
            k_covered_not_full_view += 1
    checks["full_view_implies_k_coverage"] = implication_violations == 0
    checks["k_coverage_does_not_imply_full_view"] = k_covered_not_full_view > 0
    notes = [
        f"k = ceil(pi/theta): full-view coverage needs >= k sensors around "
        "every point; the implication held on every trial "
        f"({trials} deployments).",
        f"{k_covered_not_full_view}/{trials} deployments were k-covered at "
        "the probe point yet NOT full-view covered — k-coverage places no "
        "constraint on the angular spread of sensors.",
    ]
    return ExperimentResult(
        experiment_id="KCOV",
        title="Full-view CSA dominates the k-coverage threshold",
        tables=[table],
        checks=checks,
        notes=notes,
    )
