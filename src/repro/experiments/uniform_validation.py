"""EQ2-MC / EQ13-MC — Monte-Carlo validation of eqs. (2) and (13).

The paper derives the per-point failure probabilities of the necessary
and sufficient conditions analytically, assuming (a) independence of
sector occupancies and (b) the torus killing boundary effects.  This
experiment deploys real heterogeneous fleets and measures the
frequencies, then compares them with the formulas (and with the
inclusion-exclusion ablation of the independence step).

Pass criterion: the analytic value lies in the simulation's 95% Wilson
interval widened by a small slack that absorbs the documented
independence approximation at finite n.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.core.uniform_theory import (
    necessary_failure_probability,
    necessary_failure_probability_exact,
    sufficient_failure_probability,
)
from repro.experiments.registry import ExperimentResult, register
from repro.seeding import derive_seed
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.montecarlo import MonteCarloConfig, estimate_point_probability
from repro.simulation.results import ResultTable

__all__ = [
    "run_necessary",
    "run_sufficient",
    "scenarios",
    "validation_profile",
]

#: Finite-n model slack added around the Wilson interval.
_SLACK = 0.03


def validation_profile() -> HeterogeneousProfile:
    """A two-group heterogeneous mix exercising both r and phi diversity."""
    return HeterogeneousProfile.from_pairs(
        [
            (CameraSpec(radius=0.22, angle_of_view=math.pi / 2.0), 0.6),
            (CameraSpec(radius=0.14, angle_of_view=1.8), 0.4),
        ]
    )


def scenarios(fast: bool) -> List[Tuple[int, float]]:
    """(n, theta) pairs to validate."""
    if fast:
        return [(200, math.pi / 3.0), (400, math.pi / 4.0)]
    return [
        (200, math.pi / 3.0),
        (400, math.pi / 4.0),
        (800, math.pi / 4.0),
        (800, math.pi / 6.0),
        (1600, math.pi / 6.0),
    ]


def _run(condition: str, experiment_id: str, fast: bool, seed: int) -> ExperimentResult:
    profile = validation_profile()
    trials = 400 if fast else 3000
    theory_fn = (
        necessary_failure_probability
        if condition == "necessary"
        else sufficient_failure_probability
    )
    table = ResultTable(
        title=f"{experiment_id}: uniform-deployment {condition} condition, "
        "simulation vs eq. (2)/(13)",
        columns=[
            "n",
            "theta",
            "theory_success",
            "simulated_success",
            "wilson_low",
            "wilson_high",
            "agrees",
        ],
    )
    checks = {}
    notes = []
    cfg_base = MonteCarloConfig(trials=trials, seed=seed)
    for i, (n, theta) in enumerate(scenarios(fast)):
        cfg = MonteCarloConfig(trials=trials, seed=derive_seed(seed, 1000, i))
        estimate = estimate_point_probability(profile, n, theta, condition, cfg)
        theory = 1.0 - theory_fn(profile, n, theta)
        low, high = estimate.wilson()
        agrees = estimate.contains(theory, slack=_SLACK)
        table.add_row(n, theta, theory, estimate.proportion, low, high, agrees)
        checks[f"agreement_n{n}_theta{theta:.3f}"] = agrees
    if condition == "necessary":
        n, theta = scenarios(fast)[0]
        independent = 1.0 - necessary_failure_probability(profile, n, theta)
        exact = 1.0 - necessary_failure_probability_exact(profile, n, theta)
        notes.append(
            "Independence-approximation ablation at "
            f"(n={n}, theta={theta:.3f}): eq.(2) = {independent:.5f}, "
            f"inclusion-exclusion = {exact:.5f} "
            f"(gap {abs(independent - exact):.2e})."
        )
        checks["independence_approx_small"] = abs(independent - exact) < 0.02
    del cfg_base
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"Uniform {condition}-condition probability vs simulation",
        tables=[table],
        checks=checks,
        notes=notes,
    )


@register(
    "EQ2-MC",
    "Uniform necessary-condition probability vs simulation (eq. (2))",
    "eq. (2)",
)
def run_necessary(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Validate eq. (2) (uniform necessary) against simulation."""
    return _run("necessary", "EQ2-MC", fast, seed)


@register(
    "EQ13-MC",
    "Uniform sufficient-condition probability vs simulation (eq. (13))",
    "eq. (13)",
)
def run_sufficient(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Validate eq. (13) (uniform sufficient) against simulation."""
    return _run("sufficient", "EQ13-MC", fast, seed)
