"""FIG8 — Figure 8: CSA versus sensor count n.

The paper plots both CSAs for ``theta = pi/4`` as ``n`` grows from 100
to 10000 and observes (Section VI-B):

1. at ``n = 100`` the required sensing area is "extremely large"
   (about 0.5 for the sufficient condition — half the unit square), so
   full-view coverage is impractical with few cameras;
2. the CSAs fall as ``n`` grows (Lemma 3: ``s_c(n) -> 0``);
3. the decline flattens past ``n ~ 1000`` — extra cameras stop buying
   much once the region is dense enough.

We regenerate the curves and verify all three shapes.  Our n = 100
sufficient CSA is ~0.66 rather than the paper's eyeballed ~0.5 — same
order, same verdict ("not tolerable"); see EXPERIMENTS.md.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.csa import csa_necessary, csa_sufficient
from repro.experiments.registry import ExperimentResult, register
from repro.simulation.results import ResultTable
from repro.simulation.sweeps import n_axis_log

__all__ = ["THETA", "build_table", "run"]

#: The effective angle Figure 8 fixes.
THETA = math.pi / 4.0


def build_table(theta: float = THETA, count: int = 13) -> ResultTable:
    """The Figure 8 series as a table."""
    table = ResultTable(
        title=f"Figure 8: CSA vs sensor count (theta = pi/4)",
        columns=["n", "csa_necessary", "csa_sufficient", "ratio_suf_over_nec"],
    )
    for n in n_axis_log(100, 10_000, count):
        nec = csa_necessary(n, theta)
        suf = csa_sufficient(n, theta)
        table.add_row(n, nec, suf, suf / nec)
    return table


@register("FIG8", "CSA vs sensor count n (Figure 8)", "Figure 8")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 8: CSA versus the sensor count n."""
    table = build_table(count=13 if fast else 41)
    ns = np.array(table.column("n"), dtype=float)
    nec = np.array(table.column("csa_necessary"), dtype=float)
    suf = np.array(table.column("csa_sufficient"), dtype=float)
    # Flattening on the linear n axis (the paper's reading "the decline
    # of CSAs slows down after n exceeds 1000"): the marginal benefit
    # of one extra camera collapses by orders of magnitude.
    early_slope = (suf[0] - suf[1]) / (ns[1] - ns[0])
    late_slope = (suf[-2] - suf[-1]) / (ns[-1] - ns[-2])
    checks = {
        "large_requirement_at_n100": bool(suf[0] > 0.4),
        "necessary_decreasing": bool((np.diff(nec) < 0).all()),
        "sufficient_decreasing": bool((np.diff(suf) < 0).all()),
        "decline_flattens": bool(early_slope > 100.0 * late_slope),
        "vanishes_asymptotically": bool(suf[-1] < 0.05 * suf[0]),
    }
    notes = [
        f"At n = 100, theta = pi/4: sufficient CSA = {suf[0]:.3f} "
        "(paper eyeballs ~0.5 from its figure; same 'half the unit "
        "square, impractical' conclusion).",
        f"At n = 10000 the sufficient CSA has fallen to {suf[-1]:.5f}.",
    ]
    return ExperimentResult(
        experiment_id="FIG8",
        title="CSA vs sensor count n (Figure 8)",
        tables=[table],
        checks=checks,
        notes=notes,
    )
