"""PLAN — aimed cameras versus the model's random orientations.

The paper fixes orientations uniformly at random because its
deployments are unattended drops.  When installers CAN aim (pole
networks), how much coverage does randomness forfeit?  This extension
takes fixed uniform positions and a set of protection targets, and
compares:

- random aiming (the model's assumption), averaged over draws;
- coordinate-ascent optimised aiming
  (:mod:`repro.planning.orientation_opt`);
- the minimum-ring construction's sensor count as the per-target floor.

Expected shape: optimisation covers a multiple of the targets random
aiming covers, at identical hardware — quantifying the price of the
random-orientation assumption (complementary to ORIENT, which showed
*biased* random aiming is catastrophic; here *informed* aiming is a
large win).
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.registry import ExperimentResult, register
from repro.geometry.angles import TWO_PI
from repro.planning.orientation_opt import covered_target_count, optimize_orientations
from repro.seeding import derive_rng
from repro.sensors.fleet import SensorFleet
from repro.simulation.results import ResultTable

__all__ = ["run"]


@register(
    "PLAN",
    "Optimised aiming vs the random-orientation assumption (extension)",
    "Section II-A model assumption, constructive side",
)
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Compare optimised against random camera aiming on fixed positions."""
    theta = math.pi / 3.0
    n = 60
    m = 15
    reach = 0.3
    phi = math.pi / 2.0
    instances = 10 if fast else 40
    random_draws = 20 if fast else 100
    table = ResultTable(
        title=f"PLAN: covered targets, random vs optimised aiming "
        f"(n={n} cameras, m={m} targets, theta=pi/3)",
        columns=[
            "instance",
            "random_mean_covered",
            "optimized_covered",
            "gain_factor",
        ],
    )
    gains = []
    monotone_ok = True
    for instance in range(instances):
        # Independent spawn-derived streams per instance: one for the
        # geometry, one per random-aiming draw, one for the optimiser
        # start (never `seed + k` arithmetic, which correlates streams).
        rng = derive_rng(seed, instance, 0)
        positions = rng.uniform(size=(n, 2))
        targets = rng.uniform(size=(m, 2))
        radii = np.full(n, reach)
        angles = np.full(n, phi)
        # Random aiming baseline, averaged.
        random_scores = []
        for draw in range(random_draws):
            orientations = derive_rng(seed, instance, 1, draw).uniform(
                0, TWO_PI, size=n
            )
            fleet = SensorFleet(
                positions=positions, orientations=orientations, radii=radii, angles=angles
            )
            random_scores.append(covered_target_count(fleet, targets, theta))
        random_mean = float(np.mean(random_scores))
        # Optimised aiming from a random start.
        start = derive_rng(seed, instance, 2).uniform(0, TWO_PI, size=n)
        result = optimize_orientations(
            positions, radii, angles, targets, theta, initial_orientations=start
        )
        monotone_ok &= result.covered_after >= result.covered_before
        gain = result.covered_after / max(random_mean, 1e-9)
        gains.append(gain)
        table.add_row(instance, random_mean, result.covered_after, gain)
    mean_gain = float(np.mean(gains))
    checks = {
        "ascent_never_decreases": monotone_ok,
        "optimisation_beats_random": mean_gain > 1.5,
        "optimisation_always_at_least_random": all(g >= 0.99 for g in gains),
    }
    notes = [
        f"Mean gain factor over {instances} instances: {mean_gain:.2f}x "
        "(optimised covered targets / random-aiming mean).",
        "Identical hardware and positions — the whole gain is information: "
        "installers who aim even a fixed camera fleet capture several "
        "times the full-view coverage the random-orientation model "
        "predicts.",
    ]
    return ExperimentResult(
        experiment_id="PLAN",
        title="Optimised aiming vs the random-orientation assumption",
        tables=[table],
        checks=checks,
        notes=notes,
    )
