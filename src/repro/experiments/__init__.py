"""Reproductions of the paper's figures, tables and quantitative claims.

Each module reproduces one artifact from the paper's evaluation
(Sections VI-VII) or validates one theorem by Monte Carlo; the
experiment ids match DESIGN.md's experiment index:

========  =============================================================
FIG7      Figure 7 — CSA vs effective angle theta (n = 1000)
FIG8      Figure 8 — CSA vs sensor count n (theta = pi/4)
EQ2-MC    eq. (2) validated by simulation (uniform, necessary)
EQ13-MC   eq. (13) validated by simulation (uniform, sufficient)
THM3-MC   Theorem 3 validated by simulation (Poisson, necessary)
THM4-MC   Theorem 4 validated by simulation (Poisson, sufficient)
PHASE     Definition 2 phase transition at s_c = q * CSA
GAP       Section VI-C — coverage is a random event between the CSAs
EQ19      Section VII-A — theta = pi degeneration to 1-coverage
KCOV      Section VII-B — full-view demands more than k-coverage
AREA      Section VI-A — only the sensing area matters, not its shape
HET       heterogeneity invariance of the weighted sensing area
BARRIER   extension — barrier full-view coverage (Section VIII outlook)
CRIT      extension — empirical transition inside the CSA band
ORIENT    extension — orientation-bias ablation of the model
PROB      extension — probabilistic sensing via rho-scaled areas
ROBUST    extension — random/adversarial sensor failures
LIFETIME  extension — network lifetime under progressive failures
CLUSTER   extension — Matern-clustered drops vs the uniform assumption
OCCL      extension — terrain occlusion vs a stadium-model prediction
PLAN      extension — optimised aiming vs random orientations
SLEEP     extension — shift scheduling on the CSA frontier
CONN      extension — connectivity of coverage-grade fleets
========  =============================================================

Run them via the registry::

    from repro.experiments import get_experiment, run_all
    result = get_experiment("FIG7").run(fast=True, seed=0)
    print(result.tables[0].to_markdown())

or from the CLI: ``fullview run FIG7``.
"""

from repro.experiments.registry import (
    Experiment,
    ExperimentResult,
    all_experiments,
    get_experiment,
    run_all,
)

# Importing the modules registers their experiments.
from repro.experiments import (  # noqa: F401  (import for side effect)
    area_decisiveness,
    barrier_emergence,
    clustered_deployment,
    connectivity_analysis,
    critical_search,
    degenerate_1coverage,
    figure7,
    figure8,
    gap_conjecture,
    heterogeneity,
    kcoverage_comparison,
    lifetime,
    occlusion,
    orientation_bias,
    phase_transition,
    planning_gain,
    poisson_validation,
    probabilistic_sensing,
    robustness,
    sleep_scheduling,
    uniform_validation,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "all_experiments",
    "get_experiment",
    "run_all",
]
