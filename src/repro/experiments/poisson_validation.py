"""THM3-MC / THM4-MC — Monte-Carlo validation of Theorems 3 and 4.

Sensors are deployed as a 2-D Poisson process of intensity ``n``; the
frequency with which a fixed point meets the necessary (sufficient)
condition is compared against ``P_N`` (``P_S``).  The paper's series
form and our closed form are also cross-checked here, and the
uniform-vs-Poisson per-point gap (which Section V says shrinks with
``n``) is tabulated.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.core.poisson_theory import (
    poisson_necessary_probability,
    poisson_sufficient_probability,
    uniform_poisson_gap,
)
from repro.deployment.poisson import PoissonDeployment
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.uniform_validation import validation_profile
from repro.seeding import derive_seed
from repro.simulation.montecarlo import MonteCarloConfig, estimate_point_probability
from repro.simulation.results import ResultTable

__all__ = ["run_necessary", "run_sufficient", "scenarios"]

_SLACK = 0.03


def scenarios(fast: bool) -> List[Tuple[int, float]]:
    """Shared Poisson validation scenarios (profile, intensity, theta)."""
    if fast:
        return [(200, math.pi / 3.0), (400, math.pi / 4.0)]
    return [
        (200, math.pi / 3.0),
        (400, math.pi / 4.0),
        (800, math.pi / 4.0),
        (1600, math.pi / 6.0),
    ]


def _run(condition: str, experiment_id: str, fast: bool, seed: int) -> ExperimentResult:
    profile = validation_profile()
    trials = 400 if fast else 3000
    theory_fn = (
        poisson_necessary_probability
        if condition == "necessary"
        else poisson_sufficient_probability
    )
    table = ResultTable(
        title=f"{experiment_id}: Poisson-deployment {condition} condition, "
        "simulation vs theorem",
        columns=[
            "n",
            "theta",
            "theory_closed_form",
            "theory_series",
            "simulated",
            "agrees",
            "uniform_poisson_gap",
        ],
    )
    checks = {}
    for i, (n, theta) in enumerate(scenarios(fast)):
        cfg = MonteCarloConfig(trials=trials, seed=derive_seed(seed, 1000, i))
        estimate = estimate_point_probability(
            profile, n, theta, condition, cfg, scheme=PoissonDeployment()
        )
        closed = theory_fn(profile, n, theta, method="closed_form")
        series = theory_fn(profile, n, theta, method="series")
        agrees = estimate.contains(closed, slack=_SLACK)
        gap = uniform_poisson_gap(profile, n, theta, condition)
        table.add_row(n, theta, closed, series, estimate.proportion, agrees, gap)
        checks[f"agreement_n{n}_theta{theta:.3f}"] = agrees
        checks[f"series_matches_closed_n{n}_theta{theta:.3f}"] = (
            abs(closed - series) < 1e-9
        )
    gaps = [row[-1] for row in table.rows]
    checks["uniform_poisson_gap_small"] = all(g < 0.05 for g in gaps)
    notes = [
        "The series of Theorems 3/4 and the closed form "
        "1 - exp(-theta n_y s_y / pi) (resp. /2pi) agree to 1e-9.",
        "The per-point uniform-vs-Poisson gap is the finite-n residue "
        "of the (1-p)^n ~ e^{-pn} approximation; it shrinks with n.",
    ]
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"Poisson {condition}-condition probability vs simulation",
        tables=[table],
        checks=checks,
        notes=notes,
    )


@register(
    "THM3-MC",
    "Poisson necessary-condition probability vs simulation (Theorem 3)",
    "Theorem 3",
)
def run_necessary(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Validate Theorem 3 (Poisson necessary) against simulation."""
    return _run("necessary", "THM3-MC", fast, seed)


@register(
    "THM4-MC",
    "Poisson sufficient-condition probability vs simulation (Theorem 4)",
    "Theorem 4",
)
def run_sufficient(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Validate Theorem 4 (Poisson sufficient) against simulation."""
    return _run("sufficient", "THM4-MC", fast, seed)
