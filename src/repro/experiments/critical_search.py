"""CRIT — empirical search for the coverage transition inside the band.

Section VI-C leaves the exact critical condition of full-view coverage
as an open problem, proving only that it lies (if it exists) between
``s_N,c(n)`` and ``s_S,c(n)``.  This extension experiment locates the
*empirical* 50% transition: the weighted sensing area at which half of
random deployments fully full-view cover the evaluation grid, found by
bisection on the CSA multiple.

Expected shape: the empirical transition point sits strictly inside
``[s_N,c, s_S,c]`` — consistent with both theorems — and its position
(as a fraction of the band) is reported for several ``n``, giving the
open problem a measured anchor.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.core.batch import full_view_mask
from repro.core.csa import csa_necessary, csa_sufficient
from repro.deployment.uniform import UniformDeployment
from repro.experiments.registry import ExperimentResult, register
from repro.geometry.grid import DenseGrid
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.montecarlo import MonteCarloConfig
from repro.simulation.results import ResultTable

__all__ = ["bisect_transition", "grid_coverage_probability", "run"]

_PHI = math.pi / 2.0


def grid_coverage_probability(
    s: float, n: int, theta: float, trials: int, seed: int, max_points: int
) -> float:
    """P(every sampled grid point full-view covered) at sensing area s."""
    profile = HeterogeneousProfile.homogeneous(CameraSpec.from_area(s, _PHI))
    scheme = UniformDeployment()
    grid = DenseGrid.for_sensor_count(n)
    cfg = MonteCarloConfig(trials=trials, seed=seed)
    covered = 0
    for rng in cfg.rngs():
        fleet = scheme.deploy(profile, n, rng)
        points = (
            grid.sample(max_points, rng) if max_points < len(grid) else grid.points
        )
        covered += bool(full_view_mask(fleet, points, theta).all())
    return covered / trials


def bisect_transition(
    n: int,
    theta: float,
    trials: int,
    seed: int,
    max_points: int,
    iterations: int,
) -> Tuple[float, float, float]:
    """Bisect for the s with ~50% grid coverage; returns (s*, p_lo, p_hi)."""
    lo = 0.25 * csa_necessary(n, theta)
    hi = 2.0 * csa_sufficient(n, theta)
    p_lo = grid_coverage_probability(lo, n, theta, trials, seed, max_points)
    p_hi = grid_coverage_probability(hi, n, theta, trials, seed + 1, max_points)
    for i in range(iterations):
        mid = math.sqrt(lo * hi)
        p_mid = grid_coverage_probability(
            mid, n, theta, trials, seed + 2 + i, max_points
        )
        if p_mid < 0.5:
            lo, p_lo = mid, p_mid
        else:
            hi, p_hi = mid, p_mid
    return math.sqrt(lo * hi), p_lo, p_hi


@register(
    "CRIT",
    "Empirical 50% coverage transition inside the CSA band (extension)",
    "Section VI-C open problem",
)
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Locate the empirical 50% coverage transition inside the CSA band."""
    theta = math.pi / 2.0
    ns = [150, 300] if fast else [300, 600, 1200]
    trials = 30 if fast else 120
    max_points = 250 if fast else 1500
    iterations = 5 if fast else 8
    table = ResultTable(
        title="CRIT: empirical 50% full-view-coverage transition s* "
        "(theta = pi/2)",
        columns=[
            "n",
            "csa_necessary",
            "empirical_transition",
            "csa_sufficient",
            "band_position",
        ],
    )
    checks = {}
    positions = []
    for i, n in enumerate(ns):
        s_star, p_lo, p_hi = bisect_transition(
            n, theta, trials, seed + 50_000 * i, max_points, iterations
        )
        nec = csa_necessary(n, theta)
        suf = csa_sufficient(n, theta)
        position = (math.log(s_star) - math.log(nec)) / (
            math.log(suf) - math.log(nec)
        )
        positions.append(position)
        table.add_row(n, nec, s_star, suf, position)
        # The transition lies inside (or marginally around) the band.
        checks[f"transition_above_floor_n{n}"] = s_star > 0.5 * nec
        checks[f"transition_below_ceiling_n{n}"] = s_star < 1.5 * suf
        checks[f"bisection_bracketed_n{n}"] = p_lo < 0.5 <= p_hi
    notes = [
        "band_position is log-linear: 0 at the necessary CSA, 1 at the "
        "sufficient CSA.  Values strictly inside (0, 1) are consistent "
        "with the paper's conjecture that no closed-form critical CSA "
        "separates the regimes — the transition sits in the band, not at "
        "either bound.",
        f"Measured band positions: {[f'{p:.2f}' for p in positions]}.",
        "Grid subsampling makes the coverage event slightly easier than "
        "the full dense grid, biasing s* down uniformly across n; the "
        "band-interior conclusion is insensitive to this (checked at "
        "0.5x / 1.5x guard bands).",
    ]
    return ExperimentResult(
        experiment_id="CRIT",
        title="Empirical 50% coverage transition inside the CSA band",
        tables=[table],
        checks=checks,
        notes=notes,
    )
