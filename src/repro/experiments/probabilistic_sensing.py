"""PROB — probabilistic sensing behaves like a shrunken binary sensor.

The paper's second named future work is "extending our results in
probabilistic sensing models" (Section VIII).  This extension tests the
natural reduction: under a distance-decaying detection model, each
sensor detects an in-sector object with mean probability
``rho = E[p(d)]`` (the model's expected coverage ratio), so — because
under uniform deployment only the *sensing area* matters (Section
VI-A) — a probabilistic fleet should meet the necessary condition at
the same rate as a binary fleet whose sensing areas are scaled by
``rho``.

Expected shape: the equivalent-area prediction tracks the simulated
probabilistic fleet within Monte-Carlo noise, across decay strengths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.conditions import necessary_condition_holds
from repro.core.uniform_theory import necessary_failure_probability
from repro.deployment.uniform import UniformDeployment
from repro.experiments.registry import ExperimentResult, register
from repro.seeding import derive_seed
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.sensors.probabilistic import (
    ExponentialDecayModel,
    probabilistic_covering_directions,
)
from repro.simulation.engine import execute_trials
from repro.simulation.montecarlo import MonteCarloConfig
from repro.simulation.results import ResultTable
from repro.simulation.statistics import BernoulliEstimate

__all__ = ["run"]


@dataclass(frozen=True)
class _ProbabilisticNecessaryTrial:
    """Deploy, draw probabilistic detections, test the probe point."""

    profile: HeterogeneousProfile
    n: int
    theta: float
    model: ExponentialDecayModel
    point: Tuple[float, float]

    def __call__(self, trial: int, rng: np.random.Generator) -> bool:
        del trial
        fleet = UniformDeployment().deploy(self.profile, self.n, rng)
        fleet.build_index()
        dirs = probabilistic_covering_directions(fleet, self.point, self.model, rng)
        return bool(necessary_condition_holds(dirs, self.theta))


@register(
    "PROB",
    "Probabilistic sensing == binary sensing at rho-scaled area (extension)",
    "Section VIII future work",
)
def run(
    fast: bool = True, seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Match probabilistic sensing to binary sensing at rho-scaled area."""
    n = 350
    theta = math.pi / 3.0
    trials = 300 if fast else 2000
    base = HeterogeneousProfile.homogeneous(
        CameraSpec(radius=0.28, angle_of_view=math.pi / 2)
    )
    point = (0.5, 0.5)
    betas = [0.5, 1.0, 2.0, 4.0]
    table = ResultTable(
        title=f"PROB: probabilistic fleets vs rho-scaled binary theory "
        f"(n={n}, theta=pi/3)",
        columns=[
            "beta",
            "rho",
            "simulated_p_necessary",
            "equivalent_area_theory",
            "agrees",
        ],
    )
    checks = {}
    for i, beta in enumerate(betas):
        model = ExponentialDecayModel(beta=beta, gamma=2.0)
        rho = model.expected_coverage_ratio()
        cfg = MonteCarloConfig(
            trials=trials, seed=derive_seed(seed, 17000, i), workers=workers
        )
        outcomes = execute_trials(
            _ProbabilisticNecessaryTrial(
                profile=base, n=n, theta=theta, model=model, point=point
            ),
            cfg,
        )
        successes = sum(1 for outcome in outcomes if outcome.value)
        estimate = BernoulliEstimate(successes=successes, trials=trials)
        scaled = base.scaled_to_weighted_area(rho * base.weighted_sensing_area)
        theory = 1.0 - necessary_failure_probability(scaled, n, theta)
        agrees = estimate.contains(theory, slack=0.04)
        table.add_row(beta, rho, estimate.proportion, theory, agrees)
        checks[f"equivalent_area_predicts_beta{beta}"] = agrees
    notes = [
        "rho = E[p(d)] over a uniform in-sector point; the binary "
        "comparator scales every radius by sqrt(rho) so the per-sensor "
        "area is rho * s.",
        "Agreement across decay strengths extends the Section VI-A "
        "area-decisiveness principle to probabilistic sensing: the "
        "*expected* sensing area is what matters.",
    ]
    return ExperimentResult(
        experiment_id="PROB",
        title="Probabilistic sensing == binary sensing at rho-scaled area",
        tables=[table],
        checks=checks,
        notes=notes,
    )
