"""ROBUST — sensor failures: graceful degradation and breach costs.

Robustness questions a deployed network faces, answered with the
resilience subsystem's failure models (:mod:`repro.resilience.failures`)
plus the reproduction's theory:

1. *Random failures* (:class:`BernoulliFailure`).  If each sensor
   independently dies with probability ``p``, the survivors of a
   uniform deployment are again a uniform deployment of ``~n(1-p)``
   sensors, so eq. (2) evaluated at the survivor count predicts the
   per-point necessary-condition probability of the thinned fleet.
   (The paper's motivation for k-coverage — fault tolerance — made
   quantitative for full view.)

2. *Orientation drift* (:class:`OrientationDrift`).  Uniform headings
   plus independent noise are still uniform on the circle, so coverage
   statistics are invariant under arbitrary drift — the model's uniform
   orientation assumption is a fixed point of this failure mode.

3. *Radius degradation* (:class:`RadiusDegradation`).  Shrinking every
   radius by ``f`` scales the weighted sensing area by ``f**2``, so
   eq. (2) at the scaled profile predicts the aged fleet's coverage.

4. *Adversarial failures.*  The breach cost (minimum sensors an
   adversary must disable to break full-view coverage of a point,
   :mod:`repro.core.redundancy`) should grow with provisioning: fleets
   above the sufficient CSA are not just covered but *robustly*
   covered.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.csa import csa_sufficient
from repro.core.redundancy import breach_cost
from repro.core.uniform_theory import necessary_failure_probability
from repro.core.conditions import necessary_condition_holds
from repro.deployment.uniform import UniformDeployment
from repro.experiments.registry import ExperimentResult, register
from repro.resilience.failures import (
    BernoulliFailure,
    FailureModel,
    OrientationDrift,
    RadiusDegradation,
)
from repro.seeding import derive_seed
from repro.sensors.fleet import SensorFleet
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.engine import execute_trials
from repro.simulation.montecarlo import MonteCarloConfig
from repro.simulation.results import ResultTable
from repro.simulation.statistics import BernoulliEstimate

__all__ = ["run"]

_PHI = math.pi / 2.0

_POINT = (0.5, 0.5)


@dataclass(frozen=True)
class _NecessaryRateTrial:
    """Deploy, apply an optional failure model, test the probe point."""

    profile: HeterogeneousProfile
    n: int
    theta: float
    model: Optional[FailureModel] = None

    def __call__(self, trial: int, rng: np.random.Generator) -> bool:
        del trial
        fleet = UniformDeployment().deploy(self.profile, self.n, rng)
        if self.model is not None:
            fleet = self.model.apply(fleet, rng)
        if len(fleet):
            fleet.build_index()
            dirs = fleet.covering_directions(_POINT)
        else:
            dirs = SensorFleet.no_directions()
        return bool(necessary_condition_holds(dirs, self.theta))


@dataclass(frozen=True)
class _BreachCostTrial:
    """Deploy and compute the adversarial breach cost at the probe point."""

    profile: HeterogeneousProfile
    n: int
    theta: float

    def __call__(self, trial: int, rng: np.random.Generator) -> int:
        del trial
        fleet = UniformDeployment().deploy(self.profile, self.n, rng)
        fleet.build_index()
        dirs = fleet.covering_directions(_POINT)
        return int(breach_cost(dirs, self.theta))


def _necessary_rate(profile, n, theta, cfg, model=None):
    """P(point meets necessary condition) after an optional failure model."""
    task = _NecessaryRateTrial(profile=profile, n=n, theta=theta, model=model)
    outcomes = execute_trials(task, cfg)
    successes = sum(1 for outcome in outcomes if outcome.value)
    return BernoulliEstimate(successes=successes, trials=cfg.trials)


@register(
    "ROBUST",
    "Random and adversarial sensor failures (extension)",
    "Section VII-B fault-tolerance motivation",
)
def run(
    fast: bool = True, seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Stress coverage under random and adversarial sensor failures."""
    n = 400
    theta = math.pi / 3.0
    trials = 250 if fast else 1500
    profile = HeterogeneousProfile.homogeneous(
        CameraSpec(radius=0.28, angle_of_view=_PHI)
    )
    checks = {}

    # 1. Random failures vs survivor-count theory.
    failure_table = ResultTable(
        title=f"ROBUST: random failure rate p vs survivor theory "
        f"(n={n}, theta=pi/3)",
        columns=["p_failure", "simulated_p_necessary", "survivor_theory", "agrees"],
    )
    for i, p in enumerate([0.0, 0.2, 0.4, 0.6]):
        cfg = MonteCarloConfig(
            trials=trials, seed=derive_seed(seed, 21000, i), workers=workers
        )
        estimate = _necessary_rate(profile, n, theta, cfg, BernoulliFailure(p))
        survivors = max(1, round(n * (1.0 - p)))
        theory = 1.0 - necessary_failure_probability(profile, survivors, theta)
        agrees = estimate.contains(theory, slack=0.04)
        failure_table.add_row(p, estimate.proportion, theory, agrees)
        checks[f"survivor_theory_p{p}"] = agrees

    # 2. Orientation drift invariance: uniform headings stay uniform.
    drift_table = ResultTable(
        title="ROBUST: orientation drift sigma vs undrifted baseline",
        columns=["sigma", "simulated_p_necessary", "baseline", "agrees"],
    )
    base_cfg = MonteCarloConfig(
        trials=trials, seed=derive_seed(seed, 41000), workers=workers
    )
    baseline = _necessary_rate(profile, n, theta, base_cfg)
    for i, sigma in enumerate([0.3, 1.5]):
        cfg = MonteCarloConfig(
            trials=trials, seed=derive_seed(seed, 42000, i), workers=workers
        )
        estimate = _necessary_rate(
            profile, n, theta, cfg, OrientationDrift(sigma)
        )
        agrees = estimate.contains(baseline.proportion, slack=0.04)
        drift_table.add_row(sigma, estimate.proportion, baseline.proportion, agrees)
        checks[f"drift_invariance_sigma{sigma}"] = agrees

    # 3. Radius degradation vs area-scaled theory.
    decay_table = ResultTable(
        title="ROBUST: radius degradation factor f vs f^2-scaled-area theory",
        columns=["factor", "simulated_p_necessary", "scaled_theory", "agrees"],
    )
    s_c = profile.weighted_sensing_area
    for i, factor in enumerate([1.0, 0.8, 0.6]):
        cfg = MonteCarloConfig(
            trials=trials, seed=derive_seed(seed, 43000, i), workers=workers
        )
        estimate = _necessary_rate(
            profile, n, theta, cfg, RadiusDegradation(factor)
        )
        aged = profile.scaled_to_weighted_area(factor**2 * s_c)
        theory = 1.0 - necessary_failure_probability(aged, n, theta)
        agrees = estimate.contains(theory, slack=0.04)
        decay_table.add_row(factor, estimate.proportion, theory, agrees)
        checks[f"degradation_theory_f{factor}"] = agrees

    # 4. Breach cost vs provisioning.
    breach_table = ResultTable(
        title="ROBUST: mean adversarial breach cost vs provisioning q",
        columns=["q_of_sufficient_csa", "mean_breach_cost", "p_full_view"],
    )
    breach_trials = 120 if fast else 600
    base = csa_sufficient(n, theta)
    mean_costs = []
    for i, q in enumerate([0.5, 1.0, 2.0, 4.0]):
        scaled = profile.scaled_to_weighted_area(q * base)
        cfg = MonteCarloConfig(
            trials=breach_trials, seed=derive_seed(seed, 31000, i), workers=workers
        )
        outcomes = execute_trials(
            _BreachCostTrial(profile=scaled, n=n, theta=theta), cfg
        )
        costs = [outcome.value for outcome in outcomes]
        covered = sum(1 for cost in costs if cost > 0)
        mean_cost = float(np.mean(costs))
        mean_costs.append(mean_cost)
        breach_table.add_row(q, mean_cost, covered / breach_trials)
    # Monotone up to noise; at large q the sensing radius saturates the
    # torus reach and the breach cost plateaus rather than keeps rising.
    checks["breach_cost_nondecreasing_with_q"] = all(
        b >= a - 1.0 for a, b in zip(mean_costs, mean_costs[1:])
    )
    checks["breach_cost_grows_substantially"] = mean_costs[-1] > 2.0 * mean_costs[0]
    checks["overprovisioned_fleet_robust"] = mean_costs[-1] >= 3.0
    notes = [
        "Random thinning of a uniform fleet is a uniform fleet of the "
        "survivor count; eq. (2) at n(1-p) predicts the degraded "
        "coverage within Monte-Carlo noise at every failure rate.",
        "Orientation drift leaves uniform headings uniform, so coverage "
        "statistics are drift-invariant; radius aging by f matches the "
        "theory of a fresh fleet with f^2-scaled sensing areas.",
        "Breach cost = minimum sensors an adversary must disable to open "
        "an unsafe facing direction at the probe point; provisioning at "
        f"4x the sufficient CSA buys a mean breach cost of "
        f"{mean_costs[-1]:.1f} sensors.",
    ]
    return ExperimentResult(
        experiment_id="ROBUST",
        title="Random and adversarial sensor failures",
        tables=[failure_table, drift_table, decay_table, breach_table],
        checks=checks,
        notes=notes,
    )
