"""ROBUST — sensor failures: graceful degradation and breach costs.

Two robustness questions a deployed network faces, answered with the
reproduction's machinery:

1. *Random failures.*  If each sensor independently dies with
   probability ``p``, the survivors of a uniform deployment are again a
   uniform deployment of ``~n(1-p)`` sensors, so eq. (2) evaluated at
   the survivor count should predict the per-point necessary-condition
   probability of the thinned fleet.  (The paper's motivation for
   k-coverage — fault tolerance — made quantitative for full view.)

2. *Adversarial failures.*  The breach cost (minimum sensors an
   adversary must disable to break full-view coverage of a point,
   :mod:`repro.core.redundancy`) should grow with provisioning: fleets
   above the sufficient CSA are not just covered but *robustly*
   covered.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.csa import csa_sufficient
from repro.core.redundancy import breach_cost
from repro.core.uniform_theory import necessary_failure_probability
from repro.core.conditions import necessary_condition_holds
from repro.deployment.uniform import UniformDeployment
from repro.experiments.registry import ExperimentResult, register
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.montecarlo import MonteCarloConfig
from repro.simulation.results import ResultTable
from repro.simulation.statistics import BernoulliEstimate

_PHI = math.pi / 2.0


@register(
    "ROBUST",
    "Random and adversarial sensor failures (extension)",
    "Section VII-B fault-tolerance motivation",
)
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    n = 400
    theta = math.pi / 3.0
    trials = 250 if fast else 1500
    profile = HeterogeneousProfile.homogeneous(
        CameraSpec(radius=0.28, angle_of_view=_PHI)
    )
    scheme = UniformDeployment()
    point = (0.5, 0.5)
    checks = {}

    # 1. Random failures vs survivor-count theory.
    failure_table = ResultTable(
        title=f"ROBUST: random failure rate p vs survivor theory "
        f"(n={n}, theta=pi/3)",
        columns=["p_failure", "simulated_p_necessary", "survivor_theory", "agrees"],
    )
    for i, p in enumerate([0.0, 0.2, 0.4, 0.6]):
        cfg = MonteCarloConfig(trials=trials, seed=seed + 21000 * i)
        successes = 0
        for rng in cfg.rngs():
            fleet = scheme.deploy(profile, n, rng)
            if p > 0.0:
                alive = np.flatnonzero(rng.random(len(fleet)) >= p)
                fleet = fleet.subset(alive)
            if len(fleet):
                fleet.build_index()
                dirs = fleet.covering_directions(point)
            else:
                dirs = np.empty(0)
            successes += necessary_condition_holds(dirs, theta)
        estimate = BernoulliEstimate(successes=successes, trials=trials)
        survivors = max(1, round(n * (1.0 - p)))
        theory = 1.0 - necessary_failure_probability(profile, survivors, theta)
        agrees = estimate.contains(theory, slack=0.04)
        failure_table.add_row(p, estimate.proportion, theory, agrees)
        checks[f"survivor_theory_p{p}"] = agrees

    # 2. Breach cost vs provisioning.
    breach_table = ResultTable(
        title="ROBUST: mean adversarial breach cost vs provisioning q",
        columns=["q_of_sufficient_csa", "mean_breach_cost", "p_full_view"],
    )
    breach_trials = 120 if fast else 600
    base = csa_sufficient(n, theta)
    mean_costs = []
    for i, q in enumerate([0.5, 1.0, 2.0, 4.0]):
        scaled = profile.scaled_to_weighted_area(q * base)
        cfg = MonteCarloConfig(trials=breach_trials, seed=seed + 31000 * i)
        costs = []
        covered = 0
        for rng in cfg.rngs():
            fleet = scheme.deploy(scaled, n, rng)
            fleet.build_index()
            dirs = fleet.covering_directions(point)
            cost = breach_cost(dirs, theta)
            costs.append(cost)
            covered += cost > 0
        mean_cost = float(np.mean(costs))
        mean_costs.append(mean_cost)
        breach_table.add_row(q, mean_cost, covered / breach_trials)
    # Monotone up to noise; at large q the sensing radius saturates the
    # torus reach and the breach cost plateaus rather than keeps rising.
    checks["breach_cost_nondecreasing_with_q"] = all(
        b >= a - 1.0 for a, b in zip(mean_costs, mean_costs[1:])
    )
    checks["breach_cost_grows_substantially"] = mean_costs[-1] > 2.0 * mean_costs[0]
    checks["overprovisioned_fleet_robust"] = mean_costs[-1] >= 3.0
    notes = [
        "Random thinning of a uniform fleet is a uniform fleet of the "
        "survivor count; eq. (2) at n(1-p) predicts the degraded "
        "coverage within Monte-Carlo noise at every failure rate.",
        "Breach cost = minimum sensors an adversary must disable to open "
        "an unsafe facing direction at the probe point; provisioning at "
        f"4x the sufficient CSA buys a mean breach cost of "
        f"{mean_costs[-1]:.1f} sensors.",
    ]
    return ExperimentResult(
        experiment_id="ROBUST",
        title="Random and adversarial sensor failures",
        tables=[failure_table, breach_table],
        checks=checks,
        notes=notes,
    )
