"""ORIENT — the uniform-orientation assumption is load-bearing.

The model (Section II-A) draws every camera's orientation uniformly on
the circle, which is where the ``phi/(2*pi)`` orientation-success factor
in every formula comes from.  This extension experiment quantifies what
happens when installation bias violates that assumption: orientations
are drawn von-Mises concentrated around a common heading with
increasing ``kappa``.

Expected shape: 1-coverage of a point *improves or holds* modestly…
actually no — a point's coverage by a sensor depends on the *relative*
bearing, so 1-coverage stays roughly flat; but *full-view* coverage
collapses, because all cameras watching from compatible bearings leave
whole facing-direction ranges unsafe.  The experiment contrasts the two
to show the failure is specifically full-view.
"""

from __future__ import annotations

import math

from repro.core.full_view import is_full_view_covered
from repro.deployment.orientation import UniformOrientation, VonMisesOrientation
from repro.deployment.uniform import UniformDeployment
from repro.experiments.registry import ExperimentResult, register
from repro.seeding import derive_seed
from repro.sensors.fleet import fleet_from_profile_arrays
from repro.sensors.model import CameraSpec, HeterogeneousProfile
from repro.simulation.montecarlo import MonteCarloConfig
from repro.simulation.results import ResultTable

__all__ = ["run"]


@register(
    "ORIENT",
    "Orientation bias collapses full-view coverage but not detection (extension)",
    "Section II-A model assumption ablation",
)
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Show orientation bias collapses full-view coverage, not detection."""
    n = 300
    theta = math.pi / 3.0
    trials = 250 if fast else 2000
    profile = HeterogeneousProfile.homogeneous(
        CameraSpec(radius=0.3, angle_of_view=math.pi / 2)
    )
    kappas = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0]
    scheme = UniformDeployment()
    point = (0.5, 0.5)
    table = ResultTable(
        title=f"ORIENT: point coverage vs orientation concentration kappa "
        f"(n={n}, theta=pi/3)",
        columns=["kappa", "p_full_view", "p_detected", "mean_covering_sensors"],
    )
    full_view_series = []
    detect_series = []
    for i, kappa in enumerate(kappas):
        sampler = (
            UniformOrientation()
            if kappa == 0.0  # fvlint: disable=FV004 (exact sweep-grid sentinel)
            else VonMisesOrientation(mean=1.0, kappa=kappa)
        )
        cfg = MonteCarloConfig(trials=trials, seed=derive_seed(seed, i))
        fv = detected = 0
        covering_total = 0
        for rng in cfg.rngs():
            positions = scheme.positions(n, rng)
            orientations = sampler.sample(positions, rng)
            fleet = fleet_from_profile_arrays(profile, positions, orientations)
            fleet.build_index()
            dirs = fleet.covering_directions(point)
            covering_total += dirs.size
            detected += dirs.size > 0
            fv += is_full_view_covered(dirs, theta)
        table.add_row(kappa, fv / trials, detected / trials, covering_total / trials)
        full_view_series.append(fv / trials)
        detect_series.append(detected / trials)
    checks = {
        "full_view_collapses": full_view_series[-1] < 0.3 * max(full_view_series[0], 1e-9),
        "full_view_monotone_decline": all(
            full_view_series[i + 1] <= full_view_series[i] + 0.08
            for i in range(len(full_view_series) - 1)
        ),
        "detection_robust": min(detect_series) > 0.8 * max(detect_series),
    }
    notes = [
        "Detection (1-coverage) barely moves with kappa: a biased camera "
        "still covers the points that happen to lie in front of it.  "
        "Full-view coverage collapses, because aligned cameras all view "
        "an object from the same side, leaving the opposite facing "
        "directions unsafe — the assumption of uniform orientations is "
        "essential to the paper's thresholds.",
        f"Full-view probability fell {full_view_series[0]:.2f} -> "
        f"{full_view_series[-1]:.2f} as kappa rose 0 -> 8.",
    ]
    return ExperimentResult(
        experiment_id="ORIENT",
        title="Orientation bias collapses full-view coverage but not detection",
        tables=[table],
        checks=checks,
        notes=notes,
    )
