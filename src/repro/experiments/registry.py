"""Experiment registry: discoverable, uniformly-shaped experiments.

An :class:`Experiment` couples an id (from DESIGN.md's index) with a
runner ``(fast, seed) -> ExperimentResult``.  ``fast=True`` shrinks
Monte-Carlo budgets so the whole suite runs in seconds (used by tests
and CI); ``fast=False`` is the publication-quality setting used to
fill EXPERIMENTS.md.

Every result carries named boolean *checks* — the shape-level claims
the paper makes (monotonicity, orderings, theory-vs-simulation
agreement).  ``result.passed`` is the conjunction.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.errors import ExperimentError
from repro.obs.metrics import active_metrics
from repro.obs.trace import span
from repro.simulation.results import ResultTable

__all__ = [
    "Experiment",
    "ExperimentResult",
    "Runner",
    "all_experiments",
    "get_experiment",
    "register",
    "run_all",
]

#: Runner signature: ``(fast, seed) -> ExperimentResult``, optionally
#: accepting a ``workers`` keyword to parallelise its Monte-Carlo sweeps.
Runner = Callable[..., "ExperimentResult"]

_REGISTRY: Dict[str, "Experiment"] = {}


@dataclass
class ExperimentResult:
    """Outcome of one experiment run.

    Attributes
    ----------
    experiment_id, title:
        Identity (mirrors the registered experiment).
    tables:
        The reproduced tables/series.
    checks:
        Named shape-level assertions; all must hold for ``passed``.
    notes:
        Free-form commentary (paper-vs-measured remarks).
    """

    experiment_id: str
    title: str
    tables: List[ResultTable] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(self.checks.values())

    def failed_checks(self) -> List[str]:
        return [name for name, ok in self.checks.items() if not ok]

    def render(self) -> str:
        """Full human-readable report."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for note in self.notes:
            lines.append(f"note: {note}")
        for table in self.tables:
            lines.append("")
            lines.append(table.pretty())
        lines.append("")
        for name, ok in self.checks.items():
            lines.append(f"check {name}: {'PASS' if ok else 'FAIL'}")
        lines.append(f"overall: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Experiment:
    """A registered experiment."""

    experiment_id: str
    title: str
    paper_artifact: str
    runner: Runner

    def run(
        self,
        fast: bool = True,
        seed: int = 0,
        workers: Optional[int] = None,
    ) -> ExperimentResult:
        """Execute the runner; ``workers`` is forwarded when supported.

        Runners opt into parallel execution by accepting a ``workers``
        keyword (threaded into their Monte-Carlo configs); results are
        bit-identical across worker counts, so the knob is purely a
        wall-clock choice.
        """
        kwargs = {}
        if (
            workers is not None
            and "workers" in inspect.signature(self.runner).parameters
        ):
            kwargs["workers"] = workers
        with span("experiment", experiment=self.experiment_id):
            result = self.runner(fast, seed, **kwargs)
        if result.experiment_id != self.experiment_id:
            raise ExperimentError(
                f"runner for {self.experiment_id} returned result labelled "
                f"{result.experiment_id}"
            )
        metrics = active_metrics()
        if metrics is not None:
            metrics.inc("experiments_run")
            if not result.passed:
                metrics.inc("experiments_failed")
        return result


def register(experiment_id: str, title: str, paper_artifact: str) -> Callable[[Runner], Runner]:
    """Decorator registering a runner under an experiment id."""

    def decorate(runner: Runner) -> Runner:
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = Experiment(
            experiment_id=experiment_id,
            title=title,
            paper_artifact=paper_artifact,
            runner=runner,
        )
        return runner

    return decorate


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id (case-insensitive)."""
    key = experiment_id.upper()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(f"unknown experiment {experiment_id!r}; known: {known}")
    return _REGISTRY[key]


def all_experiments() -> Mapping[str, Experiment]:
    """All registered experiments, keyed by id."""
    return dict(_REGISTRY)


def run_all(
    fast: bool = True, seed: int = 0, workers: Optional[int] = None
) -> List[ExperimentResult]:
    """Run every registered experiment and return the results."""
    return [
        exp.run(fast=fast, seed=seed, workers=workers)
        for _, exp in sorted(_REGISTRY.items())
    ]
