"""Command-line interface: ``fullview`` (or ``python -m repro``).

Subcommands
-----------
- ``fullview list`` — registered experiments and their paper artifacts.
- ``fullview run FIG7 FIG8 ...`` — run experiments (``--full`` for
  publication-quality budgets), print reports, optionally ``--out DIR``
  to export every table as CSV.  ``--checkpoint DIR`` records completed
  experiments so an interrupted sweep can continue with ``--resume``;
  ``--time-budget SECONDS`` stops gracefully between experiments;
  ``--workers N`` runs the Monte-Carlo trials on a worker pool and
  ``--executor serial|thread|process|auto`` picks the backend
  (bit-identical results either way).
- ``fullview lifetime`` — simulate network lifetime under a per-epoch
  failure schedule via the checkpointed resilient runner (supports
  ``--checkpoint/--resume/--time-budget`` at trial granularity).
- ``fullview figures`` — render Figures 7 and 8 as ASCII charts and
  CSV series.
- ``fullview workloads`` — assess the built-in scenarios against CSA
  theory and simulation.
- ``fullview lint`` — run the ``fvlint`` domain-invariant static
  analysis (RNG discipline, error contract, angle hygiene, ...) over
  source trees, with text/JSON reports and a baseline workflow.
- ``fullview report`` — summarize a ``--trace`` JSONL file (throughput,
  wall vs. CPU, worker utilization, span breakdown, latency
  percentiles, slowest trials), or export it with ``--format
  chrome|flamegraph|prom`` (Perfetto trace, collapsed-stack
  flamegraph, Prometheus text exposition).
- ``fullview runs`` — list or inspect the persistent run ledger
  (``~/.fullview/runs.jsonl``, ``--ledger PATH`` or FULLVIEW_LEDGER).
- ``fullview watch PATH`` — tail a ``--status`` live file and render a
  single-line refreshing progress view for a running job.

``run``, ``lifetime`` and ``workloads`` accept ``--trace PATH`` and
``--metrics PATH`` to record structured telemetry (see
:mod:`repro.obs`), ``--status PATH``/``--ledger [PATH]`` for live
progress and the run ledger, plus ``--executor`` to scope the
trial-executor backend for the whole command; all are off by default
and never perturb results.
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro._version import __version__

__all__ = ["build_parser", "main"]


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments import all_experiments

    experiments = all_experiments()
    width = max(len(k) for k in experiments)
    for key in sorted(experiments):
        exp = experiments[key]
        print(f"{key.ljust(width)}  {exp.title}  [{exp.paper_artifact}]")
    return 0


#: Schema tag for the experiment-level run checkpoint.
_RUN_CHECKPOINT_FORMAT = "fullview-run-checkpoint-v1"


def _load_run_checkpoint(path: Path, seed: int, full: bool) -> dict:
    import json

    from repro.errors import CheckpointError

    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"cannot read run checkpoint {path}: {exc}") from exc
    if payload.get("format") != _RUN_CHECKPOINT_FORMAT:
        raise CheckpointError(f"{path} is not a {_RUN_CHECKPOINT_FORMAT} checkpoint")
    if payload.get("seed") != seed or payload.get("full") != full:
        raise CheckpointError(
            f"run checkpoint {path} was written for seed={payload.get('seed')}, "
            f"full={payload.get('full')}; rerun with matching flags or start fresh"
        )
    return payload.get("completed", {})


def _save_run_checkpoint(path: Path, seed: int, full: bool, completed: dict) -> None:
    from repro.ioutil import write_json_atomic
    from repro.obs.events import CheckpointWritten, active_event_log

    payload = {
        "format": _RUN_CHECKPOINT_FORMAT,
        "version": __version__,
        "seed": seed,
        "full": full,
        "completed": completed,
    }
    # Durable atomic write: fsynced before the rename so a crash can
    # never publish a torn run checkpoint.
    write_json_atomic(path, payload)
    log = active_event_log()
    if log is not None:
        log.emit(
            CheckpointWritten(path=str(path), checkpoint_kind="run", next_trial=len(completed))
        )


def _obs_context(args: argparse.Namespace, command: str):
    """The ``--trace``/``--metrics``/``--status``/``--ledger`` obs context."""
    from repro.obs import observe

    ledger = getattr(args, "ledger", None)
    if ledger == "":
        # ``--ledger`` with no PATH: the default persistent location
        # (FULLVIEW_LEDGER or ~/.fullview/runs.jsonl).
        from repro.obs.ledger import default_ledger_path

        ledger = default_ledger_path()
    experiment = ",".join(getattr(args, "ids", None) or []) or None
    meta = {
        "command": command,
        "seed": getattr(args, "seed", None),
        "experiment": experiment,
    }
    return observe(
        trace=getattr(args, "trace", None),
        metrics=getattr(args, "metrics", None),
        meta={k: v for k, v in meta.items() if v is not None},
        status=getattr(args, "status", None),
        ledger=ledger,
    )


def _executor_context(args: argparse.Namespace):
    """The ``--executor`` scope: backend selection for the whole command.

    Only an explicitly-passed flag becomes a scoped override; otherwise
    every config keeps resolving from the ``FULLVIEW_EXECUTOR``
    environment variable (else ``auto``), mirroring the fault scope.
    """
    from repro.simulation.engine import executor_scope

    return executor_scope(getattr(args, "executor", None))


def _fault_context(args: argparse.Namespace):
    """The ``--max-retries``/``--chunk-timeout``/``--chaos`` fault scope.

    Only flags the user actually passed become scoped overrides; unset
    slots keep resolving from the ``FULLVIEW_MAX_RETRIES`` /
    ``FULLVIEW_CHUNK_TIMEOUT`` / ``FULLVIEW_CHAOS`` environment
    variables.
    """
    import dataclasses

    from repro.simulation.faults import ChaosPolicy, RetryPolicy, fault_scope

    retry = None
    overrides = {}
    if getattr(args, "max_retries", None) is not None:
        overrides["max_retries"] = args.max_retries
    if getattr(args, "chunk_timeout", None) is not None:
        overrides["chunk_timeout"] = args.chunk_timeout
    if overrides:
        retry = dataclasses.replace(RetryPolicy.from_env(), **overrides)
    chaos = None
    if getattr(args, "chaos", None):
        chaos = ChaosPolicy.parse(args.chaos)
    return fault_scope(retry=retry, chaos=chaos)


def _cmd_run(args: argparse.Namespace) -> int:
    with _obs_context(args, "run"), _fault_context(args), _executor_context(args):
        return _run_body(args)


def _run_body(args: argparse.Namespace) -> int:
    import time

    from repro.experiments import all_experiments, get_experiment

    ids: List[str] = args.ids or sorted(all_experiments())
    out_dir: Optional[Path] = Path(args.out) if args.out else None
    checkpoint_path: Optional[Path] = (
        Path(args.checkpoint) / "run_checkpoint.json" if args.checkpoint else None
    )
    completed: dict = {}
    if args.resume and checkpoint_path is not None and checkpoint_path.exists():
        completed = _load_run_checkpoint(checkpoint_path, args.seed, args.full)
    any_failed = False
    truncated = False
    started_at = time.monotonic()
    for experiment_id in ids:
        experiment = get_experiment(experiment_id)
        key = experiment.experiment_id
        if key in completed:
            print(f"{key}: already completed (checkpoint) — "
                  f"{'PASS' if completed[key]['passed'] else 'FAIL'}")
            any_failed |= not completed[key]["passed"]
            continue
        if (
            args.time_budget is not None
            and time.monotonic() - started_at >= args.time_budget
        ):
            truncated = True
            break
        result = experiment.run(
            fast=not args.full, seed=args.seed, workers=args.workers
        )
        print(result.render())
        print()
        if out_dir is not None:
            for i, table in enumerate(result.tables):
                suffix = f"_{i}" if len(result.tables) > 1 else ""
                path = out_dir / f"{result.experiment_id.lower()}{suffix}.csv"
                table.save_csv(path)
                print(f"wrote {path}")
        any_failed |= not result.passed
        completed[key] = {"passed": result.passed}
        if checkpoint_path is not None:
            _save_run_checkpoint(checkpoint_path, args.seed, args.full, completed)
    if truncated:
        remaining = [i for i in ids if i.upper() not in completed]
        print(f"time budget exhausted; {len(remaining)} experiment(s) not run: "
              f"{', '.join(remaining)}")
        if checkpoint_path is not None:
            print(f"resume with: fullview run --checkpoint {args.checkpoint} --resume")
    return 1 if any_failed else 0


def _cmd_lifetime(args: argparse.Namespace) -> int:
    with _obs_context(args, "lifetime"), _fault_context(args), _executor_context(
        args
    ):
        return _lifetime_body(args)


def _lifetime_body(args: argparse.Namespace) -> int:
    from repro.core.csa import csa_necessary, csa_sufficient
    from repro.resilience.failures import (
        BernoulliFailure,
        DiskBlackout,
        FailureSchedule,
        OrientationDrift,
        RadiusDegradation,
    )
    from repro.resilience.lifetime import LifetimeDistribution, make_lifetime_trial
    from repro.sensors.model import CameraSpec, HeterogeneousProfile
    from repro.simulation.montecarlo import MonteCarloConfig
    from repro.simulation.results import ResultTable
    from repro.simulation.runner import run_resilient_trials

    theta = args.theta_over_pi * math.pi
    profile = HeterogeneousProfile.homogeneous(
        CameraSpec(radius=args.radius, angle_of_view=args.phi_over_pi * math.pi)
    )
    if args.provision is not None and args.provision > 0:
        profile = profile.scaled_to_weighted_area(
            args.provision * csa_sufficient(args.n, theta)
        )
    models = []
    if args.failure_rate > 0:
        models.append(BernoulliFailure(args.failure_rate))
    if args.blackout_radius is not None:
        models.append(DiskBlackout(args.blackout_radius))
    if args.drift > 0:
        models.append(OrientationDrift(args.drift))
    if args.decay < 1.0:
        models.append(RadiusDegradation(args.decay))
    schedule = FailureSchedule(models)
    print(
        f"lifetime simulation: n={args.n}, theta={args.theta_over_pi:.3f}*pi, "
        f"s_c={profile.weighted_sensing_area:.4f} "
        f"(CSA_N={csa_necessary(args.n, theta):.4f}, "
        f"CSA_S={csa_sufficient(args.n, theta):.4f})"
    )
    print(
        f"schedule per epoch: {len(schedule)} failure model(s); horizon "
        f"{args.epochs} epochs, condition '{args.condition}', "
        f"{args.trials} trials"
    )
    trial_fn = make_lifetime_trial(
        profile,
        args.n,
        theta,
        schedule,
        epochs=args.epochs,
        condition=args.condition,
        max_grid_points=args.max_grid_points,
    )
    result = run_resilient_trials(
        trial_fn,
        MonteCarloConfig(trials=args.trials, seed=args.seed, workers=args.workers),
        checkpoint_dir=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        time_budget=args.time_budget,
    )
    if result.completed == 0:
        print("no trials completed (time budget too small?); nothing to report")
        return 1
    lifetimes = tuple(int(v) for v in result.values)
    dist = LifetimeDistribution(
        lifetimes=lifetimes,
        censored=tuple(v >= args.epochs for v in lifetimes),
        epochs=args.epochs,
    )
    table = ResultTable(
        title=f"survival curve over {args.epochs} epochs",
        columns=["epoch", "survival"],
    )
    for epoch, alive in enumerate(dist.survival_curve()):
        table.add_row(epoch, alive)
    print()
    print(table.pretty())
    print(
        f"\nmean lifetime: {dist.mean_lifetime:.2f} epochs | median: "
        f"{dist.median_lifetime:.1f} | censored at horizon: "
        f"{dist.censored_fraction:.1%}"
    )
    print(
        f"trials: {result.completed}/{result.requested} completed, "
        f"{len(result.failures)} failed"
        + (", TRUNCATED by time budget" if result.truncated else "")
    )
    for failure in result.failures:
        print(f"  trial {failure.trial} failed: {failure.error}")
    if args.out:
        path = table.save_csv(Path(args.out) / "lifetime_survival.csv")
        print(f"wrote {path}")
    if result.truncated and args.checkpoint:
        print(f"resume with: fullview lifetime --checkpoint {args.checkpoint} --resume")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.figure7 import build_table as fig7_table
    from repro.experiments.figure8 import build_table as fig8_table
    from repro.viz.ascii_plot import ascii_line_plot
    from repro.viz.csv_export import export_table

    fig7 = fig7_table(points=17)
    fig8 = fig8_table(count=17)
    print(
        ascii_line_plot(
            {
                "necessary": (fig7.column("theta_over_pi"), fig7.column("csa_necessary")),
                "sufficient": (fig7.column("theta_over_pi"), fig7.column("csa_sufficient")),
            },
            title="Figure 7: CSA vs effective angle (n = 1000)",
            x_label="theta / pi",
            y_label="critical sensing area",
        )
    )
    print()
    print(
        ascii_line_plot(
            {
                "necessary": (fig8.column("n"), fig8.column("csa_necessary")),
                "sufficient": (fig8.column("n"), fig8.column("csa_sufficient")),
            },
            title="Figure 8: CSA vs sensor count (theta = pi/4)",
            x_label="n",
            y_label="critical sensing area",
        )
    )
    if args.out:
        out_dir = Path(args.out)
        print(f"wrote {export_table(out_dir / 'figure7.csv', fig7)}")
        print(f"wrote {export_table(out_dir / 'figure8.csv', fig8)}")
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    with _obs_context(args, "workloads"), _fault_context(args), _executor_context(
        args
    ):
        return _workloads_body(args)


def _workloads_body(args: argparse.Namespace) -> int:
    from repro.core.csa import csa_necessary, csa_sufficient
    from repro.simulation.montecarlo import MonteCarloConfig, estimate_area_fraction
    from repro.simulation.workloads import registry

    for name, workload in registry().items():
        s_c = workload.profile.weighted_sensing_area
        nec = csa_necessary(workload.n, workload.theta)
        suf = csa_sufficient(workload.n, workload.theta)
        if s_c < nec:
            verdict = "below the necessary CSA: full-view coverage impossible"
        elif s_c > suf:
            verdict = "above the sufficient CSA: full-view coverage guaranteed (asymptotically)"
        else:
            verdict = "inside the CSA band: coverage depends on the deployment"
        print(f"{name}: {workload.description}")
        print(
            f"  n={workload.n}, theta={workload.theta / math.pi:.3f}*pi, "
            f"s_c={s_c:.4f}, CSA_N={nec:.4f}, CSA_S={suf:.4f}"
        )
        print(f"  verdict: {verdict}")
        if args.simulate:
            cfg = MonteCarloConfig(
                trials=args.trials, seed=args.seed, workers=args.workers
            )
            mean, half = estimate_area_fraction(
                workload.profile,
                workload.n,
                workload.theta,
                "exact",
                cfg,
                scheme=workload.scheme,
                sample_points=128,
            )
            print(f"  simulated full-view area fraction: {mean:.3f} +/- {half:.3f}")
        print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.errors import ObservabilityError
    from repro.obs.export import EXPORT_FORMATS, export_trace
    from repro.obs.report import build_report, load_trace

    try:
        data = load_trace(Path(args.path))
    except ObservabilityError as exc:
        print(f"fullview report: {exc}", file=sys.stderr)
        return 2
    if args.format in EXPORT_FORMATS:
        print(export_trace(data, args.format))
        return 0
    report = build_report(data)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ObservabilityError
    from repro.obs.ledger import default_ledger_path, load_runs, render_runs_table

    path = Path(args.ledger) if args.ledger else default_ledger_path()
    if not path.exists():
        print(f"no run ledger at {path}")
        return 1 if args.run_id else 0
    try:
        rows, problems = load_runs(path)
    except ObservabilityError as exc:
        print(f"fullview runs: {exc}", file=sys.stderr)
        return 2
    for problem in problems:
        print(f"fullview runs: {problem}", file=sys.stderr)
    if args.run_id:
        matches = [row for row in rows if row["run_id"].startswith(args.run_id)]
        if not matches:
            print(f"no run matching {args.run_id!r} in {path}", file=sys.stderr)
            return 1
        print(json.dumps(matches[0], indent=2))
        return 0
    if getattr(args, "outcome", None):
        rows = [row for row in rows if row["outcome"] == args.outcome]
    if args.limit is not None and args.limit >= 0:
        rows = rows[: args.limit]
    if args.json:
        print(json.dumps(rows, indent=2))
    elif rows:
        print(render_runs_table(rows))
    else:
        print(f"no runs recorded in {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.api.schemas import API_SCHEMA
    from repro.obs.ledger import default_ledger_path
    from repro.service import CoverageService, ResultCache

    ledger = getattr(args, "ledger", None)
    if ledger == "":
        ledger = default_ledger_path()
    service = CoverageService(
        cache=ResultCache(args.cache_dir),
        queue_limit=args.queue_limit,
        service_workers=args.service_workers,
        workers=args.workers,
        executor=args.executor,
        ledger_path=ledger,
    )

    async def run() -> None:
        await service.start(args.host, args.port)
        print(
            f"fullview service listening on http://{service.host}:{service.port} "
            f"(schema {API_SCHEMA})",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                # Platforms without signal handlers (or non-main
                # threads) fall back to KeyboardInterrupt.
                pass
        serve_task = asyncio.ensure_future(service.serve_forever())
        await stop.wait()
        print("fullview service draining in-flight runs...", flush=True)
        serve_task.cancel()
        await service.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    if args.metrics:
        service.metrics.export_json(args.metrics)
    return 0


def _render_status_line(payload: dict) -> str:
    """One refreshable progress line from a fullview-status-v1 payload."""
    done = int(payload.get("done", 0))
    total = int(payload.get("total", 0))
    pct = f" ({done / total:.0%})" if total > 0 else ""
    rate = float(payload.get("trials_per_sec", 0.0) or 0.0)
    eta = payload.get("eta_seconds")
    eta_text = f"{float(eta):.1f}s" if isinstance(eta, (int, float)) else "--"
    run_id = payload.get("run_id") or "?"
    faults = " ".join(
        f"{key}:{payload.get(key, 0)}"
        for key in ("retries", "respawns", "quarantined", "fallbacks")
        if payload.get(key)
    )
    line = (
        f"run {run_id} [{payload.get('state', '?')}] {done}/{total} trials{pct}"
        f" | {rate:.1f} trials/s | ETA {eta_text}"
    )
    if faults:
        line += f" | faults {faults}"
    return line


def _cmd_watch(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.obs.progress import STATUS_FORMAT

    path = Path(args.path)
    deadline = (
        time.monotonic() + args.timeout if args.timeout is not None else None
    )
    refreshing = False
    while True:
        payload = None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            # Absent, mid-replace or foreign: poll again (the writer is
            # atomic, so a parseable file is always complete).
            payload = None
        if isinstance(payload, dict) and payload.get("format") == STATUS_FORMAT:
            line = _render_status_line(payload)
            finished = payload.get("state") == "finished"
            if args.once:
                print(line)
                return 0
            # \x1b[2K clears the previous (possibly longer) line.
            print(f"\r\x1b[2K{line}", end="", flush=True)
            refreshing = True
            if finished:
                print()
                return 0
        elif args.once:
            print(f"fullview watch: no status file at {path}", file=sys.stderr)
            return 1
        if deadline is not None and time.monotonic() >= deadline:
            if refreshing:
                print()
            print(f"fullview watch: timed out waiting on {path}", file=sys.stderr)
            return 1
        time.sleep(args.interval)


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.barrier.grid_barrier import barrier_exists, compute_coverage_grid
    from repro.core.csa import csa_necessary, csa_sufficient
    from repro.core.full_view import diagnose_point
    from repro.seeding import root_rng
    from repro.sensors.io import save_fleet
    from repro.simulation.workloads import registry
    from repro.viz.ascii_plot import ascii_coverage_map, ascii_scatter_map

    workloads = registry()
    if args.workload not in workloads:
        print(f"unknown workload {args.workload!r}; known: {', '.join(workloads)}")
        return 1
    workload = workloads[args.workload]
    if args.provision is not None:
        workload = workload.provisioned(q=args.provision)
    fleet = workload.scheme.deploy(workload.profile, workload.n, root_rng(args.seed))
    fleet.build_index()
    theta = workload.theta

    print(f"workload: {workload.name} — {workload.description}")
    print(f"deployed {len(fleet)} sensors, theta = {theta / math.pi:.3f}*pi")
    s_c = workload.profile.weighted_sensing_area
    print(
        f"s_c = {s_c:.4f} | CSA_N = {csa_necessary(workload.n, theta):.4f} | "
        f"CSA_S = {csa_sufficient(workload.n, theta):.4f}"
    )
    print()
    print(ascii_scatter_map(fleet.positions, side=fleet.region.side,
                            title="sensor positions"))
    grid = compute_coverage_grid(fleet, theta, resolution=args.resolution)
    print()
    print(
        ascii_coverage_map(
            grid.covered,
            title=f"full-view covered cells ({grid.covered_fraction:.1%})",
        )
    )
    analysis = barrier_exists(fleet, theta, resolution=args.resolution)
    if analysis.has_barrier:
        print("\nbarrier: YES — every bottom-to-top crossing hits a covered cell")
    else:
        breach = analysis.breach or []
        print(
            f"\nbarrier: NO — an intruder can cross through {len(breach)} "
            "uncovered cells, e.g. entering near "
            f"x = {grid.cell_center(breach[0])[0]:.2f}" if breach else "\nbarrier: NO"
        )
    diag = diagnose_point(fleet, (0.5, 0.5), theta)
    print(
        f"\ncentre point: covered={diag.covered}, covering sensors="
        f"{diag.num_covering_sensors}, max gap={diag.max_gap:.3f} "
        f"(allowed {2 * theta:.3f})"
    )
    if args.save_fleet:
        path = save_fleet(fleet, args.save_fleet)
        print(f"\nfleet saved to {path}")

    from repro.obs import obs_self_check

    check = obs_self_check(Path.cwd())
    print("\nobservability self-check:")
    print(f"  span overhead disabled: {check['disabled_ns_per_span']:.0f} ns/span")
    print(f"  span overhead enabled:  {check['enabled_ns_per_span']:.0f} ns/span")
    sink_state = "writable" if check["sink_writable"] else "NOT WRITABLE"
    print(f"  JSONL sink dir {check['sink_dir']}: {sink_state}")
    return 0


def _cmd_design(args: argparse.Namespace) -> int:
    from repro.core.design import design_report
    from repro.simulation.workloads import registry

    workloads = registry()
    if args.workload not in workloads:
        print(f"unknown workload {args.workload!r}; known: {', '.join(workloads)}")
        return 1
    workload = workloads[args.workload]
    report = design_report(
        workload.profile, workload.n, workload.theta, target=args.target
    )
    print(f"design report: {workload.name} — {workload.description}")
    print(f"  n = {report.n}, theta = {report.theta / math.pi:.3f}*pi, "
          f"target per-point P(necessary) = {args.target}")
    print(f"  CSA necessary / sufficient: {report.csa_necessary:.4f} / "
          f"{report.csa_sufficient:.4f}")
    print(f"  current weighted sensing area: {report.current_weighted_area:.4f} "
          f"({report.csa_margin:.1%} of the sufficient CSA)")
    print(f"  required weighted area at n={report.n}: {report.required_area:.4f} "
          f"(scale every radius by {report.required_scale:.2f}x)")
    if report.minimum_n_with_current_cameras > 0:
        print(f"  or keep the cameras and deploy n >= "
              f"{report.minimum_n_with_current_cameras}")
    else:
        print("  current cameras cannot reach the target at any fleet size")
    return 0


def _changed_files() -> List[Path]:
    """Python files reported changed by ``git diff --name-only HEAD``."""
    import subprocess

    proc = subprocess.run(
        ["git", "diff", "--name-only", "HEAD"],
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        from repro.errors import LintError

        raise LintError(
            f"--changed needs a git checkout: {proc.stderr.strip() or 'git diff failed'}"
        )
    return [
        Path(line.strip())
        for line in proc.stdout.splitlines()
        if line.strip().endswith(".py")
    ]


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.errors import LintError
    from repro.lint import lint_paths, render_json, render_text, write_baseline

    paths = [Path(p) for p in (args.paths or ["src"])]
    select = args.select.split(",") if args.select else None
    baseline_path = Path(args.baseline) if args.baseline else None
    try:
        restrict_to = _changed_files() if args.changed else None
        if restrict_to == []:
            print("fvlint: no changed python files; nothing to check")
            return 0
        if args.write_baseline:
            result = lint_paths(paths, select=select)
            target = baseline_path or Path("fvlint-baseline.json")
            entries = write_baseline(target, result.findings)
            print(
                f"wrote {target}: {entries} fingerprint(s) covering "
                f"{len(result.findings)} finding(s)"
            )
            return 0
        if baseline_path is not None and not baseline_path.exists():
            print(f"baseline {baseline_path} does not exist", file=sys.stderr)
            return 2
        result = lint_paths(
            paths,
            select=select,
            baseline_path=baseline_path,
            restrict_to=restrict_to,
        )
    except LintError as exc:
        print(f"fvlint: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return 0 if result.ok else 1


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a structured span/event trace (JSONL) to PATH; "
        "off by default and never perturbs results",
    )
    parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write a counters/gauges/histograms snapshot (JSON) to PATH",
    )
    parser.add_argument(
        "--status", metavar="PATH", default=None,
        help="keep a live fullview-status-v1 JSON file at PATH updated "
        "with throttled progress heartbeats (tail it with "
        "'fullview watch PATH')",
    )
    parser.add_argument(
        "--ledger", metavar="PATH", nargs="?", const="", default=None,
        help="append one fullview-ledger-v1 row for this run; with no "
        "PATH, the default ledger (FULLVIEW_LEDGER or "
        "~/.fullview/runs.jsonl) — inspect with 'fullview runs'",
    )


def _add_executor_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--executor", default=None,
        choices=("auto", "serial", "thread", "process"),
        help="trial executor backend: 'thread' shares the task by "
        "reference and relies on numpy releasing the GIL, 'process' "
        "ships it once per run via shared memory, 'auto' (the default, "
        "or FULLVIEW_EXECUTOR) picks threads for the numpy-bound "
        "estimator tasks; results are bit-identical across backends",
    )


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="pool resubmissions allowed per chunk before falling back "
        "(default: 2, or FULLVIEW_MAX_RETRIES)",
    )
    parser.add_argument(
        "--chunk-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt deadline for a dispatched chunk; a timed-out "
        "pool is respawned (default: wait forever, or "
        "FULLVIEW_CHUNK_TIMEOUT)",
    )
    parser.add_argument(
        "--chaos", metavar="SPEC", default=None,
        help="deterministic fault injection, e.g. "
        "'seed=7,crash=0.2,slow=0.1' (keys: seed, crash, hang, slow, "
        "pickle, corrupt, poison, hang_seconds, slow_seconds, "
        "attempts); results stay bit-identical to a fault-free run",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``fullview`` argument parser with every subcommand wired."""
    parser = argparse.ArgumentParser(
        prog="fullview",
        description="Full-view coverage of heterogeneous camera sensor networks "
        "(reproduction of Wu & Wang, ICDCS 2012).",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered experiments")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run experiments")
    p_run.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    p_run.add_argument("--full", action="store_true", help="publication-quality budgets")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--out", help="directory for CSV exports")
    p_run.add_argument(
        "--checkpoint", help="directory for the run checkpoint (records "
        "completed experiments so an interrupted sweep can continue)",
    )
    p_run.add_argument(
        "--resume", action="store_true",
        help="skip experiments already completed in the checkpoint",
    )
    p_run.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop gracefully between experiments once exceeded",
    )
    p_run.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run Monte-Carlo trials on a process pool of N workers "
        "(results are bit-identical to serial; default: serial, or the "
        "FULLVIEW_WORKERS environment variable)",
    )
    _add_executor_argument(p_run)
    _add_obs_arguments(p_run)
    _add_fault_arguments(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_life = sub.add_parser(
        "lifetime",
        help="simulate network lifetime under a per-epoch failure schedule",
    )
    p_life.add_argument("--n", type=int, default=240, help="sensors to deploy")
    p_life.add_argument(
        "--theta-over-pi", type=float, default=1.0 / 3.0,
        help="effective angle theta as a multiple of pi",
    )
    p_life.add_argument(
        "--radius", type=float, default=0.25, help="camera sensing radius"
    )
    p_life.add_argument(
        "--phi-over-pi", type=float, default=0.5,
        help="camera angle of view as a multiple of pi",
    )
    p_life.add_argument(
        "--provision", type=float, default=2.0,
        help="rescale cameras to this multiple of the sufficient CSA "
        "(pass 0 or a negative value to keep --radius as given)",
    )
    p_life.add_argument("--epochs", type=int, default=18, help="failure epochs")
    p_life.add_argument(
        "--failure-rate", type=float, default=0.08,
        help="per-epoch independent death probability (0 disables)",
    )
    p_life.add_argument(
        "--blackout-radius", type=float, default=None,
        help="per-epoch correlated blackout disk radius (omit to disable)",
    )
    p_life.add_argument(
        "--drift", type=float, default=0.0,
        help="per-epoch orientation drift sigma (0 disables)",
    )
    p_life.add_argument(
        "--decay", type=float, default=1.0,
        help="per-epoch radius degradation factor (1 disables)",
    )
    p_life.add_argument(
        "--condition", choices=["necessary", "exact", "sufficient"],
        default="necessary", help="full-view condition the lifetime clock uses",
    )
    p_life.add_argument("--trials", type=int, default=50)
    p_life.add_argument("--seed", type=int, default=0)
    p_life.add_argument(
        "--max-grid-points", type=int, default=128,
        help="subsample the dense grid to this many points per trial",
    )
    p_life.add_argument(
        "--checkpoint", help="directory for trial-level JSON checkpoints"
    )
    p_life.add_argument(
        "--checkpoint-every", type=int, default=16,
        help="trials between checkpoint writes",
    )
    p_life.add_argument(
        "--resume", action="store_true",
        help="continue from the checkpoint in --checkpoint",
    )
    p_life.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop gracefully between trials once exceeded",
    )
    p_life.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run lifetime trials on a process pool of N workers "
        "(bit-identical to serial; checkpoints stay contiguous)",
    )
    p_life.add_argument("--out", help="directory for CSV exports")
    _add_executor_argument(p_life)
    _add_obs_arguments(p_life)
    _add_fault_arguments(p_life)
    p_life.set_defaults(func=_cmd_lifetime)

    p_fig = sub.add_parser("figures", help="render Figures 7 and 8")
    p_fig.add_argument("--out", help="directory for CSV exports")
    p_fig.set_defaults(func=_cmd_figures)

    p_work = sub.add_parser("workloads", help="assess built-in scenarios")
    p_work.add_argument("--simulate", action="store_true", help="also run Monte Carlo")
    p_work.add_argument("--trials", type=int, default=50)
    p_work.add_argument("--seed", type=int, default=0)
    p_work.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run Monte-Carlo trials on a process pool of N workers",
    )
    _add_executor_argument(p_work)
    _add_obs_arguments(p_work)
    _add_fault_arguments(p_work)
    p_work.set_defaults(func=_cmd_workloads)

    p_report = sub.add_parser(
        "report",
        help="summarize a --trace JSONL file",
        description="Build a run report from a fullview-trace-v1 JSONL "
        "file: throughput, wall vs. CPU time, worker utilization, span "
        "breakdown and the slowest trials.",
    )
    p_report.add_argument("path", help="trace file written via --trace")
    p_report.add_argument(
        "--format",
        choices=["text", "json", "chrome", "flamegraph", "prom"],
        default="text",
        help="report format: 'chrome' emits Perfetto-loadable trace-event "
        "JSON, 'flamegraph' collapsed-stack text, 'prom' the metrics "
        "snapshot as Prometheus text exposition",
    )
    p_report.set_defaults(func=_cmd_report)

    p_runs = sub.add_parser(
        "runs",
        help="list or inspect the persistent run ledger",
        description="Read the append-only fullview-ledger-v1 run ledger "
        "(newest first, schema-validated): every observed run's id, "
        "experiment, seed, executor, throughput and outcome.",
    )
    p_runs.add_argument(
        "run_id", nargs="?", default=None,
        help="show one run's full row (id prefix match)",
    )
    p_runs.add_argument(
        "--ledger", metavar="PATH", default=None,
        help="ledger file (default: FULLVIEW_LEDGER or ~/.fullview/runs.jsonl)",
    )
    p_runs.add_argument(
        "--json", action="store_true", help="emit rows as JSON instead of a table"
    )
    p_runs.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="show at most the N newest runs",
    )
    p_runs.add_argument(
        "--outcome", default=None, choices=("ok", "error", "cached"),
        help="show only runs with this outcome ('cached' rows are "
        "coverage-service requests served from the persistent cache "
        "without an engine run)",
    )
    p_runs.set_defaults(func=_cmd_runs)

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived coverage service (HTTP+JSON)",
        description="Serve deploy/evaluate/estimate over the versioned "
        "fullview-api-v1 wire schema, with content-addressed result "
        "caching, coalescing of concurrent identical requests, bounded "
        "backpressure, and graceful drain on SIGINT/SIGTERM.",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    p_serve.add_argument(
        "--port", type=int, default=8471,
        help="bind port; 0 picks an ephemeral port (default: 8471)",
    )
    p_serve.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persist results on disk under DIR (atomic, checksum-"
        "stamped fullview-cache-v1 entries); omit for memory-only",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=8, metavar="N",
        help="max computations pending at once before new work is "
        "refused with HTTP 503 (default: 8)",
    )
    p_serve.add_argument(
        "--service-workers", type=int, default=2, metavar="N",
        help="threads in the compute pool (default: 2)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="engine workers forwarded to every Monte-Carlo job",
    )
    p_serve.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write the service counters/gauges snapshot (JSON) to "
        "PATH on shutdown",
    )
    p_serve.add_argument(
        "--ledger", metavar="PATH", nargs="?", const="", default=None,
        help="append one fullview-ledger-v1 row per cache miss (and a "
        "'cached' row per persistent-cache hit); with no PATH, the "
        "default ledger — inspect with 'fullview runs'",
    )
    _add_executor_argument(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_watch = sub.add_parser(
        "watch",
        help="tail a --status live file with a refreshing progress line",
        description="Poll a fullview-status-v1 live status file (written "
        "by a run started with --status PATH) and render a single-line "
        "refreshing progress view; exits 0 when the run finishes.",
    )
    p_watch.add_argument("path", help="status file written via --status")
    p_watch.add_argument(
        "--interval", type=float, default=0.5, metavar="SECONDS",
        help="poll interval (default 0.5s)",
    )
    p_watch.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="give up (exit 1) after this long without the run finishing",
    )
    p_watch.add_argument(
        "--once", action="store_true",
        help="render the current status once and exit (1 if absent)",
    )
    p_watch.set_defaults(func=_cmd_watch)

    p_diag = sub.add_parser(
        "diagnose", help="deploy a workload and render coverage/barrier maps"
    )
    p_diag.add_argument("workload", help="workload name (see `fullview workloads`)")
    p_diag.add_argument("--seed", type=int, default=0)
    p_diag.add_argument("--resolution", type=int, default=24)
    p_diag.add_argument(
        "--provision", type=float, default=None,
        help="rescale cameras to this multiple of the sufficient CSA first",
    )
    p_diag.add_argument("--save-fleet", help="write the deployed fleet to this .npz")
    p_diag.set_defaults(func=_cmd_diagnose)

    p_design = sub.add_parser(
        "design", help="invert the theory into requirements for a workload"
    )
    p_design.add_argument("workload", help="workload name (see `fullview workloads`)")
    p_design.add_argument(
        "--target", type=float, default=0.99,
        help="target per-point necessary-condition probability",
    )
    p_design.set_defaults(func=_cmd_design)

    p_lint = sub.add_parser(
        "lint",
        help="run the fvlint domain-invariant static analysis",
        description="AST-based lint pass enforcing the repo's RNG, "
        "error-contract, angle-hygiene, float-equality and API-surface "
        "conventions (rules FV001-FV005) plus whole-program "
        "parallel-safety, determinism, portability and layering checks "
        "(FV006-FV010). Exits 1 when findings remain after pragmas and "
        "the baseline.",
    )
    p_lint.add_argument(
        "paths", nargs="*", help="files or directories to lint (default: src)"
    )
    p_lint.add_argument(
        "--format", choices=["text", "json"], default="text", help="report format"
    )
    p_lint.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    p_lint.add_argument(
        "--baseline", metavar="FILE",
        help="baseline file of grandfathered findings to subtract",
    )
    p_lint.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings into --baseline "
        "(default fvlint-baseline.json) and exit 0",
    )
    p_lint.add_argument(
        "--changed", action="store_true",
        help="check only files in 'git diff --name-only HEAD' plus their "
        "reverse import-graph dependents (the whole-program model is "
        "still built over every file)",
    )
    p_lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
