"""Baseline files: grandfathering existing findings.

A baseline is a committed JSON file mapping finding fingerprints (see
:attr:`repro.lint.model.Finding.fingerprint`) to occurrence counts.
``fullview lint --write-baseline`` records the current findings; later
runs subtract baselined occurrences and fail only on *new* findings, so
the linter can land with strict rules before every legacy violation is
fixed.  Fingerprints key on source-line text, not line numbers, so
unrelated edits do not invalidate the baseline.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.errors import LintError
from repro.lint.model import Finding

__all__ = [
    "BASELINE_FORMAT",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]

#: Schema tag for the baseline file.
BASELINE_FORMAT = "fvlint-baseline-v1"


def load_baseline(path: Path) -> Dict[str, int]:
    """Fingerprint → grandfathered occurrence count from ``path``."""
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from exc
    except ValueError as exc:
        raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != BASELINE_FORMAT:
        raise LintError(f"{path} is not a {BASELINE_FORMAT} file")
    entries = payload.get("entries", {})
    if not isinstance(entries, dict) or not all(
        isinstance(k, str) and isinstance(v, int) and v > 0 for k, v in entries.items()
    ):
        raise LintError(f"baseline {path} entries must map fingerprints to counts")
    return dict(entries)


def write_baseline(path: Path, findings: Sequence[Finding]) -> int:
    """Write a baseline grandfathering ``findings``; returns the entry count."""
    counts = Counter(f.fingerprint for f in findings)
    payload = {
        "format": BASELINE_FORMAT,
        "entries": dict(sorted(counts.items())),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(counts)


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], int]:
    """Drop baselined findings; returns ``(new_findings, matched_count)``.

    Each fingerprint suppresses at most its grandfathered count, so a
    violation *copied* to a new site still fails the run.
    """
    remaining = Counter(baseline)
    fresh: List[Finding] = []
    matched = 0
    for finding in findings:
        if remaining.get(finding.fingerprint, 0) > 0:
            remaining[finding.fingerprint] -= 1
            matched += 1
        else:
            fresh.append(finding)
    return fresh, matched
