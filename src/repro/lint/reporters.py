"""Render :class:`~repro.lint.engine.LintResult` as text or JSON.

Text output mirrors the conventional ``path:line:col: CODE message``
shape editors and CI annotators already parse; JSON output is a stable
machine-readable document for tooling (one object per finding plus a
summary block).
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult

__all__ = ["render_json", "render_text"]

#: Schema tag for the JSON report.
JSON_FORMAT = "fvlint-report-v1"


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report: findings, then a one-line summary."""
    lines = [finding.render() for finding in result.findings]
    counts = result.counts_by_code()
    breakdown = (
        " (" + ", ".join(f"{code}: {n}" for code, n in counts.items()) + ")"
        if counts
        else ""
    )
    summary = (
        f"{len(result.findings)} finding(s){breakdown} in "
        f"{result.files_checked} file(s)"
    )
    extras = []
    if result.suppressed:
        extras.append(f"{result.suppressed} pragma-suppressed")
    if result.baselined:
        extras.append(f"{result.baselined} baselined")
    if result.parse_failures:
        extras.append(f"{result.parse_failures} parse failure(s)")
    if extras:
        summary += " [" + "; ".join(extras) + "]"
    if verbose or not result.findings:
        lines.append(summary)
    else:
        lines.extend(["", summary])
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report with a stable schema."""
    payload = {
        "format": JSON_FORMAT,
        "summary": {
            "findings": len(result.findings),
            "files_checked": result.files_checked,
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "parse_failures": result.parse_failures,
            "by_code": result.counts_by_code(),
            "ok": result.ok,
        },
        "findings": [
            {
                "code": f.code,
                "severity": f.severity.value,
                "path": f.path,
                "line": f.line,
                "column": f.column,
                "message": f.message,
                "fingerprint": f.fingerprint,
            }
            for f in result.findings
        ],
    }
    return json.dumps(payload, indent=2)
