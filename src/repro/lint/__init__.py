"""``fvlint`` — the repo's domain-invariant static-analysis pass.

An AST-based linter enforcing conventions the interpreter never checks
but the reproduction's correctness rests on:

- **FV001 rng-discipline** — stochastic code draws from seeded,
  ``SeedSequence``-spawned numpy Generators; no stdlib ``random``, no
  unseeded ``default_rng()``, no arithmetic-derived seeds.
- **FV002 error-contract** — every deliberate ``raise`` constructs a
  :class:`repro.errors.FullViewError` subclass.
- **FV003 angle-hygiene** — full-circle constants and angle wrapping go
  through :mod:`repro.geometry.angles` (``TWO_PI``,
  ``normalize_angle``), never raw ``2 * math.pi`` arithmetic.
- **FV004 float-equality** — no exact ``==`` against float literals in
  computed-quantity code.
- **FV005 api-surface** — public modules declare an honest ``__all__``
  and document their public surface.

Run it as ``fullview lint src/`` (text or ``--format json``), suppress
single findings with ``# fvlint: disable=FV00x (why)`` pragmas, and
grandfather legacy findings with a committed baseline
(``--write-baseline``).
"""

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.engine import LintResult, iter_python_files, lint_paths, lint_source
from repro.lint.model import (
    Finding,
    ModuleContext,
    Rule,
    Severity,
    all_rules,
    resolve_rules,
)
from repro.lint.reporters import render_json, render_text

__all__ = [
    "Finding",
    "LintResult",
    "ModuleContext",
    "Rule",
    "Severity",
    "all_rules",
    "apply_baseline",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "render_json",
    "render_text",
    "resolve_rules",
    "write_baseline",
]
