"""``fvlint`` — the repo's domain-invariant static-analysis pass.

An AST-based linter enforcing conventions the interpreter never checks
but the reproduction's correctness rests on:

- **FV001 rng-discipline** — stochastic code draws from seeded,
  ``SeedSequence``-spawned numpy Generators; no stdlib ``random``, no
  unseeded ``default_rng()``, no arithmetic-derived seeds.
- **FV002 error-contract** — every deliberate ``raise`` constructs a
  :class:`repro.errors.FullViewError` subclass.
- **FV003 angle-hygiene** — full-circle constants and angle wrapping go
  through :mod:`repro.geometry.angles` (``TWO_PI``,
  ``normalize_angle``), never raw ``2 * math.pi`` arithmetic.
- **FV004 float-equality** — no exact ``==`` against float literals in
  computed-quantity code.
- **FV005 api-surface** — public modules declare an honest ``__all__``
  and document their public surface.

On top of the per-file rules, a whole-program model
(:mod:`repro.lint.project`: import graph, symbol tables, a conservative
call graph rooted at the worker seams) powers five interprocedural
rules:

- **FV006 pickle-safety** — worker task dataclasses are frozen,
  module-level, and composed of statically picklable fields.
- **FV007 worker-state-hygiene** — no module-level mutable globals on
  paths reachable from the worker seams (audited ``repro.obs`` exempt).
- **FV008 hidden-nondeterminism** — no wall-clock/entropy values in
  trial results, no set iteration on worker paths, no legacy
  ``np.random.*`` global-state draws anywhere.
- **FV009 array-api-portability** — hot batch/kernel paths call only
  numpy functions with array-API-standard equivalents.
- **FV010 layering** — no load-time import cycles; package imports
  point strictly down the layer table.

Run it as ``fullview lint src/`` (text or ``--format json``), scope a
fast local run to the current diff and its reverse dependents with
``--changed``, suppress single findings with
``# fvlint: disable=FV00x (why)`` pragmas, and grandfather legacy
findings with a committed baseline (``--write-baseline``).
"""

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.engine import LintResult, iter_python_files, lint_paths, lint_source
from repro.lint.model import (
    Finding,
    ModuleContext,
    ProjectRule,
    Rule,
    Severity,
    all_rules,
    resolve_rules,
)
from repro.lint.project import ProjectModel, build_project, module_name_for_path
from repro.lint.reporters import render_json, render_text

__all__ = [
    "Finding",
    "LintResult",
    "ModuleContext",
    "ProjectModel",
    "ProjectRule",
    "Rule",
    "Severity",
    "all_rules",
    "apply_baseline",
    "build_project",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "module_name_for_path",
    "render_json",
    "render_text",
    "resolve_rules",
    "write_baseline",
]
