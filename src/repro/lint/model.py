"""Data model for the ``fvlint`` static-analysis pass.

A lint run turns python modules into :class:`Finding` records.  Rules
are small classes registered by code (``FV001`` ...); the engine in
:mod:`repro.lint.engine` parses each file once and hands the shared
:class:`ModuleContext` to every selected rule.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Type

from repro.errors import LintError

__all__ = [
    "Finding",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "Severity",
    "all_rules",
    "register_rule",
    "resolve_rules",
]


class Severity(enum.Enum):
    """How strongly a finding should be read.

    Both severities fail a lint run; the distinction is advisory, for
    reporters and for humans triaging a long report.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    message: str
    path: str
    line: int
    column: int
    severity: Severity
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        """Location-independent identity used by the baseline file.

        Deliberately excludes the line number so that unrelated edits
        above a grandfathered finding do not invalidate the baseline;
        identical findings on the same source line text share one
        fingerprint and are counted.
        """
        return f"{self.code}::{self.path}::{' '.join(self.snippet.split())}"

    def render(self) -> str:
        """The canonical one-line text form of the finding."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.code} [{self.severity.value}] {self.message}"
        )


@dataclass
class ModuleContext:
    """Everything a rule may need about one parsed module."""

    path: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    #: Dotted module name within the lint run; filled in by the engine
    #: (via :func:`repro.lint.project.build_project`) before rules run.
    module_name: str = ""

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def line_text(self, lineno: int) -> str:
        """The 1-indexed source line, or ``""`` when out of range."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings for one module.  :meth:`finding` builds a
    correctly-attributed :class:`Finding` from an AST node.
    """

    code: str = "FV000"
    name: str = "abstract-rule"
    severity: Severity = Severity.ERROR
    description: str = ""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield every violation of this rule in ``module``."""
        raise NotImplementedError  # fvlint: disable=FV002 (abstract method)

    def finding(self, module: ModuleContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        return Finding(
            code=self.code,
            message=message,
            path=module.path,
            line=line,
            column=column,
            severity=self.severity,
            snippet=module.line_text(line).strip(),
        )


class ProjectRule(Rule):
    """Base class for whole-program rules (FV006+).

    The engine builds one :class:`repro.lint.project.ProjectModel` per
    run and hands it to every project rule through :meth:`bind` before
    any module is checked; :meth:`check` still runs once per module so
    findings stay anchored (and pragma-suppressible) where they occur.
    A rule whose model was never bound checks nothing — per-module
    entry points that skip the project build degrade gracefully.
    """

    #: The bound model; ``None`` until the engine calls :meth:`bind`.
    project = None

    def bind(self, project) -> None:
        """Attach the lint run's shared project model."""
        self.project = project


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry by code."""
    if cls.code in _REGISTRY:
        raise LintError(f"duplicate lint rule code {cls.code!r}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> Dict[str, Type[Rule]]:
    """Registered rules, keyed by code, in code order."""
    # Importing the rule modules populates the registry on first use.
    from repro.lint import rules  # noqa: F401  (import for side effect)

    return dict(sorted(_REGISTRY.items()))


def resolve_rules(select: Iterable[str] | None = None) -> List[Rule]:
    """Instantiate the selected rules (all registered rules by default)."""
    registry = all_rules()
    if select is None:
        return [cls() for cls in registry.values()]
    chosen: List[Rule] = []
    for code in select:
        normalized = code.strip().upper()
        if normalized not in registry:
            raise LintError(
                f"unknown lint rule {code!r}; known: {', '.join(registry)}"
            )
        chosen.append(registry[normalized]())
    return chosen
