"""The whole-program project model behind the interprocedural rules.

The per-file rules (FV001–FV005) see one AST at a time; the invariants
added by FV006–FV010 — pickle-safety of worker tasks, worker-state
hygiene, hidden nondeterminism, backend portability, layering — are
properties of the *program*, not of any single module.  This module
builds the shared cross-file model once per lint run:

- **module naming** — each linted file is assigned its dotted module
  name by walking up ``__init__.py`` packages, so absolute and relative
  imports resolve identically to the interpreter's view;
- **import graph** — per module, the project-internal modules it
  imports, split into *load-time* edges (module top level, the ones
  that can deadlock imports) and *all* edges (including function-level
  imports, the sanctioned cycle-breaking idiom);
- **symbol tables** — top-level classes, functions, methods, imported
  aliases and module-level mutable globals per module;
- **conservative call graph** — rooted at the worker-executed seams
  (``_run_chunk`` and every task class ``__call__``), resolving bare
  names through the symbol table, ``self.method`` through the class
  hierarchy, ``module.attr`` through import aliases, and falling back
  to class-hierarchy analysis by method name.  Over-approximation is
  deliberate: a function the model cannot prove unreachable from a
  worker is treated as reachable.

The model never imports the code it analyses — everything is derived
from the ASTs the lint engine already parsed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.model import ModuleContext

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ProjectModule",
    "ProjectModel",
    "attr_chain",
    "build_project",
    "module_name_for_path",
]

#: Constructor calls whose result is a mutable container.
_MUTABLE_CONSTRUCTORS = {
    "dict",
    "list",
    "set",
    "bytearray",
    "defaultdict",
    "Counter",
    "OrderedDict",
    "deque",
}

#: AST literal nodes denoting a mutable container.
_MUTABLE_LITERALS = (
    ast.Dict,
    ast.List,
    ast.Set,
    ast.DictComp,
    ast.ListComp,
    ast.SetComp,
)


def attr_chain(node: ast.AST) -> str:
    """Dotted name for ``Name``/``Attribute`` chains, else ``""``.

    ``np.random.default_rng`` comes back as the literal string; any
    other expression shape (subscripts, calls) yields ``""``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def module_name_for_path(path: Path) -> str:
    """The dotted module name the interpreter would give ``path``.

    Walks parent directories upward while they contain ``__init__.py``,
    so ``src/repro/core/batch.py`` maps to ``repro.core.batch`` and a
    free-standing corpus file maps to its stem.
    """
    path = Path(path)
    parts: List[str] = [] if path.stem == "__init__" else [path.stem]
    directory = path.parent
    while (directory / "__init__.py").exists():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts) if parts else path.stem


@dataclass
class FunctionInfo:
    """One function or method: its AST plus raw call expressions."""

    module: str
    qualname: str
    node: ast.AST
    calls: List[ast.Call] = field(default_factory=list)

    @property
    def key(self) -> str:
        """Globally unique ``module::qualname`` identifier."""
        return f"{self.module}::{self.qualname}"


@dataclass
class ClassInfo:
    """One top-level class: bases, methods, decorator shapes."""

    module: str
    name: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ProjectModule:
    """Everything the model knows about one module."""

    name: str
    context: ModuleContext
    package: str = ""
    #: Project module -> first import line, module top level only.
    toplevel_imports: Dict[str, int] = field(default_factory=dict)
    #: Project module -> first import line, anywhere in the file.
    all_imports: Dict[str, int] = field(default_factory=dict)
    #: Local alias -> project module it names (``import m as a``).
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: Local name -> (project module, original name) for ``from m import f``.
    imported_names: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: Local alias -> external dotted module (``import time`` -> ``time``).
    external_aliases: Dict[str, str] = field(default_factory=dict)
    #: Local name -> (external module, original) for ``from time import x``.
    external_names: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: Classes defined inside functions or other classes (not picklable
    #: by reference, hence interesting to FV006).
    nested_classes: List[ast.ClassDef] = field(default_factory=list)
    #: Module-level name -> definition line for mutable-container globals.
    mutable_globals: Dict[str, int] = field(default_factory=dict)


class ProjectModel:
    """The cross-file model: import graph, symbols, call graph, seams."""

    def __init__(self, modules: Dict[str, ProjectModule]) -> None:
        self.modules = modules
        self._by_path = {
            str(Path(mod.context.path)): mod for mod in modules.values()
        }
        self._reachable: Optional[Set[str]] = None
        self._edges: Optional[Dict[str, Set[str]]] = None

    # -- lookups ----------------------------------------------------------

    def module_for_path(self, path: str) -> Optional[ProjectModule]:
        """The module parsed from ``path``, if it is part of this model."""
        return self._by_path.get(str(Path(path)))

    def function(self, key: str) -> Optional[FunctionInfo]:
        """Resolve a ``module::qualname`` key back to its info."""
        module_name, _, qualname = key.partition("::")
        mod = self.modules.get(module_name)
        if mod is None:
            return None
        if qualname in mod.functions:
            return mod.functions[qualname]
        cls_name, _, meth = qualname.partition(".")
        cls = mod.classes.get(cls_name)
        if cls is not None:
            return cls.methods.get(meth)
        return None

    # -- task classes and worker seams ------------------------------------

    def task_classes(self) -> List[ClassInfo]:
        """Every class the parallel executor may ship to a worker.

        A class is a *task class* when its name ends with ``Task`` or it
        transitively inherits (within the project) from a class whose
        name ends with ``Task`` — covering ``EstimatorTask`` subclasses
        without importing them.
        """
        found: List[ClassInfo] = []
        for mod in self.modules.values():
            for cls in mod.classes.values():
                if self._is_task_class(mod, cls, set()):
                    found.append(cls)
        return found

    def _is_task_class(
        self, mod: ProjectModule, cls: ClassInfo, seen: Set[str]
    ) -> bool:
        if cls.name.endswith("Task"):
            return True
        key = f"{mod.name}::{cls.name}"
        if key in seen:
            return False
        seen.add(key)
        for base in cls.bases:
            resolved = self._resolve_class(mod, base)
            if resolved is None:
                if base.rsplit(".", 1)[-1].endswith("Task"):
                    return True
                continue
            base_mod, base_cls = resolved
            if self._is_task_class(base_mod, base_cls, seen):
                return True
        return False

    def _resolve_class(
        self, mod: ProjectModule, name: str
    ) -> Optional[Tuple[ProjectModule, ClassInfo]]:
        """Resolve a (possibly dotted, possibly imported) class name."""
        head, _, rest = name.partition(".")
        if not rest:
            if head in mod.classes:
                return mod, mod.classes[head]
            if head in mod.imported_names:
                src_name, original = mod.imported_names[head]
                src = self.modules.get(src_name)
                if src is not None and original in src.classes:
                    return src, src.classes[original]
            return None
        if head in mod.module_aliases:
            src = self.modules.get(mod.module_aliases[head])
            if src is not None and "." not in rest and rest in src.classes:
                return src, src.classes[rest]
        return None

    def seam_roots(self) -> List[FunctionInfo]:
        """The worker-executed entry points the call graph grows from.

        ``_run_chunk`` (the chunk body the process pool executes) plus
        the ``__call__`` of every task class.
        """
        roots: List[FunctionInfo] = []
        for mod in self.modules.values():
            if "_run_chunk" in mod.functions:
                roots.append(mod.functions["_run_chunk"])
        for cls in self.task_classes():
            call = cls.methods.get("__call__")
            if call is not None:
                roots.append(call)
        return roots

    def seam_reachable(self) -> Set[str]:
        """Function keys conservatively reachable from the worker seams."""
        if self._reachable is not None:
            return self._reachable
        reachable: Set[str] = set()
        frontier = [info.key for info in self.seam_roots()]
        while frontier:
            key = frontier.pop()
            if key in reachable:
                continue
            reachable.add(key)
            info = self.function(key)
            if info is None:
                continue
            for call in info.calls:
                frontier.extend(self._callees(key, call) - reachable)
        self._reachable = reachable
        return reachable

    def _callees(self, caller_key: str, call: ast.Call) -> Set[str]:
        """Conservative resolution of one call expression to targets."""
        module_name, _, qualname = caller_key.partition("::")
        mod = self.modules[module_name]
        cls_name = qualname.partition(".")[0] if "." in qualname else None
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_bare(mod, func.id)
        if isinstance(func, ast.Attribute):
            chain = attr_chain(func)
            if not chain:
                # Method on a computed expression: class-hierarchy fallback.
                return self._cha(func.attr)
            head, _, rest = chain.partition(".")
            if head == "self" and cls_name is not None:
                targets = self._resolve_method(mod, cls_name, func.attr, set())
                if targets:
                    return targets
                return set()
            if head in mod.module_aliases and "." not in rest:
                target_mod = self.modules.get(mod.module_aliases[head])
                if target_mod is not None:
                    return self._resolve_bare(target_mod, rest)
            if head in mod.imported_names:
                # Class imported by name, method called on an instance
                # attribute path — fall through to hierarchy analysis.
                pass
            if head in mod.external_aliases or head in mod.external_names:
                return set()
            return self._cha(func.attr)
        return set()

    def _resolve_bare(self, mod: ProjectModule, name: str) -> Set[str]:
        if name in mod.functions:
            return {mod.functions[name].key}
        if name in mod.classes:
            return self._constructor_keys(mod.classes[name])
        if name in mod.imported_names:
            src_name, original = mod.imported_names[name]
            src = self.modules.get(src_name)
            if src is not None:
                if original in src.functions:
                    return {src.functions[original].key}
                if original in src.classes:
                    return self._constructor_keys(src.classes[original])
        return set()

    @staticmethod
    def _constructor_keys(cls: ClassInfo) -> Set[str]:
        keys = set()
        for meth in ("__init__", "__post_init__", "__new__"):
            info = cls.methods.get(meth)
            if info is not None:
                keys.add(info.key)
        return keys

    def _resolve_method(
        self, mod: ProjectModule, cls_name: str, meth: str, seen: Set[str]
    ) -> Set[str]:
        cls = mod.classes.get(cls_name)
        if cls is None or f"{mod.name}::{cls_name}" in seen:
            return set()
        seen.add(f"{mod.name}::{cls_name}")
        if meth in cls.methods:
            return {cls.methods[meth].key}
        targets: Set[str] = set()
        for base in cls.bases:
            resolved = self._resolve_class(mod, base)
            if resolved is not None:
                base_mod, base_cls = resolved
                targets |= self._resolve_method(
                    base_mod, base_cls.name, meth, seen
                )
        return targets

    def _cha(self, method_name: str) -> Set[str]:
        """Class-hierarchy analysis: every project method with this name.

        The fallback when the receiver's type is unknown — deliberately
        an over-approximation, so worker reachability errs on the side
        of *more* code being checked.
        """
        targets: Set[str] = set()
        for mod in self.modules.values():
            for cls in mod.classes.values():
                info = cls.methods.get(method_name)
                if info is not None:
                    targets.add(info.key)
        return targets

    # -- import graph -----------------------------------------------------

    def import_cycles(self) -> List[List[str]]:
        """Load-time import cycles (SCCs of size > 1), deterministic order.

        Only module-top-level imports participate: a function-level
        import is the sanctioned way to break a load-time cycle, so it
        must not re-flag the cycle it just broke.
        """
        order: List[str] = []
        visited: Set[str] = set()

        def edges(name: str) -> List[str]:
            mod = self.modules.get(name)
            if mod is None:
                return []
            return sorted(t for t in mod.toplevel_imports if t in self.modules)

        for start in sorted(self.modules):
            if start in visited:
                continue
            stack: List[Tuple[str, int]] = [(start, 0)]
            visited.add(start)
            while stack:
                node, idx = stack.pop()
                outs = edges(node)
                if idx < len(outs):
                    stack.append((node, idx + 1))
                    nxt = outs[idx]
                    if nxt not in visited:
                        visited.add(nxt)
                        stack.append((nxt, 0))
                else:
                    order.append(node)

        transposed: Dict[str, List[str]] = {name: [] for name in self.modules}
        for name in self.modules:
            for target in edges(name):
                transposed[target].append(name)

        assigned: Set[str] = set()
        components: List[List[str]] = []
        for root in reversed(order):
            if root in assigned:
                continue
            component: List[str] = []
            frontier = [root]
            assigned.add(root)
            while frontier:
                node = frontier.pop()
                component.append(node)
                for prev in transposed.get(node, []):
                    if prev not in assigned:
                        assigned.add(prev)
                        frontier.append(prev)
            if len(component) > 1:
                components.append(sorted(component))
        return sorted(components)

    def reverse_dependents(self, names: Iterable[str]) -> Set[str]:
        """Modules that (transitively) import any of ``names``.

        Uses *all* import edges, including function-level ones, so a
        ``--changed`` run never skips a module that consumes the change
        lazily.  The seed names themselves are included in the result.
        """
        if self._edges is None:
            edges: Dict[str, Set[str]] = {name: set() for name in self.modules}
            for name, mod in self.modules.items():
                for target in mod.all_imports:
                    if target in edges:
                        edges[target].add(name)
            self._edges = edges
        result = {name for name in names if name in self.modules}
        frontier = list(result)
        while frontier:
            node = frontier.pop()
            for dependent in self._edges.get(node, ()):
                if dependent not in result:
                    result.add(dependent)
                    frontier.append(dependent)
        return result


def _record_import(
    mod: ProjectModule,
    target: str,
    lineno: int,
    toplevel: bool,
    known: Set[str],
) -> None:
    if target not in known:
        return
    mod.all_imports.setdefault(target, lineno)
    if toplevel:
        mod.toplevel_imports.setdefault(target, lineno)


def _resolve_from_target(
    mod: ProjectModule, node: ast.ImportFrom
) -> Optional[str]:
    """Absolute dotted base module of a ``from X import ...`` statement."""
    if node.level == 0:
        return node.module
    base_parts = mod.package.split(".") if mod.package else []
    # level=1 is the current package; each extra level climbs one parent.
    climb = node.level - 1
    if climb > len(base_parts):
        return None
    base_parts = base_parts[: len(base_parts) - climb] if climb else base_parts
    if node.module:
        base_parts = base_parts + node.module.split(".")
    return ".".join(base_parts) if base_parts else None


def _collect_imports(mod: ProjectModule, known: Set[str]) -> None:
    """Populate import edges and alias tables for one module."""
    toplevel_ids = {id(stmt) for stmt in mod.context.tree.body}
    for node in ast.walk(mod.context.tree):
        toplevel = id(node) in toplevel_ids
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                if alias.name in known:
                    _record_import(mod, alias.name, node.lineno, toplevel, known)
                    if alias.asname:
                        mod.module_aliases[local] = alias.name
                    else:
                        # ``import repro.core.batch`` binds ``repro``;
                        # record the root package alias when known.
                        root = alias.name.split(".")[0]
                        if root in known:
                            mod.module_aliases.setdefault(local, root)
                else:
                    mod.external_aliases[local] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_from_target(mod, node)
            if base is None:
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                submodule = f"{base}.{alias.name}"
                if submodule in known:
                    _record_import(mod, submodule, node.lineno, toplevel, known)
                    mod.module_aliases[local] = submodule
                elif base in known:
                    _record_import(mod, base, node.lineno, toplevel, known)
                    mod.imported_names[local] = (base, alias.name)
                else:
                    mod.external_names[local] = (base, alias.name)


def _collect_calls(info: FunctionInfo) -> None:
    for node in ast.walk(info.node):
        if isinstance(node, ast.Call):
            info.calls.append(node)


def _is_mutable_value(value: ast.expr) -> bool:
    if isinstance(value, _MUTABLE_LITERALS):
        return True
    if isinstance(value, ast.Call):
        name = attr_chain(value.func).rsplit(".", 1)[-1]
        if name in _MUTABLE_CONSTRUCTORS:
            return True
        if attr_chain(value.func) in ("threading.local",):
            return True
    return False


def _collect_symbols(mod: ProjectModule) -> None:
    """Top-level functions, classes, mutable globals and nested classes."""
    for stmt in mod.context.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(module=mod.name, qualname=stmt.name, node=stmt)
            _collect_calls(info)
            mod.functions[stmt.name] = info
        elif isinstance(stmt, ast.ClassDef):
            cls = ClassInfo(
                module=mod.name,
                name=stmt.name,
                node=stmt,
                bases=[attr_chain(b) for b in stmt.bases if attr_chain(b)],
            )
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = FunctionInfo(
                        module=mod.name,
                        qualname=f"{stmt.name}.{item.name}",
                        node=item,
                    )
                    _collect_calls(info)
                    cls.methods[item.name] = info
            mod.classes[stmt.name] = cls
        elif isinstance(stmt, ast.Assign):
            if _is_mutable_value(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        mod.mutable_globals[target.id] = stmt.lineno
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None and _is_mutable_value(stmt.value):
                if isinstance(stmt.target, ast.Name):
                    mod.mutable_globals[stmt.target.id] = stmt.lineno
    # Classes not at module top level cannot pickle by reference.
    toplevel_classes = {id(cls.node) for cls in mod.classes.values()}
    for node in ast.walk(mod.context.tree):
        if isinstance(node, ast.ClassDef) and id(node) not in toplevel_classes:
            mod.nested_classes.append(node)


def build_project(contexts: Sequence[ModuleContext]) -> ProjectModel:
    """Build the model for one lint run from already-parsed modules.

    Module names are derived from each context's path (packages are
    detected on disk); duplicate names keep the first occurrence, which
    cannot happen for files discovered under one root.
    """
    modules: Dict[str, ProjectModule] = {}
    for context in contexts:
        path = Path(context.path)
        name = context.module_name or module_name_for_path(path)
        if not context.module_name:
            context.module_name = name
        package = name.rsplit(".", 1)[0] if "." in name else ""
        if path.stem == "__init__":
            package = name
        if name not in modules:
            modules[name] = ProjectModule(
                name=name, context=context, package=package
            )
    known = set(modules)
    for mod in modules.values():
        _collect_symbols(mod)
        _collect_imports(mod, known)
    return ProjectModel(modules)
