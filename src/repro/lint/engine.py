"""The ``fvlint`` engine: file discovery, parsing, pragmas, baselines.

Each file is read and parsed exactly once.  A run then proceeds in two
phases: the parsed modules are assembled into the shared
:class:`repro.lint.project.ProjectModel` (import graph, symbol tables,
worker-seam call graph) which is bound to every whole-program rule, and
only then does each rule walk each module — so findings stay anchored
in the file that must change even when the evidence is cross-file.

Findings can be suppressed two ways:

- an inline pragma ``# fvlint: disable=FV001,FV004 (why)`` anywhere in
  the flagged *statement* — including a decorator line or a
  continuation line of a multi-line call (``disable=all`` silences
  every rule there), or
- a committed baseline file (:mod:`repro.lint.baseline`) grandfathering
  existing findings by fingerprint.

Both paths are deliberate and visible in review — there is no silent
way to turn a rule off.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import LintError
from repro.lint.baseline import apply_baseline, load_baseline
from repro.lint.model import (
    Finding,
    ModuleContext,
    ProjectRule,
    Rule,
    Severity,
    resolve_rules,
)
from repro.lint.project import build_project

__all__ = [
    "LintResult",
    "iter_python_files",
    "lint_paths",
    "lint_source",
]

#: ``# fvlint: disable=FV001,FV002 (optional justification)``
_PRAGMA = re.compile(r"#\s*fvlint:\s*disable=([A-Za-z0-9,\s]+?)(?:\s*[(\-].*)?$")

#: ``# fvlint: skip-file (optional justification)`` in the first lines.
_SKIP_FILE = re.compile(r"#\s*fvlint:\s*skip-file")

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0
    parse_failures: int = 0

    @property
    def ok(self) -> bool:
        """True when no (non-suppressed, non-baselined) finding remains."""
        return not self.findings

    def counts_by_code(self) -> Dict[str, int]:
        """Finding counts keyed by rule code, sorted by code."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Python files under ``paths`` (files given directly are kept as-is)."""
    files: List[Path] = []
    for path in paths:
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if not (_SKIP_DIRS & set(part for part in p.parts))
            )
        else:
            raise LintError(f"lint target {path} does not exist")
    return files


def _statement_extents(tree: ast.Module) -> List[Tuple[int, int]]:
    """Line span of every statement, for pragma anchoring.

    Simple statements span decorator start through ``end_lineno``;
    compound statements (anything with a statement body) span only
    their *header* — decorators through the line before the first body
    statement — so a pragma on a ``def`` line never silences the whole
    function body.
    """
    extents: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        decorators = getattr(node, "decorator_list", None)
        if decorators:
            start = min(start, min(d.lineno for d in decorators))
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            end = max(start, body[0].lineno - 1)
        else:
            end = getattr(node, "end_lineno", None) or node.lineno
        extents.append((start, max(start, end)))
    return extents


def _suppression_map(module: ModuleContext) -> Dict[int, Set[str]]:
    """1-indexed line → rule codes (or ``{"ALL"}``) suppressed there.

    A pragma covers its own physical line plus every line of the
    innermost statement extent containing it, so decorated and
    multi-line statements suppress wherever the rule anchored the
    finding.  A pragma on a bare comment line between statements still
    covers only that line.
    """
    pragmas: Dict[int, Set[str]] = {}
    for i, line in enumerate(module.lines, start=1):
        match = _PRAGMA.search(line)
        if match:
            codes = {c.strip().upper() for c in match.group(1).split(",") if c.strip()}
            pragmas[i] = codes
    if not pragmas:
        return {}
    extents = _statement_extents(module.tree)
    covered: Dict[int, Set[str]] = {}
    for pragma_line, codes in pragmas.items():
        covered.setdefault(pragma_line, set()).update(codes)
        innermost: Optional[Tuple[int, int]] = None
        for start, end in extents:
            if not (start <= pragma_line <= end):
                continue
            if innermost is None or (end - start, -start) < (
                innermost[1] - innermost[0],
                -innermost[0],
            ):
                innermost = (start, end)
        if innermost is not None:
            for line_no in range(innermost[0], innermost[1] + 1):
                covered.setdefault(line_no, set()).update(codes)
    return covered


def _run_rules(
    module: ModuleContext, rules: Sequence[Rule]
) -> tuple[List[Finding], int]:
    """All findings for one parsed module, minus pragma suppressions."""
    suppressions = _suppression_map(module)
    kept: List[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(module):
            disabled = suppressions.get(finding.line, set())
            if "ALL" in disabled or finding.code in disabled:
                suppressed += 1
            else:
                kept.append(finding)
    return kept, suppressed


def _bind_project(rules: Sequence[Rule], contexts: Sequence[ModuleContext]) -> None:
    """Build the whole-program model and hand it to the project rules."""
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]
    if not project_rules:
        return
    project = build_project(contexts)
    for rule in project_rules:
        rule.bind(project)


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint a source string — the unit-test entry point.

    Whole-program rules see a one-module project, so intra-file
    violations (an unpicklable task field, a set iteration inside the
    file's own ``__call__``) are still caught.  Returns pragma-filtered
    findings sorted by location; raises
    :class:`repro.errors.LintError` when the source does not parse.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise LintError(f"{path} does not parse: {exc}") from exc
    module = ModuleContext(path=path, source=source, tree=tree)
    rules = resolve_rules(select)
    _bind_project(rules, [module])
    findings, _ = _run_rules(module, rules)
    return sorted(findings, key=lambda f: (f.path, f.line, f.column, f.code))


def _parse_contexts(
    paths: Sequence[Path], result: LintResult, parse_findings: List[Finding]
) -> List[ModuleContext]:
    """Phase 1: read and parse every file once."""
    contexts: List[ModuleContext] = []
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            raise LintError(f"cannot read {file_path}: {exc}") from exc
        head = "\n".join(source.splitlines()[:5])
        if _SKIP_FILE.search(head):
            continue
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            result.parse_failures += 1
            result.files_checked += 1
            parse_findings.append(
                Finding(
                    code="FV000",
                    message=f"file does not parse: {exc.msg}",
                    path=str(file_path),
                    line=exc.lineno or 1,
                    column=(exc.offset or 0) + 1,
                    severity=Severity.ERROR,
                )
            )
            continue
        contexts.append(ModuleContext(path=str(file_path), source=source, tree=tree))
    return contexts


def _restricted_modules(
    contexts: Sequence[ModuleContext], restrict_to: Sequence[Path]
) -> Set[str]:
    """Module names to check for a ``--changed`` run.

    The seed set is every parsed module whose path matches an entry of
    ``restrict_to``; it is expanded to all transitive reverse
    dependents (via *all* import edges), so a module consuming the
    change — even through a function-level import — is re-checked.
    """
    project = build_project(list(contexts))  # also fills in module_name
    wanted = {Path(p).resolve() for p in restrict_to}
    seeds = [
        context.module_name
        for context in contexts
        if Path(context.path).resolve() in wanted
    ]
    return project.reverse_dependents(seeds)


def lint_paths(
    paths: Sequence[Path],
    select: Optional[Iterable[str]] = None,
    baseline_path: Optional[Path] = None,
    restrict_to: Optional[Sequence[Path]] = None,
) -> LintResult:
    """Lint files and directories, applying pragmas and the baseline.

    The whole-program model is always built over *every* discovered
    file; ``restrict_to`` (the ``--changed`` mode) only narrows which
    modules have rules run on them — to the listed files plus their
    transitive reverse import-graph dependents — so cross-file evidence
    stays complete while the rule pass gets cheap.

    Unparseable files yield an ``FV000`` finding rather than aborting
    the run, so one bad file cannot hide findings in the rest.
    """
    rules = resolve_rules(select)
    baseline = load_baseline(baseline_path) if baseline_path else {}
    result = LintResult()
    all_findings: List[Finding] = []
    contexts = _parse_contexts(paths, result, all_findings)
    _bind_project(rules, contexts)
    keep: Optional[Set[str]] = None
    if restrict_to is not None:
        keep = _restricted_modules(contexts, restrict_to)
    for module in contexts:
        if keep is not None and module.module_name not in keep:
            continue
        result.files_checked += 1
        findings, suppressed = _run_rules(module, rules)
        result.suppressed += suppressed
        all_findings.extend(findings)
    all_findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    fresh, matched = apply_baseline(all_findings, baseline)
    result.findings = fresh
    result.baselined = matched
    return result
