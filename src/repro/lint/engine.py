"""The ``fvlint`` engine: file discovery, parsing, pragmas, baselines.

Each file is read and parsed exactly once; every selected rule then
walks the shared AST.  Findings can be suppressed two ways:

- an inline pragma ``# fvlint: disable=FV001,FV004 (why)`` on the
  flagged line (``disable=all`` silences every rule there), or
- a committed baseline file (:mod:`repro.lint.baseline`) grandfathering
  existing findings by fingerprint.

Both paths are deliberate and visible in review — there is no silent
way to turn a rule off.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.errors import LintError
from repro.lint.baseline import apply_baseline, load_baseline
from repro.lint.model import Finding, ModuleContext, Rule, Severity, resolve_rules

__all__ = [
    "LintResult",
    "iter_python_files",
    "lint_paths",
    "lint_source",
]

#: ``# fvlint: disable=FV001,FV002 (optional justification)``
_PRAGMA = re.compile(r"#\s*fvlint:\s*disable=([A-Za-z0-9,\s]+?)(?:\s*[(\-].*)?$")

#: ``# fvlint: skip-file (optional justification)`` in the first lines.
_SKIP_FILE = re.compile(r"#\s*fvlint:\s*skip-file")

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0
    parse_failures: int = 0

    @property
    def ok(self) -> bool:
        """True when no (non-suppressed, non-baselined) finding remains."""
        return not self.findings

    def counts_by_code(self) -> Dict[str, int]:
        """Finding counts keyed by rule code, sorted by code."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Python files under ``paths`` (files given directly are kept as-is)."""
    files: List[Path] = []
    for path in paths:
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if not (_SKIP_DIRS & set(part for part in p.parts))
            )
        else:
            raise LintError(f"lint target {path} does not exist")
    return files


def _pragma_map(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """1-indexed line → set of rule codes (or ``{"ALL"}``) disabled there."""
    pragmas: Dict[int, Set[str]] = {}
    for i, line in enumerate(lines, start=1):
        match = _PRAGMA.search(line)
        if match:
            codes = {c.strip().upper() for c in match.group(1).split(",") if c.strip()}
            pragmas[i] = codes
    return pragmas


def _run_rules(
    module: ModuleContext, rules: Sequence[Rule]
) -> tuple[List[Finding], int]:
    """All findings for one parsed module, minus pragma suppressions."""
    pragmas = _pragma_map(module.lines)
    kept: List[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(module):
            disabled = pragmas.get(finding.line, set())
            if "ALL" in disabled or finding.code in disabled:
                suppressed += 1
            else:
                kept.append(finding)
    return kept, suppressed


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint a source string — the unit-test entry point.

    Returns pragma-filtered findings sorted by location; raises
    :class:`repro.errors.LintError` when the source does not parse.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise LintError(f"{path} does not parse: {exc}") from exc
    module = ModuleContext(path=path, source=source, tree=tree)
    findings, _ = _run_rules(module, resolve_rules(select))
    return sorted(findings, key=lambda f: (f.path, f.line, f.column, f.code))


def lint_paths(
    paths: Sequence[Path],
    select: Optional[Iterable[str]] = None,
    baseline_path: Optional[Path] = None,
) -> LintResult:
    """Lint files and directories, applying pragmas and the baseline.

    Unparseable files yield an ``FV000`` finding rather than aborting
    the run, so one bad file cannot hide findings in the rest.
    """
    rules = resolve_rules(select)
    baseline = load_baseline(baseline_path) if baseline_path else {}
    result = LintResult()
    all_findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            raise LintError(f"cannot read {file_path}: {exc}") from exc
        head = "\n".join(source.splitlines()[:5])
        if _SKIP_FILE.search(head):
            continue
        result.files_checked += 1
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            result.parse_failures += 1
            all_findings.append(
                Finding(
                    code="FV000",
                    message=f"file does not parse: {exc.msg}",
                    path=str(file_path),
                    line=exc.lineno or 1,
                    column=(exc.offset or 0) + 1,
                    severity=Severity.ERROR,
                )
            )
            continue
        module = ModuleContext(path=str(file_path), source=source, tree=tree)
        findings, suppressed = _run_rules(module, rules)
        result.suppressed += suppressed
        all_findings.extend(findings)
    all_findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    fresh, matched = apply_baseline(all_findings, baseline)
    result.findings = fresh
    result.baselined = matched
    return result
