"""FV004 — float equality.

``==`` / ``!=`` against float literals in geometry and simulation code
is almost always a latent tolerance bug: coverage predicates, interval
endpoints and probability estimates are all computed quantities.  Use
``math.isclose`` (or an explicit tolerance) — or, for the rare
deliberate exact comparison (sentinel zeros, cache keys), suppress the
finding with a justified ``# fvlint: disable=FV004 (...)`` pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.model import Finding, ModuleContext, Rule, Severity, register_rule

__all__ = ["FloatEqualityRule"]


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # Negative literals parse as UnaryOp(USub, Constant).
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


@register_rule
class FloatEqualityRule(Rule):
    """Flag ``==`` / ``!=`` where one side is a float literal."""

    code = "FV004"
    name = "float-equality"
    severity = Severity.WARNING
    description = (
        "exact ==/!= against a float literal: prefer math.isclose or an "
        "explicit tolerance; pragma-suppress deliberate sentinel comparisons"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(left) or _is_float_literal(right):
                    yield self.finding(
                        module,
                        node,
                        "exact float comparison: use math.isclose / a tolerance "
                        "(or pragma-suppress with justification if deliberate)",
                    )
                    break
