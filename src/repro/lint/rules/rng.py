"""FV001 — RNG discipline.

Every stochastic path must draw from a seeded, spawn-derived
:class:`numpy.random.Generator`.  The reproduction's bit-identical
checkpoint resume (``MonteCarloConfig.rng_for_trial``) only holds when
streams come from ``SeedSequence`` spawning, never from arithmetic on a
master seed: ``default_rng(seed + k)`` streams are statistically
correlated across ``k`` and silently corrupt Monte-Carlo conclusions.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.model import Finding, ModuleContext, Rule, Severity, register_rule

__all__ = ["RngDisciplineRule"]

#: Call names whose first positional (or ``seed=``) argument is a seed.
_SEEDED_CONSTRUCTORS = {"default_rng", "SeedSequence", "PCG64", "Philox", "MT19937"}

#: Project constructors whose ``seed=`` keyword (or second positional
#: argument) feeds SeedSequence spawning downstream.
_PROJECT_SEED_TAKERS = {"MonteCarloConfig"}

#: Legacy numpy global-state entry points, banned outright.
_LEGACY_NUMPY = {"RandomState", "seed", "rand", "randn", "randint", "random_sample"}


def _attr_chain(node: ast.AST) -> str:
    """Dotted name for ``Name``/``Attribute`` chains (``np.random.seed``)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _is_arithmetic(node: ast.AST) -> bool:
    """True for seed expressions derived by arithmetic (``seed + 1000 + i``)."""
    if isinstance(node, ast.BinOp):
        return isinstance(node.op, (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Mod))
    return False


@register_rule
class RngDisciplineRule(Rule):
    """Ban unseeded generators, stdlib ``random`` and arithmetic-derived seeds."""

    code = "FV001"
    name = "rng-discipline"
    severity = Severity.ERROR
    description = (
        "stochastic code must use seeded SeedSequence-spawned numpy Generators "
        "(MonteCarloConfig.rng_for_trial / repro.seeding) — no stdlib random, "
        "no unseeded default_rng(), no seed arithmetic like seed + k"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            module,
                            node,
                            "stdlib `random` is banned: draw from a seeded "
                            "numpy Generator (see repro.seeding)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self.finding(
                        module,
                        node,
                        "stdlib `random` is banned: draw from a seeded "
                        "numpy Generator (see repro.seeding)",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node)

    def _check_call(self, module: ModuleContext, node: ast.Call) -> Iterator[Finding]:
        chain = _attr_chain(node.func)
        tail = chain.rsplit(".", 1)[-1]
        if chain in {"np.random." + n for n in _LEGACY_NUMPY} or chain in {
            "numpy.random." + n for n in _LEGACY_NUMPY
        }:
            yield self.finding(
                module,
                node,
                f"legacy global-state `{chain}` is banned: construct a seeded "
                "Generator instead",
            )
            return
        if tail in _PROJECT_SEED_TAKERS:
            seed_args = list(node.args[1:2]) + [
                kw.value for kw in node.keywords if kw.arg == "seed"
            ]
            for arg in seed_args:
                if _is_arithmetic(arg):
                    yield self.finding(
                        module,
                        node,
                        f"arithmetic-derived seed in {tail}(): use "
                        "repro.seeding.derive_seed(seed, *key) so sub-sweeps "
                        "get independent SeedSequence-spawned streams",
                    )
            return
        if tail not in _SEEDED_CONSTRUCTORS:
            return
        if tail == "default_rng" and not node.args and not node.keywords:
            yield self.finding(
                module,
                node,
                "unseeded default_rng(): every stream must derive from an "
                "explicit seed or a spawned SeedSequence",
            )
            return
        seed_args = list(node.args[:1]) + [
            kw.value for kw in node.keywords if kw.arg in ("seed", "entropy")
        ]
        for arg in seed_args:
            if _is_arithmetic(arg):
                yield self.finding(
                    module,
                    node,
                    f"arithmetic-derived seed in {tail}(): use "
                    "SeedSequence(seed).spawn(...) or spawn_key= addressing "
                    "(correlated streams corrupt Monte-Carlo results)",
                )
