"""FV005 — API surface.

Public modules declare ``__all__`` and it must match reality: every
listed name is bound at module top level, every public function or
class defined in the module is listed, and every public top-level
function or class carries a docstring.  This keeps ``from m import *``,
the docs and the package re-exports honest as the codebase grows.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.model import Finding, ModuleContext, Rule, Severity, register_rule

__all__ = ["ApiSurfaceRule"]

#: Module stems exempt from the ``__all__`` requirement.
_EXEMPT_STEMS = {"__main__", "conftest", "setup"}


def _module_stem(path: str) -> str:
    name = path.replace("\\", "/").rsplit("/", 1)[-1]
    return name[:-3] if name.endswith(".py") else name


def _top_level_bound_names(tree: ast.Module) -> Set[str]:
    """Every name bound by a top-level statement (defs, imports, assigns)."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        elif isinstance(node, (ast.If, ast.Try, ast.For, ast.While, ast.With)):
            # One conditional level deep is enough in practice
            # (TYPE_CHECKING blocks, guarded imports).
            for child in ast.walk(node):
                if isinstance(child, (ast.FunctionDef, ast.ClassDef)):
                    names.add(child.name)
                elif isinstance(child, (ast.Import, ast.ImportFrom)):
                    for alias in child.names:
                        names.add((alias.asname or alias.name).split(".")[0])
    return names


def _find_dunder_all(tree: ast.Module) -> Optional[ast.Assign]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return node
    return None


def _literal_names(node: ast.expr) -> Optional[List[str]]:
    """``__all__`` entries when the value is a literal list/tuple of strings."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    names: List[str] = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        names.append(element.value)
    return names


def _has_docstring(node: ast.AST) -> bool:
    body = getattr(node, "body", [])
    return bool(
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    )


@register_rule
class ApiSurfaceRule(Rule):
    """Require an honest ``__all__`` and docstrings on the public surface."""

    code = "FV005"
    name = "api-surface"
    severity = Severity.WARNING
    description = (
        "public modules need __all__ matching their top-level definitions, "
        "and public top-level functions/classes need docstrings"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        stem = _module_stem(module.path)
        if stem.startswith("_") and stem != "__init__":
            return
        if stem in _EXEMPT_STEMS:
            return
        public_defs = [
            node
            for node in module.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and not node.name.startswith("_")
        ]
        assign = _find_dunder_all(module.tree)
        if assign is None:
            yield self.finding(
                module,
                module.tree.body[0] if module.tree.body else module.tree,
                "public module has no __all__: declare its export surface",
            )
        else:
            listed = _literal_names(assign.value)
            if listed is None:
                yield self.finding(
                    module,
                    assign,
                    "__all__ must be a literal list/tuple of strings",
                )
            else:
                bound = _top_level_bound_names(module.tree)
                for name in listed:
                    if name not in bound:
                        yield self.finding(
                            module,
                            assign,
                            f"__all__ lists {name!r} which is not bound at "
                            "module top level",
                        )
                for node in public_defs:
                    if node.name not in listed:
                        yield self.finding(
                            module,
                            node,
                            f"public {type(node).__name__.replace('Def', '').lower()} "
                            f"{node.name!r} is missing from __all__ "
                            "(export it or rename with a leading underscore)",
                        )
        for node in public_defs:
            if not _has_docstring(node):
                yield self.finding(
                    module,
                    node,
                    f"public {node.name!r} needs a docstring",
                )
