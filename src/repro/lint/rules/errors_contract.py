"""FV002 — error contract.

Every deliberate ``raise`` under ``src/repro/`` must construct a
:class:`repro.errors.FullViewError` subclass, so ``except FullViewError``
catches every rejection the library makes (the contract pinned by
``tests/test_errors_contract.py``).  Re-raises (bare ``raise`` and
``raise exc`` of a bound name) and internal assertions are allowed.
"""

from __future__ import annotations

import ast
import builtins
from typing import FrozenSet, Iterator

from repro.lint.model import Finding, ModuleContext, Rule, Severity, register_rule

__all__ = ["ErrorContractRule", "error_family_names"]

#: Raises that are not part of the library's error contract: internal
#: assertions about invariants the caller cannot violate.
_ALLOWLIST = frozenset({"AssertionError"})

#: Builtin exception class names: `raise ValueError` (no call) still
#: instantiates, so a bare Name raise of one of these is a construction.
_BUILTIN_EXCEPTIONS = frozenset(
    name
    for name, obj in vars(builtins).items()
    if isinstance(obj, type) and issubclass(obj, BaseException)
)


def error_family_names() -> FrozenSet[str]:
    """Names of ``FullViewError`` and every (transitive) subclass.

    Resolved dynamically so rules stay in sync with ``repro.errors``
    automatically — including subclasses other packages add later.
    """
    from repro.errors import FullViewError

    names = {FullViewError.__name__}
    stack = [FullViewError]
    while stack:
        for sub in stack.pop().__subclasses__():
            if sub.__name__ not in names:
                names.add(sub.__name__)
                stack.append(sub)
    return frozenset(names)


@register_rule
class ErrorContractRule(Rule):
    """Require every constructed raise to be a ``FullViewError`` subclass."""

    code = "FV002"
    name = "error-contract"
    severity = Severity.ERROR
    description = (
        "every `raise` must construct a FullViewError subclass (re-raises and "
        "AssertionError are allowed) so `except FullViewError` stays complete"
    )

    def __init__(self) -> None:
        self._family = error_family_names() | _ALLOWLIST

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise):
                continue
            exc = node.exc
            if exc is None:
                continue  # bare `raise`: re-raising the active exception
            if isinstance(exc, ast.Name) and exc.id not in _BUILTIN_EXCEPTIONS:
                # `raise err` of a bound name: re-raising a caught or
                # pre-built exception object, not minting a new one.
                # (`raise ValueError` without parens still instantiates,
                # so builtin exception names fall through to the check.)
                continue
            name = self._constructed_name(exc)
            if name is None:
                yield self.finding(
                    module,
                    node,
                    "raise of a dynamic expression: construct a FullViewError "
                    "subclass explicitly (or bind it to a name first)",
                )
            elif name not in self._family:
                yield self.finding(
                    module,
                    node,
                    f"raise {name}(...) breaks the error contract: use a "
                    "FullViewError subclass from repro.errors (or add one)",
                )

    @staticmethod
    def _constructed_name(exc: ast.expr) -> str | None:
        """The class name being raised, if statically determinable."""
        target = exc.func if isinstance(exc, ast.Call) else exc
        if isinstance(target, ast.Attribute):
            return target.attr
        if isinstance(target, ast.Name):
            return target.id
        return None
