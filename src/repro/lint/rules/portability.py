"""FV009–FV010 — backend portability and layering, whole-program.

- **FV009 array-API portability** — the hot numerical paths
  (``core/batch.py``, ``core/kernels.py`` and any ``*_batch``/
  ``*_kernels`` module) are the code ROADMAP item 4 wants to run
  unchanged on an array-API backend (CuPy, torch, jax.numpy).  Any
  ``np.*`` call there with no array-API-standard equivalent is a future
  port blocker and gets flagged now, while the fix is a one-line
  substitution rather than an excavation.  Calls the standard *renames*
  (``np.concatenate`` → ``concat``, ``np.power`` → ``pow`` ...) are
  allowed: the swap is mechanical.
- **FV010 layering** — locks in the PR3 cycle fix structurally: no
  load-time import cycles anywhere (function-level imports are the
  sanctioned cycle-breaking idiom and do not count), and no package may
  import a package above it in the layer table (``core`` must never
  import ``simulation`` or ``experiments``).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, Set

from repro.lint.model import Finding, ModuleContext, ProjectRule, Rule, Severity, register_rule
from repro.lint.project import attr_chain

__all__ = [
    "ArrayApiPortabilityRule",
    "LayeringRule",
]

#: Function names present in the array-API standard (2023.12/2024.12),
#: hence safe in a hot path: the backend swap keeps them verbatim.
_ARRAY_API_FUNCTIONS = {
    # creation
    "arange", "asarray", "empty", "empty_like", "eye", "from_dlpack",
    "full", "full_like", "linspace", "meshgrid", "ones", "ones_like",
    "tril", "triu", "zeros", "zeros_like",
    # element-wise
    "abs", "acos", "acosh", "add", "asin", "asinh", "atan", "atan2",
    "atanh", "bitwise_and", "bitwise_invert", "bitwise_left_shift",
    "bitwise_or", "bitwise_right_shift", "bitwise_xor", "ceil", "clip",
    "conj", "copysign", "cos", "cosh", "divide", "equal", "exp",
    "expm1", "floor", "floor_divide", "greater", "greater_equal",
    "hypot", "imag", "isfinite", "isinf", "isnan", "less",
    "less_equal", "log", "log1p", "log2", "log10", "logaddexp",
    "logical_and", "logical_not", "logical_or", "logical_xor",
    "maximum", "minimum", "multiply", "negative", "nextafter",
    "not_equal", "positive", "pow", "real", "reciprocal", "remainder",
    "round", "sign", "signbit", "sin", "sinh", "square", "sqrt",
    "subtract", "tan", "tanh", "trunc",
    # statistical
    "cumulative_prod", "cumulative_sum", "max", "mean", "min", "prod",
    "std", "sum", "var",
    # linear algebra (main namespace)
    "matmul", "matrix_transpose", "tensordot", "vecdot",
    # manipulation
    "broadcast_arrays", "broadcast_to", "concat", "expand_dims",
    "flip", "moveaxis", "permute_dims", "repeat", "reshape", "roll",
    "squeeze", "stack", "tile", "unstack",
    # searching / indexing
    "argmax", "argmin", "count_nonzero", "nonzero", "searchsorted",
    "take", "take_along_axis", "where",
    # set functions
    "unique_all", "unique_counts", "unique_inverse", "unique_values",
    # sorting
    "argsort", "sort",
    # utility
    "all", "any", "diff",
    # dtype helpers and dtype constructors
    "astype", "can_cast", "finfo", "iinfo", "isdtype", "result_type",
    "bool_", "complex64", "complex128", "float32", "float64",
    "int8", "int16", "int32", "int64",
    "uint8", "uint16", "uint32", "uint64",
}

#: numpy name -> array-API name.  A renamed call is *allowed* — the
#: backend swap is a mechanical substitution, not a redesign.
_ARRAY_API_RENAMES = {
    "absolute": "abs",
    "amax": "max",
    "amin": "min",
    "arccos": "acos",
    "arccosh": "acosh",
    "arcsin": "asin",
    "arcsinh": "asinh",
    "arctan": "atan",
    "arctan2": "atan2",
    "arctanh": "atanh",
    "concatenate": "concat",
    "conjugate": "conj",
    "cumprod": "cumulative_prod",
    "cumsum": "cumulative_sum",
    "fabs": "abs",
    "invert": "bitwise_invert",
    "left_shift": "bitwise_left_shift",
    "mod": "remainder",
    "power": "pow",
    "right_shift": "bitwise_right_shift",
    "round_": "round",
    "transpose": "permute_dims",
    "true_divide": "divide",
    "unique": "unique_values",
}

#: ``linalg`` extension members (plus ``norm``, renamed to
#: ``vector_norm``/``matrix_norm``).
_ARRAY_API_LINALG = {
    "cholesky", "cross", "det", "diagonal", "eigh", "eigvalsh", "inv",
    "matmul", "matrix_norm", "matrix_power", "matrix_rank",
    "matrix_transpose", "norm", "outer", "pinv", "qr", "slogdet",
    "solve", "svd", "svdvals", "tensordot", "trace", "vecdot",
    "vector_norm",
}

#: ufunc-method calls (``np.add.reduce`` ...) have no array-API form.
_UFUNC_METHODS = {"accumulate", "at", "outer", "reduce", "reduceat"}

#: Package layer ranks.  A module may import strictly-lower-ranked
#: packages only; the root ``repro`` package module is exempt.
_LAYER_RANKS: Dict[str, int] = {
    "errors": 0,
    "_version": 0,
    "ioutil": 1,
    "seeding": 1,
    "lint": 1,
    "geometry": 1,
    "obs": 2,
    "sensors": 3,
    "deployment": 4,
    "core": 5,
    "analysis": 6,
    "barrier": 6,
    "planning": 6,
    "simulation": 6,
    "resilience": 7,
    "viz": 8,
    "experiments": 8,
    "api": 9,
    "service": 10,
    "cli": 11,
    "__main__": 12,
}


def _hot_path(path: str) -> bool:
    """True for the modules the array-API backend swap must cover."""
    stem = Path(path).stem
    return stem in ("batch", "kernels") or stem.endswith(("_batch", "_kernels"))


def _layer_package(module_name: str) -> str:
    """The layer-table key for a ``repro.*`` module, else ``""``."""
    parts = module_name.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return ""
    return parts[1]


@register_rule
class ArrayApiPortabilityRule(Rule):
    """FV009: hot-path numpy calls must have array-API equivalents."""

    code = "FV009"
    name = "array-api-portability"
    severity = Severity.WARNING
    description = (
        "numpy calls in the hot batch/kernel paths must exist in the "
        "array-API standard (or be a standard rename) so the planned "
        "backend swap (ROADMAP item 4) stays a namespace substitution"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not _hot_path(module.path):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            parts = chain.split(".")
            if not parts or parts[0] not in ("np", "numpy"):
                continue
            if len(parts) == 2:
                name = parts[1]
                if name in _ARRAY_API_FUNCTIONS or name in _ARRAY_API_RENAMES:
                    continue
                yield self.finding(
                    module,
                    node,
                    f"{chain}() has no array-API-standard equivalent: an "
                    "array-API backend (ROADMAP item 4) cannot run this hot "
                    "path — restructure around standard functions or hoist "
                    "the call out of the kernel",
                )
            elif len(parts) == 3:
                _, middle, name = parts
                if middle == "linalg":
                    if name not in _ARRAY_API_LINALG:
                        yield self.finding(
                            module,
                            node,
                            f"{chain}() is outside the array-API linalg "
                            "extension: the backend swap (ROADMAP item 4) "
                            "cannot cover it",
                        )
                elif middle in ("fft", "random"):
                    # fft is a standard extension; random is FV001/FV008's
                    # jurisdiction — never double-flag a draw here.
                    continue
                elif name in _UFUNC_METHODS:
                    yield self.finding(
                        module,
                        node,
                        f"ufunc method {chain}() has no array-API form: "
                        "express the reduction with standard functions so "
                        "the backend swap (ROADMAP item 4) stays mechanical",
                    )


@register_rule
class LayeringRule(ProjectRule):
    """FV010: no load-time import cycles, no upward package imports."""

    code = "FV010"
    name = "layering"
    severity = Severity.ERROR
    description = (
        "the package layer table is a contract: no load-time import "
        "cycles, and no package imports a package at or above its own "
        "layer (core must never import simulation or experiments)"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if self.project is None:
            return
        mod = self.project.modules.get(module.module_name)
        if mod is None:
            return
        yield from self._check_cycles(module, mod)
        yield from self._check_layers(module, mod)

    def _check_cycles(self, module: ModuleContext, mod) -> Iterator[Finding]:
        for cycle in self.project.import_cycles():
            if mod.name != cycle[0]:
                continue  # one finding per cycle, anchored in the first member
            partner = next(
                (name for name in cycle[1:] if name in mod.toplevel_imports),
                cycle[1],
            )
            line = mod.toplevel_imports.get(partner, 1)
            yield self._finding_at(
                module,
                line,
                "load-time import cycle: "
                + " -> ".join(cycle + [cycle[0]])
                + " — break it with a function-level import or by moving "
                "the shared symbol down a layer",
            )

    def _check_layers(self, module: ModuleContext, mod) -> Iterator[Finding]:
        own = _layer_package(mod.name)
        if not own or own not in _LAYER_RANKS:
            return
        own_rank = _LAYER_RANKS[own]
        for target, line in sorted(mod.all_imports.items(), key=lambda kv: kv[1]):
            other = _layer_package(target)
            if not other or other == own or other not in _LAYER_RANKS:
                continue
            if _LAYER_RANKS[other] >= own_rank:
                yield self._finding_at(
                    module,
                    line,
                    f"layer violation: repro.{own} (layer {own_rank}) "
                    f"imports {target} (layer {_LAYER_RANKS[other]}): "
                    "dependencies must point strictly down the layer table",
                )

    def _finding_at(self, module: ModuleContext, line: int, message: str) -> Finding:
        anchor = ast.Pass()
        anchor.lineno = line
        anchor.col_offset = 0
        return self.finding(module, anchor, message)
