"""FV003 — angle hygiene.

All angular arithmetic goes through :mod:`repro.geometry.angles`:
``TWO_PI`` for the full-circle constant and ``normalize_angle`` /
``normalize_angle_signed`` for wrapping.  Raw ``2 * math.pi`` literals
and ad-hoc ``% (2 * pi)`` modular arithmetic scattered across modules
drift apart numerically (the wrap helpers handle the ``fmod`` edge
cases that naive modulo does not).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.model import Finding, ModuleContext, Rule, Severity, register_rule

__all__ = ["AngleHygieneRule"]

#: The one module allowed to spell the constant out: it defines TWO_PI.
_HOME_MODULE = "geometry/angles.py"


def _is_pi(node: ast.AST) -> bool:
    """True for ``math.pi`` / ``np.pi`` / ``numpy.pi`` or a bare ``pi`` name."""
    if isinstance(node, ast.Attribute) and node.attr == "pi":
        return isinstance(node.value, ast.Name) and node.value.id in (
            "math",
            "np",
            "numpy",
        )
    return isinstance(node, ast.Name) and node.id == "pi"


def _is_two(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value in (2, 2.0)


def _is_two_pi_literal(node: ast.AST) -> bool:
    """True for ``2 * pi`` / ``pi * 2`` in any of the spellings above."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        return (_is_two(node.left) and _is_pi(node.right)) or (
            _is_pi(node.left) and _is_two(node.right)
        )
    return False


def _is_tau(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and node.attr == "tau"


@register_rule
class AngleHygieneRule(Rule):
    """Flag raw full-circle constants and ad-hoc angle wrapping."""

    code = "FV003"
    name = "angle-hygiene"
    severity = Severity.ERROR
    description = (
        "use geometry.angles.TWO_PI instead of raw 2*math.pi/math.tau, and "
        "normalize_angle()/normalize_angle_signed() instead of % (2*pi)"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.path.replace("\\", "/").endswith(_HOME_MODULE):
            return
        reported: set = set()

        def report(node: ast.AST, message: str) -> Iterator[Finding]:
            key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
            if key not in reported:
                reported.add(key)
                yield self.finding(module, node, message)

        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
                if _is_two_pi_literal(node.right) or _is_tau(node.right):
                    yield from report(
                        node,
                        "ad-hoc `% (2*pi)` wrap: use normalize_angle() / "
                        "normalize_angle_signed() from repro.geometry.angles",
                    )
                    # The operand is part of the reported wrap; do not
                    # also flag the 2*pi literal inside it.
                    reported.add(
                        (node.right.lineno, node.right.col_offset)
                    )
            elif isinstance(node, ast.Call):
                chain_ok = isinstance(node.func, ast.Attribute) and node.func.attr in (
                    "mod",
                    "fmod",
                    "remainder",
                )
                if chain_ok and len(node.args) == 2 and (
                    _is_two_pi_literal(node.args[1]) or _is_tau(node.args[1])
                ):
                    yield from report(
                        node,
                        "ad-hoc mod-2*pi wrap: use normalize_angle() / "
                        "normalize_angle_signed() from repro.geometry.angles",
                    )
                    reported.add(
                        (node.args[1].lineno, node.args[1].col_offset)
                    )
            if _is_two_pi_literal(node):
                yield from report(
                    node,
                    "raw 2*pi literal: import TWO_PI from repro.geometry.angles",
                )
            elif _is_tau(node):
                yield from report(
                    node,
                    "math.tau literal: import TWO_PI from repro.geometry.angles",
                )
