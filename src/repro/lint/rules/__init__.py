"""Built-in ``fvlint`` rules.

Importing this package registers every rule with the registry in
:mod:`repro.lint.model`.  Rules live one-per-module so each invariant's
rationale stays next to its implementation.
"""

from repro.lint.rules.angles import AngleHygieneRule
from repro.lint.rules.api import ApiSurfaceRule
from repro.lint.rules.errors_contract import ErrorContractRule
from repro.lint.rules.floats import FloatEqualityRule
from repro.lint.rules.parallel import (
    HiddenNondeterminismRule,
    PickleSafetyRule,
    WorkerStateHygieneRule,
)
from repro.lint.rules.portability import ArrayApiPortabilityRule, LayeringRule
from repro.lint.rules.rng import RngDisciplineRule

__all__ = [
    "AngleHygieneRule",
    "ApiSurfaceRule",
    "ArrayApiPortabilityRule",
    "ErrorContractRule",
    "FloatEqualityRule",
    "HiddenNondeterminismRule",
    "LayeringRule",
    "PickleSafetyRule",
    "RngDisciplineRule",
    "WorkerStateHygieneRule",
]
