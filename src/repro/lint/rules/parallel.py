"""FV006–FV008 — parallel-safety and determinism, whole-program.

The engine's serial ≡ parallel bit-identity guarantee fails in exactly
three structural ways, all statically detectable once a cross-file
model exists:

- **FV006 pickle-safety** — a task dataclass that cannot cross the
  process-pool boundary (not frozen, nested, or carrying lambdas,
  locks, handles or nested-class fields) fails only at dispatch time,
  and only under ``workers > 1``.
- **FV007 worker-state hygiene** — module-level mutable state read or
  written on a worker-reachable path diverges silently between serial
  (one interpreter) and parallel (N interpreters) execution.
- **FV008 hidden nondeterminism** — wall-clock/entropy values flowing
  into trial results, unordered ``set`` iteration, and legacy
  ``np.random`` global-state draws all make reruns non-reproducible.

FV007/FV008 check only functions conservatively reachable from the
worker seams (``engine._run_chunk`` and every task ``__call__``); the
:mod:`repro.obs` modules are exempt — the per-chunk trace aggregation
is the audited channel for wall-clock telemetry and is documented to
never feed trial values.  FV007 additionally honours
:data:`AUDITED_WORKER_GLOBALS`, a reviewed allowlist of worker-side
caches (currently the payload plane's content-addressed segment and
task caches) whose per-process state provably cannot change results.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lint.model import Finding, ModuleContext, ProjectRule, Severity, register_rule
from repro.lint.project import ClassInfo, FunctionInfo, ProjectModule, attr_chain

__all__ = [
    "AUDITED_WORKER_GLOBALS",
    "HiddenNondeterminismRule",
    "PickleSafetyRule",
    "WorkerStateHygieneRule",
]

#: Annotation chains that are never statically picklable in a task field.
_UNPICKLABLE_ANNOTATIONS = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "multiprocessing.Lock",
    "Iterator",
    "Generator",
    "typing.Iterator",
    "typing.Generator",
    "collections.abc.Iterator",
    "collections.abc.Generator",
    "IO",
    "TextIO",
    "BinaryIO",
    "typing.IO",
    "typing.TextIO",
    "typing.BinaryIO",
    "socket.socket",
    "Callable",
    "typing.Callable",
    "collections.abc.Callable",
}

#: Default-value constructors that produce unpicklable field values.
_UNPICKLABLE_DEFAULT_CALLS = {"open", "Lock", "RLock", "threading.Lock", "threading.RLock"}

#: ``np.random`` global-state draws flagged by FV008.  Deliberately
#: disjoint from FV001's legacy set so one line never double-flags.
_NONDET_DRAWS = {
    "random",
    "uniform",
    "normal",
    "standard_normal",
    "choice",
    "shuffle",
    "permutation",
    "exponential",
    "poisson",
    "binomial",
    "beta",
    "gamma",
    "bytes",
    "sample",
    "ranf",
    "get_state",
    "set_state",
}

#: Fully-qualified wall-clock / entropy sources for the taint check.
_NONDET_SOURCES = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbits",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


#: FV007 explicit allowlist: worker-side caches that are *designed* to
#: be per-process and have been audited for divergence-safety.  The
#: payload plane's attach/task caches hold content-addressed immutable
#: data (a digest can only ever resolve to one value), so a cold cache
#: and a warm cache produce bit-identical trial results — the caches
#: change *when* bytes are mapped, never *what* a task computes.
#: Entries are deliberately explicit (module → exact global names)
#: rather than pragma comments so the audit surface stays reviewable
#: in one place; anything not listed here still flags.
AUDITED_WORKER_GLOBALS: Dict[str, FrozenSet[str]] = {
    "repro.simulation.payload": frozenset(
        {"_ATTACHED", "_LOCAL_SEGMENTS", "_TASK_CACHE", "_TASK_SEGMENTS"}
    ),
}

_NO_AUDITED: FrozenSet[str] = frozenset()


def _is_audited_module(module_name: str) -> bool:
    """The obs aggregation path is the audited telemetry channel."""
    return "obs" in module_name.split(".")


def _annotation_chains(annotation: ast.expr) -> Iterator[Tuple[ast.expr, str]]:
    """Maximal dotted-name chains inside an annotation expression.

    ``Optional[np.random.Generator]`` yields ``np.random.Generator``
    once (never its ``np.random`` prefix), so deny-list entries match
    whole type names only.
    """
    chain = attr_chain(annotation)
    if chain:
        yield annotation, chain
        return
    for child in ast.iter_child_nodes(annotation):
        if isinstance(child, ast.expr):
            yield from _annotation_chains(child)


def _reachable_in_module(
    project, module: ModuleContext
) -> List[FunctionInfo]:
    """Seam-reachable functions defined in the module being checked."""
    mod = project.modules.get(module.module_name)
    if mod is None:
        return []
    prefix = f"{mod.name}::"
    infos = []
    for key in sorted(project.seam_reachable()):
        if key.startswith(prefix):
            info = project.function(key)
            if info is not None:
                infos.append(info)
    return infos


def _resolve_external(mod: ProjectModule, chain: str) -> str:
    """Rewrite a local call chain through the module's import aliases.

    ``perf_counter`` under ``from time import perf_counter`` resolves
    to ``time.perf_counter``; ``dt.now`` under ``from datetime import
    datetime as dt`` resolves to ``datetime.datetime.now``.
    """
    if not chain:
        return chain
    head, _, rest = chain.partition(".")
    if head in mod.external_aliases:
        resolved = mod.external_aliases[head]
        return f"{resolved}.{rest}" if rest else resolved
    if head in mod.external_names:
        src, original = mod.external_names[head]
        resolved = f"{src}.{original}"
        return f"{resolved}.{rest}" if rest else resolved
    return chain


@register_rule
class PickleSafetyRule(ProjectRule):
    """FV006: every worker task dataclass must pickle by construction."""

    code = "FV006"
    name = "pickle-safety"
    severity = Severity.ERROR
    description = (
        "task dataclasses cross the process-pool boundary: they must be "
        "frozen, module-level dataclasses whose fields are statically "
        "picklable — no lambdas, locks, handles, callables or "
        "nested-class types"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if self.project is None:
            return
        mod = self.project.modules.get(module.module_name)
        if mod is None:
            return
        nested_names = self._nested_class_names()
        for node in mod.nested_classes:
            if node.name.endswith("Task"):
                yield self.finding(
                    module,
                    node,
                    f"task class {node.name!r} is not module-level: nested "
                    "classes cannot pickle by reference into worker processes",
                )
        for cls in self.project.task_classes():
            if cls.module != mod.name:
                continue
            yield from self._check_class(module, cls, nested_names)

    def _nested_class_names(self) -> Set[str]:
        names: Set[str] = set()
        for mod in self.project.modules.values():
            for node in mod.nested_classes:
                names.add(node.name)
        return names

    def _check_class(
        self, module: ModuleContext, cls: ClassInfo, nested_names: Set[str]
    ) -> Iterator[Finding]:
        frozen = self._dataclass_frozen(cls.node)
        if frozen is None:
            yield self.finding(
                module,
                cls.node,
                f"task class {cls.name!r} is not a dataclass: worker tasks "
                "must be @dataclass(frozen=True) so they pickle and cannot "
                "mutate mid-sweep",
            )
        elif not frozen:
            yield self.finding(
                module,
                cls.node,
                f"task dataclass {cls.name!r} is not frozen: declare "
                "@dataclass(frozen=True) so a dispatched task cannot drift "
                "from the copy a worker already received",
            )
        for stmt in cls.node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            yield from self._check_field(module, cls, stmt, nested_names)

    @staticmethod
    def _dataclass_frozen(node: ast.ClassDef) -> Optional[bool]:
        """``None`` when not a dataclass, else the ``frozen`` flag."""
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            chain = attr_chain(target)
            if chain.rsplit(".", 1)[-1] != "dataclass":
                continue
            if not isinstance(decorator, ast.Call):
                return False
            for keyword in decorator.keywords:
                if keyword.arg == "frozen":
                    value = keyword.value
                    return isinstance(value, ast.Constant) and value.value is True
            return False
        return None

    def _check_field(
        self,
        module: ModuleContext,
        cls: ClassInfo,
        stmt: ast.AnnAssign,
        nested_names: Set[str],
    ) -> Iterator[Finding]:
        field_name = stmt.target.id if isinstance(stmt.target, ast.Name) else "?"
        for node, chain in _annotation_chains(stmt.annotation):
            if chain.split(".", 1)[0] in ("np", "numpy"):
                continue  # numpy types (incl. Generator) pickle fine
            if chain in _UNPICKLABLE_ANNOTATIONS:
                yield self.finding(
                    module,
                    node,
                    f"field {cls.name}.{field_name} is typed {chain!r}: locks, "
                    "handles, iterators and bare callables cannot be proven "
                    "picklable, so the task would die at the pool boundary",
                )
            elif chain in nested_names:
                yield self.finding(
                    module,
                    node,
                    f"field {cls.name}.{field_name} is typed {chain!r}, a "
                    "nested class: instances cannot pickle by reference into "
                    "worker processes",
                )
        if stmt.value is not None:
            yield from self._check_default(module, cls, field_name, stmt.value)

    def _check_default(
        self, module: ModuleContext, cls: ClassInfo, field_name: str, value: ast.expr
    ) -> Iterator[Finding]:
        if isinstance(value, ast.Lambda):
            yield self.finding(
                module,
                value,
                f"field {cls.name}.{field_name} defaults to a lambda: lambdas "
                "never pickle — use a module-level function",
            )
            return
        if not isinstance(value, ast.Call):
            return
        chain = attr_chain(value.func)
        if chain in _UNPICKLABLE_DEFAULT_CALLS:
            yield self.finding(
                module,
                value,
                f"field {cls.name}.{field_name} defaults to {chain}(): open "
                "handles and locks cannot cross the process-pool boundary",
            )
        for keyword in value.keywords:
            if keyword.arg in ("default_factory", "default") and isinstance(
                keyword.value, ast.Lambda
            ):
                yield self.finding(
                    module,
                    keyword.value,
                    f"field {cls.name}.{field_name} uses a lambda "
                    f"{keyword.arg}: lambdas never pickle — use a "
                    "module-level function",
                )


@register_rule
class WorkerStateHygieneRule(ProjectRule):
    """FV007: no mutable module globals on a worker-reachable path."""

    code = "FV007"
    name = "worker-state-hygiene"
    severity = Severity.ERROR
    description = (
        "functions reachable from the worker seams (_run_chunk, task "
        "__call__) must not read or write module-level mutable globals: "
        "each worker process has its own copy, so serial and parallel "
        "runs silently diverge (the audited repro.obs path and the "
        "AUDITED_WORKER_GLOBALS allowlist entries are exempt)"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if self.project is None:
            return
        if _is_audited_module(module.module_name):
            return
        mod = self.project.modules.get(module.module_name)
        if mod is None:
            return
        for info in _reachable_in_module(self.project, module):
            yield from self._check_function(module, mod, info)

    def _check_function(
        self, module: ModuleContext, mod: ProjectModule, info: FunctionInfo
    ) -> Iterator[Finding]:
        local_names: Set[str] = set()
        global_decls: Set[str] = set()
        args = getattr(info.node, "args", None)
        if args is not None:
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                local_names.add(arg.arg)
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                global_decls.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                local_names.add(node.id)
        local_names -= global_decls
        seen: Set[Tuple[int, str]] = set()
        for node in ast.walk(info.node):
            hit: Optional[Tuple[ast.AST, str, str]] = None
            if isinstance(node, ast.Name):
                name = node.id
                if name in mod.mutable_globals and name not in local_names:
                    hit = (node, name, mod.name)
            elif isinstance(node, ast.Attribute):
                chain = attr_chain(node)
                head, _, rest = chain.partition(".")
                if rest and "." not in rest and head in mod.module_aliases:
                    target = self.project.modules.get(mod.module_aliases[head])
                    if (
                        target is not None
                        and rest in target.mutable_globals
                        and not _is_audited_module(target.name)
                    ):
                        hit = (node, rest, target.name)
            if hit is None:
                continue
            node_, name, owner = hit
            if name in AUDITED_WORKER_GLOBALS.get(owner, _NO_AUDITED):
                continue
            key = (getattr(node_, "lineno", 0), name)
            if key in seen:
                continue
            seen.add(key)
            yield self.finding(
                module,
                node_,
                f"{info.qualname} is reachable from a worker seam but touches "
                f"the mutable module global {name!r} (defined in {owner}): "
                "worker processes each hold a private copy, so parallel and "
                "serial runs diverge — pass state explicitly or make it "
                "immutable",
            )


@register_rule
class HiddenNondeterminismRule(ProjectRule):
    """FV008: no clocks, entropy, set iteration or legacy RNG in results."""

    code = "FV008"
    name = "hidden-nondeterminism"
    severity = Severity.ERROR
    description = (
        "trial results must be pure functions of the trial generator: no "
        "wall-clock/entropy values flowing into returns on worker-reachable "
        "paths, no iteration over unordered sets there, and no legacy "
        "np.random global-state draws anywhere"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        yield from self._check_legacy_draws(module)
        if self.project is None or _is_audited_module(module.module_name):
            return
        mod = self.project.modules.get(module.module_name)
        if mod is None:
            return
        for info in _reachable_in_module(self.project, module):
            yield from self._check_taint(module, mod, info)
            yield from self._check_set_iteration(module, info)

    def _check_legacy_draws(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            parts = chain.split(".")
            if (
                len(parts) == 3
                and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] in _NONDET_DRAWS
            ):
                yield self.finding(
                    module,
                    node,
                    f"legacy global-state draw {chain}(): results depend on "
                    "hidden interpreter state — draw from the trial's seeded "
                    "Generator instead",
                )

    def _nondet_call(
        self, mod: ProjectModule, node: ast.AST
    ) -> Optional[ast.Call]:
        if isinstance(node, ast.Call):
            chain = _resolve_external(mod, attr_chain(node.func))
            if chain in _NONDET_SOURCES:
                return node
        return None

    def _contains_nondet(
        self, mod: ProjectModule, expr: ast.AST, tainted: Set[str]
    ) -> Optional[ast.AST]:
        for node in ast.walk(expr):
            call = self._nondet_call(mod, node)
            if call is not None:
                return call
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in tainted
            ):
                return node
        return None

    def _check_taint(
        self, module: ModuleContext, mod: ProjectModule, info: FunctionInfo
    ) -> Iterator[Finding]:
        tainted: Set[str] = set()
        taint_sites: Dict[str, ast.AST] = {}
        assignments: List[Tuple[List[ast.expr], ast.expr, ast.stmt]] = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign):
                assignments.append((node.targets, node.value, node))
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if node.value is not None:
                    assignments.append(([node.target], node.value, node))
        changed = True
        while changed:
            changed = False
            for targets, value, stmt in assignments:
                source = self._contains_nondet(mod, value, tainted)
                if source is None:
                    continue
                for target in targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name) and leaf.id not in tainted:
                            tainted.add(leaf.id)
                            taint_sites[leaf.id] = stmt
                            changed = True
        reported: Set[int] = set()
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            for sub in ast.walk(node.value):
                anchor: Optional[ast.AST] = None
                call = self._nondet_call(mod, sub)
                if call is not None:
                    anchor = call
                elif (
                    isinstance(sub, ast.Name)
                    and isinstance(sub.ctx, ast.Load)
                    and sub.id in tainted
                ):
                    anchor = taint_sites.get(sub.id, sub)
                if anchor is None or id(anchor) in reported:
                    continue
                reported.add(id(anchor))
                yield self.finding(
                    module,
                    anchor,
                    f"{info.qualname} is reachable from a worker seam and "
                    "returns a wall-clock/entropy-derived value: trial "
                    "results must be pure functions of the trial generator",
                )

    def _check_set_iteration(
        self, module: ModuleContext, info: FunctionInfo
    ) -> Iterator[Finding]:
        set_names: Set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign) and self._is_set_expr(node.value, set()):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        set_names.add(target.id)
        iters: List[ast.expr] = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if self._is_set_expr(it, set_names):
                yield self.finding(
                    module,
                    it,
                    f"{info.qualname} iterates an unordered set on a "
                    "worker-reachable path: iteration order is "
                    "interpreter-dependent — sort first (sorted(...)) so "
                    "results are reproducible",
                )

    @staticmethod
    def _is_set_expr(expr: ast.expr, set_names: Set[str]) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            chain = attr_chain(expr.func)
            if chain in ("set", "frozenset"):
                return True
        if isinstance(expr, ast.Name) and expr.id in set_names:
            return True
        return False
