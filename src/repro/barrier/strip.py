"""Strong full-view barriers: fully covered horizontal strips.

A *strong* barrier is a horizontal strip ``y in [y_min, y_max]`` every
point of which is full-view covered — an intruder cannot cross it at
any speed or path without being captured near-frontally.  This is the
strip analogue of the paper's area coverage and strictly implies the
weak (grid/percolation) barrier of
:mod:`repro.barrier.grid_barrier`.

The strip test discretises at the dense-grid density used for area
coverage; :func:`find_widest_covered_strip` scans cell rows for the
tallest run of fully covered rows.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.batch import full_view_mask
from repro.core.full_view import validate_effective_angle
from repro.errors import InvalidParameterError
from repro.sensors.fleet import SensorFleet

__all__ = ["find_widest_covered_strip", "strip_fully_covered"]


def strip_fully_covered(
    fleet: SensorFleet,
    theta: float,
    y_min: float,
    y_max: float,
    resolution: int = 32,
) -> bool:
    """Whether every sampled point of the strip is full-view covered.

    The strip is sampled on a grid with ``resolution`` columns and
    ``max(2, ...)`` rows proportional to its height; the test is the
    exact full-view criterion.
    """
    theta = validate_effective_angle(theta)
    side = fleet.region.side
    if not (0.0 <= y_min < y_max <= side):
        raise InvalidParameterError(
            f"need 0 <= y_min < y_max <= side, got [{y_min!r}, {y_max!r}]"
        )
    if resolution < 2:
        raise InvalidParameterError(f"resolution must be >= 2, got {resolution!r}")
    height = y_max - y_min
    rows = max(2, int(np.ceil(resolution * height / side)))
    xs = (np.arange(resolution, dtype=float) + 0.5) * (side / resolution)
    ys = np.linspace(y_min, y_max, rows)
    gx, gy = np.meshgrid(xs, ys, indexing="ij")
    points = np.stack([gx.ravel(), gy.ravel()], axis=1)
    return bool(full_view_mask(fleet, points, theta).all())


def find_widest_covered_strip(
    fleet: SensorFleet, theta: float, resolution: int = 32
) -> Optional[Tuple[float, float]]:
    """The tallest horizontal strip of fully covered cell rows.

    Scans the ``resolution x resolution`` cell grid for the longest run
    of rows whose every cell centre is full-view covered, and returns
    that run's ``(y_min, y_max)`` in region coordinates — or ``None``
    when no complete row is covered.
    """
    from repro.barrier.grid_barrier import compute_coverage_grid

    grid = compute_coverage_grid(fleet, theta, resolution)
    # covered is indexed [column, row]; a row is usable when all columns hold.
    full_rows = grid.covered.all(axis=0)
    best_len = 0
    best_start = -1
    run_start = 0
    current = 0
    for i, ok in enumerate(full_rows):
        if ok:
            if current == 0:
                run_start = i
            current += 1
            if current > best_len:
                best_len = current
                best_start = run_start
        else:
            current = 0
    if best_len == 0:
        return None
    step = fleet.region.side / resolution
    return (best_start * step, (best_start + best_len) * step)
