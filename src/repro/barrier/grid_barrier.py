"""Grid-based full-view barrier detection.

An intruder crosses the region from the bottom edge (``y = 0``) to the
top edge (``y = side``); the network forms a (weak) *full-view barrier*
when every such crossing passes through at least one full-view covered
cell — i.e. when no path of uncovered cells connects bottom to top.

Discretisation: the region is split into ``resolution x resolution``
square cells; a cell counts as covered when its centre is full-view
covered (exact gap test, evaluated with the vectorised batch path).  An
intruder moving continuously can slip between two uncovered cells that
touch even only diagonally, so intruder connectivity is 8-way; the
left-right seam wraps when the region is a torus, the top and bottom do
not (they are the edges being defended).

The dual statement — covered cells containing a 4-connected left-right
band — is implied, and :func:`find_covered_band` extracts such a band
as a certificate when one exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.core.batch import full_view_mask
from repro.core.full_view import validate_effective_angle
from repro.errors import InvalidParameterError
from repro.sensors.fleet import SensorFleet

__all__ = [
    "BarrierAnalysis",
    "Cell",
    "CoverageGrid",
    "barrier_exists",
    "compute_coverage_grid",
    "find_breach_path",
    "find_covered_band",
]

Cell = Tuple[int, int]  # (column index, row index); row 0 is the bottom

#: 8-neighbourhood offsets for the intruder graph.
_NEIGHBOURS_8 = [
    (-1, -1), (0, -1), (1, -1),
    (-1, 0), (1, 0),
    (-1, 1), (0, 1), (1, 1),
]

#: 4-neighbourhood offsets for the covered band certificate.
_NEIGHBOURS_4 = [(-1, 0), (1, 0), (0, -1), (0, 1)]


@dataclass(frozen=True)
class CoverageGrid:
    """Cell-level full-view coverage of the region.

    Attributes
    ----------
    covered:
        Boolean ``(resolution, resolution)`` array indexed
        ``[column, row]``; row 0 is the bottom edge.
    resolution:
        Cells per side.
    torus_x:
        Whether the left-right seam wraps (from the fleet's region).
    """

    covered: np.ndarray
    resolution: int
    torus_x: bool

    @property
    def covered_fraction(self) -> float:
        return float(self.covered.mean())

    def cell_center(self, cell: Cell, side: float = 1.0) -> Tuple[float, float]:
        cx, cy = cell
        step = side / self.resolution
        return ((cx + 0.5) * step, (cy + 0.5) * step)


def compute_coverage_grid(
    fleet: SensorFleet, theta: float, resolution: int = 32
) -> CoverageGrid:
    """Evaluate the exact full-view test on every cell centre."""
    theta = validate_effective_angle(theta)
    if resolution < 2:
        raise InvalidParameterError(f"resolution must be >= 2, got {resolution!r}")
    side = fleet.region.side
    coords = (np.arange(resolution, dtype=float) + 0.5) * (side / resolution)
    xs, ys = np.meshgrid(coords, coords, indexing="ij")
    points = np.stack([xs.ravel(), ys.ravel()], axis=1)
    mask = full_view_mask(fleet, points, theta)
    return CoverageGrid(
        covered=mask.reshape(resolution, resolution),
        resolution=resolution,
        torus_x=fleet.region.torus,
    )


def _intruder_graph(grid: CoverageGrid) -> nx.Graph:
    """Graph of uncovered cells plus virtual bottom/top source/sink."""
    res = grid.resolution
    graph = nx.Graph()
    graph.add_nodes_from(("bottom", "top"))
    uncovered = ~grid.covered
    for cx in range(res):
        for cy in range(res):
            if not uncovered[cx, cy]:
                continue
            node = (cx, cy)
            graph.add_node(node)
            if cy == 0:
                graph.add_edge("bottom", node)
            if cy == res - 1:
                graph.add_edge(node, "top")
            for dx, dy in _NEIGHBOURS_8:
                nx_, ny_ = cx + dx, cy + dy
                if grid.torus_x:
                    nx_ %= res
                elif not (0 <= nx_ < res):
                    continue
                if not (0 <= ny_ < res):
                    continue
                if uncovered[nx_, ny_]:
                    graph.add_edge(node, (nx_, ny_))
    return graph


def find_breach_path(grid: CoverageGrid) -> Optional[List[Cell]]:
    """A bottom-to-top path through uncovered cells, if one exists.

    Returns the cell sequence of a shortest breach (excluding the
    virtual endpoints), or ``None`` when the covered cells form a
    barrier.
    """
    graph = _intruder_graph(grid)
    try:
        path = nx.shortest_path(graph, "bottom", "top")
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return None
    return [cell for cell in path if isinstance(cell, tuple)]


def find_covered_band(grid: CoverageGrid) -> Optional[List[Cell]]:
    """A 4-connected left-to-right band of covered cells, if one exists.

    This is the positive certificate dual to the absence of a breach;
    on the torus the band must also join across the seam, which the
    wrapped edges encode.
    """
    res = grid.resolution
    graph = nx.Graph()
    graph.add_nodes_from(("left", "right"))
    for cx in range(res):
        for cy in range(res):
            if not grid.covered[cx, cy]:
                continue
            node = (cx, cy)
            graph.add_node(node)
            if cx == 0:
                graph.add_edge("left", node)
            if cx == res - 1:
                graph.add_edge(node, "right")
            for dx, dy in _NEIGHBOURS_4:
                nx_, ny_ = cx + dx, cy + dy
                if not (0 <= nx_ < res) or not (0 <= ny_ < res):
                    continue
                if grid.covered[nx_, ny_]:
                    graph.add_edge(node, (nx_, ny_))
    try:
        path = nx.shortest_path(graph, "left", "right")
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return None
    return [cell for cell in path if isinstance(cell, tuple)]


@dataclass(frozen=True)
class BarrierAnalysis:
    """Outcome of a barrier check.

    Attributes
    ----------
    has_barrier:
        Whether every bottom-to-top crossing hits a covered cell.
    covered_fraction:
        Fraction of cells full-view covered.
    breach:
        A breach path (cells) when ``has_barrier`` is false.
    band:
        A covered left-right band certificate when one exists (plane
        geometry guarantees one exists whenever ``has_barrier`` holds
        on a bounded region; on the torus a covered non-contractible
        band is sufficient but a barrier can also arise from more
        complex covered sets, so ``band`` may be ``None`` even with a
        barrier).
    """

    has_barrier: bool
    covered_fraction: float
    breach: Optional[List[Cell]]
    band: Optional[List[Cell]]


def barrier_exists(
    fleet: SensorFleet, theta: float, resolution: int = 32
) -> BarrierAnalysis:
    """Full barrier analysis of a deployed fleet."""
    grid = compute_coverage_grid(fleet, theta, resolution)
    breach = find_breach_path(grid)
    band = find_covered_band(grid) if breach is None else None
    return BarrierAnalysis(
        has_barrier=breach is None,
        covered_fraction=grid.covered_fraction,
        breach=breach,
        band=band,
    )
