"""Barrier full-view coverage — the paper's named future work.

Section VIII closes: "the critical condition to reach barrier full view
coverage will be an absorbing topic as well."  This subpackage provides
the simulation side of that topic:

- :mod:`repro.barrier.grid_barrier` — discretise the region into cells,
  mark each cell full-view covered or not (exact test, vectorised), and
  decide whether the covered cells form a *barrier*: a band that every
  bottom-to-top crossing must intersect.  Decided by the percolation
  dual — an intruder path exists iff the *uncovered* cells connect the
  bottom edge to the top edge (8-connectivity for the intruder, so the
  covered dual band is 4-connected) — via networkx.
- :mod:`repro.barrier.strip` — strong barriers: a horizontal strip
  whose every grid point is full-view covered, plus a search for the
  widest such strip.

The BARRIER experiment measures how the probability that a full-view
barrier exists transitions with the CSA multiple ``q`` — it emerges far
below full area coverage, quantifying how much cheaper barrier
full-view coverage is.
"""

from repro.barrier.grid_barrier import (
    BarrierAnalysis,
    CoverageGrid,
    barrier_exists,
    find_breach_path,
)
from repro.barrier.strip import find_widest_covered_strip, strip_fully_covered

__all__ = [
    "BarrierAnalysis",
    "CoverageGrid",
    "barrier_exists",
    "find_breach_path",
    "find_widest_covered_strip",
    "strip_fully_covered",
]
