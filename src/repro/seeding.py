"""One seeding idiom for every entry point.

All randomness in this package flows from ``numpy``'s
:class:`~numpy.random.SeedSequence`.  Entry points (CLI commands,
experiments, examples) turn their integer seed into generators through
these helpers instead of calling ``default_rng`` ad hoc, and **never**
derive related streams by seed arithmetic (``seed + k`` produces
statistically correlated streams; spawning guarantees independence).

``root_rng(seed)`` is bit-identical to ``np.random.default_rng(seed)``
— both seed PCG64 from ``SeedSequence(seed)`` — so routing existing
call sites through it changes no results.  ``derive_rng(seed, *key)``
matches ``MonteCarloConfig.rng_for_trial``'s ``spawn_key`` addressing,
so any labelled stream can be replayed in O(1) without materialising
its siblings.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["derive_rng", "derive_rngs", "derive_seed", "root_rng"]


def derive_seed(seed: int, *key: int) -> int:
    """An independent integer sub-seed addressed by ``key`` under ``seed``.

    For APIs that take an integer seed rather than a Generator (e.g.
    :class:`repro.simulation.montecarlo.MonteCarloConfig`).  The value
    is the first word of ``SeedSequence(seed, spawn_key=key)``'s
    entropy pool, so sub-seeds inherit spawning's independence
    guarantees — unlike ``seed + k`` arithmetic, which correlates the
    streams it derives.
    """
    seq = np.random.SeedSequence(seed, spawn_key=tuple(key))
    return int(seq.generate_state(1, np.uint32)[0])


def root_rng(seed: int) -> np.random.Generator:
    """The master generator for an entry point (stream-identical to
    ``np.random.default_rng(seed)``)."""
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(seed)))


def derive_rng(seed: int, *key: int) -> np.random.Generator:
    """An independent generator addressed by ``key`` under ``seed``.

    Child ``(k0, k1, ...)`` is ``SeedSequence(seed, spawn_key=key)`` —
    exactly the stream ``SeedSequence(seed).spawn(...)`` would hand out
    at that position, but addressable directly.
    """
    seq = np.random.SeedSequence(seed, spawn_key=tuple(key))
    return np.random.Generator(np.random.PCG64(seq))


def derive_rngs(seed: int, count: int, *prefix: int) -> List[np.random.Generator]:
    """``count`` independent generators ``derive_rng(seed, *prefix, i)``."""
    return [derive_rng(seed, *prefix, i) for i in range(count)]
