"""The coverage service: a stdlib-asyncio HTTP+JSON server.

One long-running process answers deploy/evaluate/estimate questions
over the ``fullview-api-v1`` wire schema (:mod:`repro.api.schemas`).
The request path is, in order:

1. **Parse** — strict body validation; any contract violation is one
   HTTP 400 ``ErrorBody``.
2. **Cache** — the request's content address
   (:func:`repro.service.cache.cache_key`) is looked up in the
   two-tier :class:`~repro.service.cache.ResultCache`.  Memory hits
   answer immediately; disk hits additionally append one
   ``outcome="cached"`` ledger row (once per key per process, because
   the entry is promoted to memory).
3. **Coalesce** — on a miss, concurrent identical requests share one
   future (:class:`~repro.service.coalesce.Coalescer`): the leader
   computes, the other N-1 wait and bump ``service_coalesced``.
4. **Backpressure** — a leader that would push the number of pending
   computations past ``queue_limit`` is refused with HTTP 503
   (``service_rejections``), keeping the worker pool's queue bounded.
5. **Compute** — the leader runs the job in a thread pool through the
   three-executor engine (``executor_scope``), inside a
   ``service.<endpoint>`` trace span, then caches, resolves followers
   and appends an ``outcome="ok"`` ledger row.  Only misses append
   ok/error rows, so ledger throughput numbers count real engine runs.

Shutdown is graceful: the listener closes first, in-flight
computations drain, then the pool stops.  Counters, gauges
(``service_queue_depth``) and the ``service_compute_seconds``
histogram live in a :class:`~repro.obs.metrics.MetricsRegistry`
exported at ``GET /v1/stats``.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.api.schemas import (
    API_SCHEMA,
    ErrorBody,
    REQUEST_TYPES,
    WireBody,
    describe_schema,
    parse_request,
)
from repro.errors import FullViewError, SchemaError, ServiceError
from repro.ioutil import config_digest
from repro.obs.ledger import LEDGER_FORMAT, append_run, git_sha, new_run_id
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span
from repro.service.cache import ResultCache, cache_key
from repro.service.coalesce import Coalescer
from repro.service.jobs import run_request

__all__ = [
    "CoverageService",
]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Largest request body the server will read, in bytes.
_MAX_BODY_BYTES = 1 << 20


class CoverageService:
    """The asyncio HTTP server wrapping the :mod:`repro.api` facade.

    Parameters
    ----------
    cache:
        Result store; defaults to a memory-only
        :class:`~repro.service.cache.ResultCache`.
    queue_limit:
        Maximum computations pending at once; leaders beyond it get 503.
    service_workers:
        Threads in the compute pool.
    workers, executor:
        Engine policy forwarded to every job (``--workers`` /
        ``--executor`` equivalents); not part of the cache key.
    metrics:
        Registry for the service counters; defaults to a fresh one.
    ledger_path:
        When set, cache misses append ``ok``/``error`` rows and disk
        hits append ``cached`` rows to this run ledger.
    """

    def __init__(
        self,
        *,
        cache: Optional[ResultCache] = None,
        queue_limit: int = 8,
        service_workers: int = 2,
        workers: Optional[int] = None,
        executor: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        ledger_path: Optional[Union[str, Path]] = None,
    ) -> None:
        if queue_limit < 1:
            raise ServiceError(f"queue_limit must be >= 1, got {queue_limit!r}")
        if service_workers < 1:
            raise ServiceError(
                f"service_workers must be >= 1, got {service_workers!r}"
            )
        self.cache = cache if cache is not None else ResultCache()
        self.coalescer = Coalescer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.queue_limit = queue_limit
        self.service_workers = service_workers
        self.workers = workers
        self.executor = executor
        self.ledger_path = Path(ledger_path) if ledger_path is not None else None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._git_sha = git_sha()
        self._pending = 0
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.base_events.Server] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start accepting connections (port 0 = ephemeral)."""
        if self._server is not None:
            raise ServiceError("service already started")
        self._pool = ThreadPoolExecutor(
            max_workers=self.service_workers,
            thread_name_prefix="fullview-svc",
        )
        self._server = await asyncio.start_server(self._serve_connection, host, port)
        bound = self._server.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]

    async def serve_forever(self) -> None:
        """Block serving requests until cancelled or :meth:`stop`."""
        if self._server is None:
            raise ServiceError("service not started")
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self, drain_timeout: float = 30.0) -> None:
        """Graceful shutdown: stop accepting, drain in-flight, stop pool."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=drain_timeout)
        except asyncio.TimeoutError:
            pass
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- HTTP plumbing -------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                parts = request_line.decode("latin-1").split()
                if len(parts) < 2:
                    break
                method, target = parts[0].upper(), parts[1]
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", "0") or "0")
                if length > _MAX_BODY_BYTES:
                    await self._respond(
                        writer,
                        400,
                        ErrorBody(
                            error=f"body exceeds {_MAX_BODY_BYTES} bytes",
                            kind="SchemaError",
                            status=400,
                        ).to_wire(),
                        keep_alive=False,
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                status, payload = await self._route(method, target, body)
                keep_alive = (
                    headers.get("connection", "").lower() != "close"
                    and not self._draining
                )
                await self._respond(writer, status, payload, keep_alive=keep_alive)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        *,
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, Any]:
        path = target.split("?", 1)[0]
        if path == "/v1/healthz":
            if method != "GET":
                return self._method_not_allowed(method, path)
            return 200, {"status": "ok", "schema": API_SCHEMA}
        if path == "/v1/schema":
            if method != "GET":
                return self._method_not_allowed(method, path)
            return 200, describe_schema()
        if path == "/v1/stats":
            if method != "GET":
                return self._method_not_allowed(method, path)
            return 200, {
                "schema": API_SCHEMA,
                "pending": self._pending,
                "inflight_keys": len(self.coalescer),
                "cache_entries": len(self.cache),
                "metrics": self.metrics.snapshot(),
            }
        if path.startswith("/v1/"):
            endpoint = path[len("/v1/"):]
            if endpoint in REQUEST_TYPES:
                if method != "POST":
                    return self._method_not_allowed(method, path)
                return await self._handle_compute(endpoint, body)
        return 404, ErrorBody(
            error=f"no route for {path}", kind="ServiceError", status=404
        ).to_wire()

    @staticmethod
    def _method_not_allowed(method: str, path: str) -> Tuple[int, Any]:
        return 405, ErrorBody(
            error=f"{method} not allowed on {path}",
            kind="ServiceError",
            status=405,
        ).to_wire()

    # -- the compute path ----------------------------------------------

    async def _handle_compute(self, endpoint: str, body: bytes) -> Tuple[int, Any]:
        self.metrics.inc("service_requests_total")
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except ValueError:
            return 400, ErrorBody(
                error="request body is not valid JSON",
                kind="SchemaError",
                status=400,
            ).to_wire()
        try:
            request = parse_request(endpoint, payload)
        except SchemaError as exc:
            self.metrics.inc("service_schema_rejections")
            return 400, ErrorBody(
                error=str(exc), kind="SchemaError", status=400
            ).to_wire()

        key = cache_key(request, self._git_sha)
        result, tier = self.cache.get(key)
        if tier == "memory":
            self.metrics.inc("service_cache_hits")
            self.metrics.inc("service_cache_hits_memory")
            return 200, self._envelope(endpoint, key, result, source="memory")
        if tier == "disk":
            self.metrics.inc("service_cache_hits")
            self.metrics.inc("service_cache_hits_disk")
            await self._append_ledger_row(
                endpoint, request, outcome="cached", wall_seconds=0.0
            )
            return 200, self._envelope(endpoint, key, result, source="disk")

        leader, future = self.coalescer.claim(key)
        if not leader:
            self.metrics.inc("service_coalesced")
            try:
                result = await asyncio.shield(future)
            except FullViewError as exc:
                return self._error_response(exc)
            except Exception as exc:  # leader crashed unexpectedly
                return 500, ErrorBody(
                    error=str(exc), kind=type(exc).__name__, status=500
                ).to_wire()
            return 200, self._envelope(endpoint, key, result, source="coalesced")

        if self._draining or self._pending >= self.queue_limit:
            self.metrics.inc("service_rejections")
            reason = "shutting down" if self._draining else "work queue is full"
            refusal = ServiceError(f"request refused: {reason}")
            self.coalescer.fail(key, refusal)
            # Retrieve the exception so a followerless future never
            # logs "exception was never retrieved".
            future.exception()
            return self._error_response(refusal, status=503)

        self._pending += 1
        self._idle.clear()
        self.metrics.set_gauge("service_queue_depth", self._pending)
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        try:
            with span(f"service.{endpoint}", key=key[:12]):
                result = await loop.run_in_executor(
                    self._pool,
                    partial(
                        run_request,
                        request,
                        workers=self.workers,
                        executor=self.executor,
                    ),
                )
        except Exception as exc:
            elapsed = time.perf_counter() - started
            self.coalescer.fail(key, exc)
            future.exception()
            await self._append_ledger_row(
                endpoint, request, outcome="error", wall_seconds=elapsed
            )
            if isinstance(exc, FullViewError):
                return self._error_response(exc)
            return 500, ErrorBody(
                error=str(exc), kind=type(exc).__name__, status=500
            ).to_wire()
        finally:
            self._pending -= 1
            self.metrics.set_gauge("service_queue_depth", self._pending)
            if self._pending == 0:
                self._idle.set()

        elapsed = time.perf_counter() - started
        self.metrics.inc("service_cache_misses")
        self.metrics.observe("service_compute_seconds", elapsed)
        self.cache.put(key, result)
        self.coalescer.resolve(key, result)
        await self._append_ledger_row(
            endpoint, request, outcome="ok", wall_seconds=elapsed
        )
        return 200, self._envelope(
            endpoint, key, result, source="computed", compute_seconds=elapsed
        )

    @staticmethod
    def _envelope(
        endpoint: str,
        key: str,
        result: Any,
        *,
        source: str,
        compute_seconds: Optional[float] = None,
    ) -> Dict[str, Any]:
        return {
            "schema": API_SCHEMA,
            "endpoint": endpoint,
            "key": key,
            "cached": source in ("memory", "disk"),
            "source": source,
            "compute_seconds": compute_seconds,
            "result": result,
        }

    @staticmethod
    def _error_response(
        error: FullViewError, status: Optional[int] = None
    ) -> Tuple[int, Any]:
        resolved = status if status is not None else 400
        return resolved, ErrorBody(
            error=str(error), kind=type(error).__name__, status=resolved
        ).to_wire()

    async def _append_ledger_row(
        self,
        endpoint: str,
        request: WireBody,
        *,
        outcome: str,
        wall_seconds: float,
    ) -> None:
        if self.ledger_path is None:
            return
        canonical = request.canonical()
        trials = int(canonical.get("trials", 0) or 0)
        completed = trials if outcome == "ok" else 0
        rate = completed / wall_seconds if wall_seconds > 0 else 0.0
        row = {
            "format": LEDGER_FORMAT,
            "run_id": new_run_id(),
            "experiment": f"svc-{endpoint}",
            "config_digest": config_digest(canonical),
            "seed": int(canonical.get("seed", 0) or 0),
            "git_sha": self._git_sha,
            "executor": self.executor or "auto",
            "workers": self.workers if self.workers is not None else 1,
            "wall_seconds": wall_seconds,
            "trials_per_sec": rate,
            "trials_completed": completed,
            "trials_failed": 0,
            "outcome": outcome,
            "retries": 0,
            "respawns": 0,
            "quarantined": 0,
            "checkpoints_recovered": 0,
            "trace_path": None,
            "metrics_path": None,
            "started_unix": time.time(),
        }
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, append_run, self.ledger_path, row)
