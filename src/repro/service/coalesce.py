"""Coalescing of concurrent identical requests onto one computation.

When N clients ask the coverage service the same question at the same
moment, exactly one engine run should happen: the first request to
arrive becomes the *leader* and computes; the other N-1 become
*followers* and await the leader's future.  Keys are the same content
addresses the result cache uses, so "identical" means identical in
the canonical-digest sense — spelling differences never split a
computation.

The :class:`Coalescer` is event-loop-local state: every method must be
called from the loop thread, which is why there are no locks — the
dict mutations are serialized by the loop itself.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Tuple

__all__ = [
    "Coalescer",
]


class Coalescer:
    """Futures keyed by content address; one leader per key."""

    def __init__(self) -> None:
        self._inflight: Dict[str, asyncio.Future] = {}

    def claim(self, key: str) -> Tuple[bool, "asyncio.Future[Any]"]:
        """Join the in-flight computation for ``key``.

        Returns ``(leader, future)``: the first caller for a key gets
        ``leader=True`` and must eventually :meth:`resolve` or
        :meth:`fail` the future; later callers get ``leader=False`` and
        simply await it.
        """
        future = self._inflight.get(key)
        if future is not None:
            return False, future
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        return True, future

    def resolve(self, key: str, result: Any) -> None:
        """Deliver ``result`` to every waiter and retire the key."""
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result(result)

    def fail(self, key: str, error: BaseException) -> None:
        """Deliver ``error`` to every waiter and retire the key."""
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_exception(error)

    def __len__(self) -> int:
        return len(self._inflight)
