"""The coverage service: serve the paper's estimators over HTTP.

The ROADMAP north-star has many clients asking overlapping deployment
questions; this package turns the one-shot :mod:`repro.api` facade
into a long-running stdlib-asyncio server that computes each distinct
question once and serves it many times:

- :mod:`repro.service.server` — the HTTP listener, request routing,
  backpressure and graceful drain (:class:`CoverageService`);
- :mod:`repro.service.cache` — two-tier content-addressed result
  cache keyed by (config digest, seed, git sha);
- :mod:`repro.service.coalesce` — concurrent identical requests share
  one in-flight computation;
- :mod:`repro.service.jobs` — the synchronous request-to-facade
  mapping, executed in a worker pool through ``executor_scope``;
- :mod:`repro.service.client` — a blocking stdlib client for tests,
  benchmarks and scripts.

Start one from the CLI with ``fullview serve``.
"""

from __future__ import annotations

from repro.service.cache import CACHE_FORMAT, ResultCache, cache_key
from repro.service.client import ServiceClient
from repro.service.coalesce import Coalescer
from repro.service.server import CoverageService

__all__ = [
    "CACHE_FORMAT",
    "Coalescer",
    "CoverageService",
    "ResultCache",
    "ServiceClient",
    "cache_key",
]
