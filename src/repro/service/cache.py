"""Content-addressed result cache for the coverage service.

Every service computation is deterministic given its request body (the
seed is part of the body) and the code that runs it, so results are
cached under a content address: :func:`cache_key` hashes the request's
canonical configuration digest together with the seed and the git sha
via the same :func:`repro.ioutil.config_digest` that stamps
checkpoints and fills ledger rows.  Two requests that mean the same
computation — however they were spelled — share one cache entry; a new
code revision gets a fresh namespace for free.

:class:`ResultCache` layers a process-local dict over an optional
on-disk store.  Disk entries are ``fullview-cache-v1`` JSON envelopes
written through :func:`repro.ioutil.write_json_atomic` (fsync before
rename) and checksum-stamped, so a torn or hand-edited entry fails
verification and is treated as a miss rather than served as truth.
Disk hits are promoted into memory, which is what lets the service
ledger count a persistent-cache hit exactly once per process.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.api.schemas import API_SCHEMA, WireBody
from repro.errors import ServiceError
from repro.ioutil import (
    config_digest,
    stamp_checksum,
    verify_checksum,
    write_json_atomic,
)

__all__ = [
    "CACHE_FORMAT",
    "ResultCache",
    "cache_key",
]

#: Schema tag written into every on-disk cache envelope.
CACHE_FORMAT = "fullview-cache-v1"


def cache_key(request: WireBody, git_sha: Optional[str] = None) -> str:
    """The content address of ``request``'s result.

    The key is ``config_digest`` over the tuple the ISSUE prescribes:
    the request's canonical configuration digest (which already folds
    in every default), its seed, and the git sha of the serving code.
    ``git_sha=None`` (an unversioned working tree) still produces a
    stable key — it just shares a namespace across such trees.
    """
    canonical = request.canonical()
    return config_digest(
        {
            "schema": API_SCHEMA,
            "config_digest": config_digest(canonical),
            "seed": canonical.get("seed"),
            "git_sha": git_sha,
        }
    )


class ResultCache:
    """Two-tier (memory over optional disk) content-addressed cache.

    Not safe for concurrent mutation from multiple threads; the service
    only touches it from the event-loop thread.  Distinct *processes*
    may share a cache directory: writes are atomic renames, so readers
    never observe torn files.
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None) -> None:
        self._memory: Dict[str, Any] = {}
        self._dir: Optional[Path] = None
        if cache_dir is not None:
            self._dir = Path(cache_dir)
            try:
                self._dir.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise ServiceError(
                    f"cache directory {self._dir} is unusable: {exc}"
                ) from exc

    @property
    def directory(self) -> Optional[Path]:
        """The on-disk store's root (``None`` = memory-only cache)."""
        return self._dir

    def _entry_path(self, key: str) -> Path:
        # Two-level fan-out keeps any one directory small even with
        # hundreds of thousands of entries.
        assert self._dir is not None
        return self._dir / key[:2] / f"{key}.json"

    def get(self, key: str) -> Tuple[Optional[Any], Optional[str]]:
        """Look up ``key``; returns ``(result, tier)``.

        ``tier`` is ``"memory"`` or ``"disk"`` on a hit and ``None`` on
        a miss.  A disk entry that fails JSON parsing, checksum
        verification or format matching is silently a miss — corruption
        must never be served as a result.
        """
        if key in self._memory:
            return self._memory[key], "memory"
        if self._dir is None:
            return None, None
        path = self._entry_path(key)
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None, None
        if (
            not isinstance(envelope, dict)
            or envelope.get("format") != CACHE_FORMAT
            or envelope.get("key") != key
            or not verify_checksum(envelope)
        ):
            return None, None
        result = envelope.get("result")
        self._memory[key] = result
        return result, "disk"

    def put(self, key: str, result: Any) -> None:
        """Store ``result`` under ``key`` in memory and (if set) on disk."""
        self._memory[key] = result
        if self._dir is None:
            return
        envelope = stamp_checksum(
            {"format": CACHE_FORMAT, "key": key, "result": result}
        )
        write_json_atomic(self._entry_path(key), envelope)

    def __len__(self) -> int:
        return len(self._memory)
