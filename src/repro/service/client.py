"""A minimal stdlib client for the coverage service.

One :class:`ServiceClient` wraps one keep-alive
:class:`http.client.HTTPConnection` — it is deliberately *not*
thread-safe, matching the load generator's one-client-per-thread
design.  Convenience wrappers (:meth:`ServiceClient.deploy`,
:meth:`ServiceClient.evaluate`, :meth:`ServiceClient.estimate`) build
``fullview-api-v1`` bodies from keyword arguments and raise
:class:`~repro.errors.ServiceError` on any non-200 answer, so test and
benchmark code never parses error envelopes by hand.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Tuple

from repro.api.schemas import API_SCHEMA
from repro.errors import ServiceError

__all__ = [
    "ServiceClient",
]


class ServiceClient:
    """Blocking JSON-over-HTTP client for one coverage service."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self._connection = http.client.HTTPConnection(host, port, timeout=timeout)

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _exchange(
        self, method: str, path: str, payload: Any = None
    ) -> Tuple[int, Any]:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            self._connection.request(method, path, body=body, headers=headers)
            response = self._connection.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as exc:
            self._connection.close()
            raise ServiceError(f"service request {method} {path} failed: {exc}") from exc
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else None
        except ValueError as exc:
            raise ServiceError(
                f"service returned non-JSON body for {method} {path}"
            ) from exc
        return response.status, decoded

    def get(self, path: str) -> Tuple[int, Any]:
        """``GET path`` -> ``(status, decoded body)``."""
        return self._exchange("GET", path)

    def post(self, endpoint: str, body: Dict[str, Any]) -> Tuple[int, Any]:
        """``POST /v1/<endpoint>`` -> ``(status, decoded body)``."""
        payload = {"schema": API_SCHEMA}
        payload.update(body)
        return self._exchange("POST", f"/v1/{endpoint}", payload)

    def _call(self, endpoint: str, body: Dict[str, Any]) -> Dict[str, Any]:
        status, envelope = self.post(endpoint, body)
        if status != 200:
            detail = envelope.get("error") if isinstance(envelope, dict) else envelope
            raise ServiceError(f"{endpoint} failed with HTTP {status}: {detail}")
        return envelope

    def healthz(self) -> Dict[str, Any]:
        """The health body; raises when the service is not healthy."""
        status, body = self.get("/v1/healthz")
        if status != 200:
            raise ServiceError(f"healthz returned HTTP {status}")
        return body

    def stats(self) -> Dict[str, Any]:
        """The ``/v1/stats`` body (counters, gauges, cache size)."""
        status, body = self.get("/v1/stats")
        if status != 200:
            raise ServiceError(f"stats returned HTTP {status}")
        return body

    def deploy(self, **body: Any) -> Dict[str, Any]:
        """``POST /v1/deploy`` with keyword fields; returns the envelope."""
        return self._call("deploy", body)

    def evaluate(self, **body: Any) -> Dict[str, Any]:
        """``POST /v1/evaluate`` with keyword fields; returns the envelope."""
        return self._call("evaluate", body)

    def estimate(self, **body: Any) -> Dict[str, Any]:
        """``POST /v1/estimate`` with keyword fields; returns the envelope."""
        return self._call("estimate", body)
