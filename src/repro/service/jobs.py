"""Synchronous compute for service requests, through the facade.

Each wire request maps onto exactly one :mod:`repro.api` call, run in
a worker thread by the server and returned as a JSON-ready result
body.  Worker count and executor backend are *server policy*, not part
of the wire schema or the cache key: the numbers a request produces
are bit-identical across executors (the engine guarantees it), so two
deployments of the service with different parallelism still share
cache entries.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro import api
from repro.api.schemas import (
    DeployRequest,
    EstimateRequest,
    EvaluateRequest,
    WireBody,
)
from repro.errors import ServiceError
from repro.simulation.engine import executor_scope
from repro.simulation.statistics import BernoulliEstimate

__all__ = [
    "run_request",
]


def _serialize_estimate(kind: str, value: Any) -> Any:
    """A JSON-ready view of whatever an estimator kind returns."""
    if isinstance(value, BernoulliEstimate):
        low, high = value.wilson()
        return {
            "successes": value.successes,
            "trials": value.trials,
            "proportion": value.proportion,
            "wilson_95": [low, high],
        }
    if kind == "area_fraction":
        mean, half_width = value
        return {"mean": float(mean), "ci_half_width": float(half_width)}
    if isinstance(value, dict):
        return {
            name: _serialize_estimate(kind, item) for name, item in value.items()
        }
    if isinstance(value, (int, float, str)) or value is None:
        return value
    raise ServiceError(
        f"estimator kind {kind!r} returned unserializable {type(value).__name__}"
    )


def _run_deploy(request: DeployRequest) -> Dict[str, Any]:
    fleet = api.deploy(
        radius=request.radius,
        angle_of_view=request.angle_of_view,
        n=request.n,
        seed=request.seed,
        build_index=False,
    )
    return {
        "n": len(fleet),
        "seed": request.seed,
        "positions": fleet.positions.tolist(),
        "orientations": fleet.orientations.tolist(),
        "radii": fleet.radii.tolist(),
        "angles_of_view": fleet.angles.tolist(),
    }


def _run_evaluate(request: EvaluateRequest) -> Dict[str, Any]:
    fleet = api.deploy(
        radius=request.radius,
        angle_of_view=request.angle_of_view,
        n=request.n,
        seed=request.seed,
    )
    evaluation = api.evaluate_grid(
        fleet=fleet,
        theta=request.theta,
        condition=request.condition,
        resolution=request.resolution,
        k=request.k,
        kernel=request.kernel,
    )
    return {
        "fraction": evaluation.fraction,
        "num_covered": evaluation.num_covered,
        "num_points": len(evaluation),
        "theta": evaluation.theta,
        "condition": evaluation.condition,
    }


def _run_estimate(
    request: EstimateRequest, workers: Optional[int]
) -> Dict[str, Any]:
    value = api.estimate(
        kind=request.kind,
        radius=request.radius,
        angle_of_view=request.angle_of_view,
        n=request.n,
        theta=request.theta,
        condition=request.condition,
        trials=request.trials,
        seed=request.seed,
        workers=workers,
        point=request.point,
        k=request.k,
        sample_points=request.sample_points,
        max_grid_points=request.max_grid_points,
        kernel=request.kernel,
    )
    return {
        "kind": request.kind,
        "trials": request.trials,
        "estimate": _serialize_estimate(request.kind, value),
    }


def run_request(
    request: WireBody,
    *,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
) -> Dict[str, Any]:
    """Compute the result body for one parsed wire request.

    Runs inside :class:`~repro.simulation.engine.executor_scope` so
    every Monte-Carlo config built below resolves to the server's
    configured backend, exactly like ``--executor`` on the CLI.
    """
    with executor_scope(executor):
        if isinstance(request, DeployRequest):
            return _run_deploy(request)
        if isinstance(request, EvaluateRequest):
            return _run_evaluate(request)
        if isinstance(request, EstimateRequest):
            return _run_estimate(request, workers)
    raise ServiceError(
        f"no compute mapped for request type {type(request).__name__}"
    )
