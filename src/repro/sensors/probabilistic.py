"""Probabilistic sensing models (the paper's named future work).

Section VIII closes with "extending our results in probabilistic
sensing models".  This module provides that extension surface: a
detection model maps object distance to a detection probability, and
:func:`probabilistic_covering` thins the binary covering set of a fleet
accordingly.  The binary sector model is the special case of a
probability that is 1 inside the sector.

All coverage machinery in :mod:`repro.core` accepts the thinned
covering directions, so full-view analysis composes with these models
unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.geometry.angles import normalize_angle
from repro.sensors.fleet import SensorFleet

__all__ = [
    "BinaryModel",
    "ExponentialDecayModel",
    "Point",
    "ProbabilisticSensingModel",
    "StaircaseModel",
    "probabilistic_covering",
    "probabilistic_covering_directions",
]

Point = Tuple[float, float]


class ProbabilisticSensingModel(ABC):
    """Maps distance (within the sector) to detection probability."""

    @abstractmethod
    def detection_probability(self, distance: np.ndarray, radius: np.ndarray) -> np.ndarray:
        """Probability of detecting an object at ``distance``.

        Parameters
        ----------
        distance:
            Object distances from the sensor apex; guaranteed to be
            within the sensing radius when called by
            :func:`probabilistic_covering`.
        radius:
            The corresponding sensing radii (same shape), so models can
            normalise by reach.
        """

    def expected_coverage_ratio(self) -> float:
        """Mean detection probability over a uniformly random in-sector point.

        Integrates ``p(d)`` against the in-sector radial density
        ``2 d / r^2`` numerically.  Used to rescale analytical
        predictions: a probabilistic sensor behaves like a binary sensor
        with its sensing area shrunk by this factor.
        """
        # 256-point midpoint rule is ample for the smooth models here.
        ts = (np.arange(256, dtype=float) + 0.5) / 256.0
        probs = self.detection_probability(ts, np.ones_like(ts))
        return float(np.sum(probs * 2.0 * ts) / 256.0)


@dataclass(frozen=True)
class BinaryModel(ProbabilisticSensingModel):
    """Perfect detection everywhere inside the sector (the paper's model)."""

    def detection_probability(self, distance: np.ndarray, radius: np.ndarray) -> np.ndarray:
        return np.ones_like(np.asarray(distance, dtype=float))


@dataclass(frozen=True)
class ExponentialDecayModel(ProbabilisticSensingModel):
    """Detection probability ``exp(-beta * (d / r) ** gamma)``.

    ``beta`` controls how fast quality degrades towards the sector rim;
    ``gamma`` shapes the decay (``gamma = 2`` models energy-like decay).
    """

    beta: float = 1.0
    gamma: float = 2.0

    def __post_init__(self) -> None:
        if self.beta < 0:
            raise InvalidParameterError(f"beta must be non-negative, got {self.beta!r}")
        if self.gamma <= 0:
            raise InvalidParameterError(f"gamma must be positive, got {self.gamma!r}")

    def detection_probability(self, distance: np.ndarray, radius: np.ndarray) -> np.ndarray:
        distance = np.asarray(distance, dtype=float)
        radius = np.asarray(radius, dtype=float)
        return np.exp(-self.beta * (distance / radius) ** self.gamma)


@dataclass(frozen=True)
class StaircaseModel(ProbabilisticSensingModel):
    """Perfect detection up to ``reliable_fraction * r``, then ``far_probability``.

    A two-level model often used for cameras whose recognition quality
    collapses past a focus distance.
    """

    reliable_fraction: float = 0.5
    far_probability: float = 0.5

    def __post_init__(self) -> None:
        if not (0.0 <= self.reliable_fraction <= 1.0):
            raise InvalidParameterError(
                f"reliable_fraction must be in [0, 1], got {self.reliable_fraction!r}"
            )
        if not (0.0 <= self.far_probability <= 1.0):
            raise InvalidParameterError(
                f"far_probability must be in [0, 1], got {self.far_probability!r}"
            )

    def detection_probability(self, distance: np.ndarray, radius: np.ndarray) -> np.ndarray:
        distance = np.asarray(distance, dtype=float)
        radius = np.asarray(radius, dtype=float)
        return np.where(
            distance <= self.reliable_fraction * radius, 1.0, self.far_probability
        )


def probabilistic_covering(
    fleet: SensorFleet,
    point: Point,
    model: ProbabilisticSensingModel,
    rng: np.random.Generator,
) -> np.ndarray:
    """Indices of sensors that cover *and detect* an object at ``point``.

    The binary covering set is computed first (sector containment),
    then each covering sensor keeps the point with the model's
    distance-dependent probability, independently.
    """
    idx = fleet.covering(point)
    if idx.size == 0:
        return idx
    distances = fleet.region.distances(point, fleet.positions[idx])
    probs = model.detection_probability(distances, fleet.radii[idx])
    keep = rng.random(idx.size) < probs
    return idx[keep]


def probabilistic_covering_directions(
    fleet: SensorFleet,
    point: Point,
    model: ProbabilisticSensingModel,
    rng: np.random.Generator,
) -> np.ndarray:
    """Viewed directions of the probabilistically detected sensors."""
    idx = probabilistic_covering(fleet, point, model, rng)
    if idx.size == 0:
        return np.empty(0, dtype=float)
    delta = fleet.region.displacements(point, fleet.positions[idx])
    apart = delta[:, 0] ** 2 + delta[:, 1] ** 2 > 1e-24  # apex tolerance
    delta = delta[apart]
    if delta.shape[0] == 0:
        return np.empty(0, dtype=float)
    return normalize_angle(np.arctan2(delta[:, 1], delta[:, 0]))
