"""A deployed population of camera sensors, stored column-wise.

:class:`SensorFleet` is the workhorse of the simulation layer: it holds
the positions, orientations and sensing parameters of all ``n`` deployed
sensors as flat numpy arrays, and answers the two queries every coverage
check reduces to:

- :meth:`SensorFleet.covering` — which sensors cover a point ``P``
  (binary sector model: ``|PS| <= r`` and the bearing from the sensor to
  ``P`` lies within ``phi/2`` of its orientation);
- :meth:`SensorFleet.covering_directions` — the *viewed directions*
  ``P -> S`` of those sensors, the inputs to the full-view criterion.

An optional :class:`~repro.geometry.spatial.ToroidalCellIndex` restricts
the candidate set per query; results are identical with or without it
(property-tested).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI, normalize_angle
from repro.geometry.sector import Sector
from repro.geometry.spatial import ToroidalCellIndex
from repro.geometry.torus import Region, UNIT_TORUS
from repro.sensors.model import HeterogeneousProfile

__all__ = ["Point", "SensorFleet", "fleet_from_profile_arrays"]

Point = Tuple[float, float]

#: Angular slack used in wedge tests, mirroring :class:`Sector`.
_ANGLE_TOL = 1e-12

#: Squared apex tolerance, mirroring :data:`repro.geometry.sector._APEX_TOL_SQ`.
_APEX_TOL_SQ = 1e-24


class SensorFleet:
    """A fixed set of deployed camera sensors.

    Construct directly from arrays, or via the deployment schemes in
    :mod:`repro.deployment` which return fleets.  The fleet is
    logically immutable; arrays are copied on construction and exposed
    as read-only views.

    Parameters
    ----------
    positions:
        ``(n, 2)`` sensor locations.
    orientations:
        ``(n,)`` orientation headings ``f`` (angular bisector of the
        sector), radians.
    radii:
        ``(n,)`` sensing radii.
    angles:
        ``(n,)`` angles of view in ``(0, 2*pi]``.
    group_ids:
        ``(n,)`` integer group labels (``0..u-1``); optional, defaults
        to all zeros.
    region:
        Geometry provider; defaults to the unit torus.
    """

    __slots__ = (
        "region",
        "_positions",
        "_orientations",
        "_radii",
        "_angles",
        "_half_angles",
        "_group_ids",
        "_index",
        "_max_radius",
    )

    def __init__(
        self,
        positions: np.ndarray,
        orientations: np.ndarray,
        radii: np.ndarray,
        angles: np.ndarray,
        group_ids: Optional[np.ndarray] = None,
        region: Region = UNIT_TORUS,
    ) -> None:
        positions = np.asarray(positions, dtype=float).reshape(-1, 2)
        n = positions.shape[0]
        orientations = normalize_angle(np.asarray(orientations, dtype=float).reshape(-1))
        radii = np.asarray(radii, dtype=float).reshape(-1)
        angles = np.asarray(angles, dtype=float).reshape(-1)
        if orientations.shape[0] != n or radii.shape[0] != n or angles.shape[0] != n:
            raise InvalidParameterError(
                "positions, orientations, radii and angles must have equal length"
            )
        if n and (radii <= 0).any():
            raise InvalidParameterError("all sensing radii must be positive")
        if n and ((angles <= 0) | (angles > TWO_PI + 1e-12)).any():
            raise InvalidParameterError("all angles of view must be in (0, 2*pi]")
        if group_ids is None:
            group_ids = np.zeros(n, dtype=np.intp)
        else:
            group_ids = np.asarray(group_ids, dtype=np.intp).reshape(-1)
            if group_ids.shape[0] != n:
                raise InvalidParameterError("group_ids length must match positions")
        self.region = region
        self._positions = region.wrap_points(positions).copy()
        self._orientations = orientations.copy()
        self._radii = radii.copy()
        self._angles = np.minimum(angles, TWO_PI).copy()
        self._half_angles = 0.5 * self._angles
        self._group_ids = group_ids.copy()
        self._index: Optional[ToroidalCellIndex] = None
        self._max_radius = float(radii.max()) if n else 0.0

    # -- basic accessors ----------------------------------------------------

    def __len__(self) -> int:
        return self._positions.shape[0]

    @property
    def positions(self) -> np.ndarray:
        return self._read_only(self._positions)

    @property
    def orientations(self) -> np.ndarray:
        return self._read_only(self._orientations)

    @property
    def radii(self) -> np.ndarray:
        return self._read_only(self._radii)

    @property
    def angles(self) -> np.ndarray:
        return self._read_only(self._angles)

    @property
    def group_ids(self) -> np.ndarray:
        return self._read_only(self._group_ids)

    @property
    def max_radius(self) -> float:
        """Largest sensing radius in the fleet (coverage reach bound)."""
        return self._max_radius

    @staticmethod
    def _read_only(array: np.ndarray) -> np.ndarray:
        view = array.view()
        view.flags.writeable = False
        return view

    @staticmethod
    def no_directions() -> np.ndarray:
        """The canonical empty viewed-direction array.

        :meth:`covering_directions` returns float angle arrays, so every
        empty-fleet fallback must be float too — ``np.empty(0)`` happens
        to default to ``float64`` today, but this helper makes the dtype
        contract explicit and keeps all call sites identical.
        """
        return np.empty(0, dtype=float)

    def sensing_areas(self) -> np.ndarray:
        """Per-sensor sensing areas ``phi * r**2 / 2``."""
        return 0.5 * self._angles * self._radii**2

    def total_weighted_sensing_area(self) -> float:
        """Empirical ``s_c``: mean per-sensor sensing area.

        For a fleet drawn from a :class:`HeterogeneousProfile` this
        estimates the profile's weighted sensing area (and equals it
        exactly when group counts are exact multiples).
        """
        if len(self) == 0:
            return 0.0
        return float(self.sensing_areas().mean())

    def sensor(self, index: int) -> Sector:
        """The ``index``-th sensor as a scalar :class:`Sector`."""
        x, y = self._positions[index]
        return Sector(
            apex=(float(x), float(y)),
            radius=float(self._radii[index]),
            angle=float(self._angles[index]),
            orientation=float(self._orientations[index]),
            region=self.region,
        )

    def subset(self, indices: Sequence[int]) -> "SensorFleet":
        """A new fleet containing only the selected sensors."""
        idx = np.asarray(indices, dtype=np.intp)
        return SensorFleet(
            positions=self._positions[idx],
            orientations=self._orientations[idx],
            radii=self._radii[idx],
            angles=self._angles[idx],
            group_ids=self._group_ids[idx],
            region=self.region,
        )

    def replace(
        self,
        *,
        positions: Optional[np.ndarray] = None,
        orientations: Optional[np.ndarray] = None,
        radii: Optional[np.ndarray] = None,
        angles: Optional[np.ndarray] = None,
        group_ids: Optional[np.ndarray] = None,
    ) -> "SensorFleet":
        """A new fleet with some per-sensor arrays swapped out.

        The hook the failure models in :mod:`repro.resilience` build on:
        orientation drift swaps headings, radius degradation swaps
        radii, and the constructor re-validates every invariant.  The
        spatial index is not carried over (positions or radii may have
        changed); rebuild it if needed.
        """
        return SensorFleet(
            positions=self._positions if positions is None else positions,
            orientations=self._orientations if orientations is None else orientations,
            radii=self._radii if radii is None else radii,
            angles=self._angles if angles is None else angles,
            group_ids=self._group_ids if group_ids is None else group_ids,
            region=self.region,
        )

    def concat(self, other: "SensorFleet") -> "SensorFleet":
        """Union of two fleets over the same region.

        Group ids of ``other`` are shifted past this fleet's maximum so
        the two populations stay distinguishable.
        """
        if other.region != self.region:
            raise InvalidParameterError("cannot concat fleets over different regions")
        shift = int(self._group_ids.max()) + 1 if len(self) else 0
        return SensorFleet(
            positions=np.concatenate([self._positions, other._positions]),
            orientations=np.concatenate([self._orientations, other._orientations]),
            radii=np.concatenate([self._radii, other._radii]),
            angles=np.concatenate([self._angles, other._angles]),
            group_ids=np.concatenate([self._group_ids, other._group_ids + shift]),
            region=self.region,
        )

    # -- spatial index -------------------------------------------------------

    def build_index(self, cell_size: Optional[float] = None) -> ToroidalCellIndex:
        """Build (and cache) a spatial index over sensor positions.

        The default cell size is the maximum sensing radius, so a single
        3x3 cell neighbourhood contains every sensor that can reach the
        query point.
        """
        if cell_size is None:
            cell_size = self._max_radius if self._max_radius > 0 else self.region.side
        self._index = ToroidalCellIndex(self._positions, cell_size, self.region)
        return self._index

    @property
    def index(self) -> Optional[ToroidalCellIndex]:
        return self._index

    # -- coverage queries -------------------------------------------------------

    def covering(self, point: Point, use_index: bool = True) -> np.ndarray:
        """Indices of sensors covering ``point`` under the sector model.

        A sensor ``S`` covers ``P`` when ``|PS| <= r_S`` and the bearing
        ``S -> P`` lies within ``phi_S / 2`` of the orientation of
        ``S``.  A sensor exactly at ``P`` covers it.
        """
        if len(self) == 0:
            return np.empty(0, dtype=np.intp)
        if use_index and self._index is not None:
            candidates = self._index.candidates_within(point, self._max_radius)
            if candidates.size == 0:
                return candidates
        else:
            candidates = np.arange(len(self), dtype=np.intp)
        pos = self._positions[candidates]
        # Displacement from sensor to point (the direction the sensor
        # must look along to see P).
        delta = -self.region.displacements(point, pos)
        dist_sq = delta[:, 0] ** 2 + delta[:, 1] ** 2
        within = dist_sq <= self._radii[candidates] ** 2
        if not within.any():
            return candidates[:0]
        bearing = np.arctan2(delta[:, 1], delta[:, 0])
        offset = np.abs(
            np.mod(bearing - self._orientations[candidates] + math.pi, TWO_PI) - math.pi
        )
        in_wedge = offset <= self._half_angles[candidates] + _ANGLE_TOL
        at_apex = dist_sq <= _APEX_TOL_SQ
        return candidates[within & (in_wedge | at_apex)]

    def covering_directions(self, point: Point, use_index: bool = True) -> np.ndarray:
        """Viewed directions ``P -> S`` of the sensors covering ``point``.

        Sensors coincident with the point are dropped (their viewed
        direction is undefined); under continuous random deployment this
        is a measure-zero event.
        """
        idx = self.covering(point, use_index=use_index)
        if idx.size == 0:
            return np.empty(0, dtype=float)
        delta = self.region.displacements(point, self._positions[idx])
        # Sensors within the apex tolerance have no meaningful bearing.
        apart = delta[:, 0] ** 2 + delta[:, 1] ** 2 > _APEX_TOL_SQ
        delta = delta[apart]
        if delta.shape[0] == 0:
            return np.empty(0, dtype=float)
        return normalize_angle(np.arctan2(delta[:, 1], delta[:, 0]))

    def coverage_count(self, point: Point, use_index: bool = True) -> int:
        """Number of sensors covering ``point`` (for k-coverage checks)."""
        return int(self.covering(point, use_index=use_index).size)

    def coverage_counts(self, points: np.ndarray, use_index: bool = True) -> np.ndarray:
        """Vector of coverage counts for an ``(m, 2)`` array of points."""
        pts = np.asarray(points, dtype=float).reshape(-1, 2)
        return np.array(
            [self.coverage_count((float(x), float(y)), use_index=use_index) for x, y in pts],
            dtype=np.intp,
        )

    # -- reporting ---------------------------------------------------------------

    def group_sizes(self) -> np.ndarray:
        """Sensor count per group id (length = max group id + 1)."""
        if len(self) == 0:
            return np.zeros(0, dtype=np.intp)
        return np.bincount(self._group_ids)

    def __repr__(self) -> str:
        return (
            f"SensorFleet(n={len(self)}, groups={len(self.group_sizes())}, "
            f"max_radius={self._max_radius:.4g}, region_side={self.region.side:g})"
        )


def fleet_from_profile_arrays(
    profile: HeterogeneousProfile,
    positions: np.ndarray,
    orientations: np.ndarray,
    region: Region = UNIT_TORUS,
) -> SensorFleet:
    """Assemble a fleet from a profile plus position/orientation arrays.

    The first ``n_1`` rows get group 1's parameters, the next ``n_2``
    group 2's, and so on, with ``n_y`` from
    :meth:`HeterogeneousProfile.group_counts`.  Deployment schemes
    shuffle positions before calling this, so the block assignment does
    not bias geometry.
    """
    positions = np.asarray(positions, dtype=float).reshape(-1, 2)
    n = positions.shape[0]
    counts = profile.group_counts(n)
    radii = np.empty(n, dtype=float)
    angles = np.empty(n, dtype=float)
    group_ids = np.empty(n, dtype=np.intp)
    start = 0
    for gid, (group, count) in enumerate(zip(profile.groups, counts)):
        stop = start + count
        radii[start:stop] = group.radius
        angles[start:stop] = group.angle_of_view
        group_ids[start:stop] = gid
        start = stop
    return SensorFleet(
        positions=positions,
        orientations=orientations,
        radii=radii,
        angles=angles,
        group_ids=group_ids,
        region=region,
    )
