"""Fleet persistence.

Deployments are the expensive, randomness-bearing artifact of any
study; saving them makes results point-for-point reproducible and lets
post-hoc analyses (new theta, new condition, barrier checks) run on the
exact same fleets.  Fleets round-trip through a single ``.npz`` file
holding the column arrays plus the region parameters.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import InvalidParameterError
from repro.geometry.torus import Region
from repro.sensors.fleet import SensorFleet

__all__ = ["load_fleet", "save_fleet"]

#: Format tag stored in every file; bumped on incompatible changes.
_FORMAT_VERSION = 1


def save_fleet(fleet: SensorFleet, path: Union[str, Path]) -> Path:
    """Write a fleet to ``path`` (``.npz``; parent dirs created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        format_version=np.array([_FORMAT_VERSION]),
        positions=fleet.positions,
        orientations=fleet.orientations,
        radii=fleet.radii,
        angles=fleet.angles,
        group_ids=fleet.group_ids,
        region_side=np.array([fleet.region.side]),
        region_torus=np.array([fleet.region.torus]),
    )
    # np.savez appends .npz when missing; report the real location.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_fleet(path: Union[str, Path]) -> SensorFleet:
    """Read a fleet previously written by :func:`save_fleet`."""
    path = Path(path)
    if not path.exists():
        raise InvalidParameterError(f"no fleet file at {path}")
    with np.load(path) as data:
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise InvalidParameterError(
                f"fleet file format {version} unsupported (expected {_FORMAT_VERSION})"
            )
        region = Region(
            side=float(data["region_side"][0]),
            torus=bool(data["region_torus"][0]),
        )
        return SensorFleet(
            positions=data["positions"],
            orientations=data["orientations"],
            radii=data["radii"],
            angles=data["angles"],
            group_ids=data["group_ids"],
            region=region,
        )
